//! Umbrella crate for the uManycore reproduction workspace.
//!
//! This crate exists to host the repository-level examples
//! (`examples/quickstart.rs`, …) and integration tests (`tests/`), which
//! exercise the public APIs of every member crate together. Library users
//! should depend on the individual crates instead:
//!
//! - [`umanycore`] — the full-system simulator and experiment drivers;
//! - [`um_arch`] — machine configurations and the power/area model;
//! - [`um_workload`] — microservice workload generation;
//! - [`um_net`] / [`um_mem`] / [`um_sched`] — interconnect, memory-system
//!   and scheduling substrates;
//! - [`um_sim`] / [`um_stats`] — the discrete-event engine and statistics.

pub use um_arch;
pub use um_mem;
pub use um_net;
pub use um_sched;
pub use um_sim;
pub use um_stats;
pub use um_workload;
pub use umanycore;
