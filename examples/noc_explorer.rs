//! NoC explorer: drive the three on-package interconnects directly with a
//! synthetic traffic pattern and compare contention behaviour.
//!
//! This exercises the `um-net` crate's public API on its own — useful when
//! evaluating a topology before committing to a full-system simulation.
//!
//! ```text
//! cargo run --release --example noc_explorer
//! ```

use rand::Rng;
use um_net::{FatTree, LeafSpine, Mesh2D, Network, NetworkConfig, Topology};
use um_sim::{rng, Cycles};
use um_stats::Samples;

/// Sends `n` random-pair messages of `bytes` each, all departing inside a
/// tight burst window, and reports per-message latency statistics.
fn burst<T: Topology>(name: &str, topo: T, n: usize, bytes: u64, seed: u64) {
    let mut net = Network::new(topo, NetworkConfig::on_package());
    let endpoints = net.topology().endpoints();
    let mut r = rng::stream(seed, "noc-explorer");
    let mut latencies = Samples::with_capacity(n);
    for i in 0..n {
        let src = r.gen_range(0..endpoints);
        let dst = r.gen_range(0..endpoints);
        // A 10-cycle arrival spread: a microburst, as after a load spike.
        let depart = Cycles::new((i as u64) * 10);
        let arrive = net.send(src, dst, bytes, depart);
        latencies.record((arrive - depart).raw() as f64);
    }
    let s = latencies.summary();
    let stats = net.stats();
    println!(
        "{name:11} mean={:9.0}cyc  p99={:9.0}cyc  hops/msg={:4.1}  queue/msg={:8.0}cyc",
        s.mean,
        s.p99,
        stats.hops as f64 / stats.messages as f64,
        stats.mean_queue()
    );
}

fn main() {
    println!("Microburst of 2048 x 4KB messages over 32 endpoints:\n");
    burst("2d-mesh", Mesh2D::near_square(32), 2048, 4096, 1);
    burst("fat-tree", FatTree::new(32), 2048, 4096, 1);
    burst("leaf-spine", LeafSpine::paper_default(), 2048, 4096, 1);

    println!();
    println!("Same-pair hammering (all messages between clusters 0 and 31):\n");
    for (name, mut net) in [
        (
            "2d-mesh",
            Network::new(Mesh2D::near_square(32), NetworkConfig::on_package()).into_any(),
        ),
        (
            "fat-tree",
            Network::new(FatTree::new(32), NetworkConfig::on_package()).into_any(),
        ),
        (
            "leaf-spine",
            Network::new(LeafSpine::paper_default(), NetworkConfig::on_package()).into_any(),
        ),
    ] {
        let mut last = Cycles::ZERO;
        for _ in 0..64 {
            last = last.max(net.send(0, 31, 4096, Cycles::ZERO));
        }
        println!("{name:11} 64 concurrent messages drain in {last}");
    }
    println!();
    println!("The leaf-spine's redundant paths let same-pair messages proceed in");
    println!("parallel (paper §4.2); the trees serialize them through fixed routes.");
}

/// Minimal object-safe wrapper so the loop above can hold the three
/// network types uniformly.
trait AnySend {
    fn send(&mut self, src: usize, dst: usize, bytes: u64, depart: Cycles) -> Cycles;
}

impl<T: Topology> AnySend for Network<T> {
    fn send(&mut self, src: usize, dst: usize, bytes: u64, depart: Cycles) -> Cycles {
        Network::send(self, src, dst, bytes, depart)
    }
}

trait IntoAny {
    fn into_any(self) -> Box<dyn AnySend>;
}

impl<T: Topology + 'static> IntoAny for Network<T> {
    fn into_any(self) -> Box<dyn AnySend> {
        Box::new(self)
    }
}
