//! Trace characterization: regenerate the paper's §3 workload analysis
//! from the synthetic Alibaba-like model and the footprint generator.
//!
//! ```text
//! cargo run --release --example trace_characterization
//! ```

use um_mem::footprint::{FootprintGenerator, FootprintProfile};
use um_sim::rng;
use um_stats::Cdf;
use um_workload::alibaba::AlibabaModel;
use um_workload::Mmpp;

fn main() {
    // --- Arrival burstiness (the Figure 2 phenomenon) -----------------
    let mut mmpp = Mmpp::alibaba_like(500.0, 21);
    let samples = mmpp.rate_samples(120, 1e6); // two minutes of 1s windows
    let cdf = Cdf::from_samples(samples.iter().copied());
    println!("bursty per-second load on one server (MMPP):");
    println!(
        "  median {:.0} RPS, p80 {:.0}, p95 {:.0}  (paper: ~500 / ~1000 / ~1500)",
        cdf.inverse(0.5),
        cdf.inverse(0.8),
        cdf.inverse(0.95)
    );

    // --- Per-request behaviour (Figures 4 and 5, §3.3) ----------------
    let mut model = AlibabaModel::new(21);
    let records = model.records(50_000);
    let util = Cdf::from_samples(records.iter().map(|r| r.cpu_utilization));
    let rpcs = Cdf::from_samples(records.iter().map(|r| r.rpc_count as f64));
    let sub_ms =
        records.iter().filter(|r| r.duration_ms < 1.0).count() as f64 / records.len() as f64;
    println!("\nper-request behaviour:");
    println!(
        "  median CPU utilization {:.2} (paper ~0.14); p99 {:.2} (paper <0.60)",
        util.inverse(0.5),
        util.inverse(0.99)
    );
    println!(
        "  median RPCs {:.1} (paper ~4.2); sub-ms invocations {:.1}% (paper 36.7%)",
        rpcs.inverse(0.5),
        sub_ms * 100.0
    );

    // --- Footprint sharing (Figure 8, §3.5) ---------------------------
    let mut generator = FootprintGenerator::new(FootprintProfile::deathstar_default());
    let mut r = rng::stream(21, "example-footprints");
    let a = generator.handler(&mut r);
    let b = generator.handler(&mut r);
    let share = FootprintGenerator::sharing(&a, &b);
    println!("\ntwo handlers of one service instance:");
    println!(
        "  footprint {:.2} MB each; shared lines: data {:.0}%, instructions {:.0}%",
        a.bytes() as f64 / (1024.0 * 1024.0),
        share.d_line * 100.0,
        share.i_line * 100.0
    );
    println!("  (paper: ~0.5 MB handlers, 78-99% common)");

    println!("\nThese statistics are what motivate the uManycore design: bursty");
    println!("arrivals want cheap queuing, blocked-heavy requests want cheap context");
    println!("switches, and shared read-mostly state wants villages with memory pools.");
}
