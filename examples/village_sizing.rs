//! Village sizing: which village/cluster shape fits your service?
//!
//! The paper's §6.6 observation: leaf services that never call out prefer
//! larger villages (more cores to absorb bursts), while fan-out-heavy
//! services prefer many small villages (shorter queues, more instances).
//! This example sweeps the shapes of Figure 19 for two contrasting
//! services through the public API.
//!
//! ```text
//! cargo run --release --example village_sizing
//! ```

use um_arch::{MachineConfig, TopologyShape};
use um_workload::apps::SocialNetwork;
use umanycore::experiments::parallel;
use umanycore::{SimConfig, Workload};

fn main() {
    let apps = SocialNetwork::new();
    let shapes = TopologyShape::FIG19_SWEEP;

    for root in [SocialNetwork::URL_SHORT, SocialNetwork::HOME_T] {
        let name = apps.profile(root).name;
        println!("service: {name} at 15K RPS");
        // One simulation per shape, fanned out across the UM_THREADS
        // worker pool; all shapes share the seed so the comparison is
        // paired.
        let configs: Vec<SimConfig> = shapes
            .iter()
            .map(|&shape| SimConfig {
                machine: MachineConfig::umanycore_shaped(shape),
                workload: Workload::social_app(root),
                rps_per_server: 15_000.0,
                horizon_us: 100_000.0,
                warmup_us: 10_000.0,
                seed: 3,
                ..SimConfig::default()
            })
            .collect();
        let reports = parallel::run_reports(configs);
        let mut best: Option<(String, f64)> = None;
        for (shape, report) in shapes.iter().zip(&reports) {
            println!(
                "  shape {:9}  avg {:7.1} us   p99 {:8.1} us",
                shape.label(),
                report.avg_us(),
                report.tail_us()
            );
            if best.as_ref().is_none_or(|(_, t)| report.tail_us() < *t) {
                best = Some((shape.label(), report.tail_us()));
            }
        }
        let (label, tail) = best.expect("swept at least one shape");
        println!("  -> best shape for {name}: {label} (p99 {tail:.1} us)\n");
    }

    println!("Paper §6.6: all shapes within ~15%; the default 8x4x32 is the best");
    println!("compromise across the suite.");
}
