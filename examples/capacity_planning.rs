//! Capacity planning: how many requests per second can each machine
//! sustain for a given application without violating its QoS target?
//!
//! This is the paper's §6.5 question, driven through the public QoS API:
//! a request violates QoS when its latency exceeds 5x the contention-free
//! average. We plan capacity for the HomeTimeline read path and the
//! ComposePost write path.
//!
//! ```text
//! cargo run --release --example capacity_planning
//! ```

use um_arch::MachineConfig;
use um_workload::apps::SocialNetwork;
use umanycore::qos::{max_qos_throughput_many, QOS_MULTIPLIER};
use umanycore::{SimConfig, Workload};

fn main() {
    let apps = SocialNetwork::new();
    println!("QoS bound: latency within {QOS_MULTIPLIER}x the contention-free average\n");

    let roots = [SocialNetwork::HOME_T, SocialNetwork::CPOST];
    let labels = ["ServerClass-40", "ScaleOut", "uManycore"];
    let machines = || {
        [
            MachineConfig::server_class_iso_power(),
            MachineConfig::scaleout(),
            MachineConfig::umanycore(),
        ]
    };
    // All six searches (2 apps x 3 machines) run across the UM_THREADS
    // worker pool; results come back in input order.
    let bases: Vec<SimConfig> = roots
        .iter()
        .flat_map(|&root| {
            machines().map(|machine| SimConfig {
                machine,
                workload: Workload::social_app(root),
                horizon_us: 60_000.0,
                warmup_us: 6_000.0,
                seed: 11,
                ..SimConfig::default()
            })
        })
        .collect();
    let results = max_qos_throughput_many(bases, 500.0, 128_000.0);

    for (&root, chunk) in roots.iter().zip(results.chunks_exact(labels.len())) {
        let name = apps.profile(root).name;
        println!("application: {name}");
        for (label, result) in labels.iter().zip(chunk) {
            println!(
                "  {label:15} sustains {:7.1} KRPS (bound {:.0} us, contention-free avg {:.0} us)",
                result.max_rps / 1000.0,
                result.bound_us,
                result.contention_free_avg_us
            );
        }
        println!();
    }

    println!("Rule of thumb from the paper: a uManycore server replaces an order of");
    println!("magnitude of iso-power conventional servers for QoS-bound microservices.");
}
