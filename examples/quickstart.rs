//! Quickstart: simulate one uManycore server under a SocialNetwork load
//! and print the latency digest.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use um_arch::MachineConfig;
use umanycore::{SimConfig, SystemSim, Workload};

fn main() {
    // A 1024-core uManycore package (8-core villages, 4 villages per
    // cluster, 32 clusters, leaf-spine ICN, hardware scheduling and
    // hardware context switching), serving the eight-service SocialNetwork
    // mix at 10K requests per second.
    let config = SimConfig {
        machine: MachineConfig::umanycore(),
        workload: Workload::social_mix(),
        rps_per_server: 10_000.0,
        horizon_us: 100_000.0, // 100 ms of arrivals
        warmup_us: 10_000.0,
        seed: 7,
        ..SimConfig::default()
    };

    let report = SystemSim::new(config).run();

    println!("completed requests : {}", report.completed);
    println!("recorded (post-warmup): {}", report.recorded);
    println!("average latency    : {:8.1} us", report.avg_us());
    println!("P99 tail latency   : {:8.1} us", report.tail_us());
    println!("tail-to-average    : {:8.2}x", report.tail_to_avg());
    println!("core utilization   : {:8.3}", report.utilization);
    println!("context switches   : {}", report.ctx_switches);
    println!("ICN messages       : {}", report.icn_messages);

    // Compare against the conventional iso-power ServerClass machine.
    let server_class = SystemSim::new(SimConfig {
        machine: MachineConfig::server_class_iso_power(),
        workload: Workload::social_mix(),
        rps_per_server: 10_000.0,
        horizon_us: 100_000.0,
        warmup_us: 10_000.0,
        seed: 7,
        ..SimConfig::default()
    })
    .run();

    println!();
    println!(
        "vs 40-core ServerClass: {:.1}x lower average, {:.1}x lower tail",
        server_class.avg_us() / report.avg_us(),
        server_class.tail_us() / report.tail_us()
    );
}
