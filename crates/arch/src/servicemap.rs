//! The top-level NIC's ServiceMap (paper §4.2, Figure 12).
//!
//! The package's top-level NIC maintains a table mapping each service id to
//! the set of villages hosting an instance of that service; system software
//! appends a row whenever it boots a new instance. Arriving requests are
//! forwarded to one of the hosting villages in round-robin order, entirely
//! in hardware.

use std::collections::BTreeMap;

/// Identifier of a village within a package.
pub type VillageId = usize;

/// The service-to-villages dispatch table with round-robin forwarding.
///
/// # Examples
///
/// ```
/// use um_arch::ServiceMap;
///
/// let mut map = ServiceMap::new();
/// map.register(7, 0);
/// map.register(7, 3);
/// assert_eq!(map.dispatch(7), Some(0));
/// assert_eq!(map.dispatch(7), Some(3));
/// assert_eq!(map.dispatch(7), Some(0)); // wraps around
/// assert_eq!(map.dispatch(9), None);    // unknown service
/// ```
#[derive(Clone, Debug, Default)]
pub struct ServiceMap {
    entries: BTreeMap<u32, Row>,
}

#[derive(Clone, Debug, Default)]
struct Row {
    villages: Vec<VillageId>,
    cursor: usize,
}

impl ServiceMap {
    /// Creates an empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `village` hosts an instance of `service`. Duplicate
    /// registrations are ignored.
    pub fn register(&mut self, service: u32, village: VillageId) {
        let row = self.entries.entry(service).or_default();
        if !row.villages.contains(&village) {
            row.villages.push(village);
        }
    }

    /// Removes a village from a service's row (instance torn down).
    /// Returns whether the pair was present.
    pub fn unregister(&mut self, service: u32, village: VillageId) -> bool {
        let Some(row) = self.entries.get_mut(&service) else {
            return false;
        };
        let Some(pos) = row.villages.iter().position(|&v| v == village) else {
            return false;
        };
        row.villages.remove(pos);
        if row.cursor >= row.villages.len() {
            row.cursor = 0;
        }
        if row.villages.is_empty() {
            self.entries.remove(&service);
        }
        true
    }

    /// Picks the next hosting village for `service`, round-robin; `None`
    /// when no instance exists (the request is rejected upstream).
    pub fn dispatch(&mut self, service: u32) -> Option<VillageId> {
        let row = self.entries.get_mut(&service)?;
        let village = *row.villages.get(row.cursor)?;
        row.cursor = (row.cursor + 1) % row.villages.len();
        Some(village)
    }

    /// Villages currently hosting `service`.
    pub fn villages(&self, service: u32) -> &[VillageId] {
        self.entries
            .get(&service)
            .map(|r| r.villages.as_slice())
            .unwrap_or(&[])
    }

    /// Number of registered services.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map holds no rows.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_cycles_evenly() {
        let mut m = ServiceMap::new();
        for v in [2, 5, 9] {
            m.register(1, v);
        }
        let mut counts = BTreeMap::new();
        for _ in 0..300 {
            *counts
                .entry(m.dispatch(1).expect("registered"))
                .or_insert(0) += 1;
        }
        assert_eq!(counts[&2], 100);
        assert_eq!(counts[&5], 100);
        assert_eq!(counts[&9], 100);
    }

    #[test]
    fn duplicate_registration_ignored() {
        let mut m = ServiceMap::new();
        m.register(1, 4);
        m.register(1, 4);
        assert_eq!(m.villages(1), &[4]);
    }

    #[test]
    fn unregister_removes_and_cleans() {
        let mut m = ServiceMap::new();
        m.register(1, 4);
        m.register(1, 6);
        assert!(m.unregister(1, 4));
        assert_eq!(m.villages(1), &[6]);
        assert!(m.unregister(1, 6));
        assert!(m.is_empty());
        assert!(!m.unregister(1, 6));
        assert_eq!(m.dispatch(1), None);
    }

    #[test]
    fn unregister_fixes_cursor() {
        let mut m = ServiceMap::new();
        m.register(1, 0);
        m.register(1, 1);
        m.dispatch(1); // cursor now 1
        m.unregister(1, 1);
        assert_eq!(m.dispatch(1), Some(0));
    }

    #[test]
    fn services_are_independent() {
        let mut m = ServiceMap::new();
        m.register(1, 0);
        m.register(2, 5);
        assert_eq!(m.dispatch(1), Some(0));
        assert_eq!(m.dispatch(2), Some(5));
        assert_eq!(m.len(), 2);
    }
}
