//! Cache-coherence overhead model (paper §3.1, §4.1).
//!
//! Monolithic (package-wide) hardware coherence costs every miss a
//! potential directory indirection and remote-cache access across the ICN,
//! plus invalidation traffic on writes to shared lines. Village-scale
//! coherence keeps all of that within an 8-core snooping domain. The paper
//! deliberately hands the ScaleOut baseline a favourable setup — requests
//! only migrate within a 32-core cluster — which is why the villages
//! technique alone buys a modest ~10% (Figure 15); this model reproduces
//! that calibration.

use um_sim::Cycles;

/// Coherence cost parameters for one machine.
///
/// The model charges an *aggregate per-compute-segment* overhead: a
/// fraction of memory accesses miss privately and require directory +
/// remote-cache service whose latency grows with the domain's network
/// distance.
///
/// # Examples
///
/// ```
/// use um_arch::coherence::CoherenceModel;
/// use um_sim::Cycles;
///
/// let village = CoherenceModel::village();
/// let global = CoherenceModel::global_1024();
/// let segment = Cycles::new(200_000); // 100us at 2GHz
/// assert!(global.overhead(segment) > village.overhead(segment));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoherenceModel {
    /// Cores per coherence domain.
    pub domain_cores: usize,
    /// Fraction of compute cycles added by coherence activity (directory
    /// lookups, remote hits, invalidations) for a request that stays on
    /// one core.
    pub base_overhead: f64,
    /// Additional fraction charged when a request resumes on a *different*
    /// core of the domain (its warm state must be fetched from the old
    /// core's caches — §4.1's migration argument).
    pub migration_overhead: f64,
}

impl CoherenceModel {
    /// uManycore village: an 8-core snooping domain; near-zero cost and
    /// cheap intra-village migration.
    pub fn village() -> Self {
        Self {
            domain_cores: 8,
            base_overhead: 0.005,
            migration_overhead: 0.01,
        }
    }

    /// Global coherence across 1024 cores, with migration restricted to a
    /// 32-core cluster (the paper's favourable ScaleOut setup): directory
    /// indirections on misses, moderate migration cost.
    pub fn global_1024() -> Self {
        Self {
            domain_cores: 1024,
            base_overhead: 0.035,
            migration_overhead: 0.05,
        }
    }

    /// Global coherence across a few tens of cores (ServerClass): smaller
    /// distances than the 1024-core case.
    pub fn global_small(cores: usize) -> Self {
        Self {
            domain_cores: cores,
            base_overhead: 0.02,
            migration_overhead: 0.03,
        }
    }

    /// Coherence cycles added to a compute segment of length `segment`,
    /// when the request resumed on the same core it last ran on.
    pub fn overhead(&self, segment: Cycles) -> Cycles {
        segment.scale(self.base_overhead)
    }

    /// Coherence cycles added when the request migrated to a different
    /// core since it last ran.
    pub fn overhead_migrated(&self, segment: Cycles) -> Cycles {
        segment.scale(self.base_overhead + self.migration_overhead)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn village_cheaper_than_global() {
        let seg = Cycles::new(100_000);
        assert!(
            CoherenceModel::village().overhead(seg) < CoherenceModel::global_1024().overhead(seg)
        );
        assert!(
            CoherenceModel::village().overhead_migrated(seg)
                < CoherenceModel::global_1024().overhead_migrated(seg)
        );
    }

    #[test]
    fn migration_costs_extra() {
        let m = CoherenceModel::global_1024();
        let seg = Cycles::new(50_000);
        assert!(m.overhead_migrated(seg) > m.overhead(seg));
    }

    #[test]
    fn village_effect_is_modest() {
        // Figure 15: villages alone reduce tail latency by ~10%. The
        // per-segment delta between global and village coherence must be
        // single-digit percent, not transformative.
        let seg = Cycles::new(1_000_000);
        let global = CoherenceModel::global_1024().overhead_migrated(seg);
        let village = CoherenceModel::village().overhead_migrated(seg);
        let delta = (global.raw() as f64 - village.raw() as f64) / seg.raw() as f64;
        assert!((0.02..0.12).contains(&delta), "coherence delta {delta}");
    }

    #[test]
    fn zero_segment_zero_overhead() {
        let m = CoherenceModel::global_1024();
        assert_eq!(m.overhead(Cycles::ZERO), Cycles::ZERO);
    }

    #[test]
    fn server_class_between_village_and_manycore_global() {
        let seg = Cycles::new(100_000);
        let v = CoherenceModel::village().overhead(seg);
        let s = CoherenceModel::global_small(40).overhead(seg);
        let g = CoherenceModel::global_1024().overhead(seg);
        assert!(v < s && s < g);
    }
}
