//! Effectiveness models of published microarchitectural optimizations
//! (paper §2.2, Figure 1).
//!
//! Figure 1 runs four open-source optimizations — the Pythia RL data
//! prefetcher \[8\], a perceptron branch predictor \[35\], the I-SPY
//! instruction prefetcher \[40\] and the Ripple I-cache replacement policy
//! \[41\] — on monolithic and microservice workloads, showing 2–19% speedups
//! for monoliths and 0–2% for microservices. The cause the paper names is
//! footprint: microservice working sets fit in the L1s, so there is almost
//! no stall time for these mechanisms to recover.
//!
//! We reproduce that mechanism directly: the bench drives synthetic
//! monolith/microservice address traces (`um_workload::trace`) through the
//! cache hierarchy, derives a stall breakdown, and each optimization model
//! here converts the breakdown into a speedup by recovering a fixed
//! fraction of the stall component it targets (coverage values from the
//! papers' own reported results).

/// CPI stall breakdown of a workload on the baseline machine, as fractions
/// of total execution cycles.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct StallBreakdown {
    /// Fraction of cycles stalled on data-cache misses.
    pub data_stall: f64,
    /// Fraction of cycles stalled on instruction-cache misses.
    pub instr_stall: f64,
    /// Fraction of cycles lost to branch mispredictions (with a baseline
    /// g-share-class predictor).
    pub branch_stall: f64,
}

impl StallBreakdown {
    /// Creates a breakdown.
    ///
    /// # Panics
    ///
    /// Panics if any fraction is outside `\[0, 1\]` or they sum past 1.
    pub fn new(data_stall: f64, instr_stall: f64, branch_stall: f64) -> Self {
        for f in [data_stall, instr_stall, branch_stall] {
            assert!((0.0..=1.0).contains(&f), "stall fraction {f} out of range");
        }
        assert!(
            data_stall + instr_stall + branch_stall <= 1.0,
            "stall fractions exceed total execution"
        );
        Self {
            data_stall,
            instr_stall,
            branch_stall,
        }
    }

    /// Total stall fraction.
    pub fn total(&self) -> f64 {
        self.data_stall + self.instr_stall + self.branch_stall
    }
}

/// The four Figure 1 optimizations.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum OptKind {
    /// Pythia-style reinforcement-learning data prefetcher.
    DPrefetcher,
    /// Perceptron branch predictor (vs a simple g-share baseline).
    BranchPredictor,
    /// I-SPY context-driven instruction prefetcher.
    IPrefetcher,
    /// Ripple profile-guided I-cache replacement.
    ICacheReplace,
}

impl OptKind {
    /// All four, in Figure 1's order.
    pub const ALL: [OptKind; 4] = [
        OptKind::DPrefetcher,
        OptKind::BranchPredictor,
        OptKind::IPrefetcher,
        OptKind::ICacheReplace,
    ];

    /// Figure 1 label.
    pub fn name(self) -> &'static str {
        match self {
            OptKind::DPrefetcher => "D-Prefetcher",
            OptKind::BranchPredictor => "Branch Predictor",
            OptKind::IPrefetcher => "I-Prefetcher",
            OptKind::ICacheReplace => "I-Cache Replace",
        }
    }

    /// Fraction of the targeted stall component the mechanism recovers
    /// (coverage x accuracy, from the respective papers' evaluations).
    fn recovery(self) -> f64 {
        match self {
            OptKind::DPrefetcher => 0.60,     // Pythia covers most L2 data misses
            OptKind::BranchPredictor => 0.55, // perceptron vs g-share
            OptKind::IPrefetcher => 0.75,     // I-SPY's high fetch coverage
            OptKind::ICacheReplace => 0.12,   // Ripple: replacement only
        }
    }

    /// Which stall component the mechanism attacks.
    fn targeted(self, stalls: &StallBreakdown) -> f64 {
        match self {
            OptKind::DPrefetcher => stalls.data_stall,
            OptKind::BranchPredictor => stalls.branch_stall,
            OptKind::IPrefetcher | OptKind::ICacheReplace => stalls.instr_stall,
        }
    }

    /// Speedup over the baseline for a workload with the given stall
    /// breakdown: removing `recovery x targeted` of all cycles.
    pub fn speedup(self, stalls: &StallBreakdown) -> f64 {
        let removed = self.recovery() * self.targeted(stalls);
        1.0 / (1.0 - removed)
    }
}

/// Reference stall breakdowns calibrated from the Figure 1 bars: monoliths
/// lose a third of their cycles to memory and branch stalls; microservices
/// barely stall at all (their footprints fit in the L1s — Figure 9).
pub mod reference {
    use super::StallBreakdown;

    /// Monolithic applications (MySQL, Cassandra, Kafka, Clang,
    /// WordPress — the workloads of \[8, 35, 40, 41\]).
    pub fn monolith() -> StallBreakdown {
        StallBreakdown::new(0.265, 0.18, 0.22)
    }

    /// Microservice applications (SocialNetwork, Router, SetAlgebra).
    pub fn microservice() -> StallBreakdown {
        StallBreakdown::new(0.033, 0.004, 0.018)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_monolith_speedups() {
        let m = reference::monolith();
        // Paper: 19%, 14%, 16%, 2% for monoliths.
        let targets = [
            (OptKind::DPrefetcher, 1.19),
            (OptKind::BranchPredictor, 1.14),
            (OptKind::IPrefetcher, 1.16),
            (OptKind::ICacheReplace, 1.02),
        ];
        for (opt, target) in targets {
            let s = opt.speedup(&m);
            assert!(
                (s - target).abs() < 0.025,
                "{}: model {s:.3} vs paper {target}",
                opt.name()
            );
        }
    }

    #[test]
    fn figure1_microservice_speedups() {
        let u = reference::microservice();
        // Paper: 2%, 1%, ~0%, ~0% for microservices.
        let targets = [
            (OptKind::DPrefetcher, 1.02),
            (OptKind::BranchPredictor, 1.01),
            (OptKind::IPrefetcher, 1.00),
            (OptKind::ICacheReplace, 1.00),
        ];
        for (opt, target) in targets {
            let s = opt.speedup(&u);
            assert!(
                (s - target).abs() < 0.012,
                "{}: model {s:.3} vs paper {target}",
                opt.name()
            );
        }
    }

    #[test]
    fn speedup_monotone_in_stall() {
        for opt in OptKind::ALL {
            let lo = opt.speedup(&StallBreakdown::new(0.01, 0.01, 0.01));
            let hi = opt.speedup(&StallBreakdown::new(0.3, 0.3, 0.3));
            assert!(hi > lo, "{}", opt.name());
        }
    }

    #[test]
    fn no_stall_no_speedup() {
        let zero = StallBreakdown::new(0.0, 0.0, 0.0);
        for opt in OptKind::ALL {
            assert_eq!(opt.speedup(&zero), 1.0);
        }
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn oversubscribed_stalls_rejected() {
        StallBreakdown::new(0.5, 0.4, 0.3);
    }

    #[test]
    fn total_sums() {
        let s = StallBreakdown::new(0.1, 0.2, 0.3);
        assert!((s.total() - 0.6).abs() < 1e-12);
    }
}
