//! First-order core timing model (Table 2).
//!
//! The paper's two core types are an ARM A15-class 4-issue, 64-entry-ROB
//! core at 2 GHz (uManycore, ScaleOut) and an IceLake-class 6-issue,
//! 352-entry-ROB core at 3 GHz (ServerClass). We model relative
//! single-thread performance with the classic first-order scaling laws:
//! sustainable IPC grows roughly with the square root of issue width
//! (dependency-limited), and with a weak power of window (ROB) size
//! (memory-level parallelism).

use um_sim::{Cycles, Frequency};

/// An out-of-order core's microarchitectural parameters.
///
/// # Examples
///
/// ```
/// use um_arch::CoreModel;
///
/// let small = CoreModel::manycore();      // A15-class
/// let big = CoreModel::server_class();    // IceLake-class
/// let speedup = big.speedup_over(&small);
/// assert!(speedup > 1.5 && speedup < 3.5, "speedup {speedup}");
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CoreModel {
    /// Instructions issued per cycle.
    pub issue_width: u32,
    /// Reorder-buffer entries.
    pub rob_entries: u32,
    /// Load/store-queue entries.
    pub lsq_entries: u32,
    /// Core clock.
    pub frequency: Frequency,
}

impl CoreModel {
    /// The uManycore / ScaleOut core (Table 2): 4-issue, 64-entry ROB and
    /// LSQ, 2 GHz — "simple, energy-efficient cores similar to ARM A15".
    pub fn manycore() -> Self {
        Self {
            issue_width: 4,
            rob_entries: 64,
            lsq_entries: 64,
            frequency: Frequency::ghz(2.0),
        }
    }

    /// The ServerClass core (Table 2): 6-issue, 352-entry ROB, 256-entry
    /// LSQ, 3 GHz — "similar to Intel's IceLake".
    pub fn server_class() -> Self {
        Self {
            issue_width: 6,
            rob_entries: 352,
            lsq_entries: 256,
            frequency: Frequency::ghz(3.0),
        }
    }

    /// Relative sustainable IPC versus a reference core, from first-order
    /// scaling: `sqrt(issue ratio) * (rob ratio)^0.15`.
    pub fn ipc_ratio_over(&self, reference: &CoreModel) -> f64 {
        let issue = (self.issue_width as f64 / reference.issue_width as f64).sqrt();
        let window = (self.rob_entries as f64 / reference.rob_entries as f64).powf(0.15);
        issue * window
    }

    /// Single-thread speedup over a reference core (IPC ratio x frequency
    /// ratio).
    pub fn speedup_over(&self, reference: &CoreModel) -> f64 {
        self.ipc_ratio_over(reference) * (self.frequency.as_ghz() / reference.frequency.as_ghz())
    }

    /// Converts a compute duration expressed in *reference-core
    /// microseconds* (the workload crate's unit: the 2 GHz manycore core)
    /// into cycles on this core.
    pub fn compute_cycles(&self, reference_us: f64) -> Cycles {
        let us_here = reference_us / self.speedup_over(&CoreModel::manycore());
        Cycles::from_micros(us_here, self.frequency)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn server_core_roughly_2x_manycore() {
        // McPAT-class models put IceLake-class vs A15-class single-thread
        // at about 2-2.5x; our first-order law should land there.
        let s = CoreModel::server_class().speedup_over(&CoreModel::manycore());
        assert!((2.0..2.8).contains(&s), "speedup {s}");
    }

    #[test]
    fn self_speedup_is_one() {
        let c = CoreModel::manycore();
        assert!((c.speedup_over(&c) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn speedup_is_reciprocal() {
        let a = CoreModel::manycore();
        let b = CoreModel::server_class();
        let ab = a.speedup_over(&b);
        let ba = b.speedup_over(&a);
        assert!((ab * ba - 1.0).abs() < 1e-12);
    }

    #[test]
    fn compute_cycles_on_reference_core() {
        // 100us on the 2GHz reference core = 200K cycles.
        let c = CoreModel::manycore();
        assert_eq!(c.compute_cycles(100.0), Cycles::new(200_000));
    }

    #[test]
    fn compute_cycles_on_server_core_fewer_wallclock_micros() {
        let s = CoreModel::server_class();
        let cycles = s.compute_cycles(100.0);
        let us = cycles.as_micros(s.frequency);
        // The faster core finishes the same work in less wall time.
        assert!(us < 100.0, "server-class took {us}us");
        assert!(us > 30.0, "implausibly fast: {us}us");
    }

    #[test]
    fn wider_issue_helps_sublinearly() {
        let narrow = CoreModel::manycore();
        let mut wide = narrow;
        wide.issue_width = 16;
        let ratio = wide.ipc_ratio_over(&narrow);
        assert!(ratio > 1.0 && ratio < 4.0, "4x issue gave {ratio}x IPC");
    }
}
