//! Machine architecture models for the uManycore reproduction (paper §4, §5).
//!
//! This crate assembles the substrates into *machines* — the three systems
//! Table 2 parameterizes — and supplies the architecture-level models the
//! evaluation needs:
//!
//! - [`CoreModel`]: first-order out-of-order core timing (issue width, ROB,
//!   frequency → relative single-thread performance).
//! - [`MachineConfig`]: full descriptions of ServerClass (40/128 cores),
//!   ScaleOut (1024 cores) and uManycore (1024 cores in villages/clusters),
//!   including the Figure 19 topology-shape sweep.
//! - [`coherence`]: cache-coherence overhead as a function of domain size —
//!   the villages argument of §4.1.
//! - [`power`]: the analytic area/power model substituting CACTI + McPAT,
//!   calibrated to the paper's published absolute numbers (§5, §6.8).
//! - [`uarch_opt`]: effectiveness models of the four published
//!   microarchitectural optimizations behind Figure 1.
//! - [`ServiceMap`]: the top-level NIC's service-to-village dispatch table
//!   with round-robin forwarding (§4.2).
//!
//! # Examples
//!
//! ```
//! use um_arch::MachineConfig;
//!
//! let um = MachineConfig::umanycore();
//! let sc = MachineConfig::server_class_iso_power();
//! assert_eq!(um.total_cores(), 1024);
//! assert_eq!(sc.total_cores(), 40);
//! // Both burn roughly the same power (that is what iso-power means).
//! let ratio = um.power_watts() / sc.power_watts();
//! assert!((0.8..1.25).contains(&ratio));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coherence;
pub mod config;
pub mod core_model;
pub mod power;
pub mod servicemap;
pub mod uarch_opt;

pub use config::{MachineConfig, MachineKind, TopologyShape};
pub use core_model::CoreModel;
pub use servicemap::ServiceMap;
