//! Machine configurations (Table 2, §5, §6.6).

use crate::core_model::CoreModel;
use crate::power;
use um_mem::hierarchy::HierarchyConfig;
use um_sched::CtxSwitchModel;
use um_sim::Cycles;

/// Which of the paper's three machines a configuration describes.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum MachineKind {
    /// Conventional server-class multicore (IceLake-like).
    ServerClass,
    /// 1024-core manycore with global coherence and software scheduling.
    ScaleOut,
    /// The paper's proposal.
    UManycore,
}

/// Which on-package ICN the machine uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum IcnKind {
    /// 2D mesh (ServerClass).
    Mesh,
    /// Fat tree (ScaleOut).
    FatTree,
    /// Hierarchical leaf-spine (uManycore).
    LeafSpine,
}

/// Extent of hardware cache coherence.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CoherenceDomain {
    /// One coherence domain across the whole package.
    Global,
    /// Coherence only within a village (uManycore).
    Village,
}

/// Core/village/cluster shape — the §6.6 sensitivity axis.
///
/// # Examples
///
/// ```
/// use um_arch::TopologyShape;
///
/// let shape = TopologyShape::new(8, 4, 32); // the default uManycore
/// assert_eq!(shape.total_cores(), 1024);
/// assert_eq!(shape.total_villages(), 128);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TopologyShape {
    /// Cores per village (one hardware coherence domain).
    pub cores_per_village: usize,
    /// Villages per cluster (sharing a memory pool and network hub).
    pub villages_per_cluster: usize,
    /// Clusters in the package (= ICN endpoints).
    pub clusters: usize,
}

impl TopologyShape {
    /// Creates a shape.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero.
    pub const fn new(
        cores_per_village: usize,
        villages_per_cluster: usize,
        clusters: usize,
    ) -> Self {
        assert!(cores_per_village > 0, "cores per village must be nonzero");
        assert!(
            villages_per_cluster > 0,
            "villages per cluster must be nonzero"
        );
        assert!(clusters > 0, "clusters must be nonzero");
        Self {
            cores_per_village,
            villages_per_cluster,
            clusters,
        }
    }

    /// Total cores in the package.
    pub const fn total_cores(&self) -> usize {
        self.cores_per_village * self.villages_per_cluster * self.clusters
    }

    /// Total villages in the package.
    pub const fn total_villages(&self) -> usize {
        self.villages_per_cluster * self.clusters
    }

    /// The Figure 19 sensitivity sweep: (cores/village x villages/cluster
    /// x clusters), all 1024 cores total.
    pub const FIG19_SWEEP: [TopologyShape; 4] = [
        TopologyShape::new(8, 4, 32),
        TopologyShape::new(32, 1, 32),
        TopologyShape::new(32, 2, 16),
        TopologyShape::new(32, 4, 8),
    ];

    /// Render as the paper's `8 x 4 x 32` label.
    pub fn label(&self) -> String {
        format!(
            "{}x{}x{}",
            self.cores_per_village, self.villages_per_cluster, self.clusters
        )
    }
}

/// Core heterogeneity across villages (paper §8's future-work proposal:
/// "some villages might have bigger cores ... tailoring the hardware to
/// the needs of the service instances").
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VillageCores {
    /// Every village runs the machine's base core (the paper's default).
    Homogeneous,
    /// The first `big_villages` villages run `big_core`; services with the
    /// heaviest handlers are steered to them.
    Heterogeneous {
        /// Number of big-core villages.
        big_villages: usize,
        /// The big core's microarchitecture.
        big_core: CoreModel,
    },
}

/// A complete machine description consumed by the system simulator.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    /// Which paper machine this is.
    pub kind: MachineKind,
    /// Report label, e.g. `uManycore`.
    pub name: &'static str,
    /// Core microarchitecture.
    pub core: CoreModel,
    /// Cores/villages/clusters layout.
    pub shape: TopologyShape,
    /// Cache/TLB hierarchy.
    pub hierarchy: HierarchyConfig,
    /// On-package interconnect.
    pub icn: IcnKind,
    /// Context-switch mechanism.
    pub ctx_switch: CtxSwitchModel,
    /// Whether request enqueue/dequeue/scheduling happen in hardware
    /// (§4.3) or in software.
    pub hw_scheduling: bool,
    /// Per-scheduling-operation cost (enqueue or dequeue).
    pub sched_op_cost: Cycles,
    /// Hardware Request Queue entries per village.
    pub rq_capacity: usize,
    /// Coherence domain extent.
    pub coherence: CoherenceDomain,
    /// Whether clusters carry a snapshot memory pool (§4.1).
    pub memory_pool: bool,
    /// Village core heterogeneity (§8 extension).
    pub village_cores: VillageCores,
}

/// Hardware scheduling operations take ~a cache access (§4.3: an atomic RQ
/// access).
const HW_SCHED_OP: Cycles = Cycles::new(8);
/// Software scheduling operations: optimized queue manipulation plus
/// NIC-to-core hand-off, per \[32, 77\]-style optimizations in the baselines.
const SW_SCHED_OP: Cycles = Cycles::new(250);

impl MachineConfig {
    /// The default 1024-core uManycore (§5): 8-core villages, 4 villages
    /// per cluster, 32 clusters, leaf-spine ICN, hardware scheduling and
    /// hardware context switching.
    pub fn umanycore() -> Self {
        Self::umanycore_shaped(TopologyShape::new(8, 4, 32))
    }

    /// A uManycore with a different village/cluster shape (Figure 19).
    pub fn umanycore_shaped(shape: TopologyShape) -> Self {
        Self {
            kind: MachineKind::UManycore,
            name: "uManycore",
            core: CoreModel::manycore(),
            shape,
            hierarchy: HierarchyConfig::manycore(),
            icn: IcnKind::LeafSpine,
            ctx_switch: CtxSwitchModel::Hardware,
            hw_scheduling: true,
            sched_op_cost: HW_SCHED_OP,
            rq_capacity: 64,
            coherence: CoherenceDomain::Village,
            memory_pool: true,
            village_cores: VillageCores::Homogeneous,
        }
    }

    /// The ScaleOut baseline (§5): same cores and caches as uManycore, but
    /// global coherence, a fat-tree ICN, software scheduling with one queue
    /// per 32-core cluster, and software context switching.
    pub fn scaleout() -> Self {
        Self {
            kind: MachineKind::ScaleOut,
            name: "ScaleOut",
            core: CoreModel::manycore(),
            shape: TopologyShape::new(32, 1, 32),
            hierarchy: HierarchyConfig::manycore(),
            icn: IcnKind::FatTree,
            ctx_switch: CtxSwitchModel::Shinjuku,
            hw_scheduling: false,
            sched_op_cost: SW_SCHED_OP,
            rq_capacity: 64,
            coherence: CoherenceDomain::Global,
            memory_pool: false,
            village_cores: VillageCores::Homogeneous,
        }
    }

    /// The iso-power ServerClass baseline: 40 IceLake-class cores — "like
    /// a current high-end IceLake" (§5).
    pub fn server_class_iso_power() -> Self {
        Self::server_class(40)
    }

    /// The iso-area ServerClass baseline: 128 cores, an "unrealistically
    /// power-hungry multicore" (§5, §6.8).
    pub fn server_class_iso_area() -> Self {
        Self::server_class(128)
    }

    /// A ServerClass machine with an arbitrary core count.
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn server_class(cores: usize) -> Self {
        assert!(cores > 0, "need at least one core");
        // Group cores into 8-core mesh nodes (last node may be partial in
        // odd sizes; the paper's sizes divide evenly).
        let nodes = cores.div_ceil(8);
        Self {
            kind: MachineKind::ServerClass,
            name: "ServerClass",
            core: CoreModel::server_class(),
            shape: TopologyShape::new(cores.div_ceil(nodes), 1, nodes),
            hierarchy: HierarchyConfig::server_class(),
            icn: IcnKind::Mesh,
            ctx_switch: CtxSwitchModel::Shinjuku,
            hw_scheduling: false,
            sched_op_cost: SW_SCHED_OP,
            rq_capacity: 64,
            coherence: CoherenceDomain::Global,
            memory_pool: false,
            village_cores: VillageCores::Homogeneous,
        }
    }

    /// A uManycore where `big_villages` of the villages carry IceLake-class
    /// cores clocked at the package frequency — the §8 heterogeneous
    /// proposal. Heavy services are steered to the big villages by the
    /// system software (modelled in the simulator's ServiceMap setup).
    ///
    /// # Panics
    ///
    /// Panics if `big_villages` exceeds the village count.
    pub fn umanycore_heterogeneous(big_villages: usize) -> Self {
        let mut m = Self::umanycore();
        assert!(
            big_villages <= m.shape.total_villages(),
            "{big_villages} big villages > {} total",
            m.shape.total_villages()
        );
        let mut big_core = CoreModel::server_class();
        // Same clock domain as the package; the win is the wider pipeline.
        big_core.frequency = m.core.frequency;
        m.village_cores = VillageCores::Heterogeneous {
            big_villages,
            big_core,
        };
        m.name = "uManycore-hetero";
        m
    }

    /// Total cores in the package.
    pub fn total_cores(&self) -> usize {
        self.shape.total_cores()
    }

    /// Package power from the analytic model, in watts.
    pub fn power_watts(&self) -> f64 {
        power::package_power_watts(self)
    }

    /// Package area from the analytic model, in square millimetres.
    pub fn area_mm2(&self) -> f64 {
        power::package_area_mm2(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn umanycore_matches_section5() {
        let m = MachineConfig::umanycore();
        assert_eq!(m.total_cores(), 1024);
        assert_eq!(m.shape.total_villages(), 128);
        assert_eq!(m.shape.clusters, 32);
        assert_eq!(m.rq_capacity, 64);
        assert!(m.hw_scheduling);
        assert_eq!(m.coherence, CoherenceDomain::Village);
        assert_eq!(m.icn, IcnKind::LeafSpine);
    }

    #[test]
    fn scaleout_matches_section5() {
        let m = MachineConfig::scaleout();
        assert_eq!(m.total_cores(), 1024);
        assert_eq!(m.shape.clusters, 32);
        assert_eq!(m.shape.cores_per_village, 32); // one queue per cluster
        assert!(!m.hw_scheduling);
        assert_eq!(m.coherence, CoherenceDomain::Global);
        assert_eq!(m.icn, IcnKind::FatTree);
    }

    #[test]
    fn server_class_sizes() {
        assert_eq!(MachineConfig::server_class_iso_power().total_cores(), 40);
        assert_eq!(MachineConfig::server_class_iso_area().total_cores(), 128);
    }

    #[test]
    fn fig19_sweep_is_all_1024_cores() {
        for shape in TopologyShape::FIG19_SWEEP {
            assert_eq!(shape.total_cores(), 1024, "{}", shape.label());
        }
    }

    #[test]
    fn shape_labels() {
        assert_eq!(TopologyShape::new(8, 4, 32).label(), "8x4x32");
    }

    #[test]
    fn sched_op_costs_differ() {
        let um = MachineConfig::umanycore();
        let so = MachineConfig::scaleout();
        assert!(um.sched_op_cost < so.sched_op_cost);
    }

    #[test]
    fn manycore_cores_match_table2() {
        let m = MachineConfig::umanycore();
        assert_eq!(m.core.issue_width, 4);
        assert_eq!(m.core.rob_entries, 64);
        let s = MachineConfig::server_class_iso_power();
        assert_eq!(s.core.issue_width, 6);
        assert_eq!(s.core.rob_entries, 352);
    }
}
