//! Analytic area and power model (substituting CACTI \[5\] + McPAT \[46\]).
//!
//! The paper sizes its baselines with CACTI/McPAT at 32 nm scaled to 10 nm
//! \[76\], reporting these anchors (§5, §6.8):
//!
//! - combined per-core power (core + its cache share): **10.225 W**
//!   ServerClass, **0.396 W** ScaleOut, **0.408 W** uManycore;
//! - package area: **547.2 mm²** uManycore vs **176.1 mm²** for the
//!   40-core ServerClass (3.1x), with uManycore 2.9% larger than ScaleOut;
//! - the 128-core iso-area ServerClass burns **3.2x** the power of
//!   uManycore.
//!
//! We fit first-order scaling laws to those anchors: dynamic+static core
//! power grows with `issue^2.5 * (rob/64)^0.6 * (f/2GHz)^3` (the cubic
//! frequency term folds in the voltage scaling high-frequency designs
//! require), core area with `issue^2 * (rob/64)^0.6`, and cache power/area
//! linearly with capacity. uManycore pays small adders for its Request
//! Queues, context memories and per-cluster snapshot pools. The tests pin
//! every published anchor to within a few percent.

use crate::config::{MachineConfig, MachineKind};
use crate::core_model::CoreModel;

/// Fitted core power coefficient (watts at 4-issue/64-ROB/2 GHz = 32 units).
const POWER_COEFF_W: f64 = 0.010_91;
/// Cache power density, watts per MB (leakage + activity at 10 nm).
const CACHE_W_PER_MB: f64 = 0.30;
/// Fitted core area coefficient (mm² per issue² unit).
const AREA_COEFF_MM2: f64 = 0.029;
/// SRAM area density, mm² per MB at 10 nm.
const CACHE_MM2_PER_MB: f64 = 0.35;
/// Per-village uManycore adders: Request Queue + Request Context Memory +
/// Work-flag logic.
const VILLAGE_EXTRA_W: f64 = 0.05;
const VILLAGE_EXTRA_MM2: f64 = 0.06;
/// Per-cluster uManycore adders: snapshot memory pool + bulk-transfer
/// engines.
const CLUSTER_EXTRA_W: f64 = 0.18;
const CLUSTER_EXTRA_MM2: f64 = 0.24;

/// Power of one core (without caches), in watts.
pub fn core_power_watts(core: &CoreModel) -> f64 {
    let issue = (core.issue_width as f64).powf(2.5);
    let window = (core.rob_entries as f64 / 64.0).powf(0.6);
    let freq = (core.frequency.as_ghz() / 2.0).powi(3);
    POWER_COEFF_W * issue * window * freq
}

/// Area of one core (without caches), in mm².
pub fn core_area_mm2(core: &CoreModel) -> f64 {
    let issue = (core.issue_width as f64).powi(2);
    let window = (core.rob_entries as f64 / 64.0).powf(0.6);
    AREA_COEFF_MM2 * issue * window
}

/// Cache capacity charged to one core, in MB.
///
/// ServerClass: private L1s + private L2 + its 2 MB L3 slice. Manycore
/// machines: private L1s + 1/8 of the village-shared L2 (§5: "L2 caches
/// shared by 8 cores").
pub fn cache_mb_per_core(config: &MachineConfig) -> f64 {
    let h = &config.hierarchy;
    let l1 = (h.l1i.size_bytes() + h.l1d.size_bytes()) as f64;
    let bytes = match config.kind {
        MachineKind::ServerClass => {
            l1 + h.l2.size_bytes() as f64 + h.l3.map(|c| c.size_bytes() as f64).unwrap_or(0.0)
        }
        MachineKind::ScaleOut | MachineKind::UManycore => l1 + h.l2.size_bytes() as f64 / 8.0,
    };
    bytes / (1024.0 * 1024.0)
}

/// Combined power of one core plus its cache share — the paper's per-core
/// figure (10.225 / 0.396 / 0.408 W).
pub fn per_core_power_watts(config: &MachineConfig) -> f64 {
    let base = core_power_watts(&config.core) + cache_mb_per_core(config) * CACHE_W_PER_MB;
    base + extras_watts(config) / config.total_cores() as f64
}

fn extras_watts(config: &MachineConfig) -> f64 {
    if config.kind != MachineKind::UManycore {
        return 0.0;
    }
    config.shape.total_villages() as f64 * VILLAGE_EXTRA_W
        + config.shape.clusters as f64 * CLUSTER_EXTRA_W
}

fn extras_mm2(config: &MachineConfig) -> f64 {
    if config.kind != MachineKind::UManycore {
        return 0.0;
    }
    config.shape.total_villages() as f64 * VILLAGE_EXTRA_MM2
        + config.shape.clusters as f64 * CLUSTER_EXTRA_MM2
}

/// Number of cores running a big core in a heterogeneous configuration.
fn big_cores(config: &MachineConfig) -> (usize, Option<crate::CoreModel>) {
    match config.village_cores {
        crate::config::VillageCores::Heterogeneous {
            big_villages,
            big_core,
        } => (
            big_villages * config.shape.cores_per_village,
            Some(big_core),
        ),
        crate::config::VillageCores::Homogeneous => (0, None),
    }
}

/// Total package power in watts.
pub fn package_power_watts(config: &MachineConfig) -> f64 {
    let cache_w = cache_mb_per_core(config) * CACHE_W_PER_MB;
    let base = core_power_watts(&config.core) + cache_w;
    let (n_big, big) = big_cores(config);
    let small_total = base * (config.total_cores() - n_big) as f64;
    let big_total = big
        .map(|c| (core_power_watts(&c) + cache_w) * n_big as f64)
        .unwrap_or(0.0);
    small_total + big_total + extras_watts(config)
}

/// Total package area in mm².
pub fn package_area_mm2(config: &MachineConfig) -> f64 {
    let cache_a = cache_mb_per_core(config) * CACHE_MM2_PER_MB;
    let base = core_area_mm2(&config.core) + cache_a;
    let (n_big, big) = big_cores(config);
    let small_total = base * (config.total_cores() - n_big) as f64;
    let big_total = big
        .map(|c| (core_area_mm2(&c) + cache_a) * n_big as f64)
        .unwrap_or(0.0);
    small_total + big_total + extras_mm2(config)
}

/// ServerClass core count with the same power budget as `reference`
/// (rounded down to a whole 8-core mesh node).
pub fn iso_power_server_cores(reference: &MachineConfig) -> usize {
    let budget = package_power_watts(reference);
    let probe = MachineConfig::server_class(8);
    let per_core = package_power_watts(&probe) / 8.0;
    let cores = (budget / per_core) as usize;
    (cores / 8).max(1) * 8
}

/// ServerClass core count with the same die area as `reference` (rounded
/// to the nearest whole 8-core mesh node).
pub fn iso_area_server_cores(reference: &MachineConfig) -> usize {
    let budget = package_area_mm2(reference);
    let probe = MachineConfig::server_class(8);
    let per_core = package_area_mm2(&probe) / 8.0;
    let cores = (budget / per_core).round() as usize;
    (cores as f64 / 8.0).round().max(1.0) as usize * 8
}

#[cfg(test)]
mod tests {
    use super::*;

    fn within(actual: f64, target: f64, tol: f64) -> bool {
        (actual - target).abs() / target < tol
    }

    #[test]
    fn per_core_power_anchors() {
        // Paper §5: 10.225 W ServerClass, 0.396 W ScaleOut, 0.408 W
        // uManycore.
        let sc = per_core_power_watts(&MachineConfig::server_class_iso_power());
        let so = per_core_power_watts(&MachineConfig::scaleout());
        let um = per_core_power_watts(&MachineConfig::umanycore());
        assert!(within(sc, 10.225, 0.05), "ServerClass per-core {sc} W");
        assert!(within(so, 0.396, 0.05), "ScaleOut per-core {so} W");
        assert!(within(um, 0.408, 0.05), "uManycore per-core {um} W");
    }

    #[test]
    fn area_anchors() {
        // Paper §6.8: 547.2 mm2 uManycore vs 176.1 mm2 for 40-core
        // ServerClass (3.1x), and uManycore 2.9% larger than ScaleOut.
        let um = package_area_mm2(&MachineConfig::umanycore());
        let sc40 = package_area_mm2(&MachineConfig::server_class_iso_power());
        let so = package_area_mm2(&MachineConfig::scaleout());
        assert!(within(um, 547.2, 0.05), "uManycore area {um}");
        assert!(within(sc40, 176.1, 0.05), "ServerClass-40 area {sc40}");
        assert!(within(um / sc40, 3.1, 0.06), "area ratio {}", um / sc40);
        let overhead = um / so - 1.0;
        assert!(
            (0.015..0.045).contains(&overhead),
            "village/pool area overhead {overhead}, paper 2.9%"
        );
    }

    #[test]
    fn iso_power_gives_40_cores() {
        let um = MachineConfig::umanycore();
        assert_eq!(iso_power_server_cores(&um), 40);
    }

    #[test]
    fn iso_area_gives_128_cores() {
        let um = MachineConfig::umanycore();
        assert_eq!(iso_area_server_cores(&um), 128);
    }

    #[test]
    fn iso_area_server_is_3_2x_power() {
        // §6.8: the 128-core ServerClass uses 3.2x the power of uManycore.
        let um = package_power_watts(&MachineConfig::umanycore());
        let sc128 = package_power_watts(&MachineConfig::server_class_iso_area());
        let ratio = sc128 / um;
        assert!(within(ratio, 3.2, 0.06), "power ratio {ratio}");
    }

    #[test]
    fn umanycore_extras_are_small() {
        // The RQ/pool adders are ~3% of package power, not a dominant term.
        let um = MachineConfig::umanycore();
        let frac = (per_core_power_watts(&um) - per_core_power_watts(&MachineConfig::scaleout()))
            / per_core_power_watts(&um);
        assert!((0.0..0.10).contains(&frac), "extras fraction {frac}");
    }

    #[test]
    fn heterogeneous_villages_cost_power_and_area() {
        let homo = MachineConfig::umanycore();
        let hetero = MachineConfig::umanycore_heterogeneous(16);
        assert!(hetero.power_watts() > homo.power_watts());
        assert!(hetero.area_mm2() > homo.area_mm2());
        // 16 of 128 villages with ~7x-power cores (at 2 GHz) should cost
        // well under a 2x package-power increase.
        assert!(hetero.power_watts() < 2.0 * homo.power_watts());
    }

    #[test]
    fn cache_share_per_core() {
        assert!(
            within(
                cache_mb_per_core(&MachineConfig::server_class_iso_power()),
                4.125,
                0.01
            ),
            "ServerClass cache/core"
        );
        assert!(
            within(
                cache_mb_per_core(&MachineConfig::umanycore()),
                0.15625,
                0.01
            ),
            "uManycore cache/core"
        );
    }
}
