//! Plain-text table rendering for the figure/table harnesses.
//!
//! Every `um-bench` binary prints its figure as rows of aligned columns, so
//! the output can be compared side by side with the paper's plots.

use std::fmt::Write as _;

/// A simple column-aligned text table.
///
/// # Examples
///
/// ```
/// use um_stats::table::Table;
///
/// let mut t = Table::new(vec!["app".into(), "tail (ms)".into()]);
/// t.row(vec!["Text".into(), "4.1".into()]);
/// t.row(vec!["SGraph".into(), "3.8".into()]);
/// let s = t.render();
/// assert!(s.contains("Text"));
/// assert!(s.lines().count() >= 4); // header + rule + 2 rows
/// ```
#[derive(Clone, Debug)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    ///
    /// # Panics
    ///
    /// Panics if `header` is empty.
    pub fn new(header: Vec<String>) -> Self {
        assert!(!header.is_empty(), "a table needs at least one column");
        Self {
            header,
            rows: Vec::new(),
        }
    }

    /// Convenience constructor from string slices.
    pub fn with_columns(cols: &[&str]) -> Self {
        Self::new(cols.iter().map(|c| c.to_string()).collect())
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(
            cells.len(),
            self.header.len(),
            "row width {} != header width {}",
            cells.len(),
            self.header.len()
        );
        self.rows.push(cells);
        self
    }

    /// Appends a row of display-formatted cells.
    pub fn row_display<T: std::fmt::Display>(&mut self, cells: &[T]) -> &mut Self {
        self.row(cells.iter().map(|c| c.to_string()).collect())
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table with a header rule, columns padded to fit.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let write_row = |out: &mut String, cells: &[String]| {
            for (i, cell) in cells.iter().enumerate() {
                if i > 0 {
                    out.push_str("  ");
                }
                let _ = write!(out, "{:<width$}", cell, width = widths[i]);
            }
            // Trim trailing padding for clean diffs.
            while out.ends_with(' ') {
                out.pop();
            }
            out.push('\n');
        };
        write_row(&mut out, &self.header);
        let rule: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(rule));
        out.push('\n');
        for row in &self.rows {
            write_row(&mut out, row);
        }
        out
    }
}

/// Formats a float with 1 decimal (the paper's figure annotation style).
pub fn f1(v: f64) -> String {
    format!("{v:.1}")
}

/// Formats a float with 2 decimals.
pub fn f2(v: f64) -> String {
    format!("{v:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(v: f64) -> String {
    format!("{v:.3}")
}

/// Formats a normalized value as a multiplier, e.g. `10.4x`.
pub fn times(v: f64) -> String {
    format!("{v:.1}x")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned_columns() {
        let mut t = Table::with_columns(&["a", "bbbb"]);
        t.row(vec!["xxxx".into(), "y".into()]);
        let s = t.render();
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a"));
        assert!(lines[1].chars().all(|c| c == '-'));
        assert!(lines[2].starts_with("xxxx"));
    }

    #[test]
    fn no_trailing_whitespace() {
        let mut t = Table::with_columns(&["col", "c"]);
        t.row(vec!["a".into(), "b".into()]);
        for line in t.render().lines() {
            assert_eq!(line, line.trim_end());
        }
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::with_columns(&["one"]);
        t.row(vec!["a".into(), "b".into()]);
    }

    #[test]
    #[should_panic(expected = "at least one column")]
    fn empty_header_rejected() {
        let _ = Table::new(vec![]);
    }

    #[test]
    fn row_display_formats() {
        let mut t = Table::with_columns(&["x", "y"]);
        t.row_display(&[1.5, 2.5]);
        assert!(t.render().contains("1.5"));
    }

    #[test]
    fn formatters() {
        assert_eq!(f1(1.26), "1.3");
        assert_eq!(f2(1.256), "1.26");
        assert_eq!(f3(1.2345), "1.234");
        assert_eq!(times(10.44), "10.4x");
    }
}
