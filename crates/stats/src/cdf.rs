//! Empirical cumulative distribution functions.

use std::fmt;

/// An empirical CDF built from a finite set of samples.
///
/// Used to reproduce the paper's distribution figures: Figure 2 (requests per
/// second per server), Figure 4 (CPU utilization per request) and Figure 5
/// (RPC invocations per request). Supports forward evaluation `F(x)` and
/// inverse lookup (quantiles), plus rendering as `(x, F(x))` rows.
///
/// # Examples
///
/// ```
/// use um_stats::Cdf;
///
/// let cdf = Cdf::from_samples([1.0, 2.0, 3.0, 4.0]);
/// assert_eq!(cdf.eval(0.5), 0.0);
/// assert_eq!(cdf.eval(2.0), 0.5);
/// assert_eq!(cdf.eval(10.0), 1.0);
/// assert_eq!(cdf.inverse(0.5), 2.0);
/// ```
#[derive(Clone, Debug)]
pub struct Cdf {
    sorted: Vec<f64>,
}

impl Cdf {
    /// Builds an empirical CDF from samples.
    ///
    /// # Panics
    ///
    /// Panics if any sample is NaN or the input is empty.
    pub fn from_samples<I: IntoIterator<Item = f64>>(samples: I) -> Self {
        let mut sorted: Vec<f64> = samples.into_iter().collect();
        assert!(!sorted.is_empty(), "cannot build a CDF from zero samples");
        assert!(
            sorted.iter().all(|v| !v.is_nan()),
            "NaN sample in CDF input"
        );
        sorted.sort_by(f64::total_cmp);
        Self { sorted }
    }

    /// Evaluates `F(x)`: the fraction of samples ≤ `x`.
    pub fn eval(&self, x: f64) -> f64 {
        // partition_point: first index with sorted[i] > x.
        let idx = self.sorted.partition_point(|&v| v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// Inverse CDF (quantile function) by nearest rank.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `\[0, 1\]`.
    pub fn inverse(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if q <= 0.0 {
            return self.sorted[0];
        }
        let rank = (q * self.sorted.len() as f64).ceil() as usize;
        self.sorted[rank.clamp(1, self.sorted.len()) - 1]
    }

    /// Number of underlying samples.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Always false: construction rejects empty inputs.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Median of the distribution.
    pub fn median(&self) -> f64 {
        self.inverse(0.5)
    }

    /// Produces `points` evenly spaced `(x, F(x))` rows spanning the sample
    /// range, for printing a figure's CDF curve.
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn curve(&self, points: usize) -> Vec<(f64, f64)> {
        assert!(points >= 2, "need at least two points for a curve");
        let lo = self.sorted[0];
        let hi = *self.sorted.last().expect("nonempty");
        (0..points)
            .map(|i| {
                let x = lo + (hi - lo) * i as f64 / (points - 1) as f64;
                (x, self.eval(x))
            })
            .collect()
    }
}

impl fmt::Display for Cdf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Cdf(n={}, p50={:.3}, p99={:.3})",
            self.len(),
            self.inverse(0.5),
            self.inverse(0.99)
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eval_below_above_range() {
        let cdf = Cdf::from_samples([10.0, 20.0]);
        assert_eq!(cdf.eval(5.0), 0.0);
        assert_eq!(cdf.eval(10.0), 0.5);
        assert_eq!(cdf.eval(15.0), 0.5);
        assert_eq!(cdf.eval(25.0), 1.0);
    }

    #[test]
    fn inverse_round_trips_ranks() {
        let cdf = Cdf::from_samples((1..=100).map(f64::from));
        assert_eq!(cdf.inverse(0.01), 1.0);
        assert_eq!(cdf.inverse(0.50), 50.0);
        assert_eq!(cdf.inverse(1.0), 100.0);
    }

    #[test]
    fn eval_is_monotone() {
        let cdf = Cdf::from_samples([3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]);
        let mut last = 0.0;
        for i in 0..100 {
            let x = i as f64 / 10.0;
            let y = cdf.eval(x);
            assert!(y >= last);
            last = y;
        }
    }

    #[test]
    fn curve_spans_range_and_ends_at_one() {
        let cdf = Cdf::from_samples((1..=50).map(f64::from));
        let curve = cdf.curve(11);
        assert_eq!(curve.len(), 11);
        assert_eq!(curve[0].0, 1.0);
        assert_eq!(curve[10].0, 50.0);
        assert_eq!(curve[10].1, 1.0);
    }

    #[test]
    fn duplicates_handled() {
        let cdf = Cdf::from_samples([2.0, 2.0, 2.0, 2.0]);
        assert_eq!(cdf.eval(2.0), 1.0);
        assert_eq!(cdf.eval(1.9), 0.0);
        assert_eq!(cdf.median(), 2.0);
    }

    #[test]
    #[should_panic(expected = "zero samples")]
    fn empty_rejected() {
        let _ = Cdf::from_samples(std::iter::empty());
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let _ = Cdf::from_samples([1.0, f64::NAN]);
    }
}
