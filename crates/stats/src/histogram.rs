//! Streaming log-bucketed histogram.

use std::fmt;

/// Number of linear sub-buckets per power-of-two bucket. Higher means finer
/// resolution; 32 keeps quantile error below ~3%, plenty for latency tails.
const SUB_BUCKETS: usize = 32;

/// A streaming histogram with logarithmic buckets, HdrHistogram-style.
///
/// Values are recorded as `u64` (the simulator's cycle counts). Memory is
/// constant regardless of the number of recorded values, so the histogram is
/// suitable for long simulations where [`crate::Samples`] would grow without
/// bound. Quantile queries have bounded relative error (one sub-bucket width,
/// about 3%).
///
/// # Examples
///
/// ```
/// use um_stats::Histogram;
///
/// let mut h = Histogram::new();
/// for v in 1..=1000u64 {
///     h.record(v);
/// }
/// let p50 = h.quantile(0.5);
/// assert!((450..=550).contains(&p50), "p50 was {p50}");
/// ```
#[derive(Clone)]
pub struct Histogram {
    counts: Vec<u64>,
    total: u64,
    sum: u128,
    min: u64,
    max: u64,
}

impl Histogram {
    /// Creates an empty histogram covering the full `u64` range.
    pub fn new() -> Self {
        // 64 powers of two, each split into SUB_BUCKETS linear slots.
        Self {
            counts: vec![0; 64 * SUB_BUCKETS],
            total: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn bucket_of(value: u64) -> usize {
        if value == 0 {
            return 0;
        }
        let exp = 63 - value.leading_zeros() as usize; // floor(log2(value))
        if exp < 5 {
            // Values below 32 map to their own slot in the first buckets.
            return value as usize;
        }
        // Sub-bucket index: top 5 bits below the leading bit.
        let sub = ((value >> (exp - 5)) & (SUB_BUCKETS as u64 - 1)) as usize;
        exp * SUB_BUCKETS + sub
    }

    /// Representative (upper-edge) value for bucket `idx`.
    ///
    /// Indices in `SUB_BUCKETS..5*SUB_BUCKETS` are never produced by
    /// [`Self::bucket_of`] (small values get exact slots); they map to their
    /// own index so the function is total.
    fn bucket_value(idx: usize) -> u64 {
        let exp = idx / SUB_BUCKETS;
        if exp < 5 {
            return idx as u64;
        }
        let sub = (idx % SUB_BUCKETS) as u64;
        (1u64 << exp) + (sub << (exp - 5)) + ((1u64 << (exp - 5)) - 1)
    }

    /// Records one value.
    pub fn record(&mut self, value: u64) {
        self.counts[Self::bucket_of(value)] += 1;
        self.total += 1;
        self.sum += value as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Records `count` occurrences of `value` at once.
    pub fn record_n(&mut self, value: u64, count: u64) {
        self.counts[Self::bucket_of(value)] += count;
        self.total += count;
        self.sum += value as u128 * count as u128;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Total number of recorded values.
    pub fn len(&self) -> u64 {
        self.total
    }

    /// Whether nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Exact arithmetic mean of recorded values (sums are exact; only the
    /// bucketed quantiles are approximate). 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        self.sum as f64 / self.total as f64
    }

    /// Exact minimum recorded value; 0 when empty.
    pub fn min(&self) -> u64 {
        if self.total == 0 {
            0
        } else {
            self.min
        }
    }

    /// Exact maximum recorded value; 0 when empty.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Approximate `q`-quantile (nearest rank over buckets); 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `\[0, 1\]`.
    pub fn quantile(&self, q: f64) -> u64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.total == 0 {
            return 0;
        }
        let target = (q * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                return Self::bucket_value(idx).min(self.max).max(self.min);
            }
        }
        self.max
    }

    /// Approximate P99.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum += other.sum;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Iterates over non-empty `(bucket_upper_edge, count)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (u64, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (Self::bucket_value(i), c))
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Self::new()
    }
}

impl fmt::Debug for Histogram {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Histogram")
            .field("total", &self.total)
            .field("mean", &self.mean())
            .field("min", &self.min())
            .field("max", &self.max())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_behaves() {
        let h = Histogram::new();
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.99), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 0);
    }

    #[test]
    fn small_values_are_exact() {
        let mut h = Histogram::new();
        for v in 0..32u64 {
            h.record(v);
        }
        assert_eq!(h.min(), 0);
        assert_eq!(h.max(), 31);
        assert_eq!(h.quantile(1.0), 31);
        assert_eq!(h.quantile(0.0), 0);
    }

    #[test]
    fn mean_is_exact() {
        let mut h = Histogram::new();
        for v in [10u64, 20, 30, 1_000_000] {
            h.record(v);
        }
        assert_eq!(h.mean(), (10.0 + 20.0 + 30.0 + 1_000_000.0) / 4.0);
    }

    #[test]
    fn quantile_relative_error_bounded() {
        let mut h = Histogram::new();
        for v in 1..=100_000u64 {
            h.record(v);
        }
        for q in [0.5, 0.9, 0.99, 0.999] {
            let approx = h.quantile(q) as f64;
            let exact = (q * 100_000.0).ceil();
            let rel = (approx - exact).abs() / exact;
            assert!(rel < 0.05, "q={q} approx={approx} exact={exact} rel={rel}");
        }
    }

    #[test]
    fn record_n_equivalent_to_loop() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        a.record_n(77, 5);
        for _ in 0..5 {
            b.record(77);
        }
        assert_eq!(a.len(), b.len());
        assert_eq!(a.quantile(0.5), b.quantile(0.5));
        assert_eq!(a.mean(), b.mean());
    }

    #[test]
    fn merge_matches_combined_recording() {
        let mut a = Histogram::new();
        let mut b = Histogram::new();
        let mut c = Histogram::new();
        for v in 1..=500u64 {
            a.record(v);
            c.record(v);
        }
        for v in 501..=1000u64 {
            b.record(v);
            c.record(v);
        }
        a.merge(&b);
        assert_eq!(a.len(), c.len());
        assert_eq!(a.quantile(0.9), c.quantile(0.9));
        assert_eq!(a.min(), c.min());
        assert_eq!(a.max(), c.max());
    }

    #[test]
    fn huge_values_do_not_panic() {
        let mut h = Histogram::new();
        h.record(u64::MAX);
        h.record(u64::MAX - 1);
        assert_eq!(h.max(), u64::MAX);
        assert!(h.quantile(0.99) > u64::MAX / 2);
    }

    #[test]
    fn iter_counts_sum_to_total() {
        let mut h = Histogram::new();
        for v in [1u64, 1, 2, 3, 1000, 65_536] {
            h.record(v);
        }
        let total: u64 = h.iter().map(|(_, c)| c).sum();
        assert_eq!(total, h.len());
    }

    #[test]
    fn bucket_value_is_monotone_over_reachable_buckets() {
        // Walk values in increasing order; their bucket upper edges must be
        // non-decreasing (this is what the quantile scan relies on).
        let mut last_edge = 0;
        let mut v = 0u64;
        while v < (1u64 << 48) {
            let edge = Histogram::bucket_value(Histogram::bucket_of(v));
            assert!(edge >= last_edge, "value {v}: edge {edge} < {last_edge}");
            last_edge = edge;
            v = (v * 2).max(v + 1);
        }
    }

    #[test]
    fn bucket_of_maps_value_into_its_bucket_range() {
        for v in [0u64, 1, 31, 32, 33, 100, 1_000, 123_456, 1 << 40] {
            let idx = Histogram::bucket_of(v);
            let upper = Histogram::bucket_value(idx);
            assert!(upper >= v, "value {v} above bucket upper edge {upper}");
        }
    }
}
