//! Exact sample storage with percentile queries.

use std::borrow::Cow;
use std::fmt;

/// An exact collection of `f64` samples supporting mean/percentile queries.
///
/// `Samples` stores every recorded value. This is the right tool for
/// experiment-scale measurements (tens of thousands of request latencies);
/// for unbounded streams use [`crate::Histogram`] instead.
///
/// Percentile queries sort lazily and cache the sorted order, so interleaving
/// `record` and `percentile` is allowed but re-sorts on each transition.
///
/// # Examples
///
/// ```
/// use um_stats::Samples;
///
/// let s: Samples = (1..=100).map(|v| v as f64).collect();
/// assert_eq!(s.len(), 100);
/// assert_eq!(s.percentile(0.99), 99.0); // nearest rank
/// assert_eq!(s.percentile(1.0), 100.0);
/// assert_eq!(s.min(), 1.0);
/// assert_eq!(s.max(), 100.0);
/// ```
#[derive(Clone, Debug, Default)]
pub struct Samples {
    values: Vec<f64>,
    /// The values of `values` in ascending order; a length mismatch with
    /// `values` means the cache is stale.
    sorted: Vec<f64>,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty sample set with room for `cap` samples.
    pub fn with_capacity(cap: usize) -> Self {
        Self {
            values: Vec::with_capacity(cap),
            sorted: Vec::new(),
        }
    }

    /// Records one sample.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN; a NaN latency always indicates a simulator
    /// bug and must not be silently absorbed into percentiles.
    pub fn record(&mut self, value: f64) {
        assert!(!value.is_nan(), "NaN sample recorded");
        self.values.push(value);
        self.sorted.clear();
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Arithmetic mean, or 0.0 when empty.
    pub fn mean(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Smallest sample, or 0.0 when empty.
    pub fn min(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest sample, or 0.0 when empty.
    pub fn max(&self) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Returns the `q`-quantile (0.0 ≤ `q` ≤ 1.0) using the nearest-rank
    /// method the paper's P99 numbers use; returns 0.0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `q` is outside `\[0, 1\]`.
    pub fn percentile(&self, q: f64) -> f64 {
        assert!((0.0..=1.0).contains(&q), "quantile {q} outside [0, 1]");
        if self.values.is_empty() {
            return 0.0;
        }
        let sorted = self.sorted_values();
        if q <= 0.0 {
            return sorted[0];
        }
        let rank = (q * sorted.len() as f64).ceil() as usize;
        sorted[rank.clamp(1, sorted.len()) - 1]
    }

    /// P99 tail, the paper's headline metric.
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }

    /// Median (P50).
    pub fn median(&self) -> f64 {
        self.percentile(0.5)
    }

    /// Tail-to-average ratio (Figure 17); 0.0 when empty or zero mean.
    pub fn tail_to_avg(&self) -> f64 {
        let mean = self.mean();
        if mean == 0.0 {
            0.0
        } else {
            self.p99() / mean
        }
    }

    /// Immutable view of the raw samples in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Merges another sample set into this one.
    pub fn merge(&mut self, other: &Samples) {
        self.values.extend_from_slice(&other.values);
        self.sorted.clear();
    }

    /// Produces a [`crate::Summary`] digest of this sample set.
    pub fn summary(&self) -> crate::Summary {
        crate::Summary::of(self)
    }

    fn sorted_values(&self) -> Cow<'_, [f64]> {
        // Frozen sets borrow the cache (no per-query allocation — P99 is
        // queried in hot report paths); unfrozen sets sort a copy.
        if self.sorted.len() == self.values.len() {
            return Cow::Borrowed(&self.sorted);
        }
        let mut v = self.values.clone();
        v.sort_by(f64::total_cmp);
        Cow::Owned(v)
    }

    /// Freezes the sorted cache; subsequent percentile queries are O(1) sorts.
    pub fn freeze(&mut self) {
        let mut v = self.values.clone();
        v.sort_by(f64::total_cmp);
        self.sorted = v;
    }
}

impl FromIterator<f64> for Samples {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut s = Samples::new();
        for v in iter {
            s.record(v);
        }
        s
    }
}

impl Extend<f64> for Samples {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for v in iter {
            self.record(v);
        }
    }
}

impl fmt::Display for Samples {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.3} p50={:.3} p99={:.3} max={:.3}",
            self.len(),
            self.mean(),
            self.median(),
            self.p99(),
            self.max()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroes() {
        let s = Samples::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.percentile(0.99), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
        assert_eq!(s.tail_to_avg(), 0.0);
    }

    #[test]
    fn single_sample_every_percentile() {
        let s: Samples = [42.0].into_iter().collect();
        assert_eq!(s.percentile(0.0), 42.0);
        assert_eq!(s.percentile(0.5), 42.0);
        assert_eq!(s.percentile(1.0), 42.0);
        assert_eq!(s.mean(), 42.0);
    }

    #[test]
    fn nearest_rank_matches_hand_computation() {
        let s: Samples = (1..=10).map(f64::from).collect();
        assert_eq!(s.percentile(0.10), 1.0);
        assert_eq!(s.percentile(0.11), 2.0);
        assert_eq!(s.percentile(0.50), 5.0);
        assert_eq!(s.percentile(0.99), 10.0);
        assert_eq!(s.percentile(1.0), 10.0);
    }

    #[test]
    fn unsorted_input_is_sorted_for_percentiles() {
        let s: Samples = [5.0, 1.0, 4.0, 2.0, 3.0].into_iter().collect();
        assert_eq!(s.median(), 3.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
    }

    #[test]
    fn merge_combines_distributions() {
        let mut a: Samples = [1.0, 2.0].into_iter().collect();
        let b: Samples = [3.0, 4.0].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.len(), 4);
        assert_eq!(a.mean(), 2.5);
    }

    #[test]
    fn tail_to_avg_is_p99_over_mean() {
        let s: Samples = (1..=100).map(f64::from).collect();
        let expected = s.p99() / s.mean();
        assert!((s.tail_to_avg() - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_rejected() {
        let mut s = Samples::new();
        s.record(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn quantile_out_of_range_rejected() {
        let s: Samples = [1.0].into_iter().collect();
        s.percentile(1.5);
    }

    #[test]
    fn freeze_then_query_consistent() {
        let mut s: Samples = [9.0, 7.0, 8.0].into_iter().collect();
        let before = s.median();
        s.freeze();
        assert_eq!(s.median(), before);
    }

    #[test]
    fn record_after_freeze_invalidates_cache() {
        let mut s: Samples = [1.0, 2.0, 3.0].into_iter().collect();
        s.freeze();
        s.record(100.0);
        assert_eq!(s.max(), 100.0);
        assert_eq!(s.percentile(1.0), 100.0);
    }

    #[test]
    fn frozen_and_unfrozen_percentiles_agree() {
        let values = [9.0, 1.0, 5.0, 3.0, 7.0, 2.0, 8.0, 4.0, 6.0];
        let unfrozen: Samples = values.into_iter().collect();
        let mut frozen: Samples = values.into_iter().collect();
        frozen.freeze();
        // The frozen set serves queries from the borrowed cache; the
        // unfrozen one sorts a copy. Results must be bit-identical.
        for q in [0.0, 0.1, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(unfrozen.percentile(q), frozen.percentile(q), "q={q}");
        }
        assert!(matches!(frozen.sorted_values(), Cow::Borrowed(_)));
        assert!(matches!(unfrozen.sorted_values(), Cow::Owned(_)));
    }

    #[test]
    fn display_is_nonempty() {
        let s: Samples = [1.0].into_iter().collect();
        assert!(!format!("{s}").is_empty());
    }
}
