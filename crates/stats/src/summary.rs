//! Latency summaries — the digest every figure harness prints.

use crate::Samples;
use std::fmt;

/// A fixed digest of a latency distribution: count, mean, P50, P99, max, and
/// the tail-to-average ratio the paper reports in Figure 17.
///
/// # Examples
///
/// ```
/// use um_stats::{Samples, Summary};
///
/// let s: Samples = (1..=100).map(|v| v as f64).collect();
/// let d = Summary::of(&s);
/// assert_eq!(d.count, 100);
/// assert_eq!(d.p99, 99.0);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (P50).
    pub p50: f64,
    /// 99th percentile — the paper's "tail latency".
    pub p99: f64,
    /// Maximum observed value.
    pub max: f64,
    /// `p99 / mean` (0.0 for empty or zero-mean distributions).
    pub tail_to_avg: f64,
}

impl Summary {
    /// Digests a sample set.
    pub fn of(samples: &Samples) -> Self {
        Self {
            count: samples.len(),
            mean: samples.mean(),
            p50: samples.median(),
            p99: samples.p99(),
            max: samples.max(),
            tail_to_avg: samples.tail_to_avg(),
        }
    }

    /// Ratio of this summary's tail to `other`'s tail: "A is N× lower tail
    /// than B" is `b.tail_ratio_vs(a)`.
    ///
    /// Returns 0.0 when `other.p99` is zero.
    pub fn tail_ratio_vs(&self, other: &Summary) -> f64 {
        if other.p99 == 0.0 {
            0.0
        } else {
            self.p99 / other.p99
        }
    }

    /// Ratio of this summary's mean to `other`'s mean; 0.0 when undefined.
    pub fn mean_ratio_vs(&self, other: &Summary) -> f64 {
        if other.mean == 0.0 {
            0.0
        } else {
            self.mean / other.mean
        }
    }
}

impl Default for Summary {
    fn default() -> Self {
        Self {
            count: 0,
            mean: 0.0,
            p50: 0.0,
            p99: 0.0,
            max: 0.0,
            tail_to_avg: 0.0,
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.2} p50={:.2} p99={:.2} max={:.2} tail/avg={:.2}",
            self.count, self.mean, self.p50, self.p99, self.max, self.tail_to_avg
        )
    }
}

/// Geometric mean of a slice of positive values; used for the paper's
/// cross-application averages.
///
/// Returns 0.0 for an empty slice.
///
/// # Panics
///
/// Panics if any value is not strictly positive (a zero or negative speedup
/// is always an upstream bug).
///
/// # Examples
///
/// ```
/// let g = um_stats::summary::geomean(&[1.0, 4.0]);
/// assert!((g - 2.0).abs() < 1e-12);
/// ```
pub fn geomean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    assert!(
        values.iter().all(|&v| v > 0.0),
        "geomean requires strictly positive values"
    );
    let log_sum: f64 = values.iter().map(|v| v.ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// Arithmetic mean of a slice; 0.0 for an empty slice.
///
/// # Examples
///
/// ```
/// assert_eq!(um_stats::summary::mean(&[1.0, 3.0]), 2.0);
/// ```
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_empty_is_default() {
        let s = Samples::new();
        assert_eq!(Summary::of(&s), Summary::default());
    }

    #[test]
    fn ratios() {
        let fast: Samples = [1.0, 1.0, 2.0].into_iter().collect();
        let slow: Samples = [10.0, 10.0, 20.0].into_iter().collect();
        let f = Summary::of(&fast);
        let sl = Summary::of(&slow);
        assert!((sl.tail_ratio_vs(&f) - 10.0).abs() < 1e-12);
        assert!((sl.mean_ratio_vs(&f) - 10.0).abs() < 1e-12);
        assert_eq!(f.tail_ratio_vs(&Summary::default()), 0.0);
    }

    #[test]
    fn geomean_handles_identity_and_empty() {
        assert_eq!(geomean(&[]), 0.0);
        assert!((geomean(&[5.0]) - 5.0).abs() < 1e-12);
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn geomean_rejects_zero() {
        geomean(&[1.0, 0.0]);
    }

    #[test]
    fn mean_empty() {
        assert_eq!(mean(&[]), 0.0);
    }

    #[test]
    fn display_nonempty() {
        assert!(!format!("{}", Summary::default()).is_empty());
    }
}
