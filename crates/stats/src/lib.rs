//! Statistics utilities for the uManycore reproduction.
//!
//! Every experiment in the paper reports latency distributions (average, P99
//! tail, tail-to-average ratios), CDFs (Figures 2, 4 and 5) or throughput
//! tables. This crate provides the shared machinery:
//!
//! - [`Samples`]: an exact sample reservoir with percentile queries, used for
//!   per-request latency measurements.
//! - [`Histogram`]: a streaming log-bucketed histogram for high-volume
//!   measurements where exact storage would be wasteful.
//! - [`Cdf`]: empirical cumulative distribution functions, with fixed-point
//!   evaluation and inverse lookup.
//! - [`summary::Summary`]: the avg/P50/P99/max digest printed by the figure
//!   harnesses.
//! - [`table`]: plain-text table rendering so `cargo run -p um-bench --bin
//!   figN` prints the same rows/series as the paper.
//!
//! # Examples
//!
//! ```
//! use um_stats::Samples;
//!
//! let mut lat = Samples::new();
//! for v in [1.0, 2.0, 3.0, 4.0, 100.0] {
//!     lat.record(v);
//! }
//! assert_eq!(lat.percentile(0.5), 3.0);
//! assert!(lat.mean() > 3.0); // the outlier pulls the mean up
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cdf;
mod histogram;
mod samples;
pub mod summary;
pub mod table;

pub use cdf::Cdf;
pub use histogram::Histogram;
pub use samples::Samples;
pub use summary::Summary;
