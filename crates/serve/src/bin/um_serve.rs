//! `um-serve`: the simulation-as-a-service frontend.
//!
//! Binds a loopback HTTP listener, spins up the job worker pool, and
//! serves the endpoint set documented on the crate root: submit a
//! canonical scenario document, poll it, fetch the benchjson envelope or
//! text table — byte-identical to what a direct `um-sweep` run prints.
//!
//! ```text
//! um-serve [--port N] [--workers N] [--queue-depth N]
//! ```
//!
//! Defaults: port 8080 on 127.0.0.1, `UM_THREADS` workers (available
//! parallelism if unset), a 64-entry admission queue.

use um_serve::server;
use um_serve::service::{JobService, ServiceConfig};

fn usage() -> ! {
    eprintln!("usage: um-serve [--port N] [--workers N] [--queue-depth N]");
    std::process::exit(2);
}

fn parse_flag<T: std::str::FromStr>(it: &mut std::slice::Iter<'_, String>, flag: &str) -> T {
    let raw = it.next().unwrap_or_else(|| usage());
    raw.parse().unwrap_or_else(|_| {
        eprintln!("um-serve: bad value {raw:?} for {flag}");
        std::process::exit(2);
    })
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut port: u16 = 8080;
    let mut config = ServiceConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--port" => port = parse_flag(&mut it, "--port"),
            "--workers" => config.workers = parse_flag(&mut it, "--workers"),
            "--queue-depth" => config.queue_depth = parse_flag(&mut it, "--queue-depth"),
            _ => usage(),
        }
    }

    um_bench::sanitizer_check();
    let service = JobService::new(config);
    let addr = format!("127.0.0.1:{port}");
    println!(
        "um-serve: listening on http://{addr} ({} workers, queue depth {})",
        config.workers, config.queue_depth
    );
    server::serve(&addr, service)
}
