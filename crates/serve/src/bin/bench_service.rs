//! Service-layer throughput: end-to-end jobs/second through `um-serve`'s
//! whole stack — socket, HTTP parse, admission, worker pool, simulation,
//! result fetch — at several client counts, emitted as
//! `BENCH_service.json`.
//!
//! One axis — **clients**: concurrent submitters, each pushing a stream
//! of tiny grid jobs over real loopback connections. Every job carries a
//! unique seed, so the content-addressed cache never hits and every job
//! pays for a real simulation; the measured rate is the service's, not
//! the cache's. Each point gets a fresh service (cold cache, idle
//! queue).
//!
//! Environment:
//!
//! - `UM_SCALE=quick`: CI smoke mode — fewer jobs per client.
//! - `UM_BENCH_OUT`: output path (default `BENCH_service.json`).

use std::net::TcpListener;
use std::sync::Arc;
use std::thread;
use std::time::Instant;

use um_bench::benchjson::{obj, rounded, validate_bench, Json};
use um_bench::scenario::{self, ScenarioKind};
use um_serve::client;
use um_serve::server;
use um_serve::service::{JobService, ServiceConfig};

const CLIENT_AXIS: [usize; 6] = [1, 2, 4, 8, 16, 32];

/// A one-point grid job: small enough that the service overhead is a
/// visible fraction of the wall clock, real enough that each job runs an
/// actual simulation.
fn tiny_job(seed: u64) -> String {
    let mut s = scenario::registry::sweep_default();
    s.scale.horizon_us = 2_000.0;
    s.scale.warmup_us = 200.0;
    if let ScenarioKind::Grid(g) = &mut s.kind {
        g.loads = vec![2_000.0];
        g.seeds = vec![seed];
        g.policies.truncate(1);
    }
    s.validate().expect("tiny job is a valid scenario");
    s.to_json_text()
}

fn main() {
    let quick = std::env::var("UM_SCALE").is_ok_and(|s| s == "quick");
    let jobs_per_client = if quick { 2 } else { 8 };
    let mode = if quick { "quick" } else { "full" };
    um_bench::sanitizer_check();
    eprintln!(
        "bench_service: end-to-end job throughput, {mode} scale, {jobs_per_client} jobs/client"
    );

    let mut points = Vec::new();
    for clients in CLIENT_AXIS {
        // Fresh service per point: cold cache, empty queue, enough
        // admission room that no submission bounces.
        let service = JobService::new(ServiceConfig {
            workers: um_serve::service::default_workers(),
            queue_depth: clients * jobs_per_client + 1,
            retry_after_secs: 1,
        });
        let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
        let addr = server::spawn(listener, Arc::clone(&service));

        let start = Instant::now();
        let handles: Vec<_> = (0..clients)
            .map(|c| {
                thread::spawn(move || {
                    for j in 0..jobs_per_client {
                        let seed = 1_000 + (c * jobs_per_client + j) as u64;
                        let resp = client::request(addr, "POST", "/jobs", Some(&tiny_job(seed)))
                            .expect("submit over loopback");
                        assert_eq!(resp.status, 200, "submit failed: {}", resp.body);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().expect("client thread");
        }
        let jobs = (clients * jobs_per_client) as u64;
        for id in 1..=jobs {
            service.wait_done(id).expect("submitted job exists");
        }
        let wall = start.elapsed().as_secs_f64();

        let stats = service.stats();
        assert_eq!(
            stats.cache_hits, 0,
            "unique seeds must defeat the cache — the rate would be the cache's"
        );
        assert_eq!(stats.simulations_run, jobs, "every job simulates");
        let jobs_per_sec = jobs as f64 / wall;
        eprintln!("  clients={clients}: {jobs} jobs in {wall:.3} s, {jobs_per_sec:.1} jobs/s");
        points.push((clients, jobs, wall, jobs_per_sec));
    }

    let (peak_clients, _, _, peak_rate) = points
        .iter()
        .copied()
        .max_by(|a, b| a.3.total_cmp(&b.3))
        .expect("points are non-empty");
    let doc = obj(vec![
        ("bench", Json::Str("service".into())),
        ("scale", Json::Str(mode.into())),
        (
            "headline",
            obj(vec![
                ("clients", Json::Num(peak_clients as f64)),
                ("jobs_per_sec", Json::Num(rounded(peak_rate, 1))),
            ]),
        ),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|&(clients, jobs, wall, rate)| {
                        obj(vec![
                            ("clients", Json::Num(clients as f64)),
                            ("jobs", Json::Num(jobs as f64)),
                            ("wall_ms", Json::Num(rounded(wall * 1_000.0, 1))),
                            ("jobs_per_sec", Json::Num(rounded(rate, 1))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    validate_bench(&doc).expect("bench_service emits the BENCH_*.json envelope");
    let json = doc.render();

    let out = std::env::var("UM_BENCH_OUT").unwrap_or_else(|_| "BENCH_service.json".to_string());
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    print!("{json}");
    eprintln!("bench_service: wrote {out} (peak {peak_rate:.1} jobs/s at {peak_clients} clients)");
}
