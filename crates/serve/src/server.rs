//! The HTTP front door: accept loop, routing, and the JSON answers for
//! each endpoint. One thread per connection — connections are short
//! (`Connection: close`) and the expensive work happens in the job
//! service's worker pool, not here.

use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread;

use um_bench::benchjson::{obj, Json};
use um_bench::scenario;

use crate::http::{read_request, write_response, Request, Response};
use crate::service::{JobService, JobStatus, SubmitError};

/// Binds the listener and runs the accept loop forever.
///
/// # Panics
///
/// Panics if the address cannot be bound.
pub fn serve(addr: &str, service: Arc<JobService>) -> ! {
    let listener = TcpListener::bind(addr).expect("bind service address");
    run(listener, service)
}

/// Spawns the accept loop on an already-bound listener and returns the
/// local address — the test harness binds port 0 and reads the port
/// back from here.
pub fn spawn(listener: TcpListener, service: Arc<JobService>) -> SocketAddr {
    let addr = listener.local_addr().expect("listener has a local address");
    thread::spawn(move || run(listener, service));
    addr
}

fn run(listener: TcpListener, service: Arc<JobService>) -> ! {
    loop {
        match listener.accept() {
            Ok((stream, _)) => {
                let service = Arc::clone(&service);
                thread::spawn(move || handle_connection(stream, &service));
            }
            Err(_) => continue, // transient accept failures: keep serving
        }
    }
}

fn handle_connection(mut stream: TcpStream, service: &JobService) {
    let response = match read_request(&stream) {
        Ok(req) => route(&req, service),
        Err(e) => error_json(400, &e),
    };
    // The peer may have gone away; nothing useful to do about it.
    let _ = write_response(&mut stream, &response);
}

fn route(req: &Request, service: &JobService) -> Response {
    let segments: Vec<&str> = req.path.split('/').filter(|s| !s.is_empty()).collect();
    match (req.method.as_str(), segments.as_slice()) {
        ("GET", ["healthz"]) => healthz(service),
        ("GET", ["registry"]) => registry(),
        ("POST", ["jobs"]) => submit(req, service),
        ("GET", ["jobs", id]) => job_status(service, id),
        ("GET", ["jobs", id, "result"]) => job_result(service, id, false),
        ("GET", ["jobs", id, "result", "text"]) => job_result(service, id, true),
        ("POST" | "GET", _) => error_json(404, &format!("no route for {}", req.path)),
        _ => error_json(405, &format!("method {} not allowed", req.method)),
    }
}

fn healthz(service: &JobService) -> Response {
    let stats = service.stats();
    Response::json(
        200,
        obj(vec![
            ("status", Json::Str("ok".to_string())),
            ("jobs", Json::Num(stats.jobs as f64)),
            ("simulations_run", Json::Num(stats.simulations_run as f64)),
            ("cache_hits", Json::Num(stats.cache_hits as f64)),
        ])
        .render(),
    )
}

fn registry() -> Response {
    let scenarios: Vec<Json> = scenario::registry::all()
        .iter()
        .map(scenario::Scenario::to_json)
        .collect();
    Response::json(200, obj(vec![("scenarios", Json::Arr(scenarios))]).render())
}

fn submit(req: &Request, service: &JobService) -> Response {
    let body = match std::str::from_utf8(&req.body) {
        Ok(s) => s,
        Err(_) => return error_json(400, "body is not valid UTF-8"),
    };
    match service.submit(body) {
        Ok(outcome) => Response::json(
            200,
            obj(vec![
                ("id", Json::Num(outcome.id as f64)),
                ("cached", Json::Bool(outcome.cached)),
                (
                    "status",
                    Json::Str(if outcome.cached { "done" } else { "queued" }.to_string()),
                ),
            ])
            .render(),
        ),
        Err(SubmitError::Invalid(e)) => error_json(400, &e),
        Err(SubmitError::QueueFull { retry_after_secs }) => {
            let mut r = error_json(429, "admission queue is full, retry later");
            r.extra_headers
                .push(("Retry-After".to_string(), retry_after_secs.to_string()));
            r
        }
    }
}

fn parse_id(raw: &str) -> Option<u64> {
    raw.parse().ok()
}

fn job_status(service: &JobService, raw_id: &str) -> Response {
    let Some(id) = parse_id(raw_id) else {
        return error_json(400, &format!("bad job id {raw_id:?}"));
    };
    let Some(status) = service.status(id) else {
        return error_json(404, &format!("no job {id}"));
    };
    let mut pairs = vec![("id", Json::Num(id as f64))];
    match status {
        JobStatus::Queued => pairs.push(("status", Json::Str("queued".to_string()))),
        JobStatus::Running { done, total } => {
            pairs.push(("status", Json::Str("running".to_string())));
            pairs.push(("done", Json::Num(done as f64)));
            pairs.push(("total", Json::Num(total as f64)));
        }
        JobStatus::Done { cached } => {
            pairs.push(("status", Json::Str("done".to_string())));
            pairs.push(("cached", Json::Bool(cached)));
        }
        JobStatus::Failed { error } => {
            pairs.push(("status", Json::Str("failed".to_string())));
            pairs.push(("error", Json::Str(error)));
        }
    }
    Response::json(200, obj(pairs).render())
}

fn job_result(service: &JobService, raw_id: &str, as_text: bool) -> Response {
    let Some(id) = parse_id(raw_id) else {
        return error_json(400, &format!("bad job id {raw_id:?}"));
    };
    let Some(status) = service.status(id) else {
        return error_json(404, &format!("no job {id}"));
    };
    match status {
        JobStatus::Done { .. } => {
            let result = service.result(id).expect("done jobs carry a result");
            if as_text {
                Response::text(200, result.text.clone())
            } else {
                Response::json(200, result.envelope.clone())
            }
        }
        JobStatus::Failed { error } => error_json(409, &format!("job {id} failed: {error}")),
        JobStatus::Queued | JobStatus::Running { .. } => {
            error_json(409, &format!("job {id} is not done yet"))
        }
    }
}

fn error_json(status: u16, message: &str) -> Response {
    Response::json(
        status,
        obj(vec![("error", Json::Str(message.to_string()))]).render(),
    )
}
