//! `um-serve`: simulation-as-a-service on top of the declarative
//! scenario layer.
//!
//! A zero-dependency, std-only job service: a bounded admission queue
//! feeds a worker thread pool (sized by `UM_THREADS`) over
//! [`std::sync::mpsc`] channels, jobs are canonical
//! [`um_bench::scenario`] documents submitted over a minimal hand-rolled
//! HTTP/1.1 layer, and a content-addressed result cache keyed by the
//! canonical scenario bytes (seed folded in) serves repeat submissions
//! without re-simulating — cached and fresh results are byte-identical.
//!
//! The determinism boundary: everything inside a job is the
//! deterministic sweep runner (bit-identical at any `UM_THREADS`), so
//! the service adds no nondeterminism to results — only to timing.
//! Admission (`429 Retry-After`) and scheduling order never change what
//! a job computes.
//!
//! ```text
//! POST /jobs                  submit a scenario (or {"scenario":…,"seed":N})
//! GET  /jobs/<id>             queued / running (with progress) / done / failed
//! GET  /jobs/<id>/result      the benchjson envelope um-sweep emits
//! GET  /jobs/<id>/result/text the rendered text table, byte-identical
//!                             to the converted binary's stdout
//! GET  /registry              every built-in scenario, canonical JSON
//! GET  /healthz               liveness + job/cache counters
//! ```

pub mod client;
pub mod http;
pub mod server;
pub mod service;
