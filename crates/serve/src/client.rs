//! A minimal blocking HTTP/1.1 client — just enough to exercise the
//! service over a real socket from the integration tests and the
//! throughput bench. The server closes every connection, so a response
//! is simply "read to EOF".

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};

/// A parsed response: status, headers and the body as text.
#[derive(Debug)]
pub struct HttpResponse {
    /// HTTP status code.
    pub status: u16,
    /// Response headers, lower-cased names.
    pub headers: Vec<(String, String)>,
    /// Response body.
    pub body: String,
}

impl HttpResponse {
    /// The first header with this (case-insensitive) name.
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Performs one request and reads the full response.
///
/// # Errors
///
/// Returns a message describing the connection, I/O, or parse failure.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<HttpResponse, String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    let body = body.unwrap_or("");
    let head = format!(
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n",
        body.len()
    );
    stream
        .write_all(head.as_bytes())
        .and_then(|()| stream.write_all(body.as_bytes()))
        .map_err(|e| format!("write request: {e}"))?;

    let mut raw = String::new();
    stream
        .read_to_string(&mut raw)
        .map_err(|e| format!("read response: {e}"))?;
    parse_response(&raw)
}

fn parse_response(raw: &str) -> Result<HttpResponse, String> {
    let (head, body) = raw
        .split_once("\r\n\r\n")
        .ok_or("response has no header/body separator")?;
    let mut lines = head.lines();
    let status_line = lines.next().ok_or("empty response")?;
    let status = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("bad status line {status_line:?}"))?;
    let mut headers = Vec::new();
    for line in lines {
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| format!("malformed header {line:?}"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }
    Ok(HttpResponse {
        status,
        headers,
        body: body.to_string(),
    })
}
