//! The job service: bounded admission, a worker pool, oneshot-style
//! completion handoff and a content-addressed result cache.
//!
//! Modeled on the request-manager/queue/ticket serving shape: admission
//! happens at submit time against a bounded `mpsc` channel (full queue →
//! the caller answers `429 Retry-After`), workers pull job ids off the
//! shared receiver, and completion is handed back through the job table
//! under a condvar — a synchronous stand-in for a oneshot channel that
//! pollers and blocking waiters share.
//!
//! Jobs are canonical [`um_bench::scenario`] documents. The cache key is
//! the canonical JSON byte string with the submission seed folded into
//! `scale.seed`, so two requests describe the same simulation exactly
//! when their keys are byte-equal — and then the second is served from
//! cache without re-simulating, byte-identical to the first.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{sync_channel, Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread;

use um_bench::benchjson::{obj, Json};
use um_bench::scenario::{self, Scenario, ScenarioOutput};

/// Largest integer JSON carries exactly; submission seeds above this
/// would not round-trip.
const MAX_EXACT_SEED: f64 = 9_007_199_254_740_992.0; // 2^53

/// Service sizing knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServiceConfig {
    /// Worker threads simulating jobs. `0` accepts jobs but never runs
    /// them (deterministic admission tests).
    pub workers: usize,
    /// Bounded admission queue depth; submissions beyond it answer 429.
    pub queue_depth: usize,
    /// The `Retry-After` hint returned with 429, seconds.
    pub retry_after_secs: u64,
}

impl Default for ServiceConfig {
    /// `UM_THREADS` workers (available parallelism if unset) behind a
    /// 64-entry admission queue.
    fn default() -> Self {
        Self {
            workers: default_workers(),
            queue_depth: 64,
            retry_after_secs: 1,
        }
    }
}

/// The worker-pool size: `UM_THREADS` if set to a positive integer,
/// otherwise the machine's available parallelism (1 if unknown) — the
/// same contract the sweep runner uses.
pub fn default_workers() -> usize {
    std::env::var("UM_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Where a job is in its lifecycle.
#[derive(Clone, Debug, PartialEq)]
pub enum JobStatus {
    /// Admitted, waiting for a worker.
    Queued,
    /// A worker is simulating; `done` of `total` points finished.
    Running {
        /// Completed sweep points.
        done: usize,
        /// Total sweep points.
        total: usize,
    },
    /// Finished; the result is available.
    Done {
        /// Served from the result cache without re-simulating.
        cached: bool,
    },
    /// The scenario failed validation at run time (never expected for
    /// submissions, which validate on parse — kept for honesty).
    Failed {
        /// The validation message.
        error: String,
    },
}

/// A finished job's payload: the rendered benchjson envelope and the
/// legacy text table. Both are exactly what a direct `um-sweep` run of
/// the same scenario+seed produces.
#[derive(Debug)]
pub struct JobResult {
    /// The rendered JSON envelope (`bench`/`scale`/`points` for grid
    /// scenarios, `bench`/`scale`/`text` otherwise).
    pub envelope: String,
    /// The rendered text table.
    pub text: String,
}

/// Service counters for `/healthz` and the cache tests.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ServiceStats {
    /// Jobs ever created (including cache hits).
    pub jobs: u64,
    /// Scenarios actually simulated (cache hits do not count).
    pub simulations_run: u64,
    /// Submissions served straight from the cache.
    pub cache_hits: u64,
}

/// Why a submission was refused.
#[derive(Clone, Debug, PartialEq)]
pub enum SubmitError {
    /// The document failed parsing or validation; the message names the
    /// offending field path (`400`).
    Invalid(String),
    /// The admission queue is full (`429` + `Retry-After`).
    QueueFull {
        /// Seconds the client should wait before retrying.
        retry_after_secs: u64,
    },
}

/// A successful submission.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SubmitOutcome {
    /// The job id for `/jobs/<id>`.
    pub id: u64,
    /// The job was born done, served from the result cache.
    pub cached: bool,
}

struct Job {
    scenario: Scenario,
    status: JobStatus,
    result: Option<Arc<JobResult>>,
}

struct Inner {
    jobs: Mutex<BTreeMap<u64, Job>>,
    changed: Condvar,
    cache: Mutex<BTreeMap<String, Arc<JobResult>>>,
    next_id: AtomicU64,
    simulations_run: AtomicU64,
    cache_hits: AtomicU64,
    // Kept here (not in a worker) so `try_send` distinguishes Full from
    // Disconnected even with zero workers.
    rx: Mutex<Receiver<u64>>,
}

/// The job frontend: submit, poll, fetch.
pub struct JobService {
    inner: Arc<Inner>,
    tx: SyncSender<u64>,
    retry_after_secs: u64,
}

impl JobService {
    /// Starts the service and its worker pool.
    ///
    /// # Panics
    ///
    /// Panics on a zero queue depth (a rendezvous channel would turn
    /// every submission into a 429).
    pub fn new(config: ServiceConfig) -> Arc<JobService> {
        assert!(config.queue_depth >= 1, "queue_depth must be at least 1");
        let (tx, rx) = sync_channel(config.queue_depth);
        let inner = Arc::new(Inner {
            jobs: Mutex::new(BTreeMap::new()),
            changed: Condvar::new(),
            cache: Mutex::new(BTreeMap::new()),
            next_id: AtomicU64::new(1),
            simulations_run: AtomicU64::new(0),
            cache_hits: AtomicU64::new(0),
            rx: Mutex::new(rx),
        });
        for _ in 0..config.workers {
            let inner = Arc::clone(&inner);
            thread::spawn(move || worker_loop(&inner));
        }
        Arc::new(JobService {
            inner,
            tx,
            retry_after_secs: config.retry_after_secs,
        })
    }

    /// Parses, validates and admits a submission: either a bare
    /// canonical scenario document or `{"scenario": {...}, "seed": N}`
    /// (the seed replaces `scale.seed` before canonicalization).
    ///
    /// # Errors
    ///
    /// [`SubmitError::Invalid`] with the offending field path, or
    /// [`SubmitError::QueueFull`] when admission control refuses.
    pub fn submit(&self, body: &str) -> Result<SubmitOutcome, SubmitError> {
        let s = parse_submission(body).map_err(SubmitError::Invalid)?;
        let key = s.to_json_text();
        let id = self.inner.next_id.fetch_add(1, Ordering::Relaxed);

        // Cache hits bypass admission entirely: the job is born done.
        let hit = self
            .inner
            .cache
            .lock()
            .expect("cache lock")
            .get(&key)
            .cloned();
        if let Some(result) = hit {
            self.inner.cache_hits.fetch_add(1, Ordering::Relaxed);
            let mut jobs = self.inner.jobs.lock().expect("jobs lock");
            jobs.insert(
                id,
                Job {
                    scenario: s,
                    status: JobStatus::Done { cached: true },
                    result: Some(result),
                },
            );
            self.inner.changed.notify_all();
            return Ok(SubmitOutcome { id, cached: true });
        }

        self.inner.jobs.lock().expect("jobs lock").insert(
            id,
            Job {
                scenario: s,
                status: JobStatus::Queued,
                result: None,
            },
        );
        match self.tx.try_send(id) {
            Ok(()) => Ok(SubmitOutcome { id, cached: false }),
            Err(TrySendError::Full(_)) => {
                self.inner.jobs.lock().expect("jobs lock").remove(&id);
                Err(SubmitError::QueueFull {
                    retry_after_secs: self.retry_after_secs,
                })
            }
            Err(TrySendError::Disconnected(_)) => {
                unreachable!("the service holds the receiver for its whole lifetime")
            }
        }
    }

    /// The job's current status, if the id exists.
    pub fn status(&self, id: u64) -> Option<JobStatus> {
        self.inner
            .jobs
            .lock()
            .expect("jobs lock")
            .get(&id)
            .map(|j| j.status.clone())
    }

    /// The job's result, once it is done.
    pub fn result(&self, id: u64) -> Option<Arc<JobResult>> {
        self.inner
            .jobs
            .lock()
            .expect("jobs lock")
            .get(&id)
            .and_then(|j| j.result.clone())
    }

    /// Blocks until the job leaves the queued/running states, returning
    /// its final status (`None` for an unknown id).
    pub fn wait_done(&self, id: u64) -> Option<JobStatus> {
        let mut jobs = self.inner.jobs.lock().expect("jobs lock");
        loop {
            match jobs.get(&id) {
                None => return None,
                Some(j) => match &j.status {
                    JobStatus::Done { .. } | JobStatus::Failed { .. } => {
                        return Some(j.status.clone())
                    }
                    JobStatus::Queued | JobStatus::Running { .. } => {
                        jobs = self.inner.changed.wait(jobs).expect("jobs lock");
                    }
                },
            }
        }
    }

    /// Current counters.
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            jobs: self.inner.next_id.load(Ordering::Relaxed) - 1,
            simulations_run: self.inner.simulations_run.load(Ordering::Relaxed),
            cache_hits: self.inner.cache_hits.load(Ordering::Relaxed),
        }
    }
}

/// The benchjson result envelope for a finished scenario: exactly the
/// document `um-sweep --json` writes for grid scenarios; other kinds
/// carry their rendered text instead of points.
pub fn result_envelope(name: &str, out: &ScenarioOutput) -> Json {
    let mut pairs = vec![
        ("bench", Json::Str(name.to_string())),
        // The scenario document fully specifies its horizons; the label
        // records the env preset, which the service never applies.
        ("scale", Json::Str("full".to_string())),
    ];
    match &out.points {
        Some(points) => pairs.push(("points", points.clone())),
        None => pairs.push(("text", Json::Str(out.text.clone()))),
    }
    obj(pairs)
}

fn parse_submission(body: &str) -> Result<Scenario, String> {
    let doc = Json::parse(body)?;
    if doc.get("scenario").is_none() {
        return Scenario::from_json(&doc);
    }
    let pairs = doc
        .as_obj()
        .ok_or_else(|| "submission: expected an object".to_string())?;
    for (k, _) in pairs {
        if k != "scenario" && k != "seed" {
            return Err(format!("submission: unknown field `{k}`"));
        }
    }
    let mut s = Scenario::from_json(doc.get("scenario").expect("checked above"))?;
    if let Some(seed) = doc.get("seed") {
        let n = seed
            .as_num()
            .ok_or_else(|| "submission.seed: expected a number".to_string())?;
        if !(n >= 0.0 && n.fract() == 0.0 && n < MAX_EXACT_SEED) {
            return Err("submission.seed: expected an exact nonnegative integer".to_string());
        }
        s.scale.seed = n as u64;
        s.validate()?;
    }
    Ok(s)
}

fn worker_loop(inner: &Arc<Inner>) {
    loop {
        // Hold the receiver lock only while dequeuing; siblings block
        // here, not during simulation.
        let id = match inner.rx.lock().expect("receiver lock").recv() {
            Ok(id) => id,
            Err(_) => return, // service dropped
        };
        run_job(inner, id);
    }
}

fn run_job(inner: &Arc<Inner>, id: u64) {
    let (scenario, total) = {
        let mut jobs = inner.jobs.lock().expect("jobs lock");
        let job = jobs.get_mut(&id).expect("admitted job exists");
        let total = job
            .scenario
            .expand()
            .map(|points| points.len())
            .unwrap_or(0);
        job.status = JobStatus::Running { done: 0, total };
        (job.scenario.clone(), total)
    };
    let key = scenario.to_json_text();
    let on_progress = |done: usize, total_points: usize| {
        let mut jobs = inner.jobs.lock().expect("jobs lock");
        if let Some(job) = jobs.get_mut(&id) {
            // Completions race; never report progress backwards.
            let prev = match job.status {
                JobStatus::Running { done, .. } => done,
                _ => 0,
            };
            if done > prev {
                job.status = JobStatus::Running {
                    done,
                    total: total_points,
                };
            }
        }
    };
    let outcome = scenario::run_with_progress(&scenario, &on_progress);
    let mut jobs = inner.jobs.lock().expect("jobs lock");
    let job = jobs.get_mut(&id).expect("admitted job exists");
    match outcome {
        Ok(out) => {
            inner.simulations_run.fetch_add(1, Ordering::Relaxed);
            let result = Arc::new(JobResult {
                envelope: result_envelope(&scenario.name, &out).render(),
                text: out.text,
            });
            inner
                .cache
                .lock()
                .expect("cache lock")
                .insert(key, Arc::clone(&result));
            job.status = JobStatus::Done { cached: false };
            job.result = Some(result);
        }
        Err(error) => {
            job.status = JobStatus::Failed { error };
        }
    }
    drop(jobs);
    let _ = total; // progress totals come from the runner's callback
    inner.changed.notify_all();
}
