//! A minimal hand-rolled HTTP/1.1 layer: exactly what the job API
//! needs, nothing more. One request per connection (`Connection:
//! close`), bodies bounded, no chunked encoding.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

/// Largest accepted request body. Scenario documents are a few KB;
/// anything near this bound is abuse, not a job.
pub const MAX_BODY_BYTES: usize = 1 << 20;

/// Headers stop being a request and start being a flood at this count.
const MAX_HEADERS: usize = 64;

/// A parsed request: method, path and the raw body bytes.
#[derive(Debug)]
pub struct Request {
    /// `GET`, `POST`, …
    pub method: String,
    /// The request target, e.g. `/jobs/3/result`.
    pub path: String,
    /// The request body (empty when no `Content-Length`).
    pub body: Vec<u8>,
}

/// Reads one request off the stream.
///
/// # Errors
///
/// Returns a message describing the malformation; callers answer it
/// with `400 Bad Request`.
pub fn read_request(stream: &TcpStream) -> Result<Request, String> {
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader
        .read_line(&mut line)
        .map_err(|e| format!("read request line: {e}"))?;
    let mut parts = line.split_whitespace();
    let method = parts
        .next()
        .ok_or("empty request line")?
        .to_ascii_uppercase();
    let path = parts
        .next()
        .ok_or("request line missing a path")?
        .to_string();
    let version = parts.next().ok_or("request line missing a version")?;
    if !version.starts_with("HTTP/1.") {
        return Err(format!("unsupported protocol {version}"));
    }

    let mut content_length = 0usize;
    for _ in 0..MAX_HEADERS {
        let mut header = String::new();
        reader
            .read_line(&mut header)
            .map_err(|e| format!("read header: {e}"))?;
        let header = header.trim_end();
        if header.is_empty() {
            let mut body = vec![0u8; content_length];
            reader
                .read_exact(&mut body)
                .map_err(|e| format!("read body: {e}"))?;
            return Ok(Request { method, path, body });
        }
        let (name, value) = header
            .split_once(':')
            .ok_or_else(|| format!("malformed header {header:?}"))?;
        if name.trim().eq_ignore_ascii_case("content-length") {
            content_length = value
                .trim()
                .parse()
                .map_err(|_| format!("bad content-length {:?}", value.trim()))?;
            if content_length > MAX_BODY_BYTES {
                return Err(format!("body of {content_length} bytes exceeds the limit"));
            }
        }
    }
    Err("too many headers".to_string())
}

/// A response about to be written: status, content type, extra headers
/// (e.g. `Retry-After`) and the body.
#[derive(Debug)]
pub struct Response {
    /// HTTP status code.
    pub status: u16,
    /// `Content-Type` value.
    pub content_type: &'static str,
    /// Extra headers appended verbatim.
    pub extra_headers: Vec<(String, String)>,
    /// Response body.
    pub body: Vec<u8>,
}

impl Response {
    /// A JSON response with no extra headers.
    pub fn json(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "application/json",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }

    /// A plain-text response with no extra headers.
    pub fn text(status: u16, body: String) -> Self {
        Self {
            status,
            content_type: "text/plain; charset=utf-8",
            extra_headers: Vec::new(),
            body: body.into_bytes(),
        }
    }
}

fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        409 => "Conflict",
        429 => "Too Many Requests",
        _ => "Internal Server Error",
    }
}

/// Writes the response and flushes; the caller closes the stream.
///
/// # Errors
///
/// Returns the underlying I/O error (the peer usually went away).
pub fn write_response(stream: &mut TcpStream, r: &Response) -> std::io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\ncontent-type: {}\r\ncontent-length: {}\r\nconnection: close\r\n",
        r.status,
        reason(r.status),
        r.content_type,
        r.body.len()
    );
    for (name, value) in &r.extra_headers {
        head.push_str(&format!("{name}: {value}\r\n"));
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    stream.write_all(&r.body)?;
    stream.flush()
}
