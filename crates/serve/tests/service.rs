//! End-to-end service conformance over real loopback sockets.
//!
//! The contract under test: anything `um-serve` hands back is
//! byte-identical to what a direct in-process run of the same scenario
//! produces; repeat submissions are cache hits that skip re-simulation;
//! a full admission queue answers 429 with a `Retry-After` hint; and
//! malformed submissions answer 400 with the scenario layer's field-path
//! errors.

use std::net::TcpListener;
use std::sync::Arc;
use std::thread;

use um_bench::benchjson::{obj, Json};
use um_bench::scenario::{self, ScenarioKind};
use um_serve::client::{self, HttpResponse};
use um_serve::server;
use um_serve::service::{JobService, ServiceConfig};

/// A one-point grid scenario small enough for 32 concurrent copies.
fn tiny_scenario(seed: u64) -> scenario::Scenario {
    let mut s = scenario::registry::sweep_default();
    s.scale.horizon_us = 3_000.0;
    s.scale.warmup_us = 300.0;
    if let ScenarioKind::Grid(g) = &mut s.kind {
        g.loads = vec![2_000.0];
        g.seeds = vec![seed];
        g.policies.truncate(1);
    }
    s.validate().expect("tiny scenario is valid");
    s
}

fn start(config: ServiceConfig) -> (std::net::SocketAddr, Arc<JobService>) {
    let service = JobService::new(config);
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = server::spawn(listener, Arc::clone(&service));
    (addr, service)
}

fn get(addr: std::net::SocketAddr, path: &str) -> HttpResponse {
    client::request(addr, "GET", path, None).expect("GET over loopback")
}

fn post(addr: std::net::SocketAddr, path: &str, body: &str) -> HttpResponse {
    client::request(addr, "POST", path, Some(body)).expect("POST over loopback")
}

/// The envelope a direct in-process run produces — what `/result` must
/// match byte-for-byte.
fn direct_envelope(s: &scenario::Scenario) -> (String, String) {
    let out = scenario::run(s).expect("direct run succeeds");
    let points = out.points.clone().expect("grid scenarios emit points");
    let envelope = obj(vec![
        ("bench", Json::Str(s.name.clone())),
        ("scale", Json::Str("full".to_string())),
        ("points", points),
    ])
    .render();
    (envelope, out.text)
}

fn submitted_id(resp: &HttpResponse) -> u64 {
    assert_eq!(resp.status, 200, "submit failed: {}", resp.body);
    Json::parse(&resp.body)
        .expect("submit answers JSON")
        .get("id")
        .and_then(Json::as_num)
        .expect("submit answers an id") as u64
}

/// Polls `/jobs/<id>` until done, checking every intermediate answer is
/// a well-formed status document.
fn poll_until_done(addr: std::net::SocketAddr, id: u64) {
    loop {
        let resp = get(addr, &format!("/jobs/{id}"));
        assert_eq!(resp.status, 200, "status failed: {}", resp.body);
        let doc = Json::parse(&resp.body).expect("status answers JSON");
        match doc.get("status").and_then(Json::as_str) {
            Some("done") => return,
            Some("queued") => {}
            Some("running") => {
                let done = doc.get("done").and_then(Json::as_num).expect("progress");
                let total = doc.get("total").and_then(Json::as_num).expect("progress");
                assert!(done <= total, "progress overshot: {done}/{total}");
            }
            other => panic!("unexpected status {other:?}: {}", resp.body),
        }
        thread::yield_now();
    }
}

#[test]
fn concurrent_submissions_match_direct_runs_byte_for_byte() {
    let (addr, _service) = start(ServiceConfig {
        workers: 4,
        queue_depth: 64,
        retry_after_secs: 1,
    });

    const CLIENTS: usize = 32;
    let handles: Vec<_> = (0..CLIENTS)
        .map(|c| {
            thread::spawn(move || {
                let s = tiny_scenario(100 + c as u64);
                let id = submitted_id(&post(addr, "/jobs", &s.to_json_text()));
                poll_until_done(addr, id);

                let (envelope, text) = direct_envelope(&s);
                let result = get(addr, &format!("/jobs/{id}/result"));
                assert_eq!(result.status, 200);
                assert_eq!(
                    result.body, envelope,
                    "service envelope diverged from the direct run"
                );
                let result_text = get(addr, &format!("/jobs/{id}/result/text"));
                assert_eq!(result_text.status, 200);
                assert_eq!(
                    result_text.body, text,
                    "service text diverged from the direct run"
                );
            })
        })
        .collect();
    for h in handles {
        h.join().expect("client thread");
    }
}

#[test]
fn repeat_submission_is_a_cache_hit_that_skips_simulation() {
    let (addr, service) = start(ServiceConfig {
        workers: 2,
        queue_depth: 8,
        retry_after_secs: 1,
    });
    let body = tiny_scenario(7).to_json_text();

    let first = post(addr, "/jobs", &body);
    let first_id = submitted_id(&first);
    assert_eq!(
        Json::parse(&first.body).unwrap().get("cached"),
        Some(&Json::Bool(false))
    );
    poll_until_done(addr, first_id);
    let fresh = get(addr, &format!("/jobs/{first_id}/result"));

    let second = post(addr, "/jobs", &body);
    let second_id = submitted_id(&second);
    assert_eq!(
        Json::parse(&second.body).unwrap().get("cached"),
        Some(&Json::Bool(true)),
        "same canonical bytes must hit the cache"
    );
    let cached = get(addr, &format!("/jobs/{second_id}/result"));
    assert_eq!(
        cached.body, fresh.body,
        "cached result must be byte-identical"
    );

    let stats = service.stats();
    assert_eq!(
        stats.simulations_run, 1,
        "the cache hit must not re-simulate"
    );
    assert_eq!(stats.cache_hits, 1);

    // A different seed is a different key: the wrapper form folds it into
    // scale.seed before canonicalization.
    let wrapper = format!("{{\"scenario\": {body}, \"seed\": 8}}");
    let third = post(addr, "/jobs", &wrapper);
    assert_eq!(
        Json::parse(&third.body).unwrap().get("cached"),
        Some(&Json::Bool(false)),
        "a new seed must miss the cache"
    );
}

#[test]
fn full_queue_answers_429_with_retry_after() {
    // Zero workers: admitted jobs sit in the queue forever, so admission
    // is deterministic — depth 2 accepts exactly two jobs.
    let (addr, _service) = start(ServiceConfig {
        workers: 0,
        queue_depth: 2,
        retry_after_secs: 3,
    });

    for seed in [1, 2] {
        let resp = post(addr, "/jobs", &tiny_scenario(seed).to_json_text());
        assert_eq!(resp.status, 200, "queue has room: {}", resp.body);
    }
    let rejected = post(addr, "/jobs", &tiny_scenario(3).to_json_text());
    assert_eq!(rejected.status, 429);
    assert_eq!(
        rejected.header("retry-after"),
        Some("3"),
        "429 must carry the Retry-After hint"
    );
    let doc = Json::parse(&rejected.body).expect("429 answers JSON");
    assert!(doc.get("error").is_some(), "429 names the condition");
}

#[test]
fn invalid_submissions_answer_400_with_field_path_errors() {
    let (addr, _service) = start(ServiceConfig {
        workers: 1,
        queue_depth: 4,
        retry_after_secs: 1,
    });

    let not_json = post(addr, "/jobs", "this is not json");
    assert_eq!(not_json.status, 400);

    // An unknown field inside the scenario document: the error must carry
    // the scenario layer's field path.
    let mut s = tiny_scenario(1).to_json_text();
    assert!(s.contains("\"name\""), "canonical text names the scenario");
    s = s.replacen("\"name\"", "\"surprise\": 1, \"name\"", 1);
    let unknown = post(addr, "/jobs", &s);
    assert_eq!(unknown.status, 400);
    assert!(
        unknown.body.contains("surprise"),
        "error must name the offending field: {}",
        unknown.body
    );

    let bad_seed = format!(
        "{{\"scenario\": {}, \"seed\": -1}}",
        tiny_scenario(1).to_json_text()
    );
    let rejected = post(addr, "/jobs", &bad_seed);
    assert_eq!(rejected.status, 400);
    assert!(
        rejected.body.contains("seed"),
        "error must name the seed: {}",
        rejected.body
    );

    let unknown_wrapper = format!(
        "{{\"scenario\": {}, \"extra\": true}}",
        tiny_scenario(1).to_json_text()
    );
    let rejected = post(addr, "/jobs", &unknown_wrapper);
    assert_eq!(rejected.status, 400);
    assert!(rejected.body.contains("extra"), "{}", rejected.body);
}

#[test]
fn registry_and_healthz_answer() {
    let (addr, _service) = start(ServiceConfig {
        workers: 1,
        queue_depth: 4,
        retry_after_secs: 1,
    });

    let registry = get(addr, "/registry");
    assert_eq!(registry.status, 200);
    let doc = Json::parse(&registry.body).expect("registry answers JSON");
    let scenarios = doc
        .get("scenarios")
        .and_then(Json::as_arr)
        .expect("registry lists scenarios");
    assert_eq!(scenarios.len(), scenario::registry::all().len());
    // Every listed document round-trips through the scenario codec.
    for s in scenarios {
        scenario::Scenario::from_json(s).expect("registry documents are canonical");
    }

    let health = get(addr, "/healthz");
    assert_eq!(health.status, 200);
    let doc = Json::parse(&health.body).expect("healthz answers JSON");
    assert_eq!(doc.get("status").and_then(Json::as_str), Some("ok"));

    let missing = get(addr, "/jobs/999");
    assert_eq!(missing.status, 404);
    let not_ready = get(addr, "/nope");
    assert_eq!(not_ready.status, 404);
}
