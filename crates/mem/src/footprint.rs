//! Handler memory-footprint and sharing model (paper §3.5, Figure 8).
//!
//! Two request handlers of the same service instance execute the same code
//! and read mostly the same initialization data; Figure 8 reports that
//! 78–99% of a handler's pages/lines are common with another handler or
//! with the instance's initialization. This module generates synthetic
//! handler footprints with that structure and measures overlap at page and
//! line granularity, exactly as the figure does.

use rand::seq::SliceRandom;
use rand::Rng;
use std::collections::BTreeSet;

/// Bytes per page (4 KB, as in the paper).
pub const PAGE_BYTES: u64 = 4096;
/// Bytes per cache line (64 B, as in the paper).
pub const LINE_BYTES: u64 = 64;

/// Statistical shape of one service's memory behaviour.
///
/// Calibrated to the paper's DeathStarBench numbers: a handler footprint of
/// ~0.5 MB, most of it read-shared with sibling handlers and with the
/// instance initialization state.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FootprintProfile {
    /// Total instruction bytes of the service binary + libraries it touches.
    pub instr_bytes: u64,
    /// Read-mostly instance data (config, connection state, cached tables).
    pub shared_data_bytes: u64,
    /// Per-request private data (stack, request buffers, scratch).
    pub private_data_bytes: u64,
    /// Fraction of the code a single handler actually executes (< 1.0:
    /// handlers skip error paths etc.).
    pub code_coverage: f64,
    /// Fraction of the shared data a single handler actually reads.
    pub shared_coverage: f64,
}

impl FootprintProfile {
    /// The paper's DeathStarBench-like default: ~0.5 MB handler footprint.
    pub fn deathstar_default() -> Self {
        Self {
            instr_bytes: 192 * 1024,
            shared_data_bytes: 256 * 1024,
            private_data_bytes: 48 * 1024,
            code_coverage: 0.92,
            shared_coverage: 0.90,
        }
    }

    /// Approximate total footprint of one handler in bytes.
    pub fn handler_bytes(&self) -> u64 {
        (self.instr_bytes as f64 * self.code_coverage) as u64
            + (self.shared_data_bytes as f64 * self.shared_coverage) as u64
            + self.private_data_bytes
    }
}

/// The set of addresses one execution touched, split by kind.
#[derive(Clone, Debug, Default)]
pub struct Footprint {
    /// Instruction line addresses (line-aligned).
    pub instr_lines: BTreeSet<u64>,
    /// Data line addresses (line-aligned).
    pub data_lines: BTreeSet<u64>,
}

impl Footprint {
    /// Page set derived from a line set.
    fn pages(lines: &BTreeSet<u64>) -> BTreeSet<u64> {
        lines.iter().map(|&l| l / PAGE_BYTES).collect()
    }

    /// Instruction pages touched.
    pub fn instr_pages(&self) -> BTreeSet<u64> {
        Self::pages(&self.instr_lines)
    }

    /// Data pages touched.
    pub fn data_pages(&self) -> BTreeSet<u64> {
        Self::pages(&self.data_lines)
    }

    /// Footprint size in bytes at line granularity.
    pub fn bytes(&self) -> u64 {
        (self.instr_lines.len() + self.data_lines.len()) as u64 * LINE_BYTES
    }
}

/// One Figure 8 bar group: common fraction of a handler's footprint at each
/// granularity (each in `\[0, 1\]`).
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct SharingReport {
    /// Data pages in common.
    pub d_page: f64,
    /// Data lines in common.
    pub d_line: f64,
    /// Instruction pages in common.
    pub i_page: f64,
    /// Instruction lines in common.
    pub i_line: f64,
}

impl SharingReport {
    /// Mean of the four fractions.
    pub fn mean(&self) -> f64 {
        (self.d_page + self.d_line + self.i_page + self.i_line) / 4.0
    }
}

/// Generates handler and initialization footprints for a service and
/// measures their sharing, reproducing Figure 8.
///
/// # Examples
///
/// ```
/// use um_mem::footprint::{FootprintGenerator, FootprintProfile};
/// use rand::SeedableRng;
///
/// let mut g = FootprintGenerator::new(FootprintProfile::deathstar_default());
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(7);
/// let a = g.handler(&mut rng);
/// let b = g.handler(&mut rng);
/// let rep = FootprintGenerator::sharing(&a, &b);
/// assert!(rep.i_line > 0.7, "handlers share most code: {:?}", rep);
/// ```
#[derive(Clone, Debug)]
pub struct FootprintGenerator {
    profile: FootprintProfile,
    /// Base of the private-data arena; advances per handler so private
    /// regions never collide.
    next_private_base: u64,
}

/// Region layout: code at 0x0000_0000, shared data at 0x4000_0000, private
/// arenas from 0x8000_0000 upward.
const CODE_BASE: u64 = 0;
const SHARED_BASE: u64 = 0x4000_0000;
const PRIVATE_BASE: u64 = 0x8000_0000;

impl FootprintGenerator {
    /// Creates a generator for one service instance.
    ///
    /// # Panics
    ///
    /// Panics if coverages are outside `(0, 1]`.
    pub fn new(profile: FootprintProfile) -> Self {
        assert!(
            profile.code_coverage > 0.0 && profile.code_coverage <= 1.0,
            "code coverage out of range"
        );
        assert!(
            profile.shared_coverage > 0.0 && profile.shared_coverage <= 1.0,
            "shared coverage out of range"
        );
        Self {
            profile,
            next_private_base: PRIVATE_BASE,
        }
    }

    /// The profile this generator draws from.
    pub fn profile(&self) -> FootprintProfile {
        self.profile
    }

    fn sample_lines<R: Rng>(
        rng: &mut R,
        base: u64,
        region_bytes: u64,
        coverage: f64,
    ) -> BTreeSet<u64> {
        let total_lines = (region_bytes / LINE_BYTES).max(1);
        let take = ((total_lines as f64 * coverage).round() as u64).clamp(1, total_lines);
        let mut all: Vec<u64> = (0..total_lines).map(|i| base + i * LINE_BYTES).collect();
        all.shuffle(rng);
        all.truncate(take as usize);
        all.into_iter().collect()
    }

    /// Generates the footprint of one request handler.
    pub fn handler<R: Rng>(&mut self, rng: &mut R) -> Footprint {
        let p = self.profile;
        let instr_lines = Self::sample_lines(rng, CODE_BASE, p.instr_bytes, p.code_coverage);
        let mut data_lines =
            Self::sample_lines(rng, SHARED_BASE, p.shared_data_bytes, p.shared_coverage);
        // Private arena: every line, disjoint from all other handlers.
        let base = self.next_private_base;
        self.next_private_base += p.private_data_bytes.next_multiple_of(PAGE_BYTES);
        for i in 0..(p.private_data_bytes / LINE_BYTES) {
            data_lines.insert(base + i * LINE_BYTES);
        }
        Footprint {
            instr_lines,
            data_lines,
        }
    }

    /// Generates the footprint of the instance initialization process: all
    /// code and all shared data (it created them), no handler-private data.
    pub fn init(&self) -> Footprint {
        let p = self.profile;
        let instr_lines = (0..(p.instr_bytes / LINE_BYTES))
            .map(|i| CODE_BASE + i * LINE_BYTES)
            .collect();
        let data_lines = (0..(p.shared_data_bytes / LINE_BYTES))
            .map(|i| SHARED_BASE + i * LINE_BYTES)
            .collect();
        Footprint {
            instr_lines,
            data_lines,
        }
    }

    /// Fraction of `a`'s footprint common with `b`, at both granularities —
    /// one Figure 8 bar group.
    pub fn sharing(a: &Footprint, b: &Footprint) -> SharingReport {
        fn frac(a: &BTreeSet<u64>, b: &BTreeSet<u64>) -> f64 {
            if a.is_empty() {
                return 0.0;
            }
            a.intersection(b).count() as f64 / a.len() as f64
        }
        SharingReport {
            d_page: frac(&a.data_pages(), &b.data_pages()),
            d_line: frac(&a.data_lines, &b.data_lines),
            i_page: frac(&a.instr_pages(), &b.instr_pages()),
            i_line: frac(&a.instr_lines, &b.instr_lines),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn gen() -> (FootprintGenerator, SmallRng) {
        (
            FootprintGenerator::new(FootprintProfile::deathstar_default()),
            SmallRng::seed_from_u64(42),
        )
    }

    #[test]
    fn handler_footprint_near_half_megabyte() {
        let (mut g, mut rng) = gen();
        let f = g.handler(&mut rng);
        let bytes = f.bytes();
        // Paper: ~0.5 MB on average.
        assert!(
            (300 * 1024..700 * 1024).contains(&bytes),
            "footprint {bytes} bytes"
        );
    }

    #[test]
    fn handlers_share_most_code_and_shared_data() {
        let (mut g, mut rng) = gen();
        let a = g.handler(&mut rng);
        let b = g.handler(&mut rng);
        let rep = FootprintGenerator::sharing(&a, &b);
        // Paper Figure 8: 78-99% common.
        assert!(rep.i_line > 0.75, "i_line {rep:?}");
        assert!(rep.i_page >= rep.i_line, "page sharing >= line sharing");
        assert!(rep.d_line > 0.5, "d_line {rep:?}");
    }

    #[test]
    fn handler_private_regions_are_disjoint() {
        let (mut g, mut rng) = gen();
        let a = g.handler(&mut rng);
        let b = g.handler(&mut rng);
        let a_priv: BTreeSet<u64> = a
            .data_lines
            .iter()
            .copied()
            .filter(|&l| l >= PRIVATE_BASE)
            .collect();
        let b_priv: BTreeSet<u64> = b
            .data_lines
            .iter()
            .copied()
            .filter(|&l| l >= PRIVATE_BASE)
            .collect();
        assert!(!a_priv.is_empty());
        assert!(a_priv.is_disjoint(&b_priv));
    }

    #[test]
    fn handler_init_sharing_high() {
        let (mut g, mut rng) = gen();
        let h = g.handler(&mut rng);
        let init = g.init();
        let rep = FootprintGenerator::sharing(&h, &init);
        // All sampled code/shared lines are inside init's full regions;
        // only handler-private data is different.
        assert_eq!(rep.i_line, 1.0);
        assert!(rep.d_line > 0.5 && rep.d_line < 1.0, "{rep:?}");
    }

    #[test]
    fn sharing_with_self_is_total() {
        let (mut g, mut rng) = gen();
        let h = g.handler(&mut rng);
        let rep = FootprintGenerator::sharing(&h, &h);
        assert_eq!(rep.mean(), 1.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let (mut g1, mut r1) = gen();
        let (mut g2, mut r2) = gen();
        assert_eq!(g1.handler(&mut r1).bytes(), g2.handler(&mut r2).bytes());
    }

    #[test]
    #[should_panic(expected = "coverage")]
    fn zero_coverage_rejected() {
        FootprintGenerator::new(FootprintProfile {
            code_coverage: 0.0,
            ..FootprintProfile::deathstar_default()
        });
    }
}
