//! Miss-status holding registers.
//!
//! Table 2 gives the paper's caches 20 MSHRs. MSHRs bound the number of
//! *distinct* outstanding misses; secondary misses to an already-pending
//! line merge into the existing entry instead of consuming a new one.

use std::collections::BTreeMap;

/// Result of attempting to allocate an MSHR for a missing line.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MshrOutcome {
    /// A new entry was allocated: this is a primary miss that goes to the
    /// next level.
    Primary,
    /// The line already has a pending miss; this request piggybacks on it.
    Secondary,
    /// All MSHRs are busy: the access must stall until one retires.
    Stall,
}

/// A file of miss-status holding registers.
///
/// # Examples
///
/// ```
/// use um_mem::mshr::{MshrFile, MshrOutcome};
///
/// let mut m = MshrFile::new(2);
/// assert_eq!(m.allocate(0x00), MshrOutcome::Primary);
/// assert_eq!(m.allocate(0x00), MshrOutcome::Secondary); // merged
/// assert_eq!(m.allocate(0x40), MshrOutcome::Primary);
/// assert_eq!(m.allocate(0x80), MshrOutcome::Stall);     // file full
/// m.retire(0x00);
/// assert_eq!(m.allocate(0x80), MshrOutcome::Primary);
/// ```
#[derive(Clone, Debug)]
pub struct MshrFile {
    capacity: usize,
    // line address -> number of merged (secondary) requests
    pending: BTreeMap<u64, u64>,
    stalls: u64,
    merges: u64,
}

impl MshrFile {
    /// Creates an MSHR file with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "an MSHR file needs at least one entry");
        Self {
            capacity,
            pending: BTreeMap::new(),
            stalls: 0,
            merges: 0,
        }
    }

    /// Attempts to track a miss on `line_addr`.
    pub fn allocate(&mut self, line_addr: u64) -> MshrOutcome {
        if let Some(count) = self.pending.get_mut(&line_addr) {
            *count += 1;
            self.merges += 1;
            return MshrOutcome::Secondary;
        }
        if self.pending.len() >= self.capacity {
            self.stalls += 1;
            return MshrOutcome::Stall;
        }
        self.pending.insert(line_addr, 0);
        MshrOutcome::Primary
    }

    /// Retires the miss on `line_addr` (fill returned), freeing its entry.
    ///
    /// Returns the number of merged secondary requests that were waiting.
    /// Retiring an address with no pending entry is a no-op returning 0,
    /// which tolerates races with flushes.
    pub fn retire(&mut self, line_addr: u64) -> u64 {
        self.pending.remove(&line_addr).unwrap_or(0)
    }

    /// Number of in-flight distinct misses.
    pub fn in_flight(&self) -> usize {
        self.pending.len()
    }

    /// Whether a miss on `line_addr` is pending.
    pub fn is_pending(&self, line_addr: u64) -> bool {
        self.pending.contains_key(&line_addr)
    }

    /// Whether the file has no free entries.
    pub fn is_full(&self) -> bool {
        self.pending.len() >= self.capacity
    }

    /// Total allocation attempts rejected for lack of entries.
    pub fn stall_count(&self) -> u64 {
        self.stalls
    }

    /// Total secondary misses merged.
    pub fn merge_count(&self) -> u64 {
        self.merges
    }

    /// Sanitizer hook: reports an `mshr-leak` violation for every entry
    /// still pending when the caller believes the file should be drained
    /// (end of simulation, core quiesce).
    #[cfg(feature = "sim-sanitizer")]
    pub fn check_drained(&self, context: &str) {
        for (line, merged) in &self.pending {
            um_sim::sanitizer::report(
                "mshr-leak",
                format!("{context}: line {line:#x} still pending ({merged} merged) at drain"),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primary_then_merge() {
        let mut m = MshrFile::new(4);
        assert_eq!(m.allocate(0x100), MshrOutcome::Primary);
        assert_eq!(m.allocate(0x100), MshrOutcome::Secondary);
        assert_eq!(m.allocate(0x100), MshrOutcome::Secondary);
        assert_eq!(m.retire(0x100), 2);
        assert_eq!(m.in_flight(), 0);
    }

    #[test]
    fn stalls_when_full() {
        let mut m = MshrFile::new(1);
        m.allocate(0);
        assert_eq!(m.allocate(64), MshrOutcome::Stall);
        assert_eq!(m.stall_count(), 1);
        assert!(m.is_full());
    }

    #[test]
    fn retire_frees_entry() {
        let mut m = MshrFile::new(1);
        m.allocate(0);
        m.retire(0);
        assert!(!m.is_full());
        assert_eq!(m.allocate(64), MshrOutcome::Primary);
    }

    #[test]
    fn retire_unknown_is_noop() {
        let mut m = MshrFile::new(1);
        assert_eq!(m.retire(0xdead), 0);
    }

    #[test]
    fn merge_does_not_consume_capacity() {
        let mut m = MshrFile::new(2);
        m.allocate(0);
        for _ in 0..100 {
            assert_eq!(m.allocate(0), MshrOutcome::Secondary);
        }
        assert_eq!(m.allocate(64), MshrOutcome::Primary);
        assert_eq!(m.merge_count(), 100);
    }

    #[test]
    #[should_panic(expected = "at least one entry")]
    fn zero_capacity_rejected() {
        MshrFile::new(0);
    }
}
