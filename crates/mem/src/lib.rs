//! Memory-system models for the uManycore reproduction.
//!
//! The paper's evaluation rests on a conventional cache/TLB hierarchy (Table
//! 2, Figure 9), a DRAM main memory (DRAMSim2 in the original), a
//! read-mostly SRAM *memory pool* chiplet holding service snapshots (§3.5,
//! §4.1), and a characterization of handler memory footprints and sharing
//! (Figure 8). This crate implements all of them from scratch:
//!
//! - [`Cache`]: set-associative, LRU, write-back cache with hit/miss
//!   statistics ([`cache`]).
//! - [`Tlb`]: a TLB as a page-granularity cache ([`tlb`]).
//! - [`MemoryHierarchy`]: composes L1I/L1D/L2(/L3) and TLB levels with the
//!   paper's round-trip latencies and an [`MshrFile`] limiting outstanding
//!   misses ([`hierarchy`], [`mshr`]).
//! - [`DramModel`]: channel/bank queueing main-memory model ([`dram`]).
//! - [`footprint`]: handler/initialization footprint sharing (Figure 8).
//! - [`pool`]: the per-cluster snapshot memory pool and instance boot-time
//!   model.
//!
//! # Examples
//!
//! ```
//! use um_mem::cache::{Cache, CacheConfig};
//!
//! // The paper's 64 KB, 8-way, 64 B-line L1.
//! let mut l1 = Cache::new(CacheConfig::new(64 * 1024, 8, 64));
//! l1.access(0x1000, false);
//! assert!(l1.access(0x1000, false).is_hit()); // second touch hits
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod dram;
pub mod footprint;
pub mod hierarchy;
pub mod mshr;
pub mod pool;
pub mod tlb;

pub use cache::{AccessResult, Cache, CacheConfig};
pub use dram::DramModel;
pub use hierarchy::{AccessKind, HierarchyConfig, MemoryHierarchy};
pub use mshr::MshrFile;
pub use tlb::{Tlb, TlbConfig};
