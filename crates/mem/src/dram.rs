//! Main-memory (DRAM) latency model.
//!
//! The paper attaches DRAMSim2 to SST; we substitute a first-order
//! channel/bank queueing model: each access maps to a (channel, bank) by
//! address interleaving, pays a fixed device latency, and queues behind
//! earlier accesses to the same bank. This captures the two behaviours the
//! evaluation depends on — a ~tens-of-ns base latency and bandwidth
//! saturation under load — without cycle-accurate DDR state machines.

use um_sim::Cycles;

/// A DRAM main-memory model with per-bank queueing.
///
/// # Examples
///
/// ```
/// use um_mem::dram::DramModel;
/// use um_sim::Cycles;
///
/// let mut d = DramModel::ddr4_server();
/// let idle = d.access(0x0, Cycles::ZERO);
/// assert!(idle >= Cycles::new(100)); // device latency
/// ```
#[derive(Clone, Debug)]
pub struct DramModel {
    channels: usize,
    banks_per_channel: usize,
    /// Fixed device access latency (row activate + CAS + transfer).
    device_latency: Cycles,
    /// Minimum gap between two accesses to the same bank (cycle time).
    bank_occupancy: Cycles,
    /// Per-bank earliest next service time.
    bank_free_at: Vec<Cycles>,
    accesses: u64,
    queued: u64,
}

impl DramModel {
    /// Table 2 main memory: 4 channels, 8 banks each, 1 GHz DDR. At the
    /// 2 GHz core clock this is ~120 cycles of device latency and ~40
    /// cycles of bank occupancy per access.
    pub fn ddr4_server() -> Self {
        Self::new(4, 8, Cycles::new(120), Cycles::new(40))
    }

    /// Creates a DRAM model.
    ///
    /// # Panics
    ///
    /// Panics if `channels` or `banks_per_channel` is zero.
    pub fn new(
        channels: usize,
        banks_per_channel: usize,
        device_latency: Cycles,
        bank_occupancy: Cycles,
    ) -> Self {
        assert!(channels > 0, "need at least one channel");
        assert!(banks_per_channel > 0, "need at least one bank");
        Self {
            channels,
            banks_per_channel,
            device_latency,
            bank_occupancy,
            bank_free_at: vec![Cycles::ZERO; channels * banks_per_channel],
            accesses: 0,
            queued: 0,
        }
    }

    /// Total number of banks.
    pub fn banks(&self) -> usize {
        self.channels * self.banks_per_channel
    }

    fn bank_of(&self, addr: u64) -> usize {
        // Interleave at 4 KB row granularity across channels then banks.
        let row = addr >> 12;
        (row % self.banks() as u64) as usize
    }

    /// Services an access arriving at `now`; returns its total latency
    /// (queueing + device).
    pub fn access(&mut self, addr: u64, now: Cycles) -> Cycles {
        self.accesses += 1;
        let bank = self.bank_of(addr);
        let start = now.max(self.bank_free_at[bank]);
        if start > now {
            self.queued += 1;
        }
        self.bank_free_at[bank] = start + self.bank_occupancy;
        (start - now) + self.device_latency
    }

    /// Number of accesses so far.
    pub fn access_count(&self) -> u64 {
        self.accesses
    }

    /// Number of accesses that experienced bank queueing.
    pub fn queued_count(&self) -> u64 {
        self.queued
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_access_pays_device_latency() {
        let mut d = DramModel::new(1, 1, Cycles::new(100), Cycles::new(10));
        assert_eq!(d.access(0, Cycles::ZERO), Cycles::new(100));
    }

    #[test]
    fn same_bank_back_to_back_queues() {
        let mut d = DramModel::new(1, 1, Cycles::new(100), Cycles::new(50));
        let first = d.access(0, Cycles::ZERO);
        let second = d.access(0, Cycles::ZERO);
        assert_eq!(first, Cycles::new(100));
        assert_eq!(second, Cycles::new(150)); // 50 queue + 100 device
        assert_eq!(d.queued_count(), 1);
    }

    #[test]
    fn different_banks_parallel() {
        let mut d = DramModel::new(2, 1, Cycles::new(100), Cycles::new(50));
        let a = d.access(0, Cycles::ZERO); // bank 0
        let b = d.access(0x1000, Cycles::ZERO); // bank 1 (next 4K row)
        assert_eq!(a, Cycles::new(100));
        assert_eq!(b, Cycles::new(100));
        assert_eq!(d.queued_count(), 0);
    }

    #[test]
    fn queue_drains_over_time() {
        let mut d = DramModel::new(1, 1, Cycles::new(100), Cycles::new(50));
        d.access(0, Cycles::ZERO);
        // Arrive after the bank freed: no queueing.
        let late = d.access(0, Cycles::new(60));
        assert_eq!(late, Cycles::new(100));
    }

    #[test]
    fn sustained_same_bank_throughput_is_occupancy_bound() {
        let mut d = DramModel::new(1, 1, Cycles::new(100), Cycles::new(50));
        let mut total_queue = Cycles::ZERO;
        for i in 0..10 {
            let lat = d.access(0, Cycles::new(i)); // near-simultaneous burst
            total_queue += lat - Cycles::new(100);
        }
        // The 10th request waits ~9 x 50 cycles.
        assert!(total_queue > Cycles::new(1_000));
    }

    #[test]
    #[should_panic(expected = "at least one channel")]
    fn zero_channels_rejected() {
        DramModel::new(0, 1, Cycles::ZERO, Cycles::ZERO);
    }
}
