//! Set-associative cache with true-LRU replacement.

use std::fmt;

/// Geometry of a cache: capacity, associativity and line size.
///
/// # Examples
///
/// ```
/// use um_mem::cache::CacheConfig;
///
/// // Table 2: uManycore L2 — 256 KB, 16-way, 64 B lines.
/// let cfg = CacheConfig::new(256 * 1024, 16, 64);
/// assert_eq!(cfg.sets(), 256);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CacheConfig {
    size_bytes: usize,
    ways: usize,
    line_bytes: usize,
}

impl CacheConfig {
    /// Creates a cache geometry.
    ///
    /// # Panics
    ///
    /// Panics unless all parameters are powers of two, `ways >= 1`, and the
    /// capacity divides evenly into `ways * line_bytes` sets.
    pub fn new(size_bytes: usize, ways: usize, line_bytes: usize) -> Self {
        assert!(size_bytes.is_power_of_two(), "size must be a power of two");
        assert!(
            line_bytes.is_power_of_two(),
            "line size must be a power of two"
        );
        assert!(ways >= 1, "need at least one way");
        assert!(
            size_bytes >= ways * line_bytes,
            "cache smaller than one set: {size_bytes} < {ways}x{line_bytes}"
        );
        assert_eq!(
            size_bytes % (ways * line_bytes),
            0,
            "capacity must divide into whole sets"
        );
        let cfg = Self {
            size_bytes,
            ways,
            line_bytes,
        };
        assert!(
            cfg.sets().is_power_of_two(),
            "set count must be a power of two"
        );
        cfg
    }

    /// Total capacity in bytes.
    pub fn size_bytes(self) -> usize {
        self.size_bytes
    }

    /// Associativity.
    pub fn ways(self) -> usize {
        self.ways
    }

    /// Line size in bytes.
    pub fn line_bytes(self) -> usize {
        self.line_bytes
    }

    /// Number of sets.
    pub fn sets(self) -> usize {
        self.size_bytes / (self.ways * self.line_bytes)
    }
}

/// Outcome of a cache access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AccessResult {
    /// The line was present.
    Hit,
    /// The line was absent; if a dirty line was displaced its address is
    /// carried so the caller can model a write-back.
    Miss {
        /// Line-aligned address of an evicted *dirty* line, if any.
        dirty_evict: Option<u64>,
    },
}

impl AccessResult {
    /// Whether the access hit.
    pub fn is_hit(self) -> bool {
        matches!(self, AccessResult::Hit)
    }

    /// Whether the access missed.
    pub fn is_miss(self) -> bool {
        !self.is_hit()
    }
}

#[derive(Clone, Copy, Debug)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotone use-stamp for true LRU.
    stamp: u64,
}

const INVALID: Line = Line {
    tag: 0,
    valid: false,
    dirty: false,
    stamp: 0,
};

/// Running hit/miss counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Total accesses.
    pub accesses: u64,
    /// Accesses that hit.
    pub hits: u64,
    /// Dirty lines displaced (write-backs generated).
    pub writebacks: u64,
}

impl CacheStats {
    /// Hit rate in `\[0, 1\]`; 0.0 before any access.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }

    /// Miss count.
    pub fn misses(&self) -> u64 {
        self.accesses - self.hits
    }
}

/// A set-associative, write-back, write-allocate cache with true LRU.
///
/// This is the building block for the paper's L1/L2/L3 caches (Table 2) and,
/// at page granularity, for TLBs. Addresses are byte addresses; the cache
/// tracks presence only (no data), which is all the timing model needs.
///
/// # Examples
///
/// ```
/// use um_mem::cache::{Cache, CacheConfig};
///
/// let mut c = Cache::new(CacheConfig::new(1024, 2, 64));
/// assert!(c.access(0x0, false).is_miss());
/// assert!(c.access(0x0, false).is_hit());
/// assert!(c.access(0x3f, false).is_hit()); // same 64B line
/// assert!(c.access(0x40, false).is_miss()); // next line
/// ```
#[derive(Clone)]
pub struct Cache {
    config: CacheConfig,
    lines: Vec<Line>,
    stats: CacheStats,
    clock: u64,
    set_shift: u32,
    set_mask: u64,
}

impl Cache {
    /// Creates an empty (all-invalid) cache.
    pub fn new(config: CacheConfig) -> Self {
        Self {
            config,
            lines: vec![INVALID; config.sets() * config.ways()],
            stats: CacheStats::default(),
            clock: 0,
            set_shift: config.line_bytes().trailing_zeros(),
            set_mask: (config.sets() - 1) as u64,
        }
    }

    /// The cache geometry.
    pub fn config(&self) -> CacheConfig {
        self.config
    }

    /// Running statistics.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets statistics but keeps cache contents (for warm-up phases).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Invalidates every line and clears statistics.
    pub fn flush(&mut self) {
        self.lines.fill(INVALID);
        self.stats = CacheStats::default();
        self.clock = 0;
    }

    fn set_index(&self, addr: u64) -> usize {
        ((addr >> self.set_shift) & self.set_mask) as usize
    }

    fn tag(&self, addr: u64) -> u64 {
        addr >> (self.set_shift + self.set_mask.count_ones())
    }

    /// Line-aligned base address reconstructed from a set index and tag.
    fn line_addr(&self, set: usize, tag: u64) -> u64 {
        (tag << (self.set_shift + self.set_mask.count_ones())) | ((set as u64) << self.set_shift)
    }

    /// Performs one access; `is_write` marks the line dirty on hit or fill.
    pub fn access(&mut self, addr: u64, is_write: bool) -> AccessResult {
        self.access_inner(addr, is_write, true)
    }

    /// Inserts `addr`'s line without counting a demand access — the
    /// prefetch fill path. Write-backs of displaced dirty lines are still
    /// counted (the traffic is real).
    pub fn fill(&mut self, addr: u64) -> AccessResult {
        self.access_inner(addr, false, false)
    }

    fn access_inner(&mut self, addr: u64, is_write: bool, demand: bool) -> AccessResult {
        self.clock += 1;
        if demand {
            self.stats.accesses += 1;
        }
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let ways = self.config.ways();
        let base = set * ways;
        let set_lines = &mut self.lines[base..base + ways];

        // Hit path.
        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.stamp = self.clock;
            line.dirty |= is_write;
            if demand {
                self.stats.hits += 1;
            }
            return AccessResult::Hit;
        }

        // Miss: fill into an invalid way, else evict true-LRU.
        let victim = set_lines
            .iter_mut()
            .min_by_key(|l| if l.valid { l.stamp } else { 0 })
            .expect("ways >= 1");
        let displaced_dirty = victim.valid && victim.dirty;
        let evicted_tag = victim.tag;
        *victim = Line {
            tag,
            valid: true,
            dirty: is_write,
            stamp: self.clock,
        };
        let dirty_evict = if displaced_dirty {
            self.stats.writebacks += 1;
            Some(self.line_addr(set, evicted_tag))
        } else {
            None
        };
        AccessResult::Miss { dirty_evict }
    }

    /// Whether `addr`'s line is currently resident (no statistics side
    /// effects, no LRU update).
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_index(addr);
        let tag = self.tag(addr);
        let ways = self.config.ways();
        self.lines[set * ways..(set + 1) * ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Number of currently valid lines.
    pub fn occupancy(&self) -> usize {
        self.lines.iter().filter(|l| l.valid).count()
    }
}

impl fmt::Debug for Cache {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Cache")
            .field("config", &self.config)
            .field("stats", &self.stats)
            .field("occupancy", &self.occupancy())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Cache {
        // 2 sets x 2 ways x 64B lines = 256B.
        Cache::new(CacheConfig::new(256, 2, 64))
    }

    #[test]
    fn config_geometry() {
        let cfg = CacheConfig::new(64 * 1024, 8, 64);
        assert_eq!(cfg.sets(), 128);
        assert_eq!(cfg.ways(), 8);
        assert_eq!(cfg.line_bytes(), 64);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_size_rejected() {
        CacheConfig::new(3000, 2, 64);
    }

    #[test]
    fn cold_miss_then_hit() {
        let mut c = tiny();
        assert!(c.access(0x100, false).is_miss());
        assert!(c.access(0x100, false).is_hit());
        assert_eq!(c.stats().accesses, 2);
        assert_eq!(c.stats().hits, 1);
    }

    #[test]
    fn same_line_offsets_hit() {
        let mut c = tiny();
        c.access(0x40, false);
        for off in 1..64 {
            assert!(c.access(0x40 + off, false).is_hit(), "offset {off}");
        }
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny();
        // Set 0 holds lines with addr bit 6 == 0 (sets are addr[6]).
        // Three distinct tags mapping to set 0: 0x000, 0x080, 0x100.
        c.access(0x000, false);
        c.access(0x080, false);
        c.access(0x000, false); // refresh 0x000 => LRU is 0x080
        assert!(c.access(0x100, false).is_miss()); // evicts 0x080
        assert!(c.probe(0x000));
        assert!(!c.probe(0x080));
        assert!(c.probe(0x100));
    }

    #[test]
    fn dirty_eviction_reports_writeback_address() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x080, false);
        let res = c.access(0x100, false); // evicts dirty 0x000
        match res {
            AccessResult::Miss {
                dirty_evict: Some(addr),
            } => assert_eq!(addr, 0x000),
            other => panic!("expected dirty eviction, got {other:?}"),
        }
        assert_eq!(c.stats().writebacks, 1);
    }

    #[test]
    fn clean_eviction_no_writeback() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x080, false);
        let res = c.access(0x100, false);
        assert_eq!(res, AccessResult::Miss { dirty_evict: None });
        assert_eq!(c.stats().writebacks, 0);
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny();
        c.access(0x000, false);
        c.access(0x000, true); // now dirty via hit
        c.access(0x080, false);
        let res = c.access(0x100, false);
        assert!(matches!(
            res,
            AccessResult::Miss {
                dirty_evict: Some(0x000)
            }
        ));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = tiny();
        c.access(0x000, false); // set 0
        c.access(0x040, false); // set 1
        c.access(0x080, false); // set 0
        assert!(c.probe(0x000) && c.probe(0x040) && c.probe(0x080));
        assert_eq!(c.occupancy(), 3);
    }

    #[test]
    fn flush_empties() {
        let mut c = tiny();
        c.access(0x0, true);
        c.flush();
        assert_eq!(c.occupancy(), 0);
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(0x0, false).is_miss());
    }

    #[test]
    fn reset_stats_keeps_contents() {
        let mut c = tiny();
        c.access(0x0, false);
        c.reset_stats();
        assert_eq!(c.stats().accesses, 0);
        assert!(c.access(0x0, false).is_hit());
    }

    #[test]
    fn working_set_within_capacity_converges_to_hits() {
        let mut c = Cache::new(CacheConfig::new(64 * 1024, 8, 64));
        let lines = 64 * 1024 / 64;
        // Touch half the capacity twice: second pass must be all hits.
        for addr in (0..lines as u64 / 2).map(|i| i * 64) {
            c.access(addr, false);
        }
        c.reset_stats();
        for addr in (0..lines as u64 / 2).map(|i| i * 64) {
            assert!(c.access(addr, false).is_hit());
        }
        assert_eq!(c.stats().hit_rate(), 1.0);
    }

    #[test]
    fn hit_rate_zero_before_accesses() {
        assert_eq!(CacheStats::default().hit_rate(), 0.0);
    }

    #[test]
    fn fill_does_not_count_as_demand() {
        let mut c = tiny();
        c.fill(0x100);
        assert_eq!(c.stats().accesses, 0);
        // The prefetched line hits on the next demand access.
        assert!(c.access(0x100, false).is_hit());
        assert_eq!(c.stats().hit_rate(), 1.0);
    }

    #[test]
    fn fill_evictions_still_write_back() {
        let mut c = tiny();
        c.access(0x000, true); // dirty
        c.access(0x080, false);
        let res = c.fill(0x100); // displaces dirty 0x000
        assert!(matches!(
            res,
            AccessResult::Miss {
                dirty_evict: Some(0x000)
            }
        ));
        assert_eq!(c.stats().writebacks, 1);
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Occupancy never exceeds capacity, and probe agrees with a
        /// shadow model of "most recently used lines per set".
        #[test]
        fn occupancy_bounded(addrs in proptest::collection::vec(0u64..1_000_000, 1..500)) {
            let cfg = CacheConfig::new(4096, 4, 64);
            let mut c = Cache::new(cfg);
            for &a in &addrs {
                c.access(a, a % 3 == 0);
            }
            prop_assert!(c.occupancy() <= cfg.sets() * cfg.ways());
            prop_assert_eq!(c.stats().accesses, addrs.len() as u64);
        }

        /// An immediately repeated access always hits.
        #[test]
        fn repeat_hits(addrs in proptest::collection::vec(0u64..1_000_000, 1..200)) {
            let mut c = Cache::new(CacheConfig::new(4096, 4, 64));
            for &a in &addrs {
                c.access(a, false);
                prop_assert!(c.access(a, false).is_hit());
            }
        }

        /// LRU with a working set no larger than one set's ways never
        /// evicts within that set.
        #[test]
        fn no_thrash_within_ways(start in 0u64..1000) {
            let cfg = CacheConfig::new(4096, 4, 64);
            let mut c = Cache::new(cfg);
            let sets = cfg.sets() as u64;
            // Four addresses mapping to the same set.
            let addrs: Vec<u64> = (0..4).map(|i| (start * 64) + i * sets * 64).collect();
            for &a in &addrs { c.access(a, false); }
            for _ in 0..8 {
                for &a in &addrs {
                    prop_assert!(c.access(a, false).is_hit());
                }
            }
        }
    }
}
