//! Multi-level cache/TLB hierarchy with Table 2 latencies.

use crate::cache::{Cache, CacheConfig, CacheStats};
use crate::dram::DramModel;
use crate::tlb::{Tlb, TlbConfig};
use um_sim::Cycles;

/// What kind of memory access is being performed.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AccessKind {
    /// Instruction fetch (uses the I-side L1 and ITLB).
    InstrFetch,
    /// Data load.
    DataRead,
    /// Data store.
    DataWrite,
}

impl AccessKind {
    fn is_write(self) -> bool {
        matches!(self, AccessKind::DataWrite)
    }

    fn is_instr(self) -> bool {
        matches!(self, AccessKind::InstrFetch)
    }
}

/// Round-trip latencies for each level, in core cycles (Table 2).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LevelLatencies {
    /// L1 cache round trip.
    pub l1: Cycles,
    /// L2 cache round trip.
    pub l2: Cycles,
    /// L3 cache round trip (ignored when the hierarchy has no L3).
    pub l3: Cycles,
    /// L1 TLB round trip.
    pub tlb1: Cycles,
    /// L2 TLB round trip (ignored when the hierarchy has no L2 TLB).
    pub tlb2: Cycles,
    /// Page-table walk on a full TLB miss.
    pub page_walk: Cycles,
}

/// Full configuration of a machine's cache/TLB hierarchy.
///
/// Two shapes appear in the paper (Table 2):
/// [`HierarchyConfig::manycore`] — the uManycore/ScaleOut two-level
/// hierarchy — and [`HierarchyConfig::server_class`] — the three-level
/// ServerClass hierarchy with a two-level TLB.
#[derive(Clone, Debug)]
pub struct HierarchyConfig {
    /// L1 instruction cache geometry.
    pub l1i: CacheConfig,
    /// L1 data cache geometry.
    pub l1d: CacheConfig,
    /// Unified L2 geometry.
    pub l2: CacheConfig,
    /// Optional unified L3 geometry (ServerClass only).
    pub l3: Option<CacheConfig>,
    /// L1 instruction TLB geometry.
    pub itlb: TlbConfig,
    /// L1 data TLB geometry.
    pub dtlb: TlbConfig,
    /// Optional unified L2 TLB geometry (ServerClass only).
    pub tlb2: Option<TlbConfig>,
    /// Per-level latencies.
    pub latencies: LevelLatencies,
    /// Number of MSHRs bounding distinct outstanding memory misses.
    pub mshrs: usize,
    /// Next-line prefetching: on an L1 miss, the following line is filled
    /// into the L1/L2 in the background. Off by default — §2.2's point is
    /// that microservices barely benefit from prefetchers, and the
    /// `prefetch` tests here let you see why (sequential monolith streams
    /// gain, small looping working sets do not).
    pub prefetch_next_line: bool,
}

impl HierarchyConfig {
    /// The uManycore / ScaleOut hierarchy (Table 2): 64 KB 8-way L1s (2-cycle
    /// RT), 256 KB 16-way shared L2 (24-cycle RT), 128-entry 4-way single
    /// level TLB (2-cycle RT), 20 MSHRs.
    pub fn manycore() -> Self {
        Self {
            l1i: CacheConfig::new(64 * 1024, 8, 64),
            l1d: CacheConfig::new(64 * 1024, 8, 64),
            l2: CacheConfig::new(256 * 1024, 16, 64),
            l3: None,
            itlb: TlbConfig::new(128, 4, 4096),
            dtlb: TlbConfig::new(128, 4, 4096),
            tlb2: None,
            latencies: LevelLatencies {
                l1: Cycles::new(2),
                l2: Cycles::new(24),
                l3: Cycles::ZERO,
                tlb1: Cycles::new(2),
                tlb2: Cycles::ZERO,
                page_walk: Cycles::new(100),
            },
            mshrs: 20,
            prefetch_next_line: false,
        }
    }

    /// The ServerClass hierarchy (Table 2): 64 KB L1 (2-cycle RT), 2 MB
    /// 16-way L2 (16-cycle RT), 2 MB/core L3 slice (40-cycle RT), 256-entry
    /// L1 DTLB (2-cycle RT), 2048-entry 12-way L2 TLB (12-cycle RT).
    ///
    /// The L2 TLB's 12 ways do not divide 2048 into power-of-two sets with
    /// the generic model, so we use 16 ways — same capacity, marginally
    /// better associativity, no measurable effect at these hit rates.
    pub fn server_class() -> Self {
        Self {
            l1i: CacheConfig::new(64 * 1024, 8, 64),
            l1d: CacheConfig::new(64 * 1024, 8, 64),
            l2: CacheConfig::new(2 * 1024 * 1024, 16, 64),
            l3: Some(CacheConfig::new(2 * 1024 * 1024, 16, 64)),
            itlb: TlbConfig::new(256, 4, 4096),
            dtlb: TlbConfig::new(256, 4, 4096),
            tlb2: Some(TlbConfig::new(2048, 16, 4096)),
            latencies: LevelLatencies {
                l1: Cycles::new(2),
                l2: Cycles::new(16),
                l3: Cycles::new(40),
                tlb1: Cycles::new(2),
                tlb2: Cycles::new(12),
                page_walk: Cycles::new(150),
            },
            mshrs: 20,
            prefetch_next_line: false,
        }
    }
}

/// Per-level statistics snapshot of a hierarchy.
#[derive(Clone, Copy, Debug, Default)]
pub struct HierarchyStats {
    /// L1 instruction cache counters.
    pub l1i: CacheStats,
    /// L1 data cache counters.
    pub l1d: CacheStats,
    /// L2 counters.
    pub l2: CacheStats,
    /// L3 counters (zero when absent).
    pub l3: CacheStats,
    /// L1 ITLB counters.
    pub itlb: CacheStats,
    /// L1 DTLB counters.
    pub dtlb: CacheStats,
    /// L2 TLB counters (zero when absent).
    pub tlb2: CacheStats,
    /// Cycles lost waiting for a free MSHR.
    pub mshr_stall_cycles: u64,
}

/// A per-core (plus shared-L2 view) cache and TLB hierarchy.
///
/// `access` returns the access latency in cycles, charging each level's
/// round-trip latency on the way down, the DRAM model on a full miss, and
/// MSHR stalls when too many misses are outstanding.
///
/// # Examples
///
/// ```
/// use um_mem::hierarchy::{AccessKind, HierarchyConfig, MemoryHierarchy};
/// use um_sim::Cycles;
///
/// let mut h = MemoryHierarchy::new(HierarchyConfig::manycore());
/// let cold = h.access(0x4000, AccessKind::DataRead, Cycles::ZERO);
/// let warm = h.access(0x4000, AccessKind::DataRead, cold);
/// assert!(warm < cold); // L1 hit after the fill
/// ```
#[derive(Clone, Debug)]
pub struct MemoryHierarchy {
    config: HierarchyConfig,
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    l3: Option<Cache>,
    itlb: Tlb,
    dtlb: Tlb,
    tlb2: Option<Tlb>,
    dram: DramModel,
    /// Completion times of outstanding misses, bounded by `config.mshrs`.
    outstanding: Vec<Cycles>,
    mshr_stall_cycles: u64,
}

impl MemoryHierarchy {
    /// Creates a cold hierarchy with the default DRAM model.
    pub fn new(config: HierarchyConfig) -> Self {
        Self::with_dram(config, DramModel::ddr4_server())
    }

    /// Creates a cold hierarchy backed by a specific DRAM model.
    pub fn with_dram(config: HierarchyConfig, dram: DramModel) -> Self {
        Self {
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            l3: config.l3.map(Cache::new),
            itlb: Tlb::new(config.itlb),
            dtlb: Tlb::new(config.dtlb),
            tlb2: config.tlb2.map(Tlb::new),
            dram,
            outstanding: Vec::new(),
            mshr_stall_cycles: 0,
            config,
        }
    }

    /// The hierarchy's configuration.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Performs one access at simulation time `now`; returns its latency.
    pub fn access(&mut self, addr: u64, kind: AccessKind, now: Cycles) -> Cycles {
        let latency = self.access_inner(addr, kind, now);
        #[cfg(feature = "sim-sanitizer")]
        self.check_post_access(addr, kind);
        latency
    }

    fn access_inner(&mut self, addr: u64, kind: AccessKind, now: Cycles) -> Cycles {
        let lat = self.config.latencies;
        let mut latency = Cycles::ZERO;

        // Address translation.
        let l1_tlb = if kind.is_instr() {
            &mut self.itlb
        } else {
            &mut self.dtlb
        };
        latency += lat.tlb1;
        if !l1_tlb.translate(addr) {
            match &mut self.tlb2 {
                Some(t2) => {
                    latency += lat.tlb2;
                    if !t2.translate(addr) {
                        latency += lat.page_walk;
                    }
                }
                None => latency += lat.page_walk,
            }
        }

        // Cache lookup.
        let l1 = if kind.is_instr() {
            &mut self.l1i
        } else {
            &mut self.l1d
        };
        latency += lat.l1;
        if l1.access(addr, kind.is_write()).is_hit() {
            return latency;
        }
        // Next-line prefetch rides the miss (no latency charged to the
        // demand access; the fill happens in the background).
        if self.config.prefetch_next_line {
            let next = addr + self.config.l1d.line_bytes() as u64;
            let l1 = if kind.is_instr() {
                &mut self.l1i
            } else {
                &mut self.l1d
            };
            l1.fill(next);
            self.l2.fill(next);
        }
        latency += lat.l2;
        if self.l2.access(addr, kind.is_write()).is_hit() {
            return latency;
        }
        if let Some(l3) = &mut self.l3 {
            latency += lat.l3;
            if l3.access(addr, kind.is_write()).is_hit() {
                return latency;
            }
        }

        // Full miss: check MSHR availability, then DRAM.
        let issue_at = now.saturating_add(latency);
        let stall = self.mshr_admit(issue_at);
        latency += stall;
        let dram_latency = self.dram.access(addr, issue_at + stall);
        latency += dram_latency;
        self.outstanding.push(now.saturating_add(latency));
        latency
    }

    /// Drops completed misses; if the file is still full, returns how long
    /// the new miss must wait for the earliest completion.
    fn mshr_admit(&mut self, now: Cycles) -> Cycles {
        self.outstanding.retain(|&t| t > now);
        if self.outstanding.len() < self.config.mshrs {
            return Cycles::ZERO;
        }
        let earliest = self
            .outstanding
            .iter()
            .copied()
            .min()
            .expect("full file is nonempty");
        let stall = earliest.saturating_sub(now);
        self.mshr_stall_cycles += stall.raw();
        // The stalled request takes the slot freed at `earliest`.
        let idx = self
            .outstanding
            .iter()
            .position(|&t| t == earliest)
            .expect("earliest exists");
        self.outstanding.swap_remove(idx);
        stall
    }

    /// Sanitizer hook: a demand access always ends with the line resident
    /// in its L1 (hits trivially, misses via the fill), and the outstanding
    /// miss list can never exceed the MSHR file.
    #[cfg(feature = "sim-sanitizer")]
    fn check_post_access(&self, addr: u64, kind: AccessKind) {
        let l1 = if kind.is_instr() {
            &self.l1i
        } else {
            &self.l1d
        };
        if !l1.probe(addr) {
            um_sim::sanitizer::report(
                "cache-residency",
                format!("address {addr:#x} absent from L1 after a demand access"),
            );
        }
        if self.outstanding.len() > self.config.mshrs {
            um_sim::sanitizer::report(
                "mshr-leak",
                format!(
                    "{} outstanding misses exceed the {}-entry MSHR file",
                    self.outstanding.len(),
                    self.config.mshrs
                ),
            );
        }
    }

    /// Per-level counters.
    pub fn stats(&self) -> HierarchyStats {
        HierarchyStats {
            l1i: self.l1i.stats(),
            l1d: self.l1d.stats(),
            l2: self.l2.stats(),
            l3: self.l3.as_ref().map(|c| c.stats()).unwrap_or_default(),
            itlb: self.itlb.stats(),
            dtlb: self.dtlb.stats(),
            tlb2: self.tlb2.as_ref().map(|t| t.stats()).unwrap_or_default(),
            mshr_stall_cycles: self.mshr_stall_cycles,
        }
    }

    /// Clears statistics (not contents) at the end of a warm-up phase.
    pub fn reset_stats(&mut self) {
        self.l1i.reset_stats();
        self.l1d.reset_stats();
        self.l2.reset_stats();
        if let Some(l3) = &mut self.l3 {
            l3.reset_stats();
        }
        self.itlb.reset_stats();
        self.dtlb.reset_stats();
        if let Some(t2) = &mut self.tlb2 {
            t2.reset_stats();
        }
        self.mshr_stall_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warm_hit_is_l1_plus_tlb() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::manycore());
        h.access(0x1000, AccessKind::DataRead, Cycles::ZERO);
        let warm = h.access(0x1000, AccessKind::DataRead, Cycles::new(1000));
        // tlb1 (2) + l1 (2)
        assert_eq!(warm, Cycles::new(4));
    }

    #[test]
    fn cold_miss_reaches_dram() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::manycore());
        let cold = h.access(0x1000, AccessKind::DataRead, Cycles::ZERO);
        // Must include page walk + L1 + L2 + DRAM latency, so well above 100.
        assert!(cold > Cycles::new(100), "cold access was only {cold}");
    }

    #[test]
    fn instr_and_data_sides_are_separate() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::manycore());
        h.access(0x1000, AccessKind::InstrFetch, Cycles::ZERO);
        assert_eq!(h.stats().l1i.accesses, 1);
        assert_eq!(h.stats().l1d.accesses, 0);
        h.access(0x1000, AccessKind::DataRead, Cycles::ZERO);
        assert_eq!(h.stats().l1d.accesses, 1);
        // The data access still misses L1d even though L1i has the line.
        assert_eq!(h.stats().l1d.hits, 0);
    }

    #[test]
    fn server_class_has_three_levels() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::server_class());
        h.access(0x8000, AccessKind::DataRead, Cycles::ZERO);
        let s = h.stats();
        assert_eq!(s.l3.accesses, 1);
        assert_eq!(s.tlb2.accesses, 1);
    }

    #[test]
    fn l2_hit_cheaper_than_miss() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::manycore());
        // Fill L2 (and L1) with line A, then evict it from tiny L1 by
        // touching many conflicting lines; L2 should still hold A.
        h.access(0x0, AccessKind::DataRead, Cycles::ZERO);
        let l1_lines = 64 * 1024 / 64;
        for i in 1..=(l1_lines as u64 * 2) {
            h.access(i * 64, AccessKind::DataRead, Cycles::new(i));
        }
        let t = Cycles::new(10_000_000);
        let l2_hit = h.access(0x0, AccessKind::DataRead, t);
        let warm = h.access(0x0, AccessKind::DataRead, t + l2_hit);
        assert!(l2_hit > warm, "L2 hit {l2_hit} should exceed L1 hit {warm}");
        assert!(
            l2_hit <= Cycles::new(2 + 2 + 24 + 150),
            "unexpected DRAM trip: {l2_hit}"
        );
    }

    #[test]
    fn mshr_pressure_stalls() {
        let cfg = HierarchyConfig {
            mshrs: 1,
            ..HierarchyConfig::manycore()
        };
        let mut h = MemoryHierarchy::new(cfg);
        // Two simultaneous cold misses with one MSHR: second must stall.
        let a = h.access(0x0000, AccessKind::DataRead, Cycles::ZERO);
        let b = h.access(0x10000, AccessKind::DataRead, Cycles::ZERO);
        assert!(b > a, "second miss {b} should stall behind first {a}");
        assert!(h.stats().mshr_stall_cycles > 0);
    }

    #[test]
    fn stats_reset() {
        let mut h = MemoryHierarchy::new(HierarchyConfig::manycore());
        h.access(0x0, AccessKind::DataWrite, Cycles::ZERO);
        h.reset_stats();
        let s = h.stats();
        assert_eq!(s.l1d.accesses, 0);
        assert_eq!(s.mshr_stall_cycles, 0);
    }

    #[test]
    fn next_line_prefetch_helps_sequential_streams() {
        let run = |prefetch: bool| {
            let cfg = HierarchyConfig {
                prefetch_next_line: prefetch,
                ..HierarchyConfig::manycore()
            };
            let mut h = MemoryHierarchy::new(cfg);
            // A cold sequential stream: every line is new.
            for i in 0..4_000u64 {
                h.access(i * 8, AccessKind::DataRead, Cycles::new(i * 400));
            }
            h.stats().l1d.hit_rate()
        };
        let base = run(false);
        let pf = run(true);
        assert!(
            pf > base + 0.05,
            "prefetching should lift a streaming hit rate: {base} -> {pf}"
        );
    }

    #[test]
    fn prefetch_is_useless_for_resident_working_sets() {
        // §2.2's microservice case: the loop already fits in L1.
        let run = |prefetch: bool| {
            let cfg = HierarchyConfig {
                prefetch_next_line: prefetch,
                ..HierarchyConfig::manycore()
            };
            let mut h = MemoryHierarchy::new(cfg);
            for pass in 0..20u64 {
                for i in 0..256u64 {
                    h.access(
                        i * 64,
                        AccessKind::DataRead,
                        Cycles::new(pass * 100_000 + i),
                    );
                }
                if pass == 0 {
                    // Steady state only: prefetching trivially halves the
                    // compulsory misses of the first pass.
                    h.reset_stats();
                }
            }
            h.stats().l1d.hit_rate()
        };
        let gain = run(true) - run(false);
        assert!(
            gain.abs() < 0.01,
            "resident working set gains nothing: {gain}"
        );
    }

    #[test]
    fn small_working_set_high_hit_rate() {
        // Figure 9's premise: a 0.5 MB handler footprint mostly fits; L1
        // hit rates exceed 95% under cyclic reuse.
        let mut h = MemoryHierarchy::new(HierarchyConfig::manycore());
        let lines: Vec<u64> = (0..512).map(|i| i * 64).collect(); // 32 KB
        for pass in 0..40 {
            for &a in &lines {
                h.access(a, AccessKind::DataRead, Cycles::new(pass * 100_000));
            }
        }
        assert!(h.stats().l1d.hit_rate() > 0.95);
    }
}
