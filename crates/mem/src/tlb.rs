//! TLB model: a page-granularity set-associative cache.

use crate::cache::{Cache, CacheConfig, CacheStats};

/// Geometry of a TLB: entry count, associativity and page size.
///
/// # Examples
///
/// ```
/// use um_mem::tlb::TlbConfig;
///
/// // Table 2: uManycore L1 DTLB — 128 entries, 4-way, 4 KB pages.
/// let cfg = TlbConfig::new(128, 4, 4096);
/// assert_eq!(cfg.entries(), 128);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TlbConfig {
    entries: usize,
    ways: usize,
    page_bytes: usize,
}

impl TlbConfig {
    /// Creates a TLB geometry.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` and `page_bytes` are powers of two and
    /// `ways` divides `entries`.
    pub fn new(entries: usize, ways: usize, page_bytes: usize) -> Self {
        assert!(
            entries.is_power_of_two(),
            "entry count must be a power of two"
        );
        assert!(
            page_bytes.is_power_of_two(),
            "page size must be a power of two"
        );
        assert!(
            ways >= 1 && entries.is_multiple_of(ways),
            "ways must divide entries"
        );
        Self {
            entries,
            ways,
            page_bytes,
        }
    }

    /// Total entries.
    pub fn entries(self) -> usize {
        self.entries
    }

    /// Associativity.
    pub fn ways(self) -> usize {
        self.ways
    }

    /// Page size in bytes.
    pub fn page_bytes(self) -> usize {
        self.page_bytes
    }
}

/// A translation lookaside buffer.
///
/// Internally a [`Cache`] whose "line size" is the page size, so one entry
/// covers one page. Dirty tracking is unused (translations are read-only).
///
/// # Examples
///
/// ```
/// use um_mem::tlb::{Tlb, TlbConfig};
///
/// let mut tlb = Tlb::new(TlbConfig::new(64, 4, 4096));
/// assert!(!tlb.translate(0x1000)); // cold miss
/// assert!(tlb.translate(0x1fff));  // same page: hit
/// ```
#[derive(Clone, Debug)]
pub struct Tlb {
    config: TlbConfig,
    inner: Cache,
}

impl Tlb {
    /// Creates an empty TLB.
    pub fn new(config: TlbConfig) -> Self {
        let cache_cfg = CacheConfig::new(
            config.entries * config.page_bytes,
            config.ways,
            config.page_bytes,
        );
        Self {
            config,
            inner: Cache::new(cache_cfg),
        }
    }

    /// The TLB geometry.
    pub fn config(&self) -> TlbConfig {
        self.config
    }

    /// Looks up the page containing `addr`; returns `true` on a TLB hit and
    /// inserts the translation on a miss.
    pub fn translate(&mut self, addr: u64) -> bool {
        self.inner.access(addr, false).is_hit()
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.inner.stats()
    }

    /// Clears statistics, keeping cached translations.
    pub fn reset_stats(&mut self) {
        self.inner.reset_stats();
    }

    /// Invalidates all translations (e.g. on address-space switch without
    /// tagged entries).
    pub fn flush(&mut self) {
        self.inner.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn page_granularity() {
        let mut t = Tlb::new(TlbConfig::new(16, 4, 4096));
        assert!(!t.translate(0x0000));
        assert!(t.translate(0x0fff)); // same 4K page
        assert!(!t.translate(0x1000)); // next page
    }

    #[test]
    fn capacity_eviction() {
        let mut t = Tlb::new(TlbConfig::new(4, 1, 4096)); // direct-mapped, 4 entries
                                                          // Pages 0 and 4 conflict in a 4-set direct-mapped TLB.
        t.translate(0x0000);
        t.translate(4 * 4096);
        assert!(
            !t.translate(0x0000),
            "conflicting page must have evicted page 0"
        );
    }

    #[test]
    fn stats_accumulate() {
        let mut t = Tlb::new(TlbConfig::new(64, 4, 4096));
        for i in 0..10u64 {
            t.translate(i * 4096);
        }
        for i in 0..10u64 {
            assert!(t.translate(i * 4096));
        }
        let s = t.stats();
        assert_eq!(s.accesses, 20);
        assert_eq!(s.hits, 10);
        assert_eq!(s.hit_rate(), 0.5);
    }

    #[test]
    fn flush_invalidates() {
        let mut t = Tlb::new(TlbConfig::new(64, 4, 4096));
        t.translate(0x2000);
        t.flush();
        assert!(!t.translate(0x2000));
    }

    #[test]
    #[should_panic(expected = "ways must divide")]
    fn bad_ways_rejected() {
        TlbConfig::new(64, 3, 4096);
    }
}
