//! The per-cluster memory pool chiplet (paper §3.5, §4.1).
//!
//! Each uManycore cluster includes a fast, read-mostly SRAM chiplet holding
//! *snapshots* of initialized service instances. Creating a new instance in
//! a village of that cluster reads the snapshot instead of re-running the
//! boot/initialization path, cutting instance creation from ~300 ms to
//! under 10 ms (paper, citing Catalyzer-style snapshot restore).

use std::collections::BTreeMap;
use um_sim::{Cycles, Frequency};

/// Why a snapshot could not be stored.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PoolError {
    /// The snapshot alone exceeds the pool's total capacity.
    SnapshotTooLarge {
        /// Requested snapshot size.
        bytes: u64,
        /// Pool capacity.
        capacity: u64,
    },
}

impl std::fmt::Display for PoolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PoolError::SnapshotTooLarge { bytes, capacity } => write!(
                f,
                "snapshot of {bytes} bytes exceeds pool capacity of {capacity} bytes"
            ),
        }
    }
}

impl std::error::Error for PoolError {}

/// A cluster's snapshot memory pool.
///
/// Stores per-service snapshots with LRU eviction when capacity is
/// exceeded, and models instance boot time with and without a snapshot.
///
/// # Examples
///
/// ```
/// use um_mem::pool::MemoryPool;
/// use um_sim::Frequency;
///
/// let mut pool = MemoryPool::new(256 * 1024 * 1024);
/// pool.store(7, 16 * 1024 * 1024).unwrap();
/// let f = Frequency::ghz(2.0);
/// let warm = pool.boot_latency(7, f);
/// let cold = pool.boot_latency(99, f); // no snapshot stored
/// assert!(warm < cold);
/// assert!(warm.as_millis(f) < 10.0); // paper: < 10 ms with snapshot
/// ```
#[derive(Clone, Debug)]
pub struct MemoryPool {
    capacity_bytes: u64,
    used_bytes: u64,
    /// service id -> (snapshot bytes, LRU stamp)
    snapshots: BTreeMap<u32, (u64, u64)>,
    clock: u64,
    hits: u64,
    misses: u64,
}

/// Cold instance boot time without a snapshot (paper: "over 300 ms").
pub const COLD_BOOT_MS: f64 = 300.0;
/// Fixed restore overhead when reading a snapshot (mapping, fixups).
pub const RESTORE_BASE_MS: f64 = 1.0;
/// Pool read bandwidth in bytes per millisecond (16 GB/s on-package SRAM).
pub const POOL_BYTES_PER_MS: f64 = 16.0 * 1024.0 * 1024.0;

impl MemoryPool {
    /// Creates an empty pool with `capacity_bytes` of SRAM.
    ///
    /// # Panics
    ///
    /// Panics if `capacity_bytes` is zero.
    pub fn new(capacity_bytes: u64) -> Self {
        assert!(capacity_bytes > 0, "pool needs nonzero capacity");
        Self {
            capacity_bytes,
            used_bytes: 0,
            snapshots: BTreeMap::new(),
            clock: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Bytes currently holding snapshots.
    pub fn used_bytes(&self) -> u64 {
        self.used_bytes
    }

    /// Stores (or refreshes) the snapshot for `service`, evicting
    /// least-recently-used snapshots if needed.
    ///
    /// # Errors
    ///
    /// Returns [`PoolError::SnapshotTooLarge`] if the snapshot cannot fit
    /// even in an empty pool.
    pub fn store(&mut self, service: u32, bytes: u64) -> Result<(), PoolError> {
        if bytes > self.capacity_bytes {
            return Err(PoolError::SnapshotTooLarge {
                bytes,
                capacity: self.capacity_bytes,
            });
        }
        self.clock += 1;
        if let Some((old, _)) = self.snapshots.remove(&service) {
            self.used_bytes -= old;
        }
        while self.used_bytes + bytes > self.capacity_bytes {
            let victim = *self
                .snapshots
                .iter()
                .min_by_key(|(_, (_, stamp))| *stamp)
                .map(|(k, _)| k)
                .expect("over capacity implies nonempty");
            let (vbytes, _) = self.snapshots.remove(&victim).expect("victim exists");
            self.used_bytes -= vbytes;
        }
        self.snapshots.insert(service, (bytes, self.clock));
        self.used_bytes += bytes;
        #[cfg(feature = "sim-sanitizer")]
        self.check_accounting();
        Ok(())
    }

    /// Sanitizer hook: the resident snapshot sizes must sum to `used_bytes`
    /// and stay within capacity, or the LRU bookkeeping has drifted.
    #[cfg(feature = "sim-sanitizer")]
    fn check_accounting(&self) {
        let sum: u64 = self.snapshots.values().map(|(bytes, _)| *bytes).sum();
        if sum != self.used_bytes || self.used_bytes > self.capacity_bytes {
            um_sim::sanitizer::report(
                "pool-accounting",
                format!(
                    "snapshot bytes sum to {sum} but used_bytes is {} (capacity {})",
                    self.used_bytes, self.capacity_bytes
                ),
            );
        }
    }

    /// Whether a snapshot for `service` is resident.
    pub fn contains(&self, service: u32) -> bool {
        self.snapshots.contains_key(&service)
    }

    /// Number of resident snapshots.
    pub fn len(&self) -> usize {
        self.snapshots.len()
    }

    /// Whether the pool is empty.
    pub fn is_empty(&self) -> bool {
        self.snapshots.is_empty()
    }

    /// Models the latency of booting a new instance of `service` at clock
    /// frequency `freq`: a snapshot restore when resident, a full cold boot
    /// otherwise. Updates LRU and hit/miss statistics.
    pub fn boot_latency(&mut self, service: u32, freq: Frequency) -> Cycles {
        self.clock += 1;
        match self.snapshots.get_mut(&service) {
            Some((bytes, stamp)) => {
                *stamp = self.clock;
                self.hits += 1;
                let ms = RESTORE_BASE_MS + *bytes as f64 / POOL_BYTES_PER_MS;
                Cycles::from_micros(ms * 1_000.0, freq)
            }
            None => {
                self.misses += 1;
                Cycles::from_micros(COLD_BOOT_MS * 1_000.0, freq)
            }
        }
    }

    /// Snapshot-hit count.
    pub fn hit_count(&self) -> u64 {
        self.hits
    }

    /// Snapshot-miss (cold boot) count.
    pub fn miss_count(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MB: u64 = 1024 * 1024;

    #[test]
    fn store_and_boot_fast() {
        let mut p = MemoryPool::new(64 * MB);
        p.store(1, 16 * MB).unwrap();
        let f = Frequency::ghz(2.0);
        let warm = p.boot_latency(1, f);
        assert!(
            warm.as_millis(f) < 10.0,
            "warm boot {} ms",
            warm.as_millis(f)
        );
        assert_eq!(p.hit_count(), 1);
    }

    #[test]
    fn cold_boot_is_300ms() {
        let mut p = MemoryPool::new(64 * MB);
        let f = Frequency::ghz(2.0);
        let cold = p.boot_latency(9, f);
        assert!((cold.as_millis(f) - 300.0).abs() < 1.0);
        assert_eq!(p.miss_count(), 1);
    }

    #[test]
    fn lru_eviction_under_pressure() {
        let mut p = MemoryPool::new(32 * MB);
        p.store(1, 16 * MB).unwrap();
        p.store(2, 16 * MB).unwrap();
        // Touch 1 so that 2 becomes LRU.
        let f = Frequency::ghz(2.0);
        p.boot_latency(1, f);
        p.store(3, 16 * MB).unwrap();
        assert!(p.contains(1));
        assert!(!p.contains(2));
        assert!(p.contains(3));
        assert!(p.used_bytes() <= p.capacity_bytes());
    }

    #[test]
    fn restore_overwrites_same_service() {
        let mut p = MemoryPool::new(32 * MB);
        p.store(1, 8 * MB).unwrap();
        p.store(1, 16 * MB).unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.used_bytes(), 16 * MB);
    }

    #[test]
    fn oversized_snapshot_rejected() {
        let mut p = MemoryPool::new(MB);
        let err = p.store(1, 2 * MB).unwrap_err();
        assert!(matches!(err, PoolError::SnapshotTooLarge { .. }));
        assert!(!format!("{err}").is_empty());
    }

    #[test]
    fn bigger_snapshot_takes_longer_to_restore() {
        let mut p = MemoryPool::new(128 * MB);
        p.store(1, 4 * MB).unwrap();
        p.store(2, 64 * MB).unwrap();
        let f = Frequency::ghz(2.0);
        assert!(p.boot_latency(2, f) > p.boot_latency(1, f));
    }
}
