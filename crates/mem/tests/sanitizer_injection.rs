//! Deliberate-violation tests for the `sim-sanitizer` memory checkers:
//! a leaked MSHR entry must surface at drain, and ordinary pool and
//! hierarchy traffic must leave the registry empty.
#![cfg(feature = "sim-sanitizer")]

use um_mem::hierarchy::{AccessKind, HierarchyConfig, MemoryHierarchy};
use um_mem::mshr::MshrFile;
use um_mem::pool::MemoryPool;
use um_sim::{sanitizer, Cycles, Frequency};

#[test]
fn leaked_mshr_entry_is_reported_at_drain() {
    let _ = sanitizer::take();
    let mut m = MshrFile::new(4);
    m.allocate(0x1000);
    m.allocate(0x2000);
    m.retire(0x1000);
    // 0x2000 never retires: the drain check must name it.
    m.check_drained("injection test");
    let violations = sanitizer::take();
    assert_eq!(violations.len(), 1, "one leak: {violations:?}");
    assert_eq!(violations[0].checker, "mshr-leak");
    assert!(
        violations[0].message.contains("0x2000"),
        "message names the leaked line: {}",
        violations[0].message
    );
}

#[test]
fn drained_mshr_file_is_clean() {
    let _ = sanitizer::take();
    let mut m = MshrFile::new(2);
    m.allocate(0x40);
    m.allocate(0x40); // merged secondary
    m.retire(0x40);
    m.check_drained("clean drain");
    assert_eq!(sanitizer::violation_count(), 0);
}

#[test]
fn pool_traffic_stays_clean() {
    let _ = sanitizer::take();
    const MB: u64 = 1024 * 1024;
    let mut p = MemoryPool::new(32 * MB);
    let f = Frequency::ghz(2.0);
    for service in 0..8u32 {
        p.store(service, 10 * MB).unwrap(); // forces LRU evictions
        p.boot_latency(service, f);
    }
    assert_eq!(sanitizer::violation_count(), 0);
}

#[test]
fn hierarchy_traffic_stays_clean() {
    let _ = sanitizer::take();
    let mut h = MemoryHierarchy::new(HierarchyConfig::manycore());
    for i in 0..2_000u64 {
        h.access(i * 64, AccessKind::DataRead, Cycles::new(i * 10));
    }
    assert_eq!(sanitizer::violation_count(), 0);
}
