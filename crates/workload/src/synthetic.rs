//! Synthetic uSuite-style benchmarks (paper §5, §6.7).
//!
//! "Like prior work \[36\], we also use synthetic benchmarks with three
//! service time distributions (exponential, lognormal, and bimodal) and
//! 2–6 blocking calls during the execution." This module builds
//! [`ServiceProfile`](crate::ServiceProfile)-compatible request plans
//! for those workloads.

use crate::dist::ServiceTimeDist;
use crate::service::{RequestPlan, RpcKind, Segment, ServiceId};
use rand::Rng;

/// A synthetic single-service workload.
///
/// # Examples
///
/// ```
/// use um_workload::synthetic::SyntheticWorkload;
/// use um_workload::ServiceTimeDist;
/// use rand::SeedableRng;
///
/// let w = SyntheticWorkload::new(ServiceTimeDist::exponential(100.0), 2, 6);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(4);
/// let plan = w.sample_plan(&mut rng);
/// assert!((2..=6).contains(&plan.rpc_count()));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SyntheticWorkload {
    /// Service-time distribution of total per-request CPU time.
    pub service_time: ServiceTimeDist,
    /// Minimum blocking calls per request.
    pub min_blocking: u32,
    /// Maximum blocking calls per request.
    pub max_blocking: u32,
    /// Storage response size in bytes.
    pub storage_bytes: u64,
}

/// The fixed id synthetic requests run under.
pub const SYNTHETIC_SERVICE: ServiceId = ServiceId::new(100);

impl SyntheticWorkload {
    /// Creates a synthetic workload with `min..=max` blocking calls.
    ///
    /// # Panics
    ///
    /// Panics unless `min_blocking <= max_blocking`.
    pub fn new(service_time: ServiceTimeDist, min_blocking: u32, max_blocking: u32) -> Self {
        assert!(
            min_blocking <= max_blocking,
            "blocking range inverted: {min_blocking} > {max_blocking}"
        );
        Self {
            service_time,
            min_blocking,
            max_blocking,
            storage_bytes: 512,
        }
    }

    /// The three paper configurations at a given mean service time: the
    /// §6.7 sweep of exponential, lognormal and bimodal distributions.
    pub fn paper_suite(mean_us: f64) -> [(&'static str, SyntheticWorkload); 3] {
        [
            (
                "Exp",
                SyntheticWorkload::new(ServiceTimeDist::exponential(mean_us), 2, 6),
            ),
            (
                "Lgn",
                SyntheticWorkload::new(ServiceTimeDist::lognormal_with_mean(mean_us, 4.0), 2, 6),
            ),
            (
                "Bim",
                // 90% short, 10% 10x-long requests with the same mean.
                SyntheticWorkload::new(
                    ServiceTimeDist::bimodal(mean_us / 1.9, mean_us * 10.0 / 1.9, 0.9),
                    2,
                    6,
                ),
            ),
        ]
    }

    /// Samples one request plan.
    pub fn sample_plan<R: Rng + ?Sized>(&self, rng: &mut R) -> RequestPlan {
        let blocking = rng.gen_range(self.min_blocking..=self.max_blocking);
        let total_us = self.service_time.sample(rng).max(1.0);
        let n_segments = blocking as usize + 1;
        let per_segment = total_us / n_segments as f64;
        let segments = (0..n_segments)
            .map(|i| Segment {
                compute_us: per_segment,
                rpc: (i + 1 < n_segments).then_some(RpcKind::Storage {
                    bytes: self.storage_bytes,
                }),
            })
            .collect();
        RequestPlan {
            service: SYNTHETIC_SERVICE,
            segments,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn blocking_calls_in_range() {
        let w = SyntheticWorkload::new(ServiceTimeDist::exponential(50.0), 2, 6);
        let mut rng = SmallRng::seed_from_u64(8);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            let plan = w.sample_plan(&mut rng);
            let n = plan.rpc_count();
            assert!((2..=6).contains(&n));
            seen.insert(n);
        }
        assert_eq!(seen.len(), 5, "all of 2..=6 should occur");
    }

    #[test]
    fn plans_never_call_other_services() {
        let w = SyntheticWorkload::new(ServiceTimeDist::exponential(50.0), 2, 6);
        let mut rng = SmallRng::seed_from_u64(8);
        for _ in 0..100 {
            assert_eq!(w.sample_plan(&mut rng).callees().count(), 0);
        }
    }

    #[test]
    fn paper_suite_means_align() {
        for (name, w) in SyntheticWorkload::paper_suite(100.0) {
            let mean = w.service_time.mean();
            assert!(
                (90.0..110.0).contains(&mean),
                "{name} mean {mean} should be ~100"
            );
        }
    }

    #[test]
    fn bimodal_suite_has_long_mode() {
        let [_, _, (_, bim)] = SyntheticWorkload::paper_suite(100.0);
        let mut rng = SmallRng::seed_from_u64(8);
        let long = (0..10_000)
            .filter(|_| bim.sample_plan(&mut rng).compute_us() > 300.0)
            .count();
        let frac = long as f64 / 10_000.0;
        assert!((0.08..0.12).contains(&frac), "long fraction {frac}");
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_rejected() {
        SyntheticWorkload::new(ServiceTimeDist::exponential(1.0), 6, 2);
    }
}
