//! Request arrival processes (paper §3.2, §5).
//!
//! The evaluation issues requests with Poisson inter-arrival times at 5 K,
//! 10 K and 15 K RPS per server ([`PoissonArrivals`]); the Alibaba
//! characterization shows arrivals are *bursty* — periods of high and low
//! demand — which the two-state Markov-modulated Poisson process
//! ([`Mmpp`]) reproduces for Figure 2.

use crate::dist::sample_exponential;
use rand::rngs::SmallRng;
use rand::Rng;
use um_sim::rng;

/// A Poisson arrival process: exponential inter-arrival times.
///
/// Times are in microseconds from zero. The iterator is infinite; bound it
/// with `take_while` or [`PoissonArrivals::within`].
///
/// # Examples
///
/// ```
/// use um_workload::PoissonArrivals;
///
/// let arrivals: Vec<f64> = PoissonArrivals::new(10_000.0, 42).within(10_000.0);
/// // 10K RPS for 10ms is about 100 arrivals.
/// assert!((50..200).contains(&arrivals.len()));
/// ```
#[derive(Clone, Debug)]
pub struct PoissonArrivals {
    mean_gap_us: f64,
    next_us: f64,
    rng: SmallRng,
}

impl PoissonArrivals {
    /// Creates a process with `rate_rps` requests per second.
    ///
    /// # Panics
    ///
    /// Panics unless `rate_rps > 0`.
    pub fn new(rate_rps: f64, seed: u64) -> Self {
        assert!(rate_rps > 0.0, "rate must be positive");
        Self {
            mean_gap_us: 1e6 / rate_rps,
            next_us: 0.0,
            rng: rng::stream(seed, "poisson-arrivals"),
        }
    }

    /// Collects all arrival times strictly before `horizon_us`.
    pub fn within(self, horizon_us: f64) -> Vec<f64> {
        let mut out = Vec::new();
        for t in self {
            if t >= horizon_us {
                break;
            }
            out.push(t);
        }
        out
    }
}

impl Iterator for PoissonArrivals {
    type Item = f64;

    fn next(&mut self) -> Option<f64> {
        self.next_us += sample_exponential(&mut self.rng, self.mean_gap_us);
        Some(self.next_us)
    }
}

/// A two-state Markov-modulated Poisson process: a *low* state and a
/// *high*-rate burst state with exponential sojourn times.
///
/// This matches the paper's observation that a server receiving a median
/// of ~500 RPS sees 1000+ RPS 20% of the time and 1500+ RPS 5% of the time
/// (Figure 2).
///
/// # Examples
///
/// ```
/// use um_workload::Mmpp;
///
/// let mut mmpp = Mmpp::alibaba_like(500.0, 7);
/// let arrivals = mmpp.within(1_000_000.0); // one second
/// assert!(!arrivals.is_empty());
/// ```
#[derive(Clone, Debug)]
pub struct Mmpp {
    low_rps: f64,
    high_rps: f64,
    /// Mean sojourn in the low state, microseconds.
    low_sojourn_us: f64,
    /// Mean sojourn in the high state, microseconds.
    high_sojourn_us: f64,
    rng: SmallRng,
}

impl Mmpp {
    /// A burst process whose long-run mean is roughly `mean_rps`: lows at
    /// ~0.75x the mean, bursts at ~3x the mean, ~12% of time in bursts.
    pub fn alibaba_like(mean_rps: f64, seed: u64) -> Self {
        Self::new(mean_rps * 0.75, mean_rps * 3.0, 220_000.0, 30_000.0, seed)
    }

    /// Creates an MMPP with explicit parameters.
    ///
    /// # Panics
    ///
    /// Panics unless rates and sojourns are positive and
    /// `high_rps >= low_rps`.
    pub fn new(
        low_rps: f64,
        high_rps: f64,
        low_sojourn_us: f64,
        high_sojourn_us: f64,
        seed: u64,
    ) -> Self {
        assert!(low_rps > 0.0 && high_rps >= low_rps, "need 0 < low <= high");
        assert!(
            low_sojourn_us > 0.0 && high_sojourn_us > 0.0,
            "sojourns must be positive"
        );
        Self {
            low_rps,
            high_rps,
            low_sojourn_us,
            high_sojourn_us,
            rng: rng::stream(seed, "mmpp-arrivals"),
        }
    }

    /// Fraction of time spent in the burst state.
    pub fn burst_fraction(&self) -> f64 {
        self.high_sojourn_us / (self.high_sojourn_us + self.low_sojourn_us)
    }

    /// Long-run average arrival rate in RPS.
    pub fn mean_rps(&self) -> f64 {
        let b = self.burst_fraction();
        b * self.high_rps + (1.0 - b) * self.low_rps
    }

    /// Generates all arrivals before `horizon_us`.
    pub fn within(&mut self, horizon_us: f64) -> Vec<f64> {
        let mut out = Vec::new();
        let mut t = 0.0;
        let mut high = false;
        let mut state_end = sample_exponential(&mut self.rng, self.low_sojourn_us);
        loop {
            let rate = if high { self.high_rps } else { self.low_rps };
            let gap = sample_exponential(&mut self.rng, 1e6 / rate);
            if t + gap < state_end.min(horizon_us) {
                t += gap;
                out.push(t);
                continue;
            }
            if state_end >= horizon_us {
                break;
            }
            // Switch state at state_end; arrivals in progress restart
            // (memorylessness makes this exact for Poisson processes).
            t = state_end;
            high = !high;
            let sojourn = if high {
                self.high_sojourn_us
            } else {
                self.low_sojourn_us
            };
            state_end += sample_exponential(&mut self.rng, sojourn);
        }
        out
    }

    /// Samples the per-interval request counts over `intervals` windows of
    /// `window_us` each — the "requests per second" samples behind the
    /// Figure 2 CDF when `window_us` is 1e6.
    pub fn rate_samples(&mut self, intervals: usize, window_us: f64) -> Vec<f64> {
        let horizon = intervals as f64 * window_us;
        let arrivals = self.within(horizon);
        let mut counts = vec![0u64; intervals];
        for a in arrivals {
            let idx = ((a / window_us) as usize).min(intervals - 1);
            counts[idx] += 1;
        }
        counts
            .into_iter()
            .map(|c| c as f64 * 1e6 / window_us)
            .collect()
    }

    /// Direct access to the generator's rng for correlated draws.
    pub fn rng_mut(&mut self) -> &mut impl Rng {
        &mut self.rng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn poisson_rate_converges() {
        let arrivals = PoissonArrivals::new(50_000.0, 1).within(1e6);
        // 50K RPS over 1s: expect 50_000 +- 3%.
        let n = arrivals.len() as f64;
        assert!((n - 50_000.0).abs() < 1_500.0, "got {n}");
    }

    #[test]
    fn poisson_is_sorted_and_positive() {
        let arrivals = PoissonArrivals::new(10_000.0, 2).within(100_000.0);
        assert!(arrivals.windows(2).all(|w| w[0] < w[1]));
        assert!(arrivals[0] > 0.0);
    }

    #[test]
    fn poisson_deterministic_per_seed() {
        let a = PoissonArrivals::new(1000.0, 7).within(100_000.0);
        let b = PoissonArrivals::new(1000.0, 7).within(100_000.0);
        let c = PoissonArrivals::new(1000.0, 8).within(100_000.0);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn poisson_cv_is_one() {
        // Exponential gaps: coefficient of variation 1.
        let arrivals = PoissonArrivals::new(10_000.0, 3).within(3e6);
        let gaps: Vec<f64> = arrivals.windows(2).map(|w| w[1] - w[0]).collect();
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean) * (g - mean)).sum::<f64>() / gaps.len() as f64;
        let cv = var.sqrt() / mean;
        assert!((cv - 1.0).abs() < 0.05, "cv {cv}");
    }

    #[test]
    fn mmpp_mean_rate_matches() {
        let mut m = Mmpp::alibaba_like(500.0, 5);
        let target = m.mean_rps();
        let arrivals = m.within(60e6); // one minute
        let rate = arrivals.len() as f64 / 60.0;
        assert!(
            (rate - target).abs() / target < 0.15,
            "rate {rate} target {target}"
        );
    }

    #[test]
    fn mmpp_is_burstier_than_poisson() {
        // Compare the variance of per-10ms counts.
        let count_var = |samples: &[f64]| {
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / samples.len() as f64
        };
        let mut m = Mmpp::alibaba_like(5_000.0, 6);
        let mmpp_rates = m.rate_samples(500, 10_000.0);
        let poisson = PoissonArrivals::new(m.mean_rps(), 6).within(500.0 * 10_000.0);
        let mut pc = vec![0u64; 500];
        for a in poisson {
            pc[((a / 10_000.0) as usize).min(499)] += 1;
        }
        let poisson_rates: Vec<f64> = pc.into_iter().map(|c| c as f64 * 100.0).collect();
        assert!(
            count_var(&mmpp_rates) > 2.0 * count_var(&poisson_rates),
            "mmpp var {} vs poisson var {}",
            count_var(&mmpp_rates),
            count_var(&poisson_rates)
        );
    }

    #[test]
    fn mmpp_rate_samples_sum_matches_arrivals() {
        let mut m = Mmpp::alibaba_like(1000.0, 9);
        let samples = m.rate_samples(100, 1e4);
        assert_eq!(samples.len(), 100);
        assert!(samples.iter().all(|&s| s >= 0.0));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_rate_rejected() {
        PoissonArrivals::new(0.0, 1);
    }

    #[test]
    #[should_panic(expected = "low <= high")]
    fn inverted_mmpp_rates_rejected() {
        Mmpp::new(100.0, 50.0, 1.0, 1.0, 1);
    }
}
