//! Services, request plans and RPC structure (paper §2.1, §3.3).
//!
//! A service request executes as a sequence of compute *segments* separated
//! by blocking RPCs — remote storage accesses or synchronous calls to
//! downstream services. This is the structure that makes context switching
//! and scheduling dominate tail latency: the Alibaba traces show a median
//! of 4.2 RPCs per request and ~14% CPU utilization (the rest is blocked
//! time).

use crate::dist::{sample_geometric, ServiceTimeDist};
use rand::Rng;

/// Identifier of a service type (not an instance).
///
/// # Examples
///
/// ```
/// use um_workload::ServiceId;
///
/// let s = ServiceId::new(3);
/// assert_eq!(s.index(), 3);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ServiceId(u32);

impl ServiceId {
    /// Creates a service id.
    pub const fn new(raw: u32) -> Self {
        ServiceId(raw)
    }

    /// The raw id.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The id as a usize index.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl std::fmt::Display for ServiceId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "svc{}", self.0)
    }
}

/// What a blocking RPC does.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum RpcKind {
    /// A read/write against remote storage (e.g. a key-value store on
    /// another server); `bytes` is the response payload size.
    Storage {
        /// Response payload bytes.
        bytes: u64,
    },
    /// A synchronous call into another service; the caller blocks until
    /// the callee's own request plan completes.
    Call {
        /// The downstream service.
        service: ServiceId,
    },
}

/// One compute segment, optionally followed by a blocking RPC.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Segment {
    /// CPU time of this segment in microseconds (on the reference core).
    pub compute_us: f64,
    /// The blocking RPC issued at the end of the segment, if any. The last
    /// segment of a plan has `None` (the request then completes).
    pub rpc: Option<RpcKind>,
}

/// A fully sampled execution plan for one request.
#[derive(Clone, Debug, PartialEq)]
pub struct RequestPlan {
    /// The service this request invokes.
    pub service: ServiceId,
    /// Compute segments; RPCs of all but the last segment block.
    pub segments: Vec<Segment>,
}

impl RequestPlan {
    /// Total CPU time across segments, in microseconds (excluding
    /// downstream callees).
    pub fn compute_us(&self) -> f64 {
        self.segments.iter().map(|s| s.compute_us).sum()
    }

    /// Number of blocking RPCs in this plan.
    pub fn rpc_count(&self) -> usize {
        self.segments.iter().filter(|s| s.rpc.is_some()).count()
    }

    /// Downstream service calls (excluding storage RPCs).
    pub fn callees(&self) -> impl Iterator<Item = ServiceId> + '_ {
        self.segments.iter().filter_map(|s| match s.rpc {
            Some(RpcKind::Call { service }) => Some(service),
            _ => None,
        })
    }
}

/// Statistical profile of one service type: how its requests are built.
///
/// # Examples
///
/// ```
/// use um_workload::{ServiceId, ServiceProfile};
/// use rand::SeedableRng;
///
/// let profile = ServiceProfile::storage_leaf("kv", ServiceId::new(0), 50.0, 2);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(5);
/// let plan = profile.sample_plan(&mut rng);
/// assert_eq!(plan.rpc_count(), 2);
/// ```
#[derive(Clone, Debug)]
pub struct ServiceProfile {
    /// Service name (the paper's app abbreviations).
    pub name: &'static str,
    /// This service's id.
    pub id: ServiceId,
    /// Distribution of per-request total CPU time.
    pub compute: ServiceTimeDist,
    /// Fixed number of storage RPCs per request.
    pub storage_calls: u32,
    /// Extra storage RPCs added geometrically (models per-request
    /// variability in data-dependent fan-out); probability of each
    /// additional call.
    pub extra_storage_p: f64,
    /// Cap on extra storage calls.
    pub extra_storage_max: u32,
    /// Downstream services called synchronously, each with an independent
    /// invocation probability.
    pub downstream: Vec<(ServiceId, f64)>,
    /// Response bytes for storage RPCs.
    pub storage_bytes: u64,
}

impl ServiceProfile {
    /// A leaf service that only performs `storage_calls` storage RPCs.
    pub fn storage_leaf(
        name: &'static str,
        id: ServiceId,
        mean_compute_us: f64,
        storage_calls: u32,
    ) -> Self {
        Self {
            name,
            id,
            compute: ServiceTimeDist::lognormal_with_mean(mean_compute_us, 0.25),
            storage_calls,
            extra_storage_p: 0.2,
            extra_storage_max: 2,
            downstream: Vec::new(),
            storage_bytes: 512,
        }
    }

    /// A mid-tier service calling the given downstream services.
    pub fn mid_tier(
        name: &'static str,
        id: ServiceId,
        mean_compute_us: f64,
        storage_calls: u32,
        downstream: Vec<(ServiceId, f64)>,
    ) -> Self {
        Self {
            name,
            id,
            compute: ServiceTimeDist::lognormal_with_mean(mean_compute_us, 0.25),
            storage_calls,
            extra_storage_p: 0.15,
            extra_storage_max: 2,
            downstream,
            storage_bytes: 512,
        }
    }

    /// Samples a concrete request plan.
    ///
    /// The sampled CPU time is split uniformly (with ±25% jitter) across
    /// `rpcs + 1` segments; storage RPCs come first, then downstream calls,
    /// matching the read-then-aggregate structure of multi-tier services.
    pub fn sample_plan<R: Rng + ?Sized>(&self, rng: &mut R) -> RequestPlan {
        let mut rpcs: Vec<RpcKind> = Vec::new();
        let storage = self.storage_calls
            + sample_geometric(rng, self.extra_storage_p, self.extra_storage_max);
        for _ in 0..storage {
            rpcs.push(RpcKind::Storage {
                bytes: self.storage_bytes,
            });
        }
        for &(svc, p) in &self.downstream {
            if rng.gen::<f64>() < p {
                rpcs.push(RpcKind::Call { service: svc });
            }
        }

        let total_us = self.compute.sample(rng).max(1.0);
        let n_segments = rpcs.len() + 1;
        // Jittered split that still sums to total_us.
        let mut weights: Vec<f64> = (0..n_segments)
            .map(|_| 0.75 + 0.5 * rng.gen::<f64>())
            .collect();
        let wsum: f64 = weights.iter().sum(); // um-tidy: allow(float-accumulation) -- serial fold over the fixed per-plan weight order
        for w in &mut weights {
            *w *= total_us / wsum;
        }

        let segments = weights
            .into_iter()
            .enumerate()
            .map(|(i, compute_us)| Segment {
                compute_us,
                rpc: rpcs.get(i).copied(),
            })
            .collect();
        RequestPlan {
            service: self.id,
            segments,
        }
    }

    /// Expected number of RPCs per request.
    pub fn mean_rpcs(&self) -> f64 {
        let extra: f64 = (1..=self.extra_storage_max)
            .map(|k| self.extra_storage_p.powi(k as i32))
            .sum(); // um-tidy: allow(float-accumulation) -- serial fold over a fixed geometric series
                    // um-tidy: allow(float-accumulation) -- serial fold over the fixed downstream-edge order
        self.storage_calls as f64 + extra + self.downstream.iter().map(|&(_, p)| p).sum::<f64>()
    }
}

/// A complete application: service profiles plus the subset that external
/// clients invoke directly (the *roots*).
///
/// [`crate::apps::SocialNetwork`] and [`crate::trainticket::TrainTicket`]
/// are both thin wrappers around this type.
///
/// # Examples
///
/// ```
/// use um_workload::apps::SocialNetwork;
///
/// let graph = SocialNetwork::new().into_graph();
/// assert_eq!(graph.roots().len(), 8);
/// ```
#[derive(Clone, Debug)]
pub struct ServiceGraph {
    profiles: Vec<ServiceProfile>,
    roots: Vec<ServiceId>,
}

impl ServiceGraph {
    /// Builds a graph from profiles (indexed by `ServiceId`) and roots.
    ///
    /// # Panics
    ///
    /// Panics if profiles' ids are not dense `0..n`, roots reference
    /// unknown services, or any downstream edge dangles.
    pub fn new(profiles: Vec<ServiceProfile>, roots: Vec<ServiceId>) -> Self {
        assert!(!profiles.is_empty(), "a graph needs at least one service");
        for (i, p) in profiles.iter().enumerate() {
            assert_eq!(p.id.index(), i, "profile ids must be dense and in order");
            for &(callee, _) in &p.downstream {
                assert!(
                    callee.index() < profiles.len(),
                    "{}: dangling downstream edge to {callee}",
                    p.name
                );
            }
        }
        assert!(!roots.is_empty(), "a graph needs at least one root");
        for r in &roots {
            assert!(r.index() < profiles.len(), "unknown root {r}");
        }
        Self { profiles, roots }
    }

    /// Number of services (roots + internal tiers).
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Never empty (construction rejects empty graphs).
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The externally invocable services.
    pub fn roots(&self) -> &[ServiceId] {
        &self.roots
    }

    /// Profile of a service.
    ///
    /// # Panics
    ///
    /// Panics for an unknown id.
    pub fn profile(&self, id: ServiceId) -> &ServiceProfile {
        &self.profiles[id.index()]
    }

    /// Iterates over all profiles in id order.
    pub fn iter(&self) -> impl Iterator<Item = &ServiceProfile> {
        self.profiles.iter()
    }

    /// Samples a request plan for `service`.
    pub fn sample_plan<R: Rng + ?Sized>(&self, service: ServiceId, rng: &mut R) -> RequestPlan {
        self.profile(service).sample_plan(rng)
    }

    /// Expands a root plan into the full tree of plans it will trigger,
    /// root first.
    ///
    /// # Panics
    ///
    /// Panics if expansion exceeds 10 000 invocations (a cyclic graph).
    pub fn expand_tree<R: Rng + ?Sized>(&self, root: ServiceId, rng: &mut R) -> Vec<RequestPlan> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        let mut guard = 0;
        while let Some(svc) = stack.pop() {
            guard += 1;
            assert!(guard < 10_000, "call graph expansion runaway");
            let plan = self.sample_plan(svc, rng);
            stack.extend(plan.callees());
            out.push(plan);
        }
        out
    }

    /// Mean number of service invocations a request of `root` triggers.
    pub fn mean_tree_size<R: Rng + ?Sized>(
        &self,
        root: ServiceId,
        rng: &mut R,
        samples: usize,
    ) -> f64 {
        (0..samples)
            .map(|_| self.expand_tree(root, rng).len())
            .sum::<usize>() as f64
            / samples as f64
    }

    /// Asserts the call graph is acyclic (DFS from every root).
    ///
    /// # Panics
    ///
    /// Panics on the first cycle found.
    pub fn assert_acyclic(&self) {
        fn dfs(g: &ServiceGraph, id: ServiceId, path: &mut Vec<ServiceId>) {
            assert!(!path.contains(&id), "cycle through {id}");
            path.push(id);
            for &(callee, _) in &g.profile(id).downstream {
                dfs(g, callee, path);
            }
            path.pop();
        }
        for &root in self.roots() {
            dfs(self, root, &mut Vec::new());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(99)
    }

    #[test]
    fn plan_segments_bracket_rpcs() {
        let p = ServiceProfile::storage_leaf("kv", ServiceId::new(1), 100.0, 3);
        let mut r = rng();
        for _ in 0..100 {
            let plan = p.sample_plan(&mut r);
            assert_eq!(plan.segments.len(), plan.rpc_count() + 1);
            assert!(plan.segments.last().expect("nonempty").rpc.is_none());
        }
    }

    #[test]
    fn compute_splits_sum_to_total() {
        let p = ServiceProfile::storage_leaf("kv", ServiceId::new(1), 100.0, 2);
        let mut r = rng();
        let plan = p.sample_plan(&mut r);
        let total = plan.compute_us();
        assert!(total > 0.0);
        // Each segment got a positive share.
        for seg in &plan.segments {
            assert!(seg.compute_us > 0.0);
        }
    }

    #[test]
    fn downstream_probability_respected() {
        let callee = ServiceId::new(7);
        let p = ServiceProfile::mid_tier("agg", ServiceId::new(2), 50.0, 0, vec![(callee, 0.5)]);
        let mut r = rng();
        let calls = (0..10_000)
            .filter(|_| p.sample_plan(&mut r).callees().any(|c| c == callee))
            .count();
        let frac = calls as f64 / 10_000.0;
        assert!((frac - 0.5).abs() < 0.03, "callee fraction {frac}");
    }

    #[test]
    fn always_invoked_downstream() {
        let callee = ServiceId::new(9);
        let p = ServiceProfile::mid_tier("agg", ServiceId::new(2), 50.0, 1, vec![(callee, 1.0)]);
        let mut r = rng();
        for _ in 0..50 {
            let plan = p.sample_plan(&mut r);
            assert!(plan.callees().any(|c| c == callee));
            assert!(plan.rpc_count() >= 2); // 1 storage + 1 call
        }
    }

    #[test]
    fn mean_rpcs_close_to_empirical() {
        let p = ServiceProfile::storage_leaf("kv", ServiceId::new(1), 100.0, 2);
        let mut r = rng();
        let emp: f64 = (0..20_000)
            .map(|_| p.sample_plan(&mut r).rpc_count() as f64)
            .sum::<f64>()
            / 20_000.0;
        assert!(
            (emp - p.mean_rpcs()).abs() < 0.05,
            "emp {emp} vs {}",
            p.mean_rpcs()
        );
    }

    #[test]
    fn service_id_display() {
        assert_eq!(ServiceId::new(4).to_string(), "svc4");
    }

    #[test]
    fn service_graph_validates() {
        let leaf = ServiceProfile::storage_leaf("leaf", ServiceId::new(0), 50.0, 1);
        let root = ServiceProfile::mid_tier(
            "root",
            ServiceId::new(1),
            80.0,
            0,
            vec![(ServiceId::new(0), 1.0)],
        );
        let g = ServiceGraph::new(vec![leaf, root], vec![ServiceId::new(1)]);
        assert_eq!(g.len(), 2);
        g.assert_acyclic();
        let mut r = rng();
        let tree = g.expand_tree(ServiceId::new(1), &mut r);
        assert_eq!(tree.len(), 2);
    }

    #[test]
    #[should_panic(expected = "dangling")]
    fn service_graph_rejects_dangling_edges() {
        let bad = ServiceProfile::mid_tier(
            "bad",
            ServiceId::new(0),
            80.0,
            0,
            vec![(ServiceId::new(9), 1.0)],
        );
        ServiceGraph::new(vec![bad], vec![ServiceId::new(0)]);
    }

    #[test]
    #[should_panic(expected = "dense")]
    fn service_graph_rejects_misordered_ids() {
        let p = ServiceProfile::storage_leaf("x", ServiceId::new(3), 50.0, 1);
        ServiceGraph::new(vec![p], vec![ServiceId::new(0)]);
    }
}
