//! Synthetic memory-address traces (paper Figure 9).
//!
//! Figure 9 reports L1/L2 TLB and cache hit rates for microservice
//! handlers. We substitute Pin-collected traces with a synthetic generator
//! that reproduces the locality structure §3.5 describes: a small handler
//! working set (~0.5 MB), strongly sequential instruction fetch with loops,
//! and data accesses mixing a hot stack, a warm shared region and cold
//! private buffers.

use crate::dist::sample_geometric;
use rand::rngs::SmallRng;
use rand::Rng;
use um_sim::rng;

/// A single memory reference.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemRef {
    /// Byte address.
    pub addr: u64,
    /// Whether this is an instruction fetch (else a data access).
    pub instr: bool,
    /// Whether a data access writes (ignored for instruction fetches).
    pub write: bool,
}

/// Shape of one handler's address stream.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceProfile {
    /// Instruction working set in bytes (hot loops + dispatch).
    pub instr_bytes: u64,
    /// Hot data (stack, descriptors) bytes.
    pub hot_data_bytes: u64,
    /// Warm shared instance data bytes.
    pub warm_data_bytes: u64,
    /// Cold per-request buffer bytes (streamed once).
    pub cold_data_bytes: u64,
    /// Probability an instruction fetch jumps to a random code location
    /// (taken branch out of line); otherwise fetch is sequential.
    pub branch_out_p: f64,
    /// Fraction of data accesses that hit the hot region.
    pub hot_frac: f64,
    /// Fraction of data accesses that hit the warm region (the remainder
    /// streams the cold region).
    pub warm_frac: f64,
    /// Fraction of data accesses that write.
    pub write_frac: f64,
}

impl TraceProfile {
    /// A microservice handler (§3.5): ~0.5-1.5 MB total footprint with the
    /// strong skew real handlers show (stack + a few hot objects dominate),
    /// so L1 hit rates land above 95% as in Figure 9.
    pub fn microservice() -> Self {
        Self {
            instr_bytes: 96 * 1024,
            hot_data_bytes: 16 * 1024,
            warm_data_bytes: 1024 * 1024,
            cold_data_bytes: 128 * 1024,
            branch_out_p: 0.05,
            hot_frac: 0.86,
            warm_frac: 0.12,
            write_frac: 0.25,
        }
    }

    /// A monolithic application: multi-MB instruction and data footprints
    /// with weaker locality and branchier control flow — the contrast
    /// behind Figure 1.
    pub fn monolith() -> Self {
        Self {
            instr_bytes: 4 * 1024 * 1024,
            hot_data_bytes: 256 * 1024,
            warm_data_bytes: 16 * 1024 * 1024,
            cold_data_bytes: 8 * 1024 * 1024,
            branch_out_p: 0.12,
            hot_frac: 0.72,
            warm_frac: 0.22,
            write_frac: 0.30,
        }
    }
}

/// Generates an interleaved instruction/data reference stream.
///
/// # Examples
///
/// ```
/// use um_workload::trace::{TraceGenerator, TraceProfile};
///
/// let mut g = TraceGenerator::new(TraceProfile::microservice(), 17);
/// let refs = g.generate(10_000);
/// assert_eq!(refs.len(), 10_000);
/// let instr = refs.iter().filter(|r| r.instr).count();
/// assert!(instr > 5_000); // roughly 3 fetches per data access
/// ```
#[derive(Clone, Debug)]
pub struct TraceGenerator {
    profile: TraceProfile,
    rng: SmallRng,
    pc: u64,
    cold_cursor: u64,
}

/// Region bases mirror `um-mem::footprint`'s layout.
const CODE_BASE: u64 = 0;
const HOT_BASE: u64 = 0x2000_0000;
const WARM_BASE: u64 = 0x4000_0000;
const COLD_BASE: u64 = 0x8000_0000;

/// Instructions fetched per data access, approximating a load/store
/// density of ~1 in 4.
const FETCHES_PER_DATA: u32 = 3;

impl TraceGenerator {
    /// Creates a generator.
    ///
    /// # Panics
    ///
    /// Panics if fractions are outside `\[0, 1\]` or region sizes are zero.
    pub fn new(profile: TraceProfile, seed: u64) -> Self {
        assert!(profile.instr_bytes > 0 && profile.hot_data_bytes > 0);
        assert!(profile.warm_data_bytes > 0 && profile.cold_data_bytes > 0);
        for f in [
            profile.branch_out_p,
            profile.hot_frac,
            profile.warm_frac,
            profile.write_frac,
        ] {
            assert!((0.0..=1.0).contains(&f), "fraction {f} out of range");
        }
        assert!(
            profile.hot_frac + profile.warm_frac <= 1.0,
            "hot + warm fractions exceed 1"
        );
        Self {
            profile,
            rng: rng::stream(seed, "mem-trace"),
            pc: CODE_BASE,
            cold_cursor: 0,
        }
    }

    fn next_instr(&mut self) -> MemRef {
        let p = self.profile;
        if self.rng.gen::<f64>() < p.branch_out_p {
            // Taken branch out of the current line; biased towards nearby
            // targets (geometric over 256-byte spans).
            let span = 256u64;
            let hops = sample_geometric(&mut self.rng, 0.6, 16) as u64 + 1;
            let dir_back = self.rng.gen::<bool>();
            let delta = hops * span;
            self.pc = if dir_back {
                self.pc.saturating_sub(delta)
            } else {
                self.pc + delta
            } % p.instr_bytes;
        } else {
            self.pc = (self.pc + 4) % p.instr_bytes;
        }
        MemRef {
            addr: CODE_BASE + self.pc,
            instr: true,
            write: false,
        }
    }

    fn next_data(&mut self) -> MemRef {
        let p = self.profile;
        let r: f64 = self.rng.gen();
        let addr = if r < p.hot_frac {
            HOT_BASE + self.rng.gen_range(0..p.hot_data_bytes / 8) * 8
        } else if r < p.hot_frac + p.warm_frac {
            // Skewed (Zipf-like) warm accesses: raising a uniform draw to
            // the fourth power concentrates most references on a small
            // prefix of the region, as real heap accesses do.
            let u: f64 = self.rng.gen();
            let offset = (u.powi(4) * (p.warm_data_bytes / 8) as f64) as u64;
            WARM_BASE + offset.min(p.warm_data_bytes / 8 - 1) * 8
        } else {
            // Streaming: sequential walk through the cold buffer.
            self.cold_cursor = (self.cold_cursor + 64) % p.cold_data_bytes;
            COLD_BASE + self.cold_cursor
        };
        MemRef {
            addr,
            instr: false,
            write: self.rng.gen::<f64>() < p.write_frac,
        }
    }

    /// Generates `n` interleaved references.
    pub fn generate(&mut self, n: usize) -> Vec<MemRef> {
        let mut out = Vec::with_capacity(n);
        let mut since_data = 0;
        while out.len() < n {
            if since_data < FETCHES_PER_DATA {
                out.push(self.next_instr());
                since_data += 1;
            } else {
                out.push(self.next_data());
                since_data = 0;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn microservice_footprint_is_bounded() {
        let mut g = TraceGenerator::new(TraceProfile::microservice(), 3);
        let refs = g.generate(100_000);
        let p = TraceProfile::microservice();
        for r in &refs {
            if r.instr {
                assert!(r.addr < CODE_BASE + p.instr_bytes);
            }
        }
        // Distinct instruction lines fit the stated instruction footprint.
        let lines: std::collections::HashSet<u64> = refs
            .iter()
            .filter(|r| r.instr)
            .map(|r| r.addr / 64)
            .collect();
        assert!(lines.len() as u64 <= p.instr_bytes / 64 + 1);
    }

    #[test]
    fn monolith_touches_more_lines() {
        let count_lines = |profile, seed| {
            let mut g = TraceGenerator::new(profile, seed);
            g.generate(200_000)
                .iter()
                .map(|r| r.addr / 64)
                .collect::<std::collections::HashSet<_>>()
                .len()
        };
        let micro = count_lines(TraceProfile::microservice(), 5);
        let mono = count_lines(TraceProfile::monolith(), 5);
        assert!(
            mono > 2 * micro,
            "monolith lines {mono} vs microservice {micro}"
        );
    }

    #[test]
    fn instruction_data_ratio() {
        let mut g = TraceGenerator::new(TraceProfile::microservice(), 7);
        let refs = g.generate(40_000);
        let instr = refs.iter().filter(|r| r.instr).count();
        let ratio = instr as f64 / refs.len() as f64;
        assert!((0.70..0.80).contains(&ratio), "instr ratio {ratio}");
    }

    #[test]
    fn writes_only_on_data() {
        let mut g = TraceGenerator::new(TraceProfile::microservice(), 9);
        for r in g.generate(10_000) {
            if r.instr {
                assert!(!r.write);
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = TraceGenerator::new(TraceProfile::microservice(), 1).generate(1000);
        let b = TraceGenerator::new(TraceProfile::microservice(), 1).generate(1000);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn bad_fractions_rejected() {
        let mut p = TraceProfile::microservice();
        p.hot_frac = 0.8;
        p.warm_frac = 0.5;
        TraceGenerator::new(p, 1);
    }
}
