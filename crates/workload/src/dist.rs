//! Service-time distributions (paper §5, §6.7).
//!
//! The synthetic benchmarks use exponential, lognormal and bimodal service
//! times, the same three families as Shinjuku's evaluation. Samplers are
//! implemented from scratch on top of `rand`'s uniform source: exponential
//! by inverse CDF, normal by Box–Muller, bimodal as a two-point mixture.

use rand::Rng;

/// A distribution of service times, in microseconds.
///
/// # Examples
///
/// ```
/// use um_workload::ServiceTimeDist;
/// use rand::SeedableRng;
///
/// let d = ServiceTimeDist::exponential(100.0);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(3);
/// let x = d.sample(&mut rng);
/// assert!(x > 0.0);
/// assert!((d.mean() - 100.0).abs() < 1e-9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum ServiceTimeDist {
    /// Exponential with the given mean.
    Exponential {
        /// Mean in microseconds.
        mean_us: f64,
    },
    /// Lognormal parameterized by the underlying normal's mu/sigma.
    LogNormal {
        /// Mean of the underlying normal (of ln X).
        mu: f64,
        /// Standard deviation of the underlying normal.
        sigma: f64,
    },
    /// Two-point bimodal: value `lo` with probability `p_lo`, else `hi`.
    Bimodal {
        /// The short service time.
        lo_us: f64,
        /// The long service time.
        hi_us: f64,
        /// Probability of the short time.
        p_lo: f64,
    },
    /// Deterministic (for tests and calibration).
    Constant {
        /// The fixed value in microseconds.
        value_us: f64,
    },
}

impl ServiceTimeDist {
    /// Exponential distribution with mean `mean_us`.
    ///
    /// # Panics
    ///
    /// Panics unless `mean_us > 0`.
    pub fn exponential(mean_us: f64) -> Self {
        assert!(mean_us > 0.0, "mean must be positive");
        ServiceTimeDist::Exponential { mean_us }
    }

    /// Lognormal distribution with the given *distribution* mean and a
    /// squared coefficient of variation `scv` (variance/mean^2).
    ///
    /// # Panics
    ///
    /// Panics unless `mean_us > 0` and `scv > 0`.
    pub fn lognormal_with_mean(mean_us: f64, scv: f64) -> Self {
        assert!(mean_us > 0.0, "mean must be positive");
        assert!(scv > 0.0, "scv must be positive");
        // For lognormal: mean = exp(mu + sigma^2/2), scv = exp(sigma^2) - 1.
        let sigma2 = (1.0 + scv).ln();
        let mu = mean_us.ln() - sigma2 / 2.0;
        ServiceTimeDist::LogNormal {
            mu,
            sigma: sigma2.sqrt(),
        }
    }

    /// Bimodal mixture.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < lo_us <= hi_us` and `p_lo` is a probability.
    pub fn bimodal(lo_us: f64, hi_us: f64, p_lo: f64) -> Self {
        assert!(lo_us > 0.0 && hi_us >= lo_us, "need 0 < lo <= hi");
        assert!((0.0..=1.0).contains(&p_lo), "p_lo must be a probability");
        ServiceTimeDist::Bimodal { lo_us, hi_us, p_lo }
    }

    /// Point mass at `value_us`.
    ///
    /// # Panics
    ///
    /// Panics unless `value_us >= 0`.
    pub fn constant(value_us: f64) -> Self {
        assert!(value_us >= 0.0, "value must be non-negative");
        ServiceTimeDist::Constant { value_us }
    }

    /// Draws one service time in microseconds (always > 0 except for
    /// `Constant { 0 }`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match *self {
            ServiceTimeDist::Exponential { mean_us } => sample_exponential(rng, mean_us),
            ServiceTimeDist::LogNormal { mu, sigma } => {
                (mu + sigma * sample_standard_normal(rng)).exp()
            }
            ServiceTimeDist::Bimodal { lo_us, hi_us, p_lo } => {
                if rng.gen::<f64>() < p_lo {
                    lo_us
                } else {
                    hi_us
                }
            }
            ServiceTimeDist::Constant { value_us } => value_us,
        }
    }

    /// Analytic mean of the distribution, in microseconds.
    pub fn mean(&self) -> f64 {
        match *self {
            ServiceTimeDist::Exponential { mean_us } => mean_us,
            ServiceTimeDist::LogNormal { mu, sigma } => (mu + sigma * sigma / 2.0).exp(),
            ServiceTimeDist::Bimodal { lo_us, hi_us, p_lo } => p_lo * lo_us + (1.0 - p_lo) * hi_us,
            ServiceTimeDist::Constant { value_us } => value_us,
        }
    }

    /// Short name for reports.
    pub fn name(&self) -> &'static str {
        match self {
            ServiceTimeDist::Exponential { .. } => "exponential",
            ServiceTimeDist::LogNormal { .. } => "lognormal",
            ServiceTimeDist::Bimodal { .. } => "bimodal",
            ServiceTimeDist::Constant { .. } => "constant",
        }
    }
}

impl std::fmt::Display for ServiceTimeDist {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}(mean={:.1}us)", self.name(), self.mean())
    }
}

/// Exponential sample with the given mean via inverse CDF.
pub fn sample_exponential<R: Rng + ?Sized>(rng: &mut R, mean: f64) -> f64 {
    // 1 - U in (0, 1]: avoids ln(0).
    let u: f64 = 1.0 - rng.gen::<f64>();
    -mean * u.ln()
}

/// Standard normal sample via Box–Muller.
pub fn sample_standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    let u1: f64 = 1.0 - rng.gen::<f64>(); // (0, 1]
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Geometric-like sample: number of successes before exceeding `p`,
/// clamped to `max`. Used for RPC fan-out counts.
pub fn sample_geometric<R: Rng + ?Sized>(rng: &mut R, p_continue: f64, max: u32) -> u32 {
    debug_assert!((0.0..1.0).contains(&p_continue));
    let mut n = 0;
    while n < max && rng.gen::<f64>() < p_continue {
        n += 1;
    }
    n
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(1234)
    }

    fn empirical_mean(d: ServiceTimeDist, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| d.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean_converges() {
        let d = ServiceTimeDist::exponential(100.0);
        let m = empirical_mean(d, 100_000);
        assert!((m - 100.0).abs() < 2.0, "empirical mean {m}");
    }

    #[test]
    fn lognormal_mean_converges() {
        let d = ServiceTimeDist::lognormal_with_mean(100.0, 1.0);
        assert!((d.mean() - 100.0).abs() < 1e-9);
        let m = empirical_mean(d, 200_000);
        assert!((m - 100.0).abs() < 3.0, "empirical mean {m}");
    }

    #[test]
    fn bimodal_mixture_weights() {
        let d = ServiceTimeDist::bimodal(10.0, 1000.0, 0.9);
        assert!((d.mean() - (0.9 * 10.0 + 0.1 * 1000.0)).abs() < 1e-9);
        let mut r = rng();
        let longs = (0..100_000).filter(|_| d.sample(&mut r) > 500.0).count();
        let frac = longs as f64 / 100_000.0;
        assert!((frac - 0.1).abs() < 0.01, "long fraction {frac}");
    }

    #[test]
    fn samples_are_positive() {
        let mut r = rng();
        for d in [
            ServiceTimeDist::exponential(5.0),
            ServiceTimeDist::lognormal_with_mean(5.0, 4.0),
            ServiceTimeDist::bimodal(1.0, 2.0, 0.5),
        ] {
            for _ in 0..10_000 {
                assert!(d.sample(&mut r) > 0.0);
            }
        }
    }

    #[test]
    fn lognormal_has_heavier_tail_than_exponential() {
        let exp = ServiceTimeDist::exponential(100.0);
        let lgn = ServiceTimeDist::lognormal_with_mean(100.0, 4.0);
        let mut r = rng();
        let p999 = |d: ServiceTimeDist, r: &mut SmallRng| {
            let mut v: Vec<f64> = (0..50_000).map(|_| d.sample(r)).collect();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
            v[(v.len() as f64 * 0.999) as usize]
        };
        assert!(p999(lgn, &mut r) > p999(exp, &mut r));
    }

    #[test]
    fn constant_is_constant() {
        let d = ServiceTimeDist::constant(42.0);
        let mut r = rng();
        for _ in 0..10 {
            assert_eq!(d.sample(&mut r), 42.0);
        }
    }

    #[test]
    fn geometric_bounded() {
        let mut r = rng();
        for _ in 0..1000 {
            assert!(sample_geometric(&mut r, 0.9, 5) <= 5);
        }
        // With p=0 the count is always 0.
        assert_eq!(sample_geometric(&mut r, 0.0, 5), 0);
    }

    #[test]
    fn standard_normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| sample_standard_normal(&mut r)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn bad_mean_rejected() {
        ServiceTimeDist::exponential(0.0);
    }

    #[test]
    fn display() {
        let d = ServiceTimeDist::exponential(10.0);
        assert!(format!("{d}").contains("exponential"));
    }
}
