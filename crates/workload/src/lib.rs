//! Microservice workload generation (paper §3, §5).
//!
//! The paper drives its evaluation with three workload sources, all rebuilt
//! here:
//!
//! 1. **DeathStarBench SocialNetwork** (§5): eight services with a
//!    multi-tier call graph, ~120 us mean request execution and ~3.1 RPC
//!    invocations per request. [`apps`] encodes statistical profiles of the
//!    eight services; [`service`] turns a profile into an executable
//!    [`RequestPlan`] — compute segments separated by blocking storage
//!    accesses and downstream service calls.
//! 2. **Alibaba production traces** (§3): [`alibaba`] synthesizes traces
//!    whose marginals match the published CDFs — per-server RPS burstiness
//!    (Figure 2), per-request CPU utilization (Figure 4) and RPC counts
//!    (Figure 5).
//! 3. **Synthetic uSuite-style benchmarks** (§5, §6.7): [`synthetic`]
//!    builds exponential / lognormal / bimodal service-time workloads with
//!    2–6 blocking calls.
//!
//! Supporting modules: [`dist`] (service-time distributions and samplers),
//! [`arrivals`] (Poisson and bursty MMPP arrival processes), and [`trace`]
//! (synthetic instruction/data address streams for the Figure 9 cache
//! experiment).
//!
//! # Examples
//!
//! ```
//! use um_workload::apps::SocialNetwork;
//! use rand::SeedableRng;
//!
//! let apps = SocialNetwork::new();
//! let mut rng = rand::rngs::SmallRng::seed_from_u64(1);
//! let plan = apps.sample_plan(SocialNetwork::CPOST, &mut rng);
//! assert!(plan.segments.len() >= 2); // ComposePost always fans out
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod alibaba;
pub mod apps;
pub mod arrivals;
pub mod dist;
pub mod service;
pub mod synthetic;
pub mod trace;
pub mod trainticket;

pub use arrivals::{Mmpp, PoissonArrivals};
pub use dist::ServiceTimeDist;
pub use service::{RequestPlan, RpcKind, Segment, ServiceGraph, ServiceId, ServiceProfile};
