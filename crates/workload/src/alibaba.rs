//! Synthetic Alibaba-like production traces (paper §3.2–§3.3).
//!
//! The paper characterizes Alibaba's production microservice traces \[50\]
//! through four published statistics, which this module reproduces by
//! construction (the real traces are not redistributable, so this is the
//! documented substitution — see DESIGN.md):
//!
//! - **Figure 2** — per-server load: median ≈500 RPS, ≥1000 RPS 20% of the
//!   time, ≥1500 RPS 5% of the time ([`AlibabaModel::server_load_rps`]).
//! - **Figure 4** — CPU utilization per request: median ≈14%, 99% of
//!   requests below 60% ([`AlibabaModel::cpu_utilization`]).
//! - **Figure 5** — RPC invocations per request: median ≈4.2, ~5% of
//!   requests with 16+ RPCs, observed up to ~40
//!   ([`AlibabaModel::rpc_count`]).
//! - **§3.3 durations** — 36.7% of invocations below 1 ms; geometric mean
//!   of the rest 2.8 ms ([`AlibabaModel::duration_ms`]).

use crate::dist::sample_standard_normal;
use rand::rngs::SmallRng;
use rand::Rng;
use um_sim::rng;

/// One synthesized per-request trace record.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TraceRecord {
    /// End-to-end duration of the dynamic invocation in milliseconds.
    pub duration_ms: f64,
    /// Fraction of the duration the request actually held a CPU.
    pub cpu_utilization: f64,
    /// Number of blocking RPC invocations the request performed.
    pub rpc_count: u32,
}

/// Generator for Alibaba-like trace marginals.
///
/// # Examples
///
/// ```
/// use um_workload::alibaba::AlibabaModel;
///
/// let mut m = AlibabaModel::new(11);
/// let rec = m.record();
/// assert!(rec.duration_ms > 0.0);
/// assert!((0.0..=1.0).contains(&rec.cpu_utilization));
/// ```
#[derive(Clone, Debug)]
pub struct AlibabaModel {
    rng: SmallRng,
}

/// Lognormal parameters fitted to Figure 2 (RPS per server).
const RPS_MEDIAN: f64 = 500.0;
const RPS_SIGMA: f64 = 0.72;

/// Lognormal parameters fitted to Figure 4 (CPU utilization).
const UTIL_MEDIAN: f64 = 0.14;
const UTIL_SIGMA: f64 = 0.588;

/// Lognormal parameters fitted to Figure 5 (RPC count).
const RPC_MEDIAN: f64 = 4.2;
const RPC_SIGMA: f64 = 0.813;
const RPC_MAX: u32 = 40;

/// §3.3 duration mixture.
const SHORT_FRACTION: f64 = 0.367;
const SHORT_MEDIAN_MS: f64 = 0.45;
const SHORT_SIGMA: f64 = 0.5;
const LONG_GEOMEAN_MS: f64 = 2.8;
const LONG_SIGMA: f64 = 0.8;

impl AlibabaModel {
    /// Creates a generator with a deterministic stream for `seed`.
    pub fn new(seed: u64) -> Self {
        Self {
            rng: rng::stream(seed, "alibaba-trace"),
        }
    }

    fn lognormal(&mut self, median: f64, sigma: f64) -> f64 {
        (median.ln() + sigma * sample_standard_normal(&mut self.rng)).exp()
    }

    /// Draws one per-server-second load sample in RPS (Figure 2).
    pub fn server_load_rps(&mut self) -> f64 {
        self.lognormal(RPS_MEDIAN, RPS_SIGMA)
    }

    /// Draws one per-request CPU utilization in `\[0, 1\]` (Figure 4).
    pub fn cpu_utilization(&mut self) -> f64 {
        self.lognormal(UTIL_MEDIAN, UTIL_SIGMA).min(1.0)
    }

    /// Draws one per-request RPC invocation count (Figure 5).
    pub fn rpc_count(&mut self) -> u32 {
        (self.lognormal(RPC_MEDIAN, RPC_SIGMA).round() as u32).min(RPC_MAX)
    }

    /// Draws one dynamic-invocation duration in milliseconds (§3.3).
    pub fn duration_ms(&mut self) -> f64 {
        if self.rng.gen::<f64>() < SHORT_FRACTION {
            // Sub-millisecond invocations.
            self.lognormal(SHORT_MEDIAN_MS, SHORT_SIGMA).min(0.999)
        } else {
            self.lognormal(LONG_GEOMEAN_MS, LONG_SIGMA).max(1.0)
        }
    }

    /// Draws one complete record.
    pub fn record(&mut self) -> TraceRecord {
        TraceRecord {
            duration_ms: self.duration_ms(),
            cpu_utilization: self.cpu_utilization(),
            rpc_count: self.rpc_count(),
        }
    }

    /// Draws `n` records.
    pub fn records(&mut self, n: usize) -> Vec<TraceRecord> {
        (0..n).map(|_| self.record()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use um_stats::Cdf;

    fn model() -> AlibabaModel {
        AlibabaModel::new(42)
    }

    const N: usize = 100_000;

    #[test]
    fn figure2_rps_quantiles() {
        let mut m = model();
        let cdf = Cdf::from_samples((0..N).map(|_| m.server_load_rps()));
        let median = cdf.inverse(0.5);
        let p80 = cdf.inverse(0.80);
        let p95 = cdf.inverse(0.95);
        assert!((450.0..550.0).contains(&median), "median {median}");
        // Paper: >= 1000 RPS 20% of the time.
        assert!((800.0..1200.0).contains(&p80), "p80 {p80}");
        // Paper: >= 1500 RPS 5% of the time.
        assert!((1300.0..1900.0).contains(&p95), "p95 {p95}");
    }

    #[test]
    fn figure4_utilization_quantiles() {
        let mut m = model();
        let cdf = Cdf::from_samples((0..N).map(|_| m.cpu_utilization()));
        let median = cdf.inverse(0.5);
        let p99 = cdf.inverse(0.99);
        assert!((0.12..0.16).contains(&median), "median {median}");
        assert!(p99 < 0.62, "p99 {p99}, paper: 99% below 60%");
        assert!(cdf.inverse(1.0) <= 1.0);
    }

    #[test]
    fn figure5_rpc_quantiles() {
        let mut m = model();
        let samples: Vec<f64> = (0..N).map(|_| m.rpc_count() as f64).collect();
        let cdf = Cdf::from_samples(samples.iter().copied());
        let median = cdf.inverse(0.5);
        assert!((3.5..5.0).contains(&median), "median {median}, paper ~4.2");
        // Paper: about 5% of requests invoke 16 or more RPCs.
        let frac16 = samples.iter().filter(|&&s| s >= 16.0).count() as f64 / N as f64;
        assert!((0.02..0.09).contains(&frac16), "frac >= 16 rpcs: {frac16}");
        assert!(samples.iter().all(|&s| s <= RPC_MAX as f64));
    }

    #[test]
    fn duration_mixture_matches_paper() {
        let mut m = model();
        let durations: Vec<f64> = (0..N).map(|_| m.duration_ms()).collect();
        let sub_ms = durations.iter().filter(|&&d| d < 1.0).count() as f64 / N as f64;
        assert!(
            (0.33..0.41).contains(&sub_ms),
            "sub-ms fraction {sub_ms}, paper 36.7%"
        );
        let long: Vec<f64> = durations.iter().copied().filter(|&d| d >= 1.0).collect();
        let geomean = um_stats::summary::geomean(&long);
        assert!(
            (2.2..3.4).contains(&geomean),
            "long geomean {geomean} ms, paper 2.8"
        );
    }

    #[test]
    fn records_are_plausible() {
        let mut m = model();
        for rec in m.records(1_000) {
            assert!(rec.duration_ms > 0.0);
            assert!((0.0..=1.0).contains(&rec.cpu_utilization));
            assert!(rec.rpc_count <= RPC_MAX);
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let a = AlibabaModel::new(1).records(100);
        let b = AlibabaModel::new(1).records(100);
        let c = AlibabaModel::new(2).records(100);
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
