//! The TrainTicket application suite (paper §3).
//!
//! Besides DeathStarBench, the paper's characterization runs TrainTicket
//! \[96\], a train-booking system and the other large open-source
//! microservice benchmark. We model its booking-path core: query/order/
//! payment front services over station, train, route, seat and user
//! mid-tiers, backed by the same storage tiers as the SocialNetwork suite
//! (MySQL-like and Redis-like instances running on the cluster).
//!
//! The paper reports that its results "are similar for the other
//! applications of the benchmark suite"; the `other_suites` bench checks
//! that claim against this graph.

use crate::service::{RequestPlan, ServiceGraph, ServiceId, ServiceProfile};
use rand::Rng;

/// The TrainTicket booking-path application graph.
///
/// # Examples
///
/// ```
/// use um_workload::trainticket::TrainTicket;
///
/// let apps = TrainTicket::new();
/// assert_eq!(apps.len(), 12);
/// assert_eq!(TrainTicket::ALL.len(), 4);
/// ```
#[derive(Clone, Debug)]
pub struct TrainTicket {
    graph: ServiceGraph,
}

impl TrainTicket {
    /// Travel query: search trips between stations.
    pub const TRAVEL: ServiceId = ServiceId::new(0);
    /// Ticket ordering (the write path).
    pub const ORDER: ServiceId = ServiceId::new(1);
    /// Payment processing.
    pub const PAYMENT: ServiceId = ServiceId::new(2);
    /// Ticket cancellation / rebooking.
    pub const CANCEL: ServiceId = ServiceId::new(3);
    /// Station metadata service.
    pub const STATION: ServiceId = ServiceId::new(4);
    /// Train metadata service.
    pub const TRAIN: ServiceId = ServiceId::new(5);
    /// Route computation service.
    pub const ROUTE: ServiceId = ServiceId::new(6);
    /// Seat inventory service.
    pub const SEAT: ServiceId = ServiceId::new(7);
    /// User/auth service.
    pub const USER: ServiceId = ServiceId::new(8);
    /// Notification (email/push) service.
    pub const NOTIFY: ServiceId = ServiceId::new(9);
    /// MySQL-like relational store tier.
    pub const MYSQL: ServiceId = ServiceId::new(10);
    /// Redis-like cache tier.
    pub const REDIS: ServiceId = ServiceId::new(11);

    /// The root services external clients invoke.
    pub const ALL: [ServiceId; 4] = [Self::TRAVEL, Self::ORDER, Self::PAYMENT, Self::CANCEL];

    /// Builds the application graph.
    pub fn new() -> Self {
        let backend = |name, id, compute_us| {
            let mut p = ServiceProfile::storage_leaf(name, id, compute_us, 0);
            p.extra_storage_p = 0.08;
            p.extra_storage_max = 1;
            p
        };
        let profiles = vec![
            // Travel query: route + train + seat availability fan-out.
            ServiceProfile::mid_tier(
                "Travel",
                Self::TRAVEL,
                160.0,
                0,
                vec![
                    (Self::ROUTE, 1.0),
                    (Self::TRAIN, 0.9),
                    (Self::SEAT, 0.8),
                    (Self::REDIS, 0.6),
                ],
            ),
            // Order: the booking write path.
            ServiceProfile::mid_tier(
                "Order",
                Self::ORDER,
                190.0,
                0,
                vec![
                    (Self::USER, 1.0),
                    (Self::SEAT, 1.0),
                    (Self::MYSQL, 0.9),
                    (Self::NOTIFY, 0.5),
                ],
            ),
            // Payment: verify user, settle, persist.
            ServiceProfile::mid_tier(
                "Payment",
                Self::PAYMENT,
                140.0,
                0,
                vec![(Self::USER, 1.0), (Self::MYSQL, 1.0), (Self::NOTIFY, 0.4)],
            ),
            // Cancel: release seat, refund, notify.
            ServiceProfile::mid_tier(
                "Cancel",
                Self::CANCEL,
                130.0,
                0,
                vec![(Self::SEAT, 1.0), (Self::MYSQL, 0.8), (Self::NOTIFY, 0.7)],
            ),
            // Mid-tiers.
            ServiceProfile::mid_tier("Station", Self::STATION, 80.0, 0, vec![(Self::REDIS, 0.9)]),
            ServiceProfile::mid_tier(
                "Train",
                Self::TRAIN,
                90.0,
                0,
                vec![(Self::REDIS, 0.8), (Self::MYSQL, 0.4)],
            ),
            ServiceProfile::mid_tier(
                "Route",
                Self::ROUTE,
                150.0,
                0,
                vec![(Self::STATION, 1.0), (Self::REDIS, 0.7)],
            ),
            ServiceProfile::mid_tier(
                "Seat",
                Self::SEAT,
                100.0,
                0,
                vec![(Self::MYSQL, 0.9), (Self::REDIS, 0.6)],
            ),
            ServiceProfile::mid_tier(
                "User",
                Self::USER,
                110.0,
                0,
                vec![(Self::MYSQL, 0.9), (Self::REDIS, 0.5)],
            ),
            // Notification: fire-and-forget-ish leaf with occasional
            // external SMTP access.
            {
                let mut p = ServiceProfile::storage_leaf("Notify", Self::NOTIFY, 70.0, 0);
                p.extra_storage_p = 0.3;
                p.extra_storage_max = 1;
                p
            },
            backend("MySQL", Self::MYSQL, 150.0),
            backend("Redis", Self::REDIS, 85.0),
        ];
        Self {
            graph: ServiceGraph::new(profiles, Self::ALL.to_vec()),
        }
    }

    /// Number of services.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Profile of a service.
    ///
    /// # Panics
    ///
    /// Panics for an unknown id.
    pub fn profile(&self, id: ServiceId) -> &ServiceProfile {
        self.graph.profile(id)
    }

    /// Iterates over all profiles in id order.
    pub fn iter(&self) -> impl Iterator<Item = &ServiceProfile> {
        self.graph.iter()
    }

    /// Samples a request plan for `service`.
    pub fn sample_plan<R: Rng + ?Sized>(&self, service: ServiceId, rng: &mut R) -> RequestPlan {
        self.graph.sample_plan(service, rng)
    }

    /// Expands a root plan into its full invocation tree.
    pub fn expand_tree<R: Rng + ?Sized>(&self, root: ServiceId, rng: &mut R) -> Vec<RequestPlan> {
        self.graph.expand_tree(root, rng)
    }

    /// The underlying generic graph.
    pub fn into_graph(self) -> ServiceGraph {
        self.graph
    }

    /// Borrowed view of the underlying generic graph.
    pub fn graph(&self) -> &ServiceGraph {
        &self.graph
    }
}

impl Default for TrainTicket {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(9)
    }

    #[test]
    fn graph_is_valid_and_acyclic() {
        TrainTicket::new().graph().assert_acyclic();
    }

    #[test]
    fn roots_and_names() {
        let t = TrainTicket::new();
        let names: Vec<&str> = TrainTicket::ALL
            .iter()
            .map(|&id| t.profile(id).name)
            .collect();
        assert_eq!(names, ["Travel", "Order", "Payment", "Cancel"]);
    }

    #[test]
    fn trees_are_multi_tier() {
        let t = TrainTicket::new();
        let mut r = rng();
        let travel = t.graph().mean_tree_size(TrainTicket::TRAVEL, &mut r, 400);
        assert!((4.0..10.0).contains(&travel), "Travel tree {travel}");
        let order = t.graph().mean_tree_size(TrainTicket::ORDER, &mut r, 400);
        assert!((5.0..11.0).contains(&order), "Order tree {order}");
    }

    #[test]
    fn mean_invocation_compute_near_social_network() {
        // §3.3's ~120 us per-invocation figure holds across suites.
        let t = TrainTicket::new();
        let mut r = rng();
        let mut total = 0.0;
        let mut count = 0usize;
        for &root in &TrainTicket::ALL {
            for _ in 0..300 {
                for plan in t.expand_tree(root, &mut r) {
                    total += plan.compute_us();
                    count += 1;
                }
            }
        }
        let mean = total / count as f64;
        assert!((95.0..155.0).contains(&mean), "mean invocation {mean} us");
    }

    #[test]
    fn backends_are_leaves() {
        let t = TrainTicket::new();
        let mut r = rng();
        for &leaf in &[TrainTicket::MYSQL, TrainTicket::REDIS, TrainTicket::NOTIFY] {
            for _ in 0..50 {
                assert_eq!(t.sample_plan(leaf, &mut r).callees().count(), 0);
            }
        }
    }
}
