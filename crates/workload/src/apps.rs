//! The DeathStarBench SocialNetwork application suite (paper §5).
//!
//! The paper evaluates the 8 Social Network front/mid-tier services
//! (Figure 14's x-axis): Text, SocialGraph (SGraph), User, PostStorage
//! (PstStr), UserMention (UsrMnt), HomeTimeline (HomeT), ComposePost
//! (CPost) and UrlShorten (UrlShort). In DeathStarBench these services do
//! not talk to an external database — the storage tier (Redis, MongoDB,
//! Memcached instances) runs as *more services on the same cluster*, so a
//! root request fans out into a multi-level tree of on-package service
//! invocations. We model the three backend tiers explicitly, which is what
//! gives root requests their realistic tree sizes (a ComposePost touches
//! around ten service instances) and puts the storage traffic
//! on the on-package ICN where the paper's contention analysis lives.
//!
//! Aggregate statistics are calibrated to the paper's characterization:
//! ~120 us mean per-invocation execution time and ~3 RPCs per request
//! (§3.3).

use crate::service::{RequestPlan, ServiceGraph, ServiceId, ServiceProfile};
use rand::Rng;

/// The SocialNetwork application graph: eight root services plus the
/// three storage-backend tiers they call.
///
/// # Examples
///
/// ```
/// use um_workload::apps::SocialNetwork;
///
/// let apps = SocialNetwork::new();
/// assert_eq!(apps.len(), 11); // 8 apps + Redis + MongoDB + Memcached
/// assert_eq!(apps.profile(SocialNetwork::SGRAPH).name, "SGraph");
/// ```
#[derive(Clone, Debug)]
pub struct SocialNetwork {
    profiles: Vec<ServiceProfile>,
}

impl SocialNetwork {
    /// Text processing service.
    pub const TEXT: ServiceId = ServiceId::new(0);
    /// Social graph service (storage heavy, frequently invoked).
    pub const SGRAPH: ServiceId = ServiceId::new(1);
    /// User service.
    pub const USER: ServiceId = ServiceId::new(2);
    /// Post storage service.
    pub const PST_STR: ServiceId = ServiceId::new(3);
    /// User mention service.
    pub const USR_MNT: ServiceId = ServiceId::new(4);
    /// Home timeline service (high fan-out reader).
    pub const HOME_T: ServiceId = ServiceId::new(5);
    /// Compose post service (the deepest call chain).
    pub const CPOST: ServiceId = ServiceId::new(6);
    /// URL shortening service (shallow leaf).
    pub const URL_SHORT: ServiceId = ServiceId::new(7);
    /// Redis-like in-memory store tier.
    pub const REDIS: ServiceId = ServiceId::new(8);
    /// MongoDB-like document store tier.
    pub const MONGO: ServiceId = ServiceId::new(9);
    /// Memcached-like cache tier.
    pub const MEMC: ServiceId = ServiceId::new(10);

    /// The eight *root* services in the paper's figure order (backends are
    /// only reached through these).
    pub const ALL: [ServiceId; 8] = [
        Self::TEXT,
        Self::SGRAPH,
        Self::USER,
        Self::PST_STR,
        Self::USR_MNT,
        Self::HOME_T,
        Self::CPOST,
        Self::URL_SHORT,
    ];

    /// Builds the application graph.
    pub fn new() -> Self {
        // A storage-backend tier: pure handler compute, no further service
        // calls; a small probability of one genuinely external storage
        // access (disk path / cross-cluster replication).
        let backend = |name, id, compute_us| {
            let mut p = ServiceProfile::storage_leaf(name, id, compute_us, 0);
            p.extra_storage_p = 0.08;
            p.extra_storage_max = 1;
            p
        };
        let profiles = vec![
            // Text: tokenizes the post, resolves urls and mentions.
            ServiceProfile::mid_tier(
                "Text",
                Self::TEXT,
                150.0,
                0,
                vec![
                    (Self::URL_SHORT, 0.9),
                    (Self::USR_MNT, 0.5),
                    (Self::MEMC, 0.4),
                ],
            ),
            // SGraph: follower/followee lookups against Redis + MongoDB.
            ServiceProfile::mid_tier(
                "SGraph",
                Self::SGRAPH,
                120.0,
                0,
                vec![(Self::REDIS, 1.0), (Self::REDIS, 0.6), (Self::MONGO, 0.8)],
            ),
            // User: profile lookups.
            ServiceProfile::mid_tier(
                "User",
                Self::USER,
                135.0,
                0,
                vec![(Self::MONGO, 1.0), (Self::MEMC, 0.8)],
            ),
            // PstStr: post read/write.
            ServiceProfile::mid_tier(
                "PstStr",
                Self::PST_STR,
                100.0,
                0,
                vec![(Self::MONGO, 1.0), (Self::REDIS, 0.8)],
            ),
            // UsrMnt: resolves mentioned users via the User service.
            ServiceProfile::mid_tier(
                "UsrMnt",
                Self::USR_MNT,
                105.0,
                0,
                vec![(Self::USER, 1.0), (Self::MEMC, 0.7)],
            ),
            // HomeT: reads the timeline: posts + social graph + cache.
            ServiceProfile::mid_tier(
                "HomeT",
                Self::HOME_T,
                130.0,
                0,
                vec![
                    (Self::PST_STR, 1.0),
                    (Self::SGRAPH, 0.8),
                    (Self::REDIS, 0.6),
                ],
            ),
            // CPost: the write path; touches nearly everything.
            ServiceProfile::mid_tier(
                "CPost",
                Self::CPOST,
                200.0,
                0,
                vec![
                    (Self::TEXT, 0.8),
                    (Self::PST_STR, 0.7),
                    (Self::HOME_T, 0.15),
                    (Self::MONGO, 0.6),
                ],
            ),
            // UrlShort: hash + one cache write.
            ServiceProfile::mid_tier(
                "UrlShort",
                Self::URL_SHORT,
                85.0,
                0,
                vec![(Self::MEMC, 1.0)],
            ),
            // Storage tiers.
            backend("Redis", Self::REDIS, 90.0),
            backend("MongoDB", Self::MONGO, 140.0),
            backend("Memcached", Self::MEMC, 70.0),
        ];
        Self { profiles }
    }

    /// Number of services (roots + backends).
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Profile of a service.
    ///
    /// # Panics
    ///
    /// Panics for an unknown id.
    pub fn profile(&self, id: ServiceId) -> &ServiceProfile {
        &self.profiles[id.index()]
    }

    /// Iterates over all profiles in id order.
    pub fn iter(&self) -> impl Iterator<Item = &ServiceProfile> {
        self.profiles.iter()
    }

    /// Samples a request plan for `service`.
    pub fn sample_plan<R: Rng + ?Sized>(&self, service: ServiceId, rng: &mut R) -> RequestPlan {
        self.profile(service).sample_plan(rng)
    }

    /// Expands a root plan into the full tree of plans it will trigger
    /// (for analysis; the system simulator spawns callees dynamically).
    /// Returns plans in invocation order, root first.
    pub fn expand_tree<R: Rng + ?Sized>(&self, root: ServiceId, rng: &mut R) -> Vec<RequestPlan> {
        let mut out = Vec::new();
        let mut stack = vec![root];
        // The SocialNetwork call graph is a DAG, so expansion terminates;
        // the depth guard makes that robust to future profile edits.
        let mut guard = 0;
        while let Some(svc) = stack.pop() {
            guard += 1;
            assert!(guard < 10_000, "call graph expansion runaway");
            let plan = self.sample_plan(svc, rng);
            stack.extend(plan.callees());
            out.push(plan);
        }
        out
    }

    /// Mean number of service invocations a root request of `root`
    /// triggers (including itself).
    pub fn mean_tree_size<R: Rng + ?Sized>(
        &self,
        root: ServiceId,
        rng: &mut R,
        samples: usize,
    ) -> f64 {
        (0..samples)
            .map(|_| self.expand_tree(root, rng).len())
            .sum::<usize>() as f64
            / samples as f64
    }

    /// Mean CPU time per *invocation* across the whole suite, in
    /// reference-core microseconds — the calibration figure behind the
    /// paper's "average execution time of a service request is 120 us".
    pub fn mean_invocation_compute_us<R: Rng + ?Sized>(&self, rng: &mut R, samples: usize) -> f64 {
        let mut total = 0.0;
        let mut count = 0usize;
        for &root in &Self::ALL {
            for _ in 0..samples {
                for plan in self.expand_tree(root, rng) {
                    total += plan.compute_us();
                    count += 1;
                }
            }
        }
        total / count as f64
    }
}

impl SocialNetwork {
    /// Converts into the generic [`ServiceGraph`] representation.
    pub fn into_graph(self) -> ServiceGraph {
        ServiceGraph::new(self.profiles, Self::ALL.to_vec())
    }
}

impl Default for SocialNetwork {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(2024)
    }

    #[test]
    fn roots_in_figure_order() {
        let apps = SocialNetwork::new();
        let names: Vec<&str> = SocialNetwork::ALL
            .iter()
            .map(|&id| apps.profile(id).name)
            .collect();
        assert_eq!(
            names,
            ["Text", "SGraph", "User", "PstStr", "UsrMnt", "HomeT", "CPost", "UrlShort"]
        );
        assert_eq!(apps.profile(SocialNetwork::REDIS).name, "Redis");
    }

    #[test]
    fn call_graph_is_acyclic() {
        // DFS from every root must terminate without revisiting a node on
        // the current path.
        let apps = SocialNetwork::new();
        fn dfs(apps: &SocialNetwork, id: ServiceId, path: &mut Vec<ServiceId>) {
            assert!(!path.contains(&id), "cycle through {id}");
            path.push(id);
            for &(callee, _) in &apps.profile(id).downstream {
                dfs(apps, callee, path);
            }
            path.pop();
        }
        for &root in &SocialNetwork::ALL {
            dfs(&apps, root, &mut Vec::new());
        }
    }

    #[test]
    fn mean_invocation_near_120us() {
        let apps = SocialNetwork::new();
        let mut r = rng();
        let mean = apps.mean_invocation_compute_us(&mut r, 300);
        assert!(
            (95.0..150.0).contains(&mean),
            "mean invocation compute {mean} us, paper reports ~120"
        );
    }

    #[test]
    fn tree_sizes_are_multi_tier() {
        let apps = SocialNetwork::new();
        let mut r = rng();
        let url = apps.mean_tree_size(SocialNetwork::URL_SHORT, &mut r, 500);
        let cpost = apps.mean_tree_size(SocialNetwork::CPOST, &mut r, 500);
        assert!((1.5..3.0).contains(&url), "UrlShort tree {url}");
        assert!((7.0..14.0).contains(&cpost), "CPost tree {cpost}");
        // Suite-wide average: several invocations per root.
        let mix: f64 = SocialNetwork::ALL
            .iter()
            .map(|&root| apps.mean_tree_size(root, &mut r, 200))
            .sum::<f64>()
            / 8.0;
        assert!((3.5..8.0).contains(&mix), "mean tree size {mix}");
    }

    #[test]
    fn rpcs_per_invocation_near_paper() {
        // Paper §3.3: requests average ~3 RPC invocations; our roots issue
        // 1-4 calls each.
        let apps = SocialNetwork::new();
        let mut r = rng();
        let mut total = 0.0;
        let mut n = 0;
        for &root in &SocialNetwork::ALL {
            for _ in 0..2_000 {
                total += apps.sample_plan(root, &mut r).rpc_count() as f64;
                n += 1;
            }
        }
        let mean = total / n as f64;
        assert!((1.5..4.5).contains(&mean), "mean rpcs {mean}, paper ~3.1");
    }

    #[test]
    fn backends_are_leaves() {
        let apps = SocialNetwork::new();
        let mut r = rng();
        for &leaf in &[
            SocialNetwork::REDIS,
            SocialNetwork::MONGO,
            SocialNetwork::MEMC,
        ] {
            for _ in 0..50 {
                let plan = apps.sample_plan(leaf, &mut r);
                assert_eq!(plan.callees().count(), 0);
            }
        }
    }

    #[test]
    fn backends_rarely_touch_external_storage() {
        let apps = SocialNetwork::new();
        let mut r = rng();
        let with_storage = (0..10_000)
            .filter(|_| apps.sample_plan(SocialNetwork::REDIS, &mut r).rpc_count() > 0)
            .count();
        let frac = with_storage as f64 / 10_000.0;
        assert!(
            (0.04..0.13).contains(&frac),
            "external storage fraction {frac}"
        );
    }

    #[test]
    fn expansion_contains_transitive_callees() {
        let apps = SocialNetwork::new();
        let mut r = rng();
        // CPost -> Text -> UsrMnt -> User -> MongoDB should appear often.
        let mut seen_mongo = 0;
        for _ in 0..200 {
            let tree = apps.expand_tree(SocialNetwork::CPOST, &mut r);
            if tree.iter().any(|p| p.service == SocialNetwork::MONGO) {
                seen_mongo += 1;
            }
        }
        assert!(
            seen_mongo > 150,
            "MongoDB reached in {seen_mongo}/200 trees"
        );
    }
}
