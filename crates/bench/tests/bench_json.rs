//! The committed `BENCH_*.json` files must stay parseable by the shared
//! model and keep their per-bench point schemas — regenerating on a
//! faster machine may change the numbers, but not the shape.

use um_bench::benchjson::{validate_bench_str, Json};

fn committed(name: &str) -> Json {
    let path = format!("{}/../../{name}", env!("CARGO_MANIFEST_DIR"));
    let text =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("reading committed {name}: {e}"));
    validate_bench_str(&text).unwrap_or_else(|e| panic!("{name}: {e}"))
}

fn point_keys(doc: &Json) -> Vec<String> {
    // validate_bench_str already checked every point shares point 0's
    // keys, so point 0 is the schema.
    doc.get("points").and_then(Json::as_arr).expect("validated")[0]
        .as_obj()
        .expect("validated")
        .iter()
        .map(|(k, _)| k.clone())
        .collect()
}

#[test]
fn committed_engine_json_keeps_its_schema() {
    let doc = committed("BENCH_engine.json");
    assert_eq!(doc.get("bench").and_then(Json::as_str), Some("engine"));
    assert_eq!(
        point_keys(&doc),
        [
            "axis",
            "rps",
            "servers",
            "events",
            "calendar_events_per_sec",
            "heap_events_per_sec",
            "speedup"
        ]
    );
    let headline = doc.get("headline").expect("headline");
    assert!(headline.get("speedup").and_then(Json::as_num).is_some());
}

#[test]
fn committed_cluster_json_keeps_its_schema() {
    let doc = committed("BENCH_cluster.json");
    assert_eq!(doc.get("bench").and_then(Json::as_str), Some("cluster"));
    assert_eq!(
        point_keys(&doc),
        ["nodes", "events", "requests", "events_per_sec", "p99_us"]
    );
    // The scaling curve covers the tentpole's 64–512-node sweep.
    let nodes: Vec<f64> = doc
        .get("points")
        .and_then(Json::as_arr)
        .expect("validated")
        .iter()
        .map(|p| p.get("nodes").and_then(Json::as_num).expect("nodes"))
        .collect();
    assert!(nodes.iter().any(|&n| n >= 512.0), "sweep reaches 512 nodes");
    assert!(nodes.windows(2).all(|w| w[0] < w[1]), "nodes are ascending");
}
