//! Pins `um-tidy --json`'s contract with `um_bench::benchjson`: the lint
//! gate is zero-dependency, so it carries its own tiny JSON emitter —
//! these tests are what keep that emitter byte-compatible with the
//! benchjson document model the committed `BENCH_*.json` files use.

use std::path::Path;

use um_bench::benchjson::{validate_bench_str, Json};

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
}

/// The live tree's report must round-trip byte-exactly: benchjson's
/// parse-then-render is the identity on um-tidy's output.
#[test]
fn live_report_roundtrips_through_benchjson() {
    let report = um_tidy::workspace_report(workspace_root(), 2).expect("workspace scan");
    let rendered = um_tidy::render_json(&report);
    let doc = Json::parse(&rendered).expect("um-tidy --json must parse as benchjson");
    assert_eq!(
        doc.render(),
        rendered,
        "um-tidy's emitter drifted from benchjson's renderer"
    );
    assert_eq!(doc.get("tool").and_then(Json::as_str), Some("um-tidy"));
    assert_eq!(
        doc.get("rules").and_then(Json::as_num),
        Some(um_tidy::Rule::COUNT as f64)
    );
}

/// Same round-trip with diagnostics present, exercising the string
/// escaping path (rule messages embed quoted stream tags).
#[test]
fn violating_report_roundtrips_through_benchjson() {
    let files = vec![
        (
            "crates/net/src/a.rs".to_string(),
            "pub fn mk(seed: u64) { let _r = rng::stream(seed, \"tab\\thop\"); }\n".to_string(),
        ),
        (
            "crates/sched/src/b.rs".to_string(),
            "pub fn mk(seed: u64) { let _r = rng::stream(seed, \"tab\\thop\"); }\n".to_string(),
        ),
    ];
    let report = um_tidy::check_files(&files);
    assert!(
        !report.diagnostics.is_empty(),
        "fixture must produce diagnostics"
    );
    let rendered = um_tidy::render_json(&report);
    let doc = Json::parse(&rendered).expect("report with violations must parse");
    assert_eq!(doc.render(), rendered);
    let violations = doc.get("violations").and_then(Json::as_arr).expect("array");
    assert_eq!(violations.len(), report.diagnostics.len());
}

/// The committed lint-throughput trajectory must satisfy the shared
/// `BENCH_*.json` envelope, like every other committed bench file.
#[test]
fn committed_bench_tidy_is_a_valid_envelope() {
    let path = workspace_root().join("BENCH_tidy.json");
    let text = std::fs::read_to_string(&path).expect("BENCH_tidy.json must be committed");
    let doc = validate_bench_str(&text).expect("BENCH_tidy.json must validate");
    assert_eq!(doc.get("bench").and_then(Json::as_str), Some("tidy"));
    assert_eq!(doc.get("scale").and_then(Json::as_str), Some("full"));
    let points = doc.get("points").and_then(Json::as_arr).expect("points");
    assert!(
        points.iter().all(|p| p
            .get("lines_per_sec")
            .and_then(Json::as_num)
            .is_some_and(|v| v > 0.0)),
        "every point carries a positive lines/sec rate"
    );
}
