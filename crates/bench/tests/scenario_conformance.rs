//! Conformance tests for the declarative scenario layer: every converted
//! figure binary's registry scenario must expand to exactly the config
//! list the legacy inline driver built, and the sweep runner must render
//! byte-identical text at any `UM_THREADS`.
//!
//! Expansion conformance compares `Debug` renderings field-for-field at
//! quick scale (the same shape the full-scale committed results use —
//! only horizons differ, and those come from the same [`Scale`] /
//! [`ClusterScale`] values on both sides). Thread-identity runs use
//! further-reduced horizons so the suite stays fast in debug builds; the
//! determinism property being pinned does not depend on scale, and CI
//! separately byte-diffs full-scale regenerations of every converted
//! binary against the committed `results/` files.

use um_arch::config::MachineConfig;
use um_bench::scenario::{self, registry, ScaleSpec, Scenario, ScenarioKind};
use um_sched::DequeuePolicy;
use um_workload::synthetic::SyntheticWorkload;
use um_workload::ServiceTimeDist;
use umanycore::experiments::cluster::ClusterScale;
use umanycore::experiments::{cluster, motivation, resilience, Scale};
use umanycore::system::ArrivalProcess;
use umanycore::{SimConfig, Workload};

/// Applies `UM_SCALE=quick` semantics without touching the environment
/// (tests run in parallel; env mutation would race).
fn quick(mut s: Scenario) -> Scenario {
    scenario::apply_scale_values(&mut s, Some("quick"), None);
    s
}

fn node_debugs(s: &Scenario) -> Vec<String> {
    s.expand()
        .expect("registry scenarios are valid")
        .iter()
        .map(|p| format!("{:?}", p.as_node().expect("single-node point")))
        .collect()
}

// -----------------------------------------------------------------
// Expansion conformance: registry scenario vs legacy inline driver
// -----------------------------------------------------------------

#[test]
fn fig7_expands_to_the_legacy_config_list() {
    let s = quick(registry::fig7());
    let loads = match &s.kind {
        ScenarioKind::Fig7 { loads } => loads.clone(),
        other => panic!("fig7 registry scenario has kind {other:?}"),
    };
    let legacy: Vec<String> = motivation::fig7_configs(Scale::quick(), &loads)
        .iter()
        .map(|c| format!("{c:?}"))
        .collect();
    assert_eq!(node_debugs(&s), legacy);
}

#[test]
fn fault_tail_expands_to_the_legacy_config_list() {
    let s = quick(registry::fault_tail());
    let legacy: Vec<String> = resilience::fault_tail_configs(Scale::quick())
        .iter()
        .map(|c| format!("{c:?}"))
        .collect();
    assert_eq!(node_debugs(&s), legacy);
}

#[test]
fn breakdown_expands_to_the_legacy_config_list() {
    let s = quick(registry::breakdown());
    // The legacy binary called `run_machine_traced(machine, social_mix,
    // 10_000.0, scale)` per machine, which built exactly this config.
    let scale = Scale::quick();
    let legacy: Vec<String> = [
        MachineConfig::server_class_iso_power(),
        MachineConfig::scaleout(),
        MachineConfig::umanycore(),
    ]
    .into_iter()
    .map(|machine| {
        format!(
            "{:?}",
            SimConfig {
                machine,
                workload: Workload::social_mix(),
                rps_per_server: 10_000.0,
                servers: scale.servers,
                horizon_us: scale.horizon_us,
                warmup_us: scale.warmup_us,
                seed: scale.seed,
                trace: true,
                ..SimConfig::default()
            }
        )
    })
    .collect();
    assert_eq!(node_debugs(&s), legacy);
}

#[test]
fn cluster_tail_expands_to_the_legacy_config_list() {
    let s = quick(registry::cluster_tail());
    let points = s.expand().expect("registry scenarios are valid");
    let ours: Vec<String> = points
        .iter()
        .map(|p| format!("{:?}", p.as_cluster().expect("cluster point")))
        .collect();
    let legacy: Vec<String> = cluster::cluster_tail_configs(&ClusterScale::quick())
        .iter()
        .map(|(_, _, c)| format!("{c:?}"))
        .collect();
    assert_eq!(ours, legacy);
}

#[test]
fn cluster10_expands_to_the_legacy_config_list() {
    let s = quick(registry::cluster10());
    // The legacy binary set `scale.servers = 10` after `scale_from_env`
    // and swept loads x the four paper machines, all on the master seed.
    let scale = Scale {
        servers: 10,
        ..Scale::quick()
    };
    let legacy: Vec<String> = [5_000.0, 10_000.0, 15_000.0]
        .iter()
        .flat_map(|&rps| {
            [
                MachineConfig::server_class_iso_power(),
                MachineConfig::server_class_iso_area(),
                MachineConfig::scaleout(),
                MachineConfig::umanycore(),
            ]
            .map(|machine| {
                format!(
                    "{:?}",
                    SimConfig {
                        machine,
                        workload: Workload::social_mix(),
                        rps_per_server: rps,
                        servers: scale.servers,
                        horizon_us: scale.horizon_us,
                        warmup_us: scale.warmup_us,
                        seed: scale.seed,
                        ..SimConfig::default()
                    }
                )
            })
        })
        .collect();
    assert_eq!(node_debugs(&s), legacy);
}

#[test]
fn autoscale_expands_to_the_legacy_config_list() {
    let s = quick(registry::autoscale());
    let scale = Scale::quick();
    let legacy: Vec<String> = [(false, true), (true, false), (true, true)]
        .into_iter()
        .map(|(autoscale, pool)| {
            let mut machine = MachineConfig::umanycore();
            machine.memory_pool = pool;
            machine.rq_capacity = 8;
            format!(
                "{:?}",
                SimConfig {
                    machine,
                    workload: Workload::social_mix(),
                    rps_per_server: 160_000.0,
                    servers: scale.servers,
                    horizon_us: scale.horizon_us * 5.0,
                    warmup_us: scale.warmup_us,
                    seed: scale.seed,
                    arrivals: ArrivalProcess::Bursty,
                    autoscale,
                    ..SimConfig::default()
                }
            )
        })
        .collect();
    assert_eq!(node_debugs(&s), legacy);
}

#[test]
fn ablation_srpt_expands_to_the_legacy_config_list() {
    let s = quick(registry::ablation_srpt());
    let scale = Scale::quick();
    let heavy = Workload::Synthetic(SyntheticWorkload::new(
        ServiceTimeDist::lognormal_with_mean(400.0, 9.0),
        2,
        6,
    ));
    let mut legacy = Vec::new();
    for (workload, loads) in [
        (Workload::social_mix(), [200_000.0, 1_200_000.0]),
        (heavy, [200_000.0, 1_000_000.0]),
    ] {
        for rps in loads {
            for policy in [DequeuePolicy::Fcfs, DequeuePolicy::Srpt] {
                legacy.push(format!(
                    "{:?}",
                    SimConfig {
                        machine: MachineConfig::umanycore(),
                        workload: workload.clone(),
                        rps_per_server: rps,
                        servers: scale.servers,
                        horizon_us: scale.horizon_us,
                        warmup_us: scale.warmup_us,
                        seed: scale.seed,
                        dequeue_policy: policy,
                        ..SimConfig::default()
                    }
                ));
            }
        }
    }
    assert_eq!(node_debugs(&s), legacy);
}

// -----------------------------------------------------------------
// Thread identity: byte-identical text at UM_THREADS ∈ {1, 4}
// -----------------------------------------------------------------

fn assert_thread_identical(s: &Scenario) {
    let one = scenario::run_with_threads(s, 1).expect("scenario is valid");
    let four = scenario::run_with_threads(s, 4).expect("scenario is valid");
    assert_eq!(
        one.text, four.text,
        "{}: text differs across UM_THREADS",
        s.name
    );
    assert_eq!(
        one.points, four.points,
        "{}: benchjson points differ across UM_THREADS",
        s.name
    );
}

/// Shrinks a scenario's horizons so debug-profile runs stay fast.
fn tiny(mut s: Scenario, horizon_us: f64) -> Scenario {
    s.scale.horizon_us = horizon_us;
    s.scale.warmup_us = horizon_us / 10.0;
    s
}

#[test]
fn fig7_text_is_bit_identical_across_thread_counts() {
    let mut s = tiny(registry::fig7(), 5_000.0);
    if let ScenarioKind::Fig7 { loads } = &mut s.kind {
        loads.truncate(2);
    }
    assert_thread_identical(&s);
}

#[test]
fn breakdown_text_is_bit_identical_across_thread_counts() {
    assert_thread_identical(&tiny(registry::breakdown(), 5_000.0));
}

#[test]
fn fault_tail_text_is_bit_identical_across_thread_counts() {
    let mut s = tiny(registry::fault_tail(), 5_000.0);
    if let ScenarioKind::FaultTail { drop_rates, .. } = &mut s.kind {
        *drop_rates = vec![0.0, 0.02];
    }
    assert_thread_identical(&s);
}

#[test]
fn cluster_tail_text_is_bit_identical_across_thread_counts() {
    let mut s = tiny(registry::cluster_tail(), 2_000.0);
    if let ScenarioKind::ClusterTail { loads } = &mut s.kind {
        *loads = vec![60_000.0];
    }
    s.cluster.as_mut().expect("cluster scenario").nodes = 4;
    assert_thread_identical(&s);
}

#[test]
fn cluster10_text_is_bit_identical_across_thread_counts() {
    let mut s = tiny(registry::cluster10(), 5_000.0);
    if let ScenarioKind::MachineCompare { loads, .. } = &mut s.kind {
        loads.truncate(1);
    }
    assert_thread_identical(&s);
}

#[test]
fn autoscale_text_is_bit_identical_across_thread_counts() {
    // horizon_factor 5 stretches this to 10 ms of bursty arrivals.
    assert_thread_identical(&tiny(registry::autoscale(), 2_000.0));
}

#[test]
fn ablation_srpt_text_is_bit_identical_across_thread_counts() {
    let mut s = tiny(registry::ablation_srpt(), 3_000.0);
    if let ScenarioKind::SrptAblation { workloads } = &mut s.kind {
        for w in workloads {
            w.loads.truncate(1);
        }
    }
    assert_thread_identical(&s);
}

#[test]
fn sweep_grid_is_bit_identical_across_thread_counts() {
    let mut s = tiny(registry::sweep_default(), 4_000.0);
    if let ScenarioKind::Grid(g) = &mut s.kind {
        g.loads = vec![2_000.0, 8_000.0];
        g.seeds = vec![42];
    }
    assert_thread_identical(&s);
}

// -----------------------------------------------------------------
// Regression: the cluster RQ-deadlock guard refuses shallow racks
// -----------------------------------------------------------------

/// A rack of default-depth (64-entry) RQs with admission control
/// disabled can deadlock: every RQ fills with requests whose handlers
/// are blocked on downstream RPCs that need the same RQ slots. The
/// workaround (DESIGN.md, "Cluster layer") is deep RQs or an admission
/// cap with `2 * cap <= rq_capacity`; `Scenario::validate` must refuse
/// the configuration rather than let the sim wedge.
#[test]
fn shallow_rq_cluster_without_admission_cap_is_refused() {
    let mut s = registry::cluster_tail();
    s.machine.rq_capacity = None; // default 64-entry RQs
    let err = s
        .validate()
        .expect_err("shallow uncapped rack must be refused");
    for needle in [
        "max_in_flight",
        "rq_capacity",
        "DESIGN.md, \"Cluster layer\"",
    ] {
        assert!(err.contains(needle), "error {err:?} missing {needle:?}");
    }

    // The documented workaround passes: cap with 2 * cap <= rq.
    s.cluster.as_mut().expect("cluster scenario").max_in_flight = Some(32);
    s.validate()
        .expect("capped shallow rack is the documented workaround");

    // One past the pigeonhole bound is refused again.
    s.cluster.as_mut().expect("cluster scenario").max_in_flight = Some(33);
    s.validate().expect_err("cap above rq/2 must be refused");
}

// -----------------------------------------------------------------
// Registry hygiene
// -----------------------------------------------------------------

#[test]
fn every_registry_scenario_expands_and_round_trips() {
    for s in registry::all() {
        let points = s.expand().expect("registry scenarios are valid");
        assert!(!points.is_empty(), "{}: empty expansion", s.name);
        let text = s.to_json_text();
        let back = Scenario::from_json_text(&text)
            .unwrap_or_else(|e| panic!("{}: reparse failed: {e}", s.name));
        assert_eq!(back, s, "{}: JSON round-trip changed the scenario", s.name);
        assert_eq!(
            back.to_json_text(),
            text,
            "{}: serialization not byte-stable",
            s.name
        );
    }
}

#[test]
fn quick_scale_matches_the_experiment_layer_values() {
    let s = quick(registry::fig7());
    assert_eq!(s.scale, ScaleSpec::from_scale(Scale::quick()));
    let c = quick(registry::cluster_tail());
    let q = ClusterScale::quick();
    assert_eq!(c.scale.horizon_us, q.horizon_us);
    assert_eq!(c.scale.warmup_us, q.warmup_us);
    assert_eq!(c.cluster.expect("cluster scenario").nodes, q.nodes);
    match &c.kind {
        ScenarioKind::ClusterTail { loads } => assert_eq!(*loads, q.loads),
        other => panic!("cluster_tail registry scenario has kind {other:?}"),
    }
}
