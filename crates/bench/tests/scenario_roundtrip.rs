//! Property tests for the scenario JSON codec: a randomized valid
//! [`Scenario`] must serialize → parse → serialize byte-stably, and
//! malformed documents (unknown fields, out-of-range knobs) must come
//! back as field-path errors, never panics.
//!
//! Every strategy below generates scenarios that are valid by
//! construction (validation invariants are encoded in the generators),
//! so a round-trip failure is a codec bug, not a rejected input.

use proptest::prelude::*;
use um_arch::config::IcnKind;
use um_bench::scenario::{
    ClusterSpec, GridSpec, JitterSpec, MachineBase, MachineSpec, MitigationSpec, NamedMachine,
    NamedPolicy, NamedRouting, RetrySpec, ScaleSpec, Scenario, ScenarioKind, WorkloadSpec,
};
use um_sim::fault::FaultRecipe;
use umanycore::RoutingPolicy;

// -----------------------------------------------------------------
// Generators
// -----------------------------------------------------------------

fn name_strategy() -> impl Strategy<Value = String> {
    (0u64..(1 << 32)).prop_map(|n| format!("s{n:x}"))
}

/// Positive finite times/rates, mixing fractional values with exact
/// integers so both `benchjson` number renderings are exercised.
fn pos_f64() -> impl Strategy<Value = f64> {
    prop_oneof![0.001f64..1.0e6, (1u32..1_000_000u32).prop_map(f64::from),]
}

fn seed_strategy() -> impl Strategy<Value = u64> {
    0u64..(1u64 << 53)
}

fn scale_strategy() -> impl Strategy<Value = ScaleSpec> {
    (pos_f64(), 0.0f64..0.99, 1usize..4, seed_strategy()).prop_map(
        |(horizon_us, warmup_frac, servers, seed)| ScaleSpec {
            horizon_us,
            warmup_us: horizon_us * warmup_frac,
            servers,
            seed,
        },
    )
}

fn icn_strategy() -> impl Strategy<Value = IcnKind> {
    prop_oneof![
        Just(IcnKind::Mesh),
        Just(IcnKind::FatTree),
        Just(IcnKind::LeafSpine),
    ]
}

fn machine_strategy() -> impl Strategy<Value = MachineSpec> {
    let base = prop_oneof![
        Just(MachineBase::Umanycore),
        Just(MachineBase::Scaleout),
        Just(MachineBase::ServerClassIsoPower),
        Just(MachineBase::ServerClassIsoArea),
    ];
    (
        base,
        proptest::option::of([1usize..8, 1usize..8, 1usize..8]),
        proptest::option::of(1usize..4096),
        proptest::option::of(0u64..20_000),
        proptest::option::of(icn_strategy()),
    )
        .prop_map(
            |(base, shape, rq_capacity, ctx_switch_cycles, icn)| MachineSpec {
                base,
                // Shape overrides are only valid on the uManycore base.
                shape: if base == MachineBase::Umanycore {
                    shape
                } else {
                    None
                },
                rq_capacity,
                ctx_switch_cycles,
                icn,
            },
        )
}

fn workload_strategy() -> impl Strategy<Value = WorkloadSpec> {
    prop_oneof![
        Just(WorkloadSpec::SocialMix),
        Just(WorkloadSpec::TrainMix),
        (0.1f64..100.0, 0.1f64..10.0, 0u32..4, 0u32..4).prop_map(|(mean_us, scv, a, b)| {
            WorkloadSpec::Synthetic {
                mean_us,
                scv,
                min_rpcs: a.min(b),
                max_rpcs: a.max(b),
            }
        }),
    ]
}

fn retry_strategy() -> impl Strategy<Value = RetrySpec> {
    (0.1f64..100_000.0, 1.0f64..4.0, 1u32..10, 0.0f64..1.0).prop_map(
        |(timeout_us, backoff, max_attempts, budget_fraction)| RetrySpec {
            timeout_us,
            backoff,
            max_attempts,
            budget_fraction,
        },
    )
}

fn mitigation_strategy() -> impl Strategy<Value = MitigationSpec> {
    (
        proptest::option::of(0.0f64..10_000.0),
        proptest::option::of(retry_strategy()),
        proptest::bool::ANY,
    )
        .prop_map(|(hedge_delay_us, retry, steer)| MitigationSpec {
            hedge_delay_us,
            retry,
            steer,
        })
}

fn fault_strategy() -> impl Strategy<Value = FaultRecipe> {
    prop_oneof![
        (0.0f64..0.99).prop_map(|probability| FaultRecipe::MessageDrops { probability }),
        (0usize..4, 0usize..32, 0u64..1_000_000).prop_map(|(server, village, at_cycles)| {
            FaultRecipe::CoreFailStop {
                server,
                village,
                at_cycles,
            }
        }),
        (
            0usize..4,
            0usize..32,
            1u32..8,
            0u64..1_000_000,
            1u64..1_000_000,
            1.0f64..20.0
        )
            .prop_map(
                |(server, village, cores, from_cycles, duration, slowdown)| {
                    FaultRecipe::CoreFailSlow {
                        server,
                        village,
                        cores,
                        from_cycles,
                        until_cycles: from_cycles + duration,
                        slowdown,
                    }
                }
            ),
    ]
}

fn loads_strategy() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(pos_f64(), 1..4)
}

fn routing_strategy() -> impl Strategy<Value = NamedRouting> {
    let policy = prop_oneof![
        Just(RoutingPolicy::Random),
        Just(RoutingPolicy::RoundRobin),
        (1usize..8).prop_map(|d| RoutingPolicy::JsqD { d }),
        Just(RoutingPolicy::CentralQueue),
    ];
    (name_strategy(), policy).prop_map(|(name, policy)| NamedRouting { name, policy })
}

/// Deep-RQ cluster spec: `rq_capacity >= 512` on the machine (see the
/// deadlock guard in `Scenario::validate`) keeps every generated
/// cluster scenario admissible without an admission cap.
fn cluster_strategy() -> impl Strategy<Value = ClusterSpec> {
    (
        1usize..8,
        proptest::collection::vec(routing_strategy(), 1..3),
        proptest::option::of((0.1f64..10.0, 0.1f64..10.0)),
        proptest::bool::ANY,
    )
        .prop_map(|(nodes, routing, jitter, steer)| ClusterSpec {
            nodes,
            routing,
            max_in_flight: None,
            jitter: jitter.map(|(mean_us, scv)| JitterSpec { mean_us, scv }),
            steer,
        })
}

fn policy_axis_strategy() -> impl Strategy<Value = Vec<NamedPolicy>> {
    proptest::collection::vec(
        (name_strategy(), mitigation_strategy())
            .prop_map(|(name, mitigation)| NamedPolicy { name, mitigation }),
        1..3,
    )
}

fn node_kind_strategy() -> impl Strategy<Value = ScenarioKind> {
    prop_oneof![
        loads_strategy().prop_map(|loads| ScenarioKind::Fig7 { loads }),
        (
            pos_f64(),
            proptest::collection::vec(
                (name_strategy(), machine_strategy())
                    .prop_map(|(name, machine)| NamedMachine { name, machine }),
                1..3,
            )
        )
            .prop_map(|(rps, machines)| ScenarioKind::Breakdown { rps, machines }),
        (
            loads_strategy(),
            proptest::collection::vec(seed_strategy(), 1..3),
            policy_axis_strategy()
        )
            .prop_map(|(loads, seeds, policies)| {
                ScenarioKind::Grid(GridSpec {
                    loads,
                    seeds,
                    nodes: vec![],
                    policies,
                })
            }),
    ]
}

/// Single-node scenarios: no cluster spec, any kind that runs per-node
/// points.
fn node_scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        name_strategy(),
        machine_strategy(),
        workload_strategy(),
        scale_strategy(),
        proptest::collection::vec(fault_strategy(), 0..3),
        mitigation_strategy(),
        node_kind_strategy(),
    )
        .prop_map(
            |(name, machine, workload, scale, faults, mitigation, kind)| Scenario {
                name,
                machine,
                workload,
                scale,
                faults,
                mitigation,
                cluster: None,
                kind,
            },
        )
}

/// Fault-tail scenarios sweep their own drop plan, so `faults` must be
/// empty.
fn fault_tail_scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        name_strategy(),
        machine_strategy(),
        workload_strategy(),
        scale_strategy(),
        mitigation_strategy(),
        (
            pos_f64(),
            proptest::collection::vec(0.0f64..0.99, 1..4),
            0.1f64..100_000.0,
        ),
    )
        .prop_map(
            |(name, machine, workload, scale, mitigation, (rps, drop_rates, retry_timeout_us))| {
                Scenario {
                    name,
                    machine,
                    workload,
                    scale,
                    faults: vec![],
                    mitigation,
                    cluster: None,
                    kind: ScenarioKind::FaultTail {
                        rps,
                        drop_rates,
                        retry_timeout_us,
                    },
                }
            },
        )
}

/// Cluster scenarios: deep RQ forced on the machine so the deadlock
/// guard admits them.
fn cluster_scenario_strategy() -> impl Strategy<Value = Scenario> {
    (
        name_strategy(),
        machine_strategy(),
        workload_strategy(),
        scale_strategy(),
        mitigation_strategy(),
        cluster_strategy(),
        512usize..2048,
        prop_oneof![
            loads_strategy().prop_map(|loads| (loads, None)),
            (
                loads_strategy(),
                proptest::collection::vec(seed_strategy(), 1..3),
                proptest::collection::vec(1usize..6, 1..3),
                policy_axis_strategy()
            )
                .prop_map(|(loads, seeds, nodes, policies)| {
                    (
                        loads.clone(),
                        Some(GridSpec {
                            loads,
                            seeds,
                            nodes,
                            policies,
                        }),
                    )
                }),
        ],
    )
        .prop_map(
            |(name, mut machine, workload, scale, mitigation, cluster, rq, (loads, grid))| {
                machine.rq_capacity = Some(rq);
                Scenario {
                    name,
                    machine,
                    workload,
                    scale,
                    faults: vec![],
                    mitigation,
                    cluster: Some(cluster),
                    kind: match grid {
                        Some(g) => ScenarioKind::Grid(g),
                        None => ScenarioKind::ClusterTail { loads },
                    },
                }
            },
        )
}

fn scenario_strategy() -> impl Strategy<Value = Scenario> {
    prop_oneof![
        3 => node_scenario_strategy(),
        1 => fault_tail_scenario_strategy(),
        2 => cluster_scenario_strategy(),
    ]
}

// -----------------------------------------------------------------
// Properties
// -----------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// Generated scenarios are valid by construction; if this fires the
    /// generator and the validator disagree about an invariant.
    #[test]
    fn generated_scenarios_validate(s in scenario_strategy()) {
        prop_assert!(s.validate().is_ok(), "{}: {:?}", s.name, s.validate());
    }

    /// serialize → parse → serialize is byte-stable, and the parsed
    /// value is structurally identical to the original.
    #[test]
    fn round_trip_is_byte_stable(s in scenario_strategy()) {
        let text = s.to_json_text();
        let back = Scenario::from_json_text(&text)
            .map_err(|e| TestCaseError::fail(format!("reparse failed: {e}\n{text}")))?;
        prop_assert_eq!(&back, &s, "round-trip changed the scenario");
        prop_assert_eq!(back.to_json_text(), text, "serialization not byte-stable");
    }

    /// An unknown field anywhere in the top-level object is rejected
    /// with an error naming the field — never a panic, never silently
    /// ignored.
    #[test]
    fn unknown_top_level_fields_are_rejected(
        s in scenario_strategy(),
        field in (0u64..(1 << 32)).prop_map(|n| format!("f{n:x}")),
    ) {
        let text = s.to_json_text();
        // The canonical rendering opens with `{\n`; splice a field the
        // schema has never heard of right after it. Prefix it so it can
        // never collide with a real key.
        let bogus = format!("zz_{field}");
        let broken = text.replacen('{', &format!("{{\n  \"{bogus}\": 1,"), 1);
        match Scenario::from_json_text(&broken) {
            Ok(_) => return Err(TestCaseError::fail("unknown field accepted")),
            Err(e) => prop_assert!(
                e.contains(&bogus),
                "error {e:?} does not name the unknown field {bogus:?}"
            ),
        }
    }

    /// Out-of-range knobs surface as validation errors with a field
    /// path, not panics.
    #[test]
    fn out_of_range_horizon_is_a_field_error(s in scenario_strategy(), bad in -1.0e6f64..0.0) {
        let mut s = s;
        s.scale.horizon_us = bad;
        let err = s.validate().expect_err("non-positive horizon must be rejected");
        prop_assert!(err.contains("scenario.scale.horizon_us"), "bad path in {err:?}");
        // The codec applies the same validation on parse.
        let err = Scenario::from_json_text(&s.to_json_text())
            .expect_err("non-positive horizon must be rejected on parse");
        prop_assert!(err.contains("scenario.scale.horizon_us"), "bad path in {err:?}");
    }
}
