//! Criterion micro-benchmarks of the hot substrates: the event queue, the
//! caches, the three interconnects, the hardware Request Queue and the
//! queue fabric. These guard the simulator's own performance — a full
//! Figure 14 grid replays tens of millions of these operations.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use um_mem::cache::{Cache, CacheConfig};
use um_mem::hierarchy::{AccessKind, HierarchyConfig, MemoryHierarchy};
use um_net::{FatTree, LeafSpine, Mesh2D, Network, NetworkConfig, Topology};
use um_sched::{FabricConfig, QueueFabric, RequestQueue};
use um_sim::{Cycles, EventQueue};

fn bench_event_queue(c: &mut Criterion) {
    c.bench_function("event_queue_push_pop_1k", |b| {
        let mut rng = SmallRng::seed_from_u64(1);
        b.iter(|| {
            let mut q = EventQueue::new();
            for i in 0..1_000u64 {
                q.schedule_at(Cycles::new(rng.gen_range(0..1_000_000)), i);
            }
            let mut sum = 0u64;
            while let Some((_, e)) = q.pop() {
                sum += e;
            }
            black_box(sum)
        })
    });
}

fn bench_cache(c: &mut Criterion) {
    c.bench_function("l1_cache_access_hot", |b| {
        let mut cache = Cache::new(CacheConfig::new(64 * 1024, 8, 64));
        let mut rng = SmallRng::seed_from_u64(2);
        b.iter(|| {
            let addr = rng.gen_range(0..32 * 1024u64);
            black_box(cache.access(addr, false))
        })
    });

    c.bench_function("hierarchy_access_mixed", |b| {
        let mut h = MemoryHierarchy::new(HierarchyConfig::manycore());
        let mut rng = SmallRng::seed_from_u64(3);
        let mut now = Cycles::ZERO;
        b.iter(|| {
            let addr = rng.gen_range(0..4 * 1024 * 1024u64);
            let lat = h.access(addr, AccessKind::DataRead, now);
            now += Cycles::new(2);
            black_box(lat)
        })
    });
}

fn bench_networks(c: &mut Criterion) {
    let mut group = c.benchmark_group("icn_send");
    let cfg = NetworkConfig::on_package();
    group.bench_function("mesh_8x4", |b| {
        let mut net = Network::new(Mesh2D::new(8, 4), cfg);
        let mut rng = SmallRng::seed_from_u64(4);
        let mut t = Cycles::ZERO;
        b.iter(|| {
            let (s, d) = (rng.gen_range(0..32), rng.gen_range(0..32));
            t += Cycles::new(3);
            black_box(net.send(s, d, 512, t))
        })
    });
    group.bench_function("fat_tree_32", |b| {
        let mut net = Network::new(FatTree::new(32), cfg);
        let mut rng = SmallRng::seed_from_u64(5);
        let mut t = Cycles::ZERO;
        b.iter(|| {
            let (s, d) = (rng.gen_range(0..32), rng.gen_range(0..32));
            t += Cycles::new(3);
            black_box(net.send(s, d, 512, t))
        })
    });
    group.bench_function("leaf_spine_4x8", |b| {
        let mut net = Network::new(LeafSpine::paper_default(), cfg);
        let mut rng = SmallRng::seed_from_u64(6);
        let mut t = Cycles::ZERO;
        b.iter(|| {
            let n = net.topology().endpoints();
            let (s, d) = (rng.gen_range(0..n), rng.gen_range(0..n));
            t += Cycles::new(3);
            black_box(net.send(s, d, 512, t))
        })
    });
    group.finish();
}

fn bench_request_queue(c: &mut Criterion) {
    c.bench_function("rq_enqueue_dequeue_complete", |b| {
        let mut rq: RequestQueue<u64> = RequestQueue::new(64);
        b.iter(|| {
            let slot = rq.enqueue(1, 42).expect("queue drained each iter");
            let (got, _) = rq.dequeue(1).expect("just enqueued");
            debug_assert_eq!(got, slot);
            rq.complete(slot).expect("running completes");
        })
    });

    c.bench_function("rq_block_unblock_cycle", |b| {
        let mut rq: RequestQueue<u64> = RequestQueue::new(64);
        let slot = rq.enqueue(1, 7).expect("empty queue accepts");
        rq.dequeue(1).expect("ready");
        b.iter(|| {
            rq.block(slot).expect("running blocks");
            rq.unblock(slot).expect("blocked unblocks");
            rq.dequeue(1).expect("ready again");
        })
    });
}

fn bench_fabric(c: &mut Criterion) {
    c.bench_function("fabric_enqueue_dequeue_32q", |b| {
        let mut fabric: QueueFabric<u64> = QueueFabric::new(FabricConfig::new(1024, 32, false, 7));
        let mut core = 0usize;
        b.iter(|| {
            fabric.enqueue(1);
            core = (core + 1) % 1024;
            black_box(fabric.dequeue(core))
        })
    });

    c.bench_function("fabric_steal_scan_1024q", |b| {
        let mut fabric: QueueFabric<u64> = QueueFabric::new(FabricConfig::new(1024, 1024, true, 8));
        b.iter(|| {
            fabric.enqueue_at(0, 1);
            // Core 512's queue is empty: it must scan-steal.
            black_box(fabric.dequeue(512))
        })
    });
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_cache,
    bench_networks,
    bench_request_queue,
    bench_fabric
);
criterion_main!(benches);
