//! Cost of the latency-provenance layer: identical short system runs with
//! tracing disabled (the default; attribution is plain integer adds) and
//! enabled (per-component sample collection). The acceptance bar for the
//! tracing layer is that the disabled path stays within Criterion noise
//! of the pre-tracing simulator, and the enabled path's overhead is small
//! — both runs produce bit-identical simulation results either way.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use um_arch::MachineConfig;
use umanycore::{SimConfig, SystemSim, Workload};

fn short_run(machine: MachineConfig, seed: u64, trace: bool) -> f64 {
    let report = SystemSim::new(SimConfig {
        machine,
        workload: Workload::social_mix(),
        rps_per_server: 10_000.0,
        horizon_us: 10_000.0,
        warmup_us: 1_000.0,
        seed,
        trace,
        ..SimConfig::default()
    })
    .run();
    report.latency.p99
}

fn bench_tracing(c: &mut Criterion) {
    let mut group = c.benchmark_group("tracing_10ms_10krps");
    group.sample_size(10);
    for (name, machine) in [
        ("umanycore", MachineConfig::umanycore()),
        ("scaleout", MachineConfig::scaleout()),
    ] {
        for trace in [false, true] {
            let id = format!("{name}/{}", if trace { "traced" } else { "off" });
            group.bench_with_input(
                BenchmarkId::from_parameter(id),
                &(machine.clone(), trace),
                |b, (m, trace)| {
                    let mut seed = 0;
                    b.iter(|| {
                        seed += 1;
                        black_box(short_run(m.clone(), seed, *trace))
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_tracing);
criterion_main!(benches);
