//! Criterion benchmarks of whole-system simulation throughput: one short
//! run per machine, plus the experiment harness's per-cell cost. These
//! bound the wall-clock cost of regenerating the paper's figures.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use um_arch::MachineConfig;
use umanycore::{SimConfig, SystemSim, Workload};

fn short_run(machine: MachineConfig, seed: u64) -> f64 {
    let report = SystemSim::new(SimConfig {
        machine,
        workload: Workload::social_mix(),
        rps_per_server: 10_000.0,
        horizon_us: 10_000.0,
        warmup_us: 1_000.0,
        seed,
        ..SimConfig::default()
    })
    .run();
    report.latency.p99
}

fn bench_machines(c: &mut Criterion) {
    let mut group = c.benchmark_group("system_10ms_10krps");
    group.sample_size(10);
    for (name, machine) in [
        ("umanycore", MachineConfig::umanycore()),
        ("scaleout", MachineConfig::scaleout()),
        ("server_class", MachineConfig::server_class_iso_power()),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &machine, |b, m| {
            let mut seed = 0;
            b.iter(|| {
                seed += 1;
                black_box(short_run(m.clone(), seed))
            })
        });
    }
    group.finish();
}

fn bench_construction(c: &mut Criterion) {
    c.bench_function("system_construction_umanycore", |b| {
        b.iter(|| {
            let sim = SystemSim::new(SimConfig {
                machine: MachineConfig::umanycore(),
                workload: Workload::social_mix(),
                rps_per_server: 10_000.0,
                horizon_us: 10_000.0,
                warmup_us: 1_000.0,
                seed: 1,
                ..SimConfig::default()
            });
            black_box(sim)
        })
    });
}

criterion_group!(benches, bench_machines, bench_construction);
criterion_main!(benches);
