//! Criterion benchmark of the event engine on the fig7 workload: the
//! calendar-queue `EventQueue` against the `BinaryHeap` reference it
//! replaced, along both axes the `BENCH_engine.json` emitter tracks.
//!
//! - **load**: full replays of the fig7 RPS axis at the committed
//!   single-server scale (shorter horizon so the harness's many
//!   iterations stay affordable; `bench_engine` replays the committed
//!   200 ms).
//! - **fleet**: steady-state churn (pop one / reschedule one) against a
//!   pre-built cluster-sweep backlog. Churn preserves the pending
//!   population, so one queue serves every iteration; per-operation cost
//!   at depth is what separates `O(1)` from `O(log n)`, and a full fleet
//!   replay is tens of millions of events — far too slow to sample per
//!   iteration. Compare `calendar/…` vs `heap/…` ns/iter directly: both
//!   run [`CHURN_STEPS`] events per iteration.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use um_bench::engine::{churn, replay, Engine, Workload, FIG7_LOADS};
use um_sim::baseline::HeapQueue;
use um_sim::{Cycles, EventQueue};

const BENCH_HORIZON_US: f64 = 20_000.0;
const CHURN_STEPS: u64 = 100_000;

fn bench_load_axis(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_fig7_load");
    for rps in FIG7_LOADS {
        let workload = Workload::fig7(rps, BENCH_HORIZON_US, 1, 42);
        let id = format!("{}rps", rps as u64);
        group.bench_with_input(BenchmarkId::new("calendar", &id), &workload, |b, w| {
            b.iter(|| {
                let mut q = EventQueue::with_capacity(w.arrivals.len() + 1);
                black_box(replay(&mut q, w))
            })
        });
        group.bench_with_input(BenchmarkId::new("heap", &id), &workload, |b, w| {
            b.iter(|| black_box(replay(&mut HeapQueue::new(), w)))
        });
    }
    group.finish();
}

fn preload<Q: Engine>(q: &mut Q, workload: &Workload) {
    for (id, &at) in workload.arrivals.iter().enumerate() {
        q.schedule_at(Cycles::new(at), id as u64);
    }
}

fn bench_fleet_axis(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_fig7_fleet");
    for servers in [32usize, 128, 512] {
        // Same pending backlog as the emitter's full-horizon fleet points
        // (backlog = servers x rps x horizon).
        let workload = Workload::fig7(50_000.0, BENCH_HORIZON_US, servers * 10, 42);
        let mut cal = EventQueue::with_capacity(workload.arrivals.len());
        preload(&mut cal, &workload);
        group.bench_function(BenchmarkId::new("calendar", format!("{servers}srv")), |b| {
            b.iter(|| black_box(churn(&mut cal, CHURN_STEPS)))
        });
        drop(cal);
        let mut heap = HeapQueue::new();
        preload(&mut heap, &workload);
        group.bench_function(BenchmarkId::new("heap", format!("{servers}srv")), |b| {
            b.iter(|| black_box(churn(&mut heap, CHURN_STEPS)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_load_axis, bench_fleet_axis);
criterion_main!(benches);
