//! The fig7-pattern event workload shared by the `engine` Criterion bench
//! and the `bench_engine` emitter (`BENCH_engine.json`).
//!
//! The workload replays the event-queue traffic a Figure 7 run generates,
//! without the rest of the system simulator: every Poisson arrival over the
//! horizon is pre-scheduled up front (exactly as `SystemSim::new` does), and
//! each delivered event spawns a short near-future follow-up chain standing
//! in for the Enqueue → SegmentDone/Unblock → CoreFree cascade a request
//! produces. That shape — a deep backlog of far-out arrivals with hot
//! near-term chains racing through it — is precisely where the old
//! `BinaryHeap` paid `O(log n)` per operation against the full backlog and
//! the calendar queue pays `O(1)`.
//!
//! Both engines are driven through the same [`Engine`] trait so the bench
//! and the emitter cannot accidentally measure different traffic, and every
//! run returns a checksum that must agree across engines.

use um_sim::baseline::HeapQueue;
use um_sim::{Cycles, EventQueue, Frequency};
use um_workload::PoissonArrivals;

/// Follow-up events spawned per arrival: stands in for the per-request
/// Enqueue → per-segment SegmentDone/Unblock → CoreFree cascade (the
/// social-mix services in Figure 7 run multiple segments per request).
pub const CHAIN_DEPTH: u64 = 8;

/// The fig7 load axis, requests per second per server.
pub const FIG7_LOADS: [f64; 4] = [1_000.0, 5_000.0, 10_000.0, 50_000.0];

/// The minimal queue surface the workload needs, implemented by both the
/// calendar-queue [`EventQueue`] and the reference [`HeapQueue`].
pub trait Engine {
    /// Schedules `event` at absolute time `at`.
    fn schedule_at(&mut self, at: Cycles, event: u64);
    /// Delivers the next event in `(time, seq)` order.
    fn pop(&mut self) -> Option<(Cycles, u64)>;
}

impl Engine for EventQueue<u64> {
    fn schedule_at(&mut self, at: Cycles, event: u64) {
        EventQueue::schedule_at(self, at, event);
    }
    fn pop(&mut self) -> Option<(Cycles, u64)> {
        EventQueue::pop(self)
    }
}

impl Engine for HeapQueue<u64> {
    fn schedule_at(&mut self, at: Cycles, event: u64) {
        HeapQueue::schedule_at(self, at, event);
    }
    fn pop(&mut self) -> Option<(Cycles, u64)> {
        HeapQueue::pop(self)
    }
}

/// One fig7-shaped event trace: the pre-computed arrival schedule for a
/// load point, in cycles at the paper's 2 GHz manycore clock.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Absolute arrival times, in schedule order: one Poisson stream per
    /// server, concatenated server-by-server (unsorted overall) — exactly
    /// the order `SystemSim::new` pre-schedules them.
    pub arrivals: Vec<u64>,
    /// Requests per second per server this trace models.
    pub rps: f64,
    /// Servers in the fleet (the committed Figure 7 runs use 1; cluster
    /// sweeps — ROADMAP open item 1 — fan the same pattern out).
    pub servers: usize,
}

impl Workload {
    /// Builds the arrival schedule for one fig7 load point.
    ///
    /// `horizon_us` is the arrival window (the committed Figure 7 runs use
    /// 200 000 µs; the CI smoke mode shrinks it). `servers` merges that
    /// many independent per-server streams into one queue, which is how
    /// the system simulator schedules a cluster — the pending-event
    /// backlog, and with it the `BinaryHeap` baseline's `O(log n)` cost,
    /// grows with the fleet.
    pub fn fig7(rps: f64, horizon_us: f64, servers: usize, seed: u64) -> Self {
        let freq = Frequency::ghz(2.0);
        let mut arrivals = Vec::new();
        for s in 0..servers {
            arrivals.extend(
                PoissonArrivals::new(rps, seed.wrapping_add(s as u64))
                    .within(horizon_us)
                    .into_iter()
                    .map(|t| Cycles::from_micros(t, freq).raw()),
            );
        }
        Workload {
            arrivals,
            rps,
            servers,
        }
    }

    /// Total events one replay delivers: every arrival plus its chain.
    pub fn events_per_replay(&self) -> u64 {
        self.arrivals.len() as u64 * (1 + CHAIN_DEPTH)
    }
}

/// Outcome of one replay: must be identical across engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Replay {
    /// Events delivered.
    pub events: u64,
    /// Order-sensitive digest of the `(time, event)` delivery stream.
    pub checksum: u64,
}

/// Replays the workload against `q`: pre-schedules every arrival, then runs
/// the pop loop, spawning each arrival's follow-up chain as it is delivered.
///
/// Chain hops are a deterministic hash of the event id, spanning the
/// sub-microsecond latencies the system simulator schedules (1–4096 cycles)
/// with an occasional longer timer-like hop.
pub fn replay<Q: Engine>(q: &mut Q, workload: &Workload) -> Replay {
    // Event encoding: id << 8 | remaining chain depth.
    for (id, &at) in workload.arrivals.iter().enumerate() {
        q.schedule_at(Cycles::new(at), (id as u64) << 8 | CHAIN_DEPTH);
    }
    let mut events = 0u64;
    let mut checksum = 0u64;
    while let Some((now, event)) = q.pop() {
        events += 1;
        checksum = checksum
            .rotate_left(7)
            .wrapping_add(now.raw() ^ event.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let depth = event & 0xFF;
        if depth > 0 {
            let hop = splitmix(event) % 4_096 + 1;
            // Every 16th hop is a timer-scale jump that exercises the
            // upper wheel levels, like a boot or retry deadline.
            let hop = if splitmix(event ^ 0xA5A5).is_multiple_of(16) {
                hop << 9
            } else {
                hop
            };
            q.schedule_at(Cycles::new(now.raw() + hop), (event & !0xFF) | (depth - 1));
        }
    }
    Replay { events, checksum }
}

/// Steady-state churn at constant backlog: pops one event and reschedules
/// it a short deterministic hop out, `steps` times, without shrinking the
/// pending population. This isolates the per-operation cost at a given
/// backlog depth — the quantity that separates the engines — so Criterion
/// can sample deep-fleet points without paying for a full replay per
/// iteration. Returns an order-sensitive checksum (identical across
/// engines driven from the same starting queue).
pub fn churn<Q: Engine>(q: &mut Q, steps: u64) -> u64 {
    let mut checksum = 0u64;
    for _ in 0..steps {
        let Some((now, event)) = q.pop() else { break };
        checksum = checksum
            .rotate_left(7)
            .wrapping_add(now.raw() ^ event.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let hop = splitmix(event ^ checksum) % 4_096 + 1;
        q.schedule_at(Cycles::new(now.raw() + hop), event);
    }
    checksum
}

/// SplitMix64 finalizer: cheap, deterministic per-event hash.
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_engines_deliver_the_same_stream() {
        let w = Workload::fig7(10_000.0, 5_000.0, 2, 42);
        assert!(!w.arrivals.is_empty(), "horizon long enough for arrivals");
        let calendar = replay(&mut EventQueue::new(), &w);
        let heap = replay(&mut HeapQueue::new(), &w);
        assert_eq!(calendar, heap);
        assert_eq!(calendar.events, w.events_per_replay());
    }

    #[test]
    fn workloads_are_deterministic_per_seed() {
        let a = Workload::fig7(5_000.0, 2_000.0, 1, 7);
        let b = Workload::fig7(5_000.0, 2_000.0, 1, 7);
        let c = Workload::fig7(5_000.0, 2_000.0, 1, 8);
        assert_eq!(a.arrivals, b.arrivals);
        assert_ne!(a.arrivals, c.arrivals, "seed changes the trace");
    }

    #[test]
    fn churn_is_engine_independent_and_population_preserving() {
        let w = Workload::fig7(10_000.0, 5_000.0, 2, 42);
        let mut cal = EventQueue::new();
        let mut heap = HeapQueue::new();
        for (id, &at) in w.arrivals.iter().enumerate() {
            cal.schedule_at(Cycles::new(at), id as u64);
            heap.schedule_at(Cycles::new(at), id as u64);
        }
        let before = cal.len();
        assert_eq!(churn(&mut cal, 1_000), churn(&mut heap, 1_000));
        assert_eq!(cal.len(), before, "churn keeps the backlog constant");
        assert_eq!(cal.len(), heap.len());
    }

    #[test]
    fn fleet_merges_per_server_streams() {
        let one = Workload::fig7(5_000.0, 2_000.0, 1, 7);
        let four = Workload::fig7(5_000.0, 2_000.0, 4, 7);
        assert_eq!(four.arrivals[..one.arrivals.len()], one.arrivals[..]);
        assert!(four.arrivals.len() > 3 * one.arrivals.len());
    }
}
