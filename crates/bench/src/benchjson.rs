//! The `BENCH_*.json` document model: one emitter, one parser, one
//! schema check.
//!
//! The repo commits machine-readable perf trajectories
//! (`BENCH_engine.json`, `BENCH_cluster.json`) next to the
//! human-readable `results/` tables. The original emitter was inline
//! string concatenation in `bench_engine`, which meant nothing checked
//! that the committed files stayed parseable or that two benches agreed
//! on the envelope. This module centralizes the format:
//!
//! - [`Json`] is a minimal ordered document model (objects preserve key
//!   order, so emitted files are deterministic without sorted maps).
//! - [`Json::render`] pretty-prints it; [`Json::parse`] reads it back.
//!   Round-tripping is exact — see the module tests — so the committed
//!   files cannot drift from what the emitter produces.
//! - [`validate_bench`] enforces the shared envelope every
//!   `BENCH_*.json` satisfies: a `bench` name, a `scale`, and a
//!   non-empty homogeneous `points` array. CI validates both the
//!   committed files and freshly generated ones via the
//!   `bench_validate` binary.
//!
//! The model is deliberately tiny (no serde in the dependency tree):
//! numbers are `f64`, strings support the standard single-character
//! escapes, and that is all the bench envelope needs.

/// One JSON value. Objects are ordered key/value lists, so equal
/// documents render identically and rendering is deterministic.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A finite number ([`Json::render`] panics on NaN/infinity).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

/// Builds an object from `&str` keys (sugar for the emitters).
pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Rounds to `decimals` fractional digits, so emitted reals carry
/// figure precision instead of 17 significant digits.
pub fn rounded(v: f64, decimals: u32) -> f64 {
    let scale = 10f64.powi(decimals as i32);
    (v * scale).round() / scale
}

impl Json {
    /// Looks up a key in an object (`None` for non-objects too).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(pairs) => pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The number behind this value, if it is one.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The string behind this value, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The elements behind this value, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The key/value pairs behind this value, if it is an object.
    pub fn as_obj(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(pairs) => Some(pairs),
            _ => None,
        }
    }

    /// Pretty-prints the document (2-space indent, trailing newline).
    ///
    /// # Panics
    ///
    /// Panics on non-finite numbers: JSON has no spelling for them, and
    /// a bench that produced one has a bug worth aborting on.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(n) => {
                assert!(n.is_finite(), "cannot render non-finite number {n}");
                if n.fract() == 0.0 && n.abs() < 9.0e15 {
                    out.push_str(&format!("{n:.0}"));
                } else {
                    // `{}` on f64 is the shortest representation that
                    // parses back to the same bits, so render/parse
                    // round-trips exactly.
                    out.push_str(&format!("{n}"));
                }
            }
            Json::Str(s) => render_string(s, out),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, item) in items.iter().enumerate() {
                    push_indent(out, indent + 1);
                    item.render_into(out, indent + 1);
                    out.push_str(if i + 1 == items.len() { "\n" } else { ",\n" });
                }
                push_indent(out, indent);
                out.push(']');
            }
            Json::Obj(pairs) => {
                if pairs.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (key, value)) in pairs.iter().enumerate() {
                    push_indent(out, indent + 1);
                    render_string(key, out);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                    out.push_str(if i + 1 == pairs.len() { "\n" } else { ",\n" });
                }
                push_indent(out, indent);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document.
    ///
    /// # Errors
    ///
    /// Returns a message with the byte offset of the first violation.
    /// The accepted grammar matches what [`Json::render`] emits plus
    /// arbitrary whitespace; `\uXXXX` escapes outside the BMP are the
    /// one JSON feature deliberately not supported.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(value)
    }
}

fn push_indent(out: &mut String, indent: usize) {
    for _ in 0..indent {
        out.push_str("  ");
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<(), String> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", byte as char, self.pos))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(format!("expected '{word}' at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(format!("expected a value at byte {}", self.pos)),
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        while self
            .peek()
            .is_some_and(|b| matches!(b, b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii number");
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(format!("unterminated string at byte {start}")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let escape = self
                        .peek()
                        .ok_or_else(|| format!("unterminated escape at byte {start}"))?;
                    self.pos += 1;
                    match escape {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b't' => out.push('\t'),
                        b'r' => out.push('\r'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| format!("truncated \\u escape at byte {start}"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| format!("bad \\u escape at byte {start}"))?;
                            self.pos += 4;
                            // from_u32 rejects surrogates, so unpaired
                            // halves fail here rather than round-trip.
                            out.push(char::from_u32(code).ok_or_else(|| {
                                format!("unsupported \\u escape at byte {start}")
                            })?);
                        }
                        other => {
                            return Err(format!(
                                "unknown escape '\\{}' at byte {start}",
                                other as char
                            ))
                        }
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (the input came from &str,
                    // so boundaries are valid).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| format!("invalid UTF-8 at byte {start}"))?;
                    let c = rest.chars().next().expect("peeked a byte");
                    if (c as u32) < 0x20 {
                        return Err(format!("raw control character at byte {start}"));
                    }
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        self.skip_ws();
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        self.skip_ws();
        let mut pairs = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(pairs));
        }
        loop {
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            pairs.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                    self.skip_ws();
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(pairs));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }
}

/// Checks the shared `BENCH_*.json` envelope:
///
/// - the document is an object with a non-empty string `bench` and a
///   `scale` of `"quick"` or `"full"`;
/// - `points` is a non-empty array of objects;
/// - every point carries exactly the same keys, in the same order, as
///   the first point (so a new field cannot appear in only some rows);
/// - point values are numbers or strings (the envelope is flat);
/// - when present, `headline` is an object.
///
/// # Errors
///
/// Returns a description of the first violated clause.
pub fn validate_bench(doc: &Json) -> Result<(), String> {
    doc.as_obj().ok_or("document is not an object")?;
    let bench = doc
        .get("bench")
        .and_then(Json::as_str)
        .ok_or("missing string field 'bench'")?;
    if bench.is_empty() {
        return Err("'bench' is empty".to_string());
    }
    let scale = doc
        .get("scale")
        .and_then(Json::as_str)
        .ok_or("missing string field 'scale'")?;
    if scale != "quick" && scale != "full" {
        return Err(format!("'scale' must be quick or full, got '{scale}'"));
    }
    if let Some(headline) = doc.get("headline") {
        headline.as_obj().ok_or("'headline' is not an object")?;
    }
    let points = doc
        .get("points")
        .and_then(Json::as_arr)
        .ok_or("missing array field 'points'")?;
    if points.is_empty() {
        return Err("'points' is empty".to_string());
    }
    let keys = |p: &Json| -> Option<Vec<String>> {
        p.as_obj()
            .map(|pairs| pairs.iter().map(|(k, _)| k.clone()).collect())
    };
    let expected = keys(&points[0]).ok_or("point 0 is not an object")?;
    for (i, point) in points.iter().enumerate() {
        let got = keys(point).ok_or_else(|| format!("point {i} is not an object"))?;
        if got != expected {
            return Err(format!(
                "point {i} keys {got:?} differ from point 0 keys {expected:?}"
            ));
        }
        for (key, value) in point.as_obj().expect("checked above") {
            if !matches!(value, Json::Num(_) | Json::Str(_)) {
                return Err(format!("point {i} field '{key}' is not a number or string"));
            }
        }
    }
    Ok(())
}

/// Parses and validates one `BENCH_*.json` document.
///
/// # Errors
///
/// Returns the parse error or the first schema violation.
pub fn validate_bench_str(text: &str) -> Result<Json, String> {
    let doc = Json::parse(text)?;
    validate_bench(&doc)?;
    Ok(doc)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        obj(vec![
            ("bench", Json::Str("engine".into())),
            ("scale", Json::Str("full".into())),
            ("horizon_us", Json::Num(200_000.0)),
            (
                "headline",
                obj(vec![
                    ("axis", Json::Str("fleet".into())),
                    ("speedup", Json::Num(rounded(6.2378, 2))),
                ]),
            ),
            (
                "points",
                Json::Arr(vec![
                    obj(vec![
                        ("axis", Json::Str("load".into())),
                        ("rps", Json::Num(50_000.0)),
                        ("events_per_sec", Json::Num(1.25e7)),
                    ]),
                    obj(vec![
                        ("axis", Json::Str("fleet".into())),
                        ("rps", Json::Num(50_000.0)),
                        ("events_per_sec", Json::Num(0.5)),
                    ]),
                ]),
            ),
        ])
    }

    #[test]
    fn render_parse_round_trips_exactly() {
        let doc = sample();
        let text = doc.render();
        assert_eq!(Json::parse(&text).expect("parses"), doc);
        // A second trip through the emitter is byte-stable.
        assert_eq!(Json::parse(&text).expect("parses").render(), text);
    }

    #[test]
    fn awkward_numbers_round_trip() {
        for n in [
            0.0,
            -0.0,
            1.0 / 3.0,
            6.02e23,
            -1.5e-9,
            9.0e15 - 2.0,
            f64::MIN_POSITIVE,
        ] {
            let text = Json::Num(n).render();
            let back = Json::parse(&text).expect("parses").as_num().expect("num");
            assert_eq!(back.to_bits(), n.to_bits(), "{n} via {text:?}");
        }
    }

    #[test]
    fn strings_with_escapes_round_trip() {
        let doc = Json::Str("a \"quote\", a \\ slash,\n\ta tab, \u{1}".into());
        assert_eq!(Json::parse(&doc.render()).expect("parses"), doc);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn non_finite_numbers_refuse_to_render() {
        Json::Num(f64::NAN).render();
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "{\"a\": }",
            "{\"a\": 1,}",
            "[1 2]",
            "\"unterminated",
            "\"bad \\q escape\"",
            "nulL",
            "{} trailing",
            "{\"a\": 1e}",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} should not parse");
        }
    }

    #[test]
    fn validator_accepts_the_envelope() {
        assert_eq!(validate_bench(&sample()), Ok(()));
        let text = sample().render();
        assert!(validate_bench_str(&text).is_ok());
    }

    #[test]
    fn validator_rejects_envelope_violations() {
        let mut no_bench = sample();
        if let Json::Obj(pairs) = &mut no_bench {
            pairs.retain(|(k, _)| k != "bench");
        }
        assert!(validate_bench(&no_bench)
            .expect_err("no bench")
            .contains("bench"));

        let mut bad_scale = sample();
        if let Json::Obj(pairs) = &mut bad_scale {
            pairs[1].1 = Json::Str("huge".into());
        }
        assert!(validate_bench(&bad_scale)
            .expect_err("bad scale")
            .contains("scale"));

        let mut empty_points = sample();
        if let Json::Obj(pairs) = &mut empty_points {
            pairs[4].1 = Json::Arr(Vec::new());
        }
        assert!(validate_bench(&empty_points).is_err());

        // A field present in only one point is schema drift.
        let mut ragged = sample();
        if let Json::Obj(pairs) = &mut ragged {
            if let Json::Arr(points) = &mut pairs[4].1 {
                if let Json::Obj(point) = &mut points[1] {
                    point.push(("extra".into(), Json::Num(1.0)));
                }
            }
        }
        assert!(validate_bench(&ragged)
            .expect_err("ragged")
            .contains("differ"));

        // Nested containers inside a point are not part of the envelope.
        let mut nested = sample();
        if let Json::Obj(pairs) = &mut nested {
            if let Json::Arr(points) = &mut pairs[4].1 {
                for point in points.iter_mut() {
                    if let Json::Obj(point) = point {
                        point[2].1 = Json::Arr(Vec::new());
                    }
                }
            }
        }
        assert!(validate_bench(&nested).is_err());
    }
}
