//! The declarative scenario layer: one serializable description of a
//! whole experiment — machine, workload, fault plan, mitigation policy,
//! cluster shape and scale — that expands into the exact same
//! fully-specified config lists the figure binaries used to build
//! inline.
//!
//! A [`Scenario`] round-trips through the zero-dependency
//! [`crate::benchjson`] model (`to_json_text` / `from_json_text`), so
//! experiments can be committed, diffed and replayed as data. The
//! [`registry`] holds the named built-in scenarios behind the committed
//! `results/` tables; the conformance tests assert that expanding a
//! registry scenario reproduces the legacy inline construction
//! field-for-field, and that [`run`] reproduces the committed text
//! byte-for-byte.
//!
//! Every expansion derives per-point seeds from the scenario's master
//! seed the same way the legacy drivers did, and every run goes through
//! the deterministic sweep runner — results are bit-identical at any
//! `UM_THREADS`.

use std::sync::atomic::{AtomicUsize, Ordering};

use um_arch::config::{IcnKind, MachineConfig, TopologyShape};
use um_sched::{CtxSwitchModel, DequeuePolicy, HedgeConfig, MitigationConfig, RetryConfig};
use um_sim::fault::{FaultPlan, FaultRecipe};
use um_sim::rng;
use um_sim::trace::Component;
use um_stats::summary::geomean;
use um_stats::table::{f1, f2, Table};
use um_workload::synthetic::SyntheticWorkload;
use um_workload::ServiceTimeDist;
use umanycore::cluster::ClusterNetConfig;
use umanycore::experiments::cluster::ClusterScale;
use umanycore::experiments::{motivation, parallel, Scale};
use umanycore::report::RunReport;
use umanycore::system::ArrivalProcess;
use umanycore::{
    ClusterConfig, ClusterReport, ClusterSim, RoutingPolicy, SimConfig, SystemSim, Workload,
};

use crate::benchjson::{obj, rounded, Json};
use crate::header_text;

/// Largest integer JSON (f64) carries exactly; integer knobs above this
/// would silently lose precision through a round-trip, so validation
/// rejects them.
const MAX_EXACT_INT: u64 = 1 << 53;

// ---------------------------------------------------------------------
// Scenario model
// ---------------------------------------------------------------------

/// Run scale: horizons, fleet width and the master seed every per-point
/// seed derives from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ScaleSpec {
    /// Arrival horizon per point, microseconds.
    pub horizon_us: f64,
    /// Warm-up cut-off, microseconds.
    pub warmup_us: f64,
    /// Servers per single-node point (cluster points size via
    /// [`ClusterSpec::nodes`]).
    pub servers: usize,
    /// Master seed.
    pub seed: u64,
}

impl ScaleSpec {
    /// The figure-quality single-node scale ([`Scale::default`]).
    pub fn full() -> Self {
        Self::from_scale(Scale::default())
    }

    /// Converts an experiment [`Scale`].
    pub fn from_scale(s: Scale) -> Self {
        Self {
            horizon_us: s.horizon_us,
            warmup_us: s.warmup_us,
            servers: s.servers,
            seed: s.seed,
        }
    }

    /// The experiment-layer [`Scale`] this spec describes.
    pub fn to_scale(self) -> Scale {
        Scale {
            horizon_us: self.horizon_us,
            warmup_us: self.warmup_us,
            servers: self.servers,
            seed: self.seed,
        }
    }
}

/// Which paper machine a [`MachineSpec`] starts from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MachineBase {
    /// The 1024-core uManycore package.
    Umanycore,
    /// The 1024-core software-scheduled ScaleOut baseline.
    Scaleout,
    /// The iso-power server-class baseline.
    ServerClassIsoPower,
    /// The iso-area server-class baseline.
    ServerClassIsoArea,
}

/// A machine description: a paper machine plus the overrides the
/// experiments actually use. `build` applies them in a fixed order, so
/// equal specs yield identical [`MachineConfig`] values.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct MachineSpec {
    /// Base machine.
    pub base: MachineBase,
    /// Topology override `[cores_per_village, villages_per_cluster,
    /// clusters]`; only valid on [`MachineBase::Umanycore`].
    pub shape: Option<[usize; 3]>,
    /// Hardware Request Queue entries per village.
    pub rq_capacity: Option<usize>,
    /// Fixed context-switch cost override, cycles
    /// ([`CtxSwitchModel::Custom`]).
    pub ctx_switch_cycles: Option<u64>,
    /// On-package interconnect override.
    pub icn: Option<IcnKind>,
}

impl MachineSpec {
    /// A bare base machine with no overrides.
    pub fn of(base: MachineBase) -> Self {
        Self {
            base,
            shape: None,
            rq_capacity: None,
            ctx_switch_cycles: None,
            icn: None,
        }
    }

    /// Materializes the [`MachineConfig`]. Call after validation: an
    /// invalid spec (e.g. a shape on a non-uManycore base) is ignored
    /// here, not rejected.
    pub fn build(&self) -> MachineConfig {
        let mut m = match (self.base, self.shape) {
            (MachineBase::Umanycore, Some(s)) => {
                MachineConfig::umanycore_shaped(TopologyShape::new(s[0], s[1], s[2]))
            }
            (MachineBase::Umanycore, None) => MachineConfig::umanycore(),
            (MachineBase::Scaleout, _) => MachineConfig::scaleout(),
            (MachineBase::ServerClassIsoPower, _) => MachineConfig::server_class_iso_power(),
            (MachineBase::ServerClassIsoArea, _) => MachineConfig::server_class_iso_area(),
        };
        if let Some(rq) = self.rq_capacity {
            m.rq_capacity = rq;
        }
        if let Some(cycles) = self.ctx_switch_cycles {
            m.ctx_switch = CtxSwitchModel::Custom(cycles);
        }
        if let Some(icn) = self.icn {
            m.icn = icn;
        }
        m
    }

    /// The RQ depth `build` would produce (override or the base
    /// machine's default) — what the cluster deadlock guard checks.
    pub fn effective_rq_capacity(&self) -> usize {
        self.build().rq_capacity
    }
}

/// Which request workload the scenario draws from.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum WorkloadSpec {
    /// The uniform SocialNetwork eight-app mix.
    SocialMix,
    /// The uniform TrainTicket root-service mix.
    TrainMix,
    /// A synthetic uSuite-style workload: lognormal handler compute with
    /// the given mean/SCV and a uniform blocking-RPC count.
    Synthetic {
        /// Mean handler compute, microseconds.
        mean_us: f64,
        /// Squared coefficient of variation of the compute time.
        scv: f64,
        /// Minimum blocking RPCs per request.
        min_rpcs: u32,
        /// Maximum blocking RPCs per request.
        max_rpcs: u32,
    },
}

impl WorkloadSpec {
    /// Materializes the [`Workload`].
    pub fn build(&self) -> Workload {
        match *self {
            WorkloadSpec::SocialMix => Workload::social_mix(),
            WorkloadSpec::TrainMix => Workload::train_mix(),
            WorkloadSpec::Synthetic {
                mean_us,
                scv,
                min_rpcs,
                max_rpcs,
            } => Workload::Synthetic(SyntheticWorkload::new(
                ServiceTimeDist::lognormal_with_mean(mean_us, scv),
                min_rpcs,
                max_rpcs,
            )),
        }
    }
}

/// Timeout/retry knobs ([`RetryConfig`] as plain serializable data).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetrySpec {
    /// Attempt timeout, microseconds.
    pub timeout_us: f64,
    /// Timeout multiplier per failed attempt.
    pub backoff: f64,
    /// Total attempts allowed, including the first.
    pub max_attempts: u32,
    /// Retry-budget earn rate per operation started.
    pub budget_fraction: f64,
}

impl RetrySpec {
    /// Mirrors [`RetryConfig::with_timeout_us`]: doubling backoff, three
    /// attempts, 10% budget.
    pub fn with_timeout_us(timeout_us: f64) -> Self {
        Self {
            timeout_us,
            backoff: 2.0,
            max_attempts: 3,
            budget_fraction: 0.1,
        }
    }
}

/// Tail-mitigation policy as serializable data.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MitigationSpec {
    /// Hedge after this fixed delay, microseconds.
    pub hedge_delay_us: Option<f64>,
    /// Timeout + exponential-backoff retry.
    pub retry: Option<RetrySpec>,
    /// Straggler-aware steering.
    pub steer: bool,
}

impl MitigationSpec {
    /// Materializes the [`MitigationConfig`].
    pub fn build(&self) -> MitigationConfig {
        MitigationConfig {
            hedge: self.hedge_delay_us.map(HedgeConfig::after_delay_us),
            retry: self.retry.map(|r| RetryConfig {
                timeout_us: r.timeout_us,
                backoff: r.backoff,
                max_attempts: r.max_attempts,
                budget_fraction: r.budget_fraction,
            }),
            steer: self.steer,
        }
    }
}

/// A routing policy with the display name the tables print.
#[derive(Clone, Debug, PartialEq)]
pub struct NamedRouting {
    /// Table/row label, e.g. `jsq(2)`.
    pub name: String,
    /// The policy itself.
    pub policy: RoutingPolicy,
}

/// Rack-fabric jitter: lognormal with the given mean and SCV.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct JitterSpec {
    /// Mean one-way jitter, microseconds.
    pub mean_us: f64,
    /// Squared coefficient of variation.
    pub scv: f64,
}

/// The cluster/serving-layer knobs: rack width, routing policies,
/// admission control and fabric jitter.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterSpec {
    /// Packages in the rack.
    pub nodes: usize,
    /// Routing policies swept (display order).
    pub routing: Vec<NamedRouting>,
    /// Per-node admission cap; `None` disables admission control (see
    /// the deadlock guard in [`Scenario::validate`]).
    pub max_in_flight: Option<usize>,
    /// Rack-fabric jitter; `None` keeps the fabric deterministic.
    pub jitter: Option<JitterSpec>,
    /// Load-balancer straggler steering.
    pub steer: bool,
}

/// A machine column of the breakdown table.
#[derive(Clone, Debug, PartialEq)]
pub struct NamedMachine {
    /// Column label.
    pub name: String,
    /// The machine under that column.
    pub machine: MachineSpec,
}

/// One autoscaling configuration of an [`ScenarioKind::Autoscale`] row.
#[derive(Clone, Debug, PartialEq)]
pub struct AutoscaleConfig {
    /// Row label, e.g. `autoscale + snapshot pool`.
    pub name: String,
    /// Instance autoscaling on village overload.
    pub autoscale: bool,
    /// Snapshot memory pool backing instance boots (cold boots when off).
    pub pool: bool,
}

/// A workload row of an [`ScenarioKind::SrptAblation`] sweep.
#[derive(Clone, Debug, PartialEq)]
pub struct NamedWorkload {
    /// Row label, e.g. `HeavyTail`.
    pub name: String,
    /// The workload under that label.
    pub workload: WorkloadSpec,
    /// Offered loads swept for this workload, requests per second.
    pub loads: Vec<f64>,
}

/// A mitigation policy axis value of a [`GridSpec`].
#[derive(Clone, Debug, PartialEq)]
pub struct NamedPolicy {
    /// Axis label, e.g. `retry`.
    pub name: String,
    /// The mitigation applied at this axis value.
    pub mitigation: MitigationSpec,
}

/// The generic sweep grid `um-sweep` expands: the cross product of
/// loads × (rack widths ×) (routings ×) policies × seeds.
#[derive(Clone, Debug, PartialEq)]
pub struct GridSpec {
    /// Offered loads, requests per second (per server / per node).
    pub loads: Vec<f64>,
    /// Seed axis; each value derives an independent replica stream.
    pub seeds: Vec<u64>,
    /// Rack widths. Empty runs single-node points; non-empty runs
    /// cluster points and requires [`Scenario::cluster`].
    pub nodes: Vec<usize>,
    /// Mitigation policy axis.
    pub policies: Vec<NamedPolicy>,
}

/// What the scenario measures — one variant per converted figure binary
/// plus the generic grid.
#[derive(Clone, Debug, PartialEq)]
pub enum ScenarioKind {
    /// Figure 7: ICN-contention tail inflation, mesh vs fat tree,
    /// normalized against contention-free twins.
    Fig7 {
        /// Offered loads swept, requests per second per server.
        loads: Vec<f64>,
    },
    /// The measured per-component latency breakdown across machines.
    Breakdown {
        /// Offered load, requests per second per server.
        rps: f64,
        /// Machine columns, in display order.
        machines: Vec<NamedMachine>,
    },
    /// Tail vs message-loss rate, unmitigated vs timeout/retry.
    FaultTail {
        /// Offered load, requests per second per server.
        rps: f64,
        /// Per-leg drop probabilities swept.
        drop_rates: Vec<f64>,
        /// Timeout of the mitigated column's retry policy, microseconds.
        retry_timeout_us: f64,
    },
    /// Fleet tail by routing policy (requires [`Scenario::cluster`]).
    ClusterTail {
        /// Offered loads per node swept, requests per second.
        loads: Vec<f64>,
    },
    /// The abstract's headline comparison: several machines across a load
    /// sweep, with the first-vs-last geomean latency ratios as the
    /// headline (the `cluster10` table).
    MachineCompare {
        /// Offered loads swept, requests per second per server.
        loads: Vec<f64>,
        /// Machine rows, in display order; the headline ratios divide the
        /// first row's latency by the last row's.
        machines: Vec<NamedMachine>,
    },
    /// Autoscaling under bursty (MMPP) arrivals: pool-backed vs cold
    /// instance boots vs none (the `autoscale` table).
    Autoscale {
        /// Offered load, requests per second per server.
        rps: f64,
        /// Arrival-horizon multiplier over [`ScaleSpec::horizon_us`], so
        /// every configuration samples several burst cycles while
        /// `UM_SCALE=quick` still composes.
        horizon_factor: f64,
        /// Configurations, in display order.
        configs: Vec<AutoscaleConfig>,
    },
    /// FCFS vs SRPT dequeue on the hardware RQ, per workload and load
    /// (the `ablation_srpt` table). Each point runs both policies on a
    /// shared seed so the ratio stays paired.
    SrptAblation {
        /// Workload rows; each sweeps its own load list.
        workloads: Vec<NamedWorkload>,
    },
    /// The generic `um-sweep` grid.
    Grid(GridSpec),
}

/// One self-contained experiment description.
#[derive(Clone, Debug, PartialEq)]
pub struct Scenario {
    /// Registry/display name.
    pub name: String,
    /// The machine every point runs (the breakdown kind's per-column
    /// machines override it).
    pub machine: MachineSpec,
    /// The request workload.
    pub workload: WorkloadSpec,
    /// Horizons, fleet width, master seed.
    pub scale: ScaleSpec,
    /// Scheduled faults, replayed through the seeded
    /// [`FaultPlan`] builder per point. Must be empty for
    /// [`ScenarioKind::FaultTail`], which sweeps its own drop plan.
    pub faults: Vec<FaultRecipe>,
    /// Base mitigation policy (kinds that sweep mitigation — fault-tail,
    /// grid — override it per point).
    pub mitigation: MitigationSpec,
    /// Serving-layer knobs; required by cluster-running kinds.
    pub cluster: Option<ClusterSpec>,
    /// What to measure.
    pub kind: ScenarioKind,
}

// ---------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------

fn check(cond: bool, msg: impl FnOnce() -> String) -> Result<(), String> {
    if cond {
        Ok(())
    } else {
        Err(msg())
    }
}

fn validate_machine(path: &str, m: &MachineSpec) -> Result<(), String> {
    if let Some(shape) = m.shape {
        check(m.base == MachineBase::Umanycore, || {
            format!("{path}.shape: only valid with base `umanycore`")
        })?;
        check(shape.iter().all(|&d| d >= 1), || {
            format!("{path}.shape: every dimension must be at least 1")
        })?;
    }
    if let Some(rq) = m.rq_capacity {
        check(rq >= 1, || {
            format!("{path}.rq_capacity: must be at least 1")
        })?;
    }
    Ok(())
}

fn validate_mitigation(path: &str, m: &MitigationSpec) -> Result<(), String> {
    if let Some(d) = m.hedge_delay_us {
        check(d.is_finite() && d >= 0.0, || {
            format!("{path}.hedge_delay_us: must be a finite nonnegative delay")
        })?;
    }
    if let Some(r) = m.retry {
        check(r.timeout_us.is_finite() && r.timeout_us > 0.0, || {
            format!("{path}.retry.timeout_us: must be a positive timeout")
        })?;
        check(r.backoff.is_finite() && r.backoff >= 1.0, || {
            format!("{path}.retry.backoff: must be at least 1.0")
        })?;
        check(r.max_attempts >= 1, || {
            format!("{path}.retry.max_attempts: must be at least 1")
        })?;
        check((0.0..=1.0).contains(&r.budget_fraction), || {
            format!("{path}.retry.budget_fraction: must be within [0, 1]")
        })?;
    }
    Ok(())
}

fn validate_window(path: &str, from: u64, until: u64, slowdown: f64) -> Result<(), String> {
    check(from < until, || {
        format!("{path}: window start must precede its end")
    })?;
    check(slowdown.is_finite() && slowdown >= 1.0, || {
        format!("{path}: slowdown must be a finite factor >= 1 (serialize outages as a large finite slowdown)")
    })
}

fn validate_fault(path: &str, f: &FaultRecipe) -> Result<(), String> {
    match *f {
        FaultRecipe::MessageDrops { probability } => check(
            probability.is_finite() && (0.0..1.0).contains(&probability),
            || format!("{path}.probability: must be within [0, 1)"),
        ),
        FaultRecipe::CoreFailStop { .. } => Ok(()),
        FaultRecipe::CoreFailSlow {
            from_cycles,
            until_cycles,
            slowdown,
            cores,
            ..
        } => {
            check(cores >= 1, || format!("{path}.cores: must be at least 1"))?;
            validate_window(path, from_cycles, until_cycles, slowdown)
        }
        FaultRecipe::LinkFault {
            from_cycles,
            until_cycles,
            slowdown,
            ..
        } => validate_window(path, from_cycles, until_cycles, slowdown),
        FaultRecipe::FailSlowEveryVillage {
            servers,
            villages,
            cores,
            from_cycles,
            until_cycles,
            slowdown,
        } => {
            check(servers >= 1 && villages >= 1 && cores >= 1, || {
                format!("{path}: servers, villages and cores must be at least 1")
            })?;
            validate_window(path, from_cycles, until_cycles, slowdown)
        }
        FaultRecipe::RandomFailStops {
            servers,
            villages,
            horizon_cycles,
            ..
        } => check(servers >= 1 && villages >= 1 && horizon_cycles >= 1, || {
            format!("{path}: servers, villages and horizon_cycles must be at least 1")
        }),
        FaultRecipe::RandomLinkFaults {
            servers,
            links,
            horizon_cycles,
            mean_duration_cycles,
            slowdown,
            ..
        } => {
            check(
                servers >= 1 && links >= 1 && horizon_cycles >= 1 && mean_duration_cycles >= 1,
                || format!("{path}: index spaces and durations must be at least 1"),
            )?;
            check(slowdown.is_finite() && slowdown >= 1.0, || {
                format!("{path}.slowdown: must be a finite factor >= 1")
            })
        }
    }
}

fn validate_workload(path: &str, w: &WorkloadSpec) -> Result<(), String> {
    if let WorkloadSpec::Synthetic {
        mean_us,
        scv,
        min_rpcs,
        max_rpcs,
    } = *w
    {
        check(mean_us.is_finite() && mean_us > 0.0, || {
            format!("{path}.mean_us: must be a positive time")
        })?;
        check(scv.is_finite() && scv > 0.0, || {
            format!("{path}.scv: must be positive")
        })?;
        check(min_rpcs <= max_rpcs, || {
            format!("{path}.min_rpcs: must not exceed max_rpcs")
        })?;
    }
    Ok(())
}

fn validate_loads(path: &str, loads: &[f64]) -> Result<(), String> {
    check(!loads.is_empty(), || format!("{path}: must not be empty"))?;
    check(loads.iter().all(|&l| l.is_finite() && l > 0.0), || {
        format!("{path}: every load must be a positive rate")
    })
}

impl Scenario {
    /// Whether this scenario runs cluster simulations (and therefore
    /// needs a [`ClusterSpec`] and the RQ deadlock guard).
    pub fn runs_cluster(&self) -> bool {
        match &self.kind {
            ScenarioKind::ClusterTail { .. } => true,
            ScenarioKind::Grid(g) => !g.nodes.is_empty(),
            _ => false,
        }
    }

    /// Checks every knob before expansion.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field on the first
    /// violation — scenarios fail validation, they do not panic inside
    /// the simulator.
    pub fn validate(&self) -> Result<(), String> {
        check(!self.name.is_empty(), || {
            "scenario.name: must not be empty".to_string()
        })?;
        let s = &self.scale;
        check(s.horizon_us.is_finite() && s.horizon_us > 0.0, || {
            "scenario.scale.horizon_us: must be a positive horizon".to_string()
        })?;
        check(
            s.warmup_us.is_finite() && s.warmup_us >= 0.0 && s.warmup_us < s.horizon_us,
            || "scenario.scale.warmup_us: must be nonnegative and below horizon_us".to_string(),
        )?;
        check(s.servers >= 1, || {
            "scenario.scale.servers: must be at least 1".to_string()
        })?;
        check(s.seed < MAX_EXACT_INT, || {
            "scenario.scale.seed: must stay below 2^53 (JSON-exact)".to_string()
        })?;
        validate_machine("scenario.machine", &self.machine)?;
        validate_workload("scenario.workload", &self.workload)?;
        validate_mitigation("scenario.mitigation", &self.mitigation)?;
        for (i, f) in self.faults.iter().enumerate() {
            validate_fault(&format!("scenario.faults[{i}]"), f)?;
        }
        if let Some(c) = &self.cluster {
            check(c.nodes >= 1, || {
                "scenario.cluster.nodes: must be at least 1".to_string()
            })?;
            check(!c.routing.is_empty(), || {
                "scenario.cluster.routing: must not be empty".to_string()
            })?;
            for (i, r) in c.routing.iter().enumerate() {
                check(!r.name.is_empty(), || {
                    format!("scenario.cluster.routing[{i}].name: must not be empty")
                })?;
                if let RoutingPolicy::JsqD { d } = r.policy {
                    check(d >= 1, || {
                        format!("scenario.cluster.routing[{i}].d: must be at least 1")
                    })?;
                }
            }
            if let Some(cap) = c.max_in_flight {
                check(cap >= 1, || {
                    "scenario.cluster.max_in_flight: must be at least 1 when set".to_string()
                })?;
            }
            if let Some(j) = c.jitter {
                check(j.mean_us.is_finite() && j.mean_us > 0.0, || {
                    "scenario.cluster.jitter.mean_us: must be a positive time".to_string()
                })?;
                check(j.scv.is_finite() && j.scv > 0.0, || {
                    "scenario.cluster.jitter.scv: must be positive".to_string()
                })?;
            }
        }
        self.validate_kind()?;
        if self.runs_cluster() {
            let c = self
                .cluster
                .as_ref()
                .expect("validate_kind requires a cluster spec for cluster kinds");
            // The RQ deadlock guard (DESIGN.md, "Cluster layer"): on a
            // shallow RQ, blocked parents can fill every entry of a hot
            // village while their children wait in the NIC buffer —
            // admission control bounds the blocked population instead
            // (each admitted root holds at most two RQ slots), and a
            // >= 512-entry RQ is the committed deep-RQ regime.
            let rq = self.machine.effective_rq_capacity();
            let capped = c.max_in_flight.is_some_and(|cap| 2 * cap <= rq);
            check(rq >= 512 || capped, || {
                format!(
                    "scenario.cluster.max_in_flight: cluster scenarios with a shallow RQ \
                     (machine.rq_capacity = {rq}) can deadlock on RQ overflow; set \
                     cluster.max_in_flight to at most rq_capacity/2, or raise \
                     machine.rq_capacity to >= 512 (see DESIGN.md, \"Cluster layer\")"
                )
            })?;
        }
        Ok(())
    }

    fn validate_kind(&self) -> Result<(), String> {
        match &self.kind {
            ScenarioKind::Fig7 { loads } => validate_loads("scenario.kind.loads", loads),
            ScenarioKind::Breakdown { rps, machines } => {
                check(rps.is_finite() && *rps > 0.0, || {
                    "scenario.kind.rps: must be a positive rate".to_string()
                })?;
                check(!machines.is_empty(), || {
                    "scenario.kind.machines: must not be empty".to_string()
                })?;
                for (i, m) in machines.iter().enumerate() {
                    check(!m.name.is_empty(), || {
                        format!("scenario.kind.machines[{i}].name: must not be empty")
                    })?;
                    validate_machine(&format!("scenario.kind.machines[{i}].machine"), &m.machine)?;
                }
                Ok(())
            }
            ScenarioKind::FaultTail {
                rps,
                drop_rates,
                retry_timeout_us,
            } => {
                check(rps.is_finite() && *rps > 0.0, || {
                    "scenario.kind.rps: must be a positive rate".to_string()
                })?;
                check(!drop_rates.is_empty(), || {
                    "scenario.kind.drop_rates: must not be empty".to_string()
                })?;
                for (i, &p) in drop_rates.iter().enumerate() {
                    check(p.is_finite() && (0.0..1.0).contains(&p), || {
                        format!("scenario.kind.drop_rates[{i}]: must be within [0, 1)")
                    })?;
                }
                check(
                    retry_timeout_us.is_finite() && *retry_timeout_us > 0.0,
                    || "scenario.kind.retry_timeout_us: must be a positive timeout".to_string(),
                )?;
                check(self.faults.is_empty(), || {
                    "scenario.faults: fault-tail sweeps its own drop plan; faults must be empty"
                        .to_string()
                })
            }
            ScenarioKind::ClusterTail { loads } => {
                validate_loads("scenario.kind.loads", loads)?;
                check(self.cluster.is_some(), || {
                    "scenario.cluster: required by the cluster-tail kind".to_string()
                })
            }
            ScenarioKind::MachineCompare { loads, machines } => {
                validate_loads("scenario.kind.loads", loads)?;
                check(machines.len() >= 2, || {
                    "scenario.kind.machines: need at least two rows (the headline ratios \
                     divide the first row by the last)"
                        .to_string()
                })?;
                for (i, m) in machines.iter().enumerate() {
                    check(!m.name.is_empty(), || {
                        format!("scenario.kind.machines[{i}].name: must not be empty")
                    })?;
                    validate_machine(&format!("scenario.kind.machines[{i}].machine"), &m.machine)?;
                }
                Ok(())
            }
            ScenarioKind::Autoscale {
                rps,
                horizon_factor,
                configs,
            } => {
                check(rps.is_finite() && *rps > 0.0, || {
                    "scenario.kind.rps: must be a positive rate".to_string()
                })?;
                check(horizon_factor.is_finite() && *horizon_factor >= 1.0, || {
                    "scenario.kind.horizon_factor: must be a finite factor >= 1".to_string()
                })?;
                check(!configs.is_empty(), || {
                    "scenario.kind.configs: must not be empty".to_string()
                })?;
                for (i, c) in configs.iter().enumerate() {
                    check(!c.name.is_empty(), || {
                        format!("scenario.kind.configs[{i}].name: must not be empty")
                    })?;
                }
                Ok(())
            }
            ScenarioKind::SrptAblation { workloads } => {
                check(!workloads.is_empty(), || {
                    "scenario.kind.workloads: must not be empty".to_string()
                })?;
                for (i, w) in workloads.iter().enumerate() {
                    check(!w.name.is_empty(), || {
                        format!("scenario.kind.workloads[{i}].name: must not be empty")
                    })?;
                    validate_workload(
                        &format!("scenario.kind.workloads[{i}].workload"),
                        &w.workload,
                    )?;
                    validate_loads(&format!("scenario.kind.workloads[{i}].loads"), &w.loads)?;
                }
                Ok(())
            }
            ScenarioKind::Grid(g) => {
                validate_loads("scenario.kind.loads", g.loads.as_slice())?;
                check(!g.seeds.is_empty(), || {
                    "scenario.kind.seeds: must not be empty".to_string()
                })?;
                for (i, &seed) in g.seeds.iter().enumerate() {
                    check(seed < MAX_EXACT_INT, || {
                        format!("scenario.kind.seeds[{i}]: must stay below 2^53 (JSON-exact)")
                    })?;
                }
                check(!g.policies.is_empty(), || {
                    "scenario.kind.policies: must not be empty".to_string()
                })?;
                for (i, p) in g.policies.iter().enumerate() {
                    check(!p.name.is_empty(), || {
                        format!("scenario.kind.policies[{i}].name: must not be empty")
                    })?;
                    validate_mitigation(
                        &format!("scenario.kind.policies[{i}].mitigation"),
                        &p.mitigation,
                    )?;
                }
                for (i, &n) in g.nodes.iter().enumerate() {
                    check(n >= 1, || {
                        format!("scenario.kind.nodes[{i}]: must be at least 1")
                    })?;
                }
                if !g.nodes.is_empty() {
                    check(self.cluster.is_some(), || {
                        "scenario.cluster: required by a grid with a nodes axis".to_string()
                    })?;
                }
                Ok(())
            }
        }
    }
}

// ---------------------------------------------------------------------
// Expansion
// ---------------------------------------------------------------------

/// One fully-specified sweep point.
#[derive(Clone, Debug)]
pub enum PointConfig {
    /// A single-node system run.
    Node(Box<SimConfig>),
    /// A whole-rack cluster run.
    Cluster(Box<ClusterConfig>),
}

/// Boxes a node config into a sweep point (keeps the enum variants the
/// same size, per clippy's `large_enum_variant`).
fn node_point(cfg: SimConfig) -> PointConfig {
    PointConfig::Node(Box::new(cfg))
}

impl PointConfig {
    /// The node config, when this is a single-node point.
    pub fn as_node(&self) -> Option<&SimConfig> {
        match self {
            PointConfig::Node(cfg) => Some(cfg),
            PointConfig::Cluster(_) => None,
        }
    }

    /// The cluster config, when this is a rack point.
    pub fn as_cluster(&self) -> Option<&ClusterConfig> {
        match self {
            PointConfig::Node(_) => None,
            PointConfig::Cluster(cfg) => Some(cfg),
        }
    }
}

impl Scenario {
    fn point_plan(&self, seed: u64) -> FaultPlan {
        if self.faults.is_empty() {
            FaultPlan::none()
        } else {
            FaultPlan::from_recipes(seed, &self.faults)
        }
    }

    fn cluster_config(
        &self,
        c: &ClusterSpec,
        nodes: usize,
        rps_per_node: f64,
        routing: RoutingPolicy,
        seed: u64,
        mitigation: MitigationConfig,
    ) -> ClusterConfig {
        ClusterConfig {
            node: SimConfig {
                machine: self.machine.build(),
                workload: self.workload.build(),
                mitigation,
                ..Default::default()
            },
            nodes,
            rps_per_node,
            horizon_us: self.scale.horizon_us,
            warmup_us: self.scale.warmup_us,
            seed,
            routing,
            max_in_flight: c.max_in_flight,
            steer: c.steer,
            net: ClusterNetConfig {
                jitter_us: c
                    .jitter
                    .map(|j| ServiceTimeDist::lognormal_with_mean(j.mean_us, j.scv)),
                ..ClusterNetConfig::default()
            },
            fault_plan: self.point_plan(seed),
            ..ClusterConfig::default()
        }
    }

    /// Expands the scenario into its fully-specified point list, in the
    /// committed-results row order. Per-point seed derivation matches
    /// the legacy inline drivers exactly — the conformance tests pin
    /// this field-for-field.
    ///
    /// # Errors
    ///
    /// Returns the first [`Scenario::validate`] violation.
    pub fn expand(&self) -> Result<Vec<PointConfig>, String> {
        self.validate()?;
        let scale = self.scale;
        let mut points = Vec::new();
        match &self.kind {
            ScenarioKind::Fig7 { loads } => {
                for (li, &rps) in loads.iter().enumerate() {
                    for &(icn, contention) in motivation::FIG7_VARIANTS.iter() {
                        let mut machine = self.machine.build();
                        machine.icn = icn;
                        points.push(node_point(SimConfig {
                            machine,
                            workload: self.workload.build(),
                            rps_per_server: rps,
                            servers: scale.servers,
                            horizon_us: scale.horizon_us,
                            warmup_us: scale.warmup_us,
                            seed: rng::derive_seed(scale.seed, li as u64),
                            icn_contention: contention,
                            ..SimConfig::default()
                        }));
                    }
                }
            }
            ScenarioKind::Breakdown { rps, machines } => {
                for m in machines {
                    points.push(node_point(SimConfig {
                        machine: m.machine.build(),
                        workload: self.workload.build(),
                        rps_per_server: *rps,
                        servers: scale.servers,
                        horizon_us: scale.horizon_us,
                        warmup_us: scale.warmup_us,
                        seed: scale.seed,
                        trace: true,
                        fault_plan: self.point_plan(scale.seed),
                        ..SimConfig::default()
                    }));
                }
            }
            ScenarioKind::FaultTail {
                rps,
                drop_rates,
                retry_timeout_us,
            } => {
                for (i, &drop_p) in drop_rates.iter().enumerate() {
                    let seed = rng::derive_seed(scale.seed, i as u64);
                    let plan = if drop_p > 0.0 {
                        FaultPlan::from_recipes(
                            seed,
                            &[FaultRecipe::MessageDrops {
                                probability: drop_p,
                            }],
                        )
                    } else {
                        FaultPlan::none()
                    };
                    for mitigation in [
                        MitigationConfig::default(),
                        MitigationConfig {
                            retry: Some(RetryConfig::with_timeout_us(*retry_timeout_us)),
                            ..MitigationConfig::default()
                        },
                    ] {
                        points.push(node_point(SimConfig {
                            machine: self.machine.build(),
                            workload: self.workload.build(),
                            rps_per_server: *rps,
                            servers: scale.servers,
                            horizon_us: scale.horizon_us,
                            warmup_us: scale.warmup_us,
                            seed,
                            fault_plan: plan.clone(),
                            mitigation,
                            ..SimConfig::default()
                        }));
                    }
                }
            }
            ScenarioKind::ClusterTail { loads } => {
                let c = self.cluster.as_ref().expect("validated: cluster present");
                for named in &c.routing {
                    for &rps in loads {
                        points.push(PointConfig::Cluster(Box::new(self.cluster_config(
                            c,
                            c.nodes,
                            rps,
                            named.policy,
                            scale.seed,
                            self.mitigation.build(),
                        ))));
                    }
                }
            }
            ScenarioKind::MachineCompare { loads, machines } => {
                // The machines at one load share the seed so the
                // headline ratios stay paired.
                for &rps in loads {
                    for m in machines {
                        points.push(node_point(SimConfig {
                            machine: m.machine.build(),
                            workload: self.workload.build(),
                            rps_per_server: rps,
                            servers: scale.servers,
                            horizon_us: scale.horizon_us,
                            warmup_us: scale.warmup_us,
                            seed: scale.seed,
                            fault_plan: self.point_plan(scale.seed),
                            ..SimConfig::default()
                        }));
                    }
                }
            }
            ScenarioKind::Autoscale {
                rps,
                horizon_factor,
                configs,
            } => {
                for cfg in configs {
                    let mut machine = self.machine.build();
                    machine.memory_pool = cfg.pool;
                    points.push(node_point(SimConfig {
                        machine,
                        workload: self.workload.build(),
                        rps_per_server: *rps,
                        servers: scale.servers,
                        // Multiply at expansion so UM_SCALE=quick
                        // composes: quick sets the base horizon, the
                        // kind stretches it over several burst cycles.
                        horizon_us: scale.horizon_us * *horizon_factor,
                        warmup_us: scale.warmup_us,
                        seed: scale.seed,
                        arrivals: ArrivalProcess::Bursty,
                        autoscale: cfg.autoscale,
                        fault_plan: self.point_plan(scale.seed),
                        ..SimConfig::default()
                    }));
                }
            }
            ScenarioKind::SrptAblation { workloads } => {
                // Both policies of one (workload, load) point share the
                // seed, so the SRPT/FCFS ratio is paired.
                for w in workloads {
                    for &rps in &w.loads {
                        for policy in [DequeuePolicy::Fcfs, DequeuePolicy::Srpt] {
                            points.push(node_point(SimConfig {
                                machine: self.machine.build(),
                                workload: w.workload.build(),
                                rps_per_server: rps,
                                servers: scale.servers,
                                horizon_us: scale.horizon_us,
                                warmup_us: scale.warmup_us,
                                seed: scale.seed,
                                dequeue_policy: policy,
                                fault_plan: self.point_plan(scale.seed),
                                ..SimConfig::default()
                            }));
                        }
                    }
                }
            }
            ScenarioKind::Grid(g) => {
                if g.nodes.is_empty() {
                    for (li, &rps) in g.loads.iter().enumerate() {
                        for policy in &g.policies {
                            for &axis_seed in &g.seeds {
                                let seed = rng::derive_seed(
                                    rng::derive_seed(scale.seed, axis_seed),
                                    li as u64,
                                );
                                points.push(node_point(SimConfig {
                                    machine: self.machine.build(),
                                    workload: self.workload.build(),
                                    rps_per_server: rps,
                                    servers: scale.servers,
                                    horizon_us: scale.horizon_us,
                                    warmup_us: scale.warmup_us,
                                    seed,
                                    fault_plan: self.point_plan(seed),
                                    mitigation: policy.mitigation.build(),
                                    ..SimConfig::default()
                                }));
                            }
                        }
                    }
                } else {
                    let c = self.cluster.as_ref().expect("validated: cluster present");
                    for (li, &rps) in g.loads.iter().enumerate() {
                        for &nodes in &g.nodes {
                            for named in &c.routing {
                                for policy in &g.policies {
                                    for &axis_seed in &g.seeds {
                                        let seed = rng::derive_seed(
                                            rng::derive_seed(scale.seed, axis_seed),
                                            li as u64,
                                        );
                                        points.push(PointConfig::Cluster(Box::new(
                                            self.cluster_config(
                                                c,
                                                nodes,
                                                rps,
                                                named.policy,
                                                seed,
                                                policy.mitigation.build(),
                                            ),
                                        )));
                                    }
                                }
                            }
                        }
                    }
                }
            }
        }
        Ok(points)
    }
}

// ---------------------------------------------------------------------
// Running and rendering
// ---------------------------------------------------------------------

/// One finished sweep point.
enum PointReport {
    Node(Box<RunReport>),
    Cluster(Box<ClusterReport>),
}

impl PointReport {
    fn node(&self) -> &RunReport {
        match self {
            PointReport::Node(r) => r,
            PointReport::Cluster(_) => unreachable!("expansion produced a cluster point"),
        }
    }

    fn cluster(&self) -> &ClusterReport {
        match self {
            PointReport::Cluster(r) => r,
            PointReport::Node(_) => unreachable!("expansion produced a node point"),
        }
    }
}

/// What a scenario run produces: the legacy text table (byte-identical
/// to the converted binary's stdout) and, for grid scenarios, the flat
/// benchjson point array.
pub struct ScenarioOutput {
    /// The rendered table + prose, exactly as the binary prints it.
    pub text: String,
    /// Grid scenarios: the benchjson `points` array (wrap it in the
    /// `BENCH_*.json` envelope with a `bench` name and `scale` label).
    pub points: Option<Json>,
}

/// Runs the scenario on the process-default worker pool (`UM_THREADS`).
///
/// # Errors
///
/// Returns the first validation violation.
pub fn run(s: &Scenario) -> Result<ScenarioOutput, String> {
    run_impl(s, None, None)
}

/// [`run`] with an explicit worker count; results are bit-identical at
/// any value.
///
/// # Errors
///
/// Returns the first validation violation.
pub fn run_with_threads(s: &Scenario, threads: usize) -> Result<ScenarioOutput, String> {
    run_impl(s, Some(threads), None)
}

/// [`run`] with a progress callback, invoked once per completed point
/// with `(completed, total)`. The callback runs on the sweep worker
/// threads, possibly concurrently; completion order is nondeterministic
/// but the result is still bit-identical at any `UM_THREADS`.
///
/// # Errors
///
/// Returns the first validation violation.
pub fn run_with_progress(
    s: &Scenario,
    on_progress: &(dyn Fn(usize, usize) + Sync),
) -> Result<ScenarioOutput, String> {
    run_impl(s, None, Some(on_progress))
}

fn run_impl(
    s: &Scenario,
    threads: Option<usize>,
    progress: Option<&(dyn Fn(usize, usize) + Sync)>,
) -> Result<ScenarioOutput, String> {
    let points = s.expand()?;
    let total = points.len();
    let completed = AtomicUsize::new(0);
    let eval = |_: usize, p: PointConfig| {
        let report = match p {
            PointConfig::Node(cfg) => PointReport::Node(Box::new(SystemSim::new(*cfg).run())),
            PointConfig::Cluster(cfg) => {
                PointReport::Cluster(Box::new(ClusterSim::new(*cfg).run()))
            }
        };
        if let Some(cb) = progress {
            cb(completed.fetch_add(1, Ordering::Relaxed) + 1, total);
        }
        report
    };
    let reports = match threads {
        Some(n) => parallel::map_with_threads(n, points, eval),
        None => parallel::map(points, eval),
    };
    Ok(match &s.kind {
        ScenarioKind::Fig7 { loads } => render_fig7(loads, &reports),
        ScenarioKind::Breakdown { machines, .. } => render_breakdown(machines, &reports),
        ScenarioKind::FaultTail {
            rps, drop_rates, ..
        } => render_fault_tail(*rps, drop_rates, &reports),
        ScenarioKind::ClusterTail { loads } => render_cluster_tail(s, loads, &reports),
        ScenarioKind::MachineCompare { loads, machines } => {
            render_machine_compare(s, loads, machines, &reports)
        }
        ScenarioKind::Autoscale { configs, .. } => render_autoscale(configs, &reports),
        ScenarioKind::SrptAblation { workloads } => render_srpt_ablation(workloads, &reports),
        ScenarioKind::Grid(g) => render_grid(s, g, &reports),
    })
}

fn render_fig7(loads: &[f64], reports: &[PointReport]) -> ScenarioOutput {
    let tails: Vec<f64> = reports.iter().map(|r| r.node().latency.p99).collect();
    let rows = motivation::fig7_rows_from(loads, &tails);
    let mut out = header_text(
        "Figure 7",
        "Tail latency with ICN contention, normalized to the same system without\ncontention.",
    );
    let mut t = Table::with_columns(&["load", "2D mesh", "fat tree"]);
    for r in &rows {
        t.row(vec![
            format!("{:.0}K-RPS", r.rps / 1000.0),
            f2(r.mesh_norm_tail),
            f2(r.fat_tree_norm_tail),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str("paper at 50K RPS: mesh 14.7x, fat tree 7.5x\n");
    ScenarioOutput {
        text: out,
        points: None,
    }
}

fn render_breakdown(machines: &[NamedMachine], reports: &[PointReport]) -> ScenarioOutput {
    let mut out = header_text(
        "Measured latency breakdown",
        "Mean microseconds per root request (downstream RPC tree merged in) at 10K RPS\n\
         (SocialNetwork mix), attributed by the tracing layer. Components sum to the\n\
         mean end-to-end latency exactly.",
    );
    let mut cols = vec!["component"];
    cols.extend(machines.iter().map(|m| m.name.as_str()));
    let mut t = Table::with_columns(&cols);
    let breakdowns: Vec<_> = reports
        .iter()
        .map(|r| r.node().breakdown.as_ref().expect("traced run"))
        .collect();
    for c in Component::ALL {
        let mut row = vec![c.name().to_string()];
        row.extend(breakdowns.iter().map(|b| f1(b.component(c).mean)));
        t.row(row);
    }
    let mut row = vec!["= end-to-end mean".to_string()];
    row.extend(reports.iter().map(|r| f1(r.node().latency.mean)));
    t.row(row);
    out.push_str(&t.render());
    out.push('\n');
    for (m, r) in machines.iter().zip(reports) {
        let r = r.node();
        assert!(
            r.conservation.exact(),
            "{}: conservation violated: {:?}",
            m.name,
            r.conservation
        );
        out.push_str(&format!(
            "{}: conservation exact over {} requests ({} cycles attributed).\n",
            m.name, r.conservation.checked, r.conservation.breakdown_cycles
        ));
    }
    out.push('\n');
    out.push_str(
        "The software baselines' latency is RPC processing, memory stalls and (as\n\
         load grows) queueing; uManycore's is the handler compute plus the storage\n\
         tier, with scheduling, switching and RPC overheads at noise level — the\n\
         per-component rendering of Figures 3 and 6. Downstream RPC wait appears\n\
         as the callee's components (storage-service, compute, rpc-processing),\n\
         never as caller queue-wait: the rows sum to the mean latency exactly.\n",
    );
    ScenarioOutput {
        text: out,
        points: None,
    }
}

fn render_fault_tail(rps: f64, drop_rates: &[f64], reports: &[PointReport]) -> ScenarioOutput {
    let mut out = header_text(
        "Tail vs fault rate",
        "uManycore, SocialNetwork mix at 8K RPS, per-leg message-drop probability\n\
         swept. `none` = no mitigation (lost operations abandoned at the default\n\
         RPC timeout, their requests excluded from latency); `retry` = timeout +\n\
         exponential backoff with a 10% retry budget.",
    );
    let mut t = Table::with_columns(&[
        "drop_p",
        "none p50(us)",
        "none p99(us)",
        "none gave-up",
        "retry p50(us)",
        "retry p99(us)",
        "retry gave-up",
        "retries",
    ]);
    let pairs: Vec<(f64, &RunReport, &RunReport)> = drop_rates
        .iter()
        .zip(reports.chunks_exact(2))
        .map(|(&p, pair)| (p, pair[0].node(), pair[1].node()))
        .collect();
    for (drop_p, baseline, mitigated) in &pairs {
        t.row(vec![
            format!("{:.3}", drop_p),
            f1(baseline.latency.p50),
            f1(baseline.latency.p99),
            baseline.faults.gave_up_requests.to_string(),
            f1(mitigated.latency.p50),
            f1(mitigated.latency.p99),
            mitigated.faults.gave_up_requests.to_string(),
            mitigated.faults.retries.to_string(),
        ]);
    }
    out.push_str(&t.render());
    let (drop_p, baseline, mitigated) = pairs.last().expect("nonempty sweep");
    out.push_str(&format!(
        "at drop_p={:.3}: retry keeps {} of {} lost operations alive (baseline abandons {})\n",
        drop_p, mitigated.faults.retries, mitigated.faults.drops, baseline.faults.gave_up_requests,
    ));
    out.push_str(&format!(
        "offered load {rps:.0} RPS/server; all runs conserve latency to the cycle (checked: {})\n",
        f2(baseline.conservation.checked as f64),
    ));
    ScenarioOutput {
        text: out,
        points: None,
    }
}

fn render_cluster_tail(s: &Scenario, loads: &[f64], reports: &[PointReport]) -> ScenarioOutput {
    let c = s.cluster.as_ref().expect("validated: cluster present");
    let mut out = header_text(
        "Cluster tail by routing policy",
        &format!(
            "{} uManycore package slices (8-core villages, 64 cores each) behind one\n\
             load balancer; SocialNetwork mix, 0.5 us rack fabric with lognormal\n\
             jitter; per-node offered load swept up to ~0.95 utilization.",
            c.nodes
        ),
    );
    let mut t = Table::with_columns(&[
        "policy",
        "rps/node",
        "avg (us)",
        "p99 (us)",
        "hop avg (us)",
        "hop p99 (us)",
        "peak LB queue",
    ]);
    let mut it = reports.iter();
    for named in &c.routing {
        for &rps in loads {
            let r = it.next().expect("one report per point").cluster();
            t.row(vec![
                named.name.clone(),
                format!("{rps:.0}"),
                f1(r.latency.mean),
                f1(r.latency.p99),
                f1(r.cluster_hop.mean),
                f1(r.cluster_hop.p99),
                r.peak_lb_queue.to_string(),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(
        "At low load the package's internal parallelism absorbs routing imbalance\n\
         and every policy ties; past ~0.9 utilization JSQ(2) tracks the central\n\
         queue while random routing pays at the p99 — the uqSim/CloudNativeSim-style\n\
         cluster result, with a many-core package (not a single worker) per node.\n",
    );
    ScenarioOutput {
        text: out,
        points: None,
    }
}

fn render_machine_compare(
    s: &Scenario,
    loads: &[f64],
    machines: &[NamedMachine],
    reports: &[PointReport],
) -> ScenarioOutput {
    let mut out = header_text(
        &format!("Cluster of {} servers", s.scale.servers),
        &format!(
            "End-to-end latency of {}-server clusters under the SocialNetwork mix.",
            s.scale.servers
        ),
    );
    let mut t = Table::with_columns(&["machine", "load", "avg (us)", "p99 (us)", "cluster util"]);
    let mut avg_ratio = Vec::new();
    let mut tail_ratio = Vec::new();
    for (&rps, chunk) in loads.iter().zip(reports.chunks_exact(machines.len())) {
        for (m, r) in machines.iter().zip(chunk) {
            let r = r.node();
            t.row(vec![
                m.name.clone(),
                format!("{:.0}K/srv", rps / 1000.0),
                f1(r.latency.mean),
                f1(r.latency.p99),
                format!("{:.3}", r.utilization),
            ]);
        }
        let first = chunk
            .first()
            .expect("validated: two or more machines")
            .node();
        let last = chunk
            .last()
            .expect("validated: two or more machines")
            .node();
        avg_ratio.push(first.latency.mean / last.latency.mean);
        tail_ratio.push(first.latency.p99 / last.latency.p99);
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(&format!(
        "uManycore cluster vs iso-power ServerClass cluster: {:.1}x lower average,\n\
         {:.1}x lower tail (paper: 3.7x and 10.4x)\n",
        geomean(&avg_ratio),
        geomean(&tail_ratio)
    ));
    ScenarioOutput {
        text: out,
        points: None,
    }
}

fn render_autoscale(configs: &[AutoscaleConfig], reports: &[PointReport]) -> ScenarioOutput {
    let mut out = header_text(
        "Autoscaling with snapshot pools",
        "Bursty (MMPP) SocialNetwork traffic on uManycore; small 8-entry RQs so\n\
         bursts overflow a single instance.",
    );
    let mut t = Table::with_columns(&[
        "configuration",
        "avg (us)",
        "p99 (us)",
        "boots",
        "RQ overflows",
    ]);
    for (c, r) in configs.iter().zip(reports) {
        let r = r.node();
        t.row(vec![
            c.name.clone(),
            f1(r.latency.mean),
            f1(r.latency.p99),
            r.instance_boots.to_string(),
            r.rq_overflows.to_string(),
        ]);
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(
        "paper: snapshots cut instance boot from >300 ms to <10 ms (§3.5), which\n\
         is what lets the system absorb the Figure 2 bursts without tail spikes.\n",
    );
    ScenarioOutput {
        text: out,
        points: None,
    }
}

fn render_srpt_ablation(workloads: &[NamedWorkload], reports: &[PointReport]) -> ScenarioOutput {
    let mut out = header_text(
        "Ablation: FCFS vs SRPT",
        "Tail latency of the uManycore hardware RQ under both dequeue policies.",
    );
    let mut t = Table::with_columns(&[
        "workload",
        "load",
        "FCFS tail (us)",
        "SRPT tail (us)",
        "SRPT/FCFS",
    ]);
    let mut it = reports.iter();
    for w in workloads {
        for &rps in &w.loads {
            let fcfs = it.next().expect("one report per policy").node().latency.p99;
            let srpt = it.next().expect("one report per policy").node().latency.p99;
            t.row(vec![
                w.name.clone(),
                format!("{:.0}K", rps / 1000.0),
                f1(fcfs),
                f1(srpt),
                format!("{:.2}", srpt / fcfs),
            ]);
        }
    }
    out.push_str(&t.render());
    out.push('\n');
    out.push_str(
        "paper claim (§4.3): SRPT is unlikely to improve over FCFS for\n\
         microservices. At evaluation loads the village queues stay shallow and\n\
         the policies coincide (ratio 1.00); near saturation SRPT actively\n\
         *hurts* the P99 by starving long requests. FCFS is the right choice.\n",
    );
    ScenarioOutput {
        text: out,
        points: None,
    }
}

fn render_grid(s: &Scenario, g: &GridSpec, reports: &[PointReport]) -> ScenarioOutput {
    let axes = if g.nodes.is_empty() {
        format!(
            "{} loads x {} policies x {} seeds",
            g.loads.len(),
            g.policies.len(),
            g.seeds.len()
        )
    } else {
        let routings = s
            .cluster
            .as_ref()
            .expect("validated: cluster present")
            .routing
            .len();
        format!(
            "{} loads x {} rack widths x {routings} routings x {} policies x {} seeds",
            g.loads.len(),
            g.nodes.len(),
            g.policies.len(),
            g.seeds.len()
        )
    };
    let mut out = header_text(
        &format!("Scenario sweep: {}", s.name),
        &format!(
            "{} grid points ({axes}), every point a fully specified config whose seed\n\
             derives from the scenario master seed; evaluated through the deterministic\n\
             sweep runner, bit-identical at any UM_THREADS.",
            reports.len()
        ),
    );
    let mut points = Vec::new();
    let mut it = reports.iter();
    if g.nodes.is_empty() {
        let mut t = Table::with_columns(&[
            "load",
            "policy",
            "seed",
            "p50 (us)",
            "p99 (us)",
            "mean (us)",
            "gave-up",
            "retries",
            "hedges",
        ]);
        for &rps in g.loads.iter() {
            for policy in &g.policies {
                for &axis_seed in &g.seeds {
                    let r = it.next().expect("one report per point").node();
                    t.row(vec![
                        format!("{rps:.0}"),
                        policy.name.clone(),
                        axis_seed.to_string(),
                        f1(r.latency.p50),
                        f1(r.latency.p99),
                        f1(r.latency.mean),
                        r.faults.gave_up_requests.to_string(),
                        r.faults.retries.to_string(),
                        r.faults.hedges.to_string(),
                    ]);
                    points.push(obj(vec![
                        ("load_rps", Json::Num(rps)),
                        ("policy", Json::Str(policy.name.clone())),
                        ("seed", Json::Num(axis_seed as f64)),
                        ("p50_us", Json::Num(rounded(r.latency.p50, 2))),
                        ("p99_us", Json::Num(rounded(r.latency.p99, 2))),
                        ("mean_us", Json::Num(rounded(r.latency.mean, 2))),
                        ("completed", Json::Num(r.completed as f64)),
                        ("gave_up", Json::Num(r.faults.gave_up_requests as f64)),
                        ("retries", Json::Num(r.faults.retries as f64)),
                        ("hedges", Json::Num(r.faults.hedges as f64)),
                    ]));
                }
            }
        }
        out.push_str(&t.render());
    } else {
        let c = s.cluster.as_ref().expect("validated: cluster present");
        let mut t = Table::with_columns(&[
            "load",
            "nodes",
            "routing",
            "policy",
            "seed",
            "p50 (us)",
            "p99 (us)",
            "mean (us)",
            "hop p99 (us)",
            "peak LB queue",
        ]);
        for &rps in &g.loads {
            for &nodes in &g.nodes {
                for named in &c.routing {
                    for policy in &g.policies {
                        for &axis_seed in &g.seeds {
                            let r = it.next().expect("one report per point").cluster();
                            t.row(vec![
                                format!("{rps:.0}"),
                                nodes.to_string(),
                                named.name.clone(),
                                policy.name.clone(),
                                axis_seed.to_string(),
                                f1(r.latency.p50),
                                f1(r.latency.p99),
                                f1(r.latency.mean),
                                f1(r.cluster_hop.p99),
                                r.peak_lb_queue.to_string(),
                            ]);
                            points.push(obj(vec![
                                ("load_rps", Json::Num(rps)),
                                ("nodes", Json::Num(nodes as f64)),
                                ("routing", Json::Str(named.name.clone())),
                                ("policy", Json::Str(policy.name.clone())),
                                ("seed", Json::Num(axis_seed as f64)),
                                ("p50_us", Json::Num(rounded(r.latency.p50, 2))),
                                ("p99_us", Json::Num(rounded(r.latency.p99, 2))),
                                ("mean_us", Json::Num(rounded(r.latency.mean, 2))),
                                ("hop_p99_us", Json::Num(rounded(r.cluster_hop.p99, 2))),
                                ("recorded", Json::Num(r.recorded as f64)),
                                ("peak_lb_queue", Json::Num(r.peak_lb_queue as f64)),
                            ]));
                        }
                    }
                }
            }
        }
        out.push_str(&t.render());
    }
    ScenarioOutput {
        text: out,
        points: Some(Json::Arr(points)),
    }
}

// ---------------------------------------------------------------------
// JSON codec
// ---------------------------------------------------------------------

fn num_json(v: f64) -> Json {
    Json::Num(v)
}

fn uint_json(v: u64) -> Json {
    Json::Num(v as f64)
}

fn machine_to_json(m: &MachineSpec) -> Json {
    let base = match m.base {
        MachineBase::Umanycore => "umanycore",
        MachineBase::Scaleout => "scaleout",
        MachineBase::ServerClassIsoPower => "server-class-iso-power",
        MachineBase::ServerClassIsoArea => "server-class-iso-area",
    };
    let mut pairs = vec![("base", Json::Str(base.to_string()))];
    if let Some(shape) = m.shape {
        pairs.push((
            "shape",
            Json::Arr(shape.iter().map(|&d| uint_json(d as u64)).collect()),
        ));
    }
    if let Some(rq) = m.rq_capacity {
        pairs.push(("rq_capacity", uint_json(rq as u64)));
    }
    if let Some(c) = m.ctx_switch_cycles {
        pairs.push(("ctx_switch_cycles", uint_json(c)));
    }
    if let Some(icn) = m.icn {
        let name = match icn {
            IcnKind::Mesh => "mesh",
            IcnKind::FatTree => "fat-tree",
            IcnKind::LeafSpine => "leaf-spine",
        };
        pairs.push(("icn", Json::Str(name.to_string())));
    }
    obj(pairs)
}

fn workload_to_json(w: &WorkloadSpec) -> Json {
    match *w {
        WorkloadSpec::SocialMix => obj(vec![("type", Json::Str("social-mix".into()))]),
        WorkloadSpec::TrainMix => obj(vec![("type", Json::Str("train-mix".into()))]),
        WorkloadSpec::Synthetic {
            mean_us,
            scv,
            min_rpcs,
            max_rpcs,
        } => obj(vec![
            ("type", Json::Str("synthetic".into())),
            ("mean_us", num_json(mean_us)),
            ("scv", num_json(scv)),
            ("min_rpcs", uint_json(min_rpcs as u64)),
            ("max_rpcs", uint_json(max_rpcs as u64)),
        ]),
    }
}

fn scale_to_json(s: &ScaleSpec) -> Json {
    obj(vec![
        ("horizon_us", num_json(s.horizon_us)),
        ("warmup_us", num_json(s.warmup_us)),
        ("servers", uint_json(s.servers as u64)),
        ("seed", uint_json(s.seed)),
    ])
}

fn mitigation_to_json(m: &MitigationSpec) -> Json {
    let mut pairs = Vec::new();
    if let Some(d) = m.hedge_delay_us {
        pairs.push(("hedge_delay_us", num_json(d)));
    }
    if let Some(r) = m.retry {
        pairs.push((
            "retry",
            obj(vec![
                ("timeout_us", num_json(r.timeout_us)),
                ("backoff", num_json(r.backoff)),
                ("max_attempts", uint_json(r.max_attempts as u64)),
                ("budget_fraction", num_json(r.budget_fraction)),
            ]),
        ));
    }
    pairs.push(("steer", Json::Bool(m.steer)));
    obj(pairs)
}

fn routing_to_json(r: &NamedRouting) -> Json {
    let mut pairs = vec![("name", Json::Str(r.name.clone()))];
    match r.policy {
        RoutingPolicy::Random => pairs.push(("policy", Json::Str("random".into()))),
        RoutingPolicy::RoundRobin => pairs.push(("policy", Json::Str("round-robin".into()))),
        RoutingPolicy::JsqD { d } => {
            pairs.push(("policy", Json::Str("jsq".into())));
            pairs.push(("d", uint_json(d as u64)));
        }
        RoutingPolicy::CentralQueue => pairs.push(("policy", Json::Str("central-queue".into()))),
    }
    obj(pairs)
}

fn cluster_to_json(c: &ClusterSpec) -> Json {
    let mut pairs = vec![
        ("nodes", uint_json(c.nodes as u64)),
        (
            "routing",
            Json::Arr(c.routing.iter().map(routing_to_json).collect()),
        ),
    ];
    if let Some(cap) = c.max_in_flight {
        pairs.push(("max_in_flight", uint_json(cap as u64)));
    }
    if let Some(j) = c.jitter {
        pairs.push((
            "jitter",
            obj(vec![
                ("mean_us", num_json(j.mean_us)),
                ("scv", num_json(j.scv)),
            ]),
        ));
    }
    pairs.push(("steer", Json::Bool(c.steer)));
    obj(pairs)
}

fn fault_to_json(f: &FaultRecipe) -> Json {
    match *f {
        FaultRecipe::MessageDrops { probability } => obj(vec![
            ("type", Json::Str("message-drops".into())),
            ("probability", num_json(probability)),
        ]),
        FaultRecipe::CoreFailStop {
            server,
            village,
            at_cycles,
        } => obj(vec![
            ("type", Json::Str("core-fail-stop".into())),
            ("server", uint_json(server as u64)),
            ("village", uint_json(village as u64)),
            ("at_cycles", uint_json(at_cycles)),
        ]),
        FaultRecipe::CoreFailSlow {
            server,
            village,
            cores,
            from_cycles,
            until_cycles,
            slowdown,
        } => obj(vec![
            ("type", Json::Str("core-fail-slow".into())),
            ("server", uint_json(server as u64)),
            ("village", uint_json(village as u64)),
            ("cores", uint_json(cores as u64)),
            ("from_cycles", uint_json(from_cycles)),
            ("until_cycles", uint_json(until_cycles)),
            ("slowdown", num_json(slowdown)),
        ]),
        FaultRecipe::LinkFault {
            server,
            link,
            from_cycles,
            until_cycles,
            slowdown,
        } => obj(vec![
            ("type", Json::Str("link-fault".into())),
            ("server", uint_json(server as u64)),
            ("link", uint_json(link as u64)),
            ("from_cycles", uint_json(from_cycles)),
            ("until_cycles", uint_json(until_cycles)),
            ("slowdown", num_json(slowdown)),
        ]),
        FaultRecipe::FailSlowEveryVillage {
            servers,
            villages,
            cores,
            from_cycles,
            until_cycles,
            slowdown,
        } => obj(vec![
            ("type", Json::Str("fail-slow-every-village".into())),
            ("servers", uint_json(servers as u64)),
            ("villages", uint_json(villages as u64)),
            ("cores", uint_json(cores as u64)),
            ("from_cycles", uint_json(from_cycles)),
            ("until_cycles", uint_json(until_cycles)),
            ("slowdown", num_json(slowdown)),
        ]),
        FaultRecipe::RandomFailStops {
            count,
            servers,
            villages,
            horizon_cycles,
        } => obj(vec![
            ("type", Json::Str("random-fail-stops".into())),
            ("count", uint_json(count as u64)),
            ("servers", uint_json(servers as u64)),
            ("villages", uint_json(villages as u64)),
            ("horizon_cycles", uint_json(horizon_cycles)),
        ]),
        FaultRecipe::RandomLinkFaults {
            count,
            servers,
            links,
            horizon_cycles,
            mean_duration_cycles,
            slowdown,
        } => obj(vec![
            ("type", Json::Str("random-link-faults".into())),
            ("count", uint_json(count as u64)),
            ("servers", uint_json(servers as u64)),
            ("links", uint_json(links as u64)),
            ("horizon_cycles", uint_json(horizon_cycles)),
            ("mean_duration_cycles", uint_json(mean_duration_cycles)),
            ("slowdown", num_json(slowdown)),
        ]),
    }
}

fn named_machines_to_json(machines: &[NamedMachine]) -> Json {
    Json::Arr(
        machines
            .iter()
            .map(|m| {
                obj(vec![
                    ("name", Json::Str(m.name.clone())),
                    ("machine", machine_to_json(&m.machine)),
                ])
            })
            .collect(),
    )
}

fn kind_to_json(k: &ScenarioKind) -> Json {
    match k {
        ScenarioKind::Fig7 { loads } => obj(vec![
            ("type", Json::Str("fig7".into())),
            (
                "loads",
                Json::Arr(loads.iter().map(|&l| num_json(l)).collect()),
            ),
        ]),
        ScenarioKind::Breakdown { rps, machines } => obj(vec![
            ("type", Json::Str("breakdown".into())),
            ("rps", num_json(*rps)),
            ("machines", named_machines_to_json(machines)),
        ]),
        ScenarioKind::FaultTail {
            rps,
            drop_rates,
            retry_timeout_us,
        } => obj(vec![
            ("type", Json::Str("fault-tail".into())),
            ("rps", num_json(*rps)),
            (
                "drop_rates",
                Json::Arr(drop_rates.iter().map(|&p| num_json(p)).collect()),
            ),
            ("retry_timeout_us", num_json(*retry_timeout_us)),
        ]),
        ScenarioKind::ClusterTail { loads } => obj(vec![
            ("type", Json::Str("cluster-tail".into())),
            (
                "loads",
                Json::Arr(loads.iter().map(|&l| num_json(l)).collect()),
            ),
        ]),
        ScenarioKind::MachineCompare { loads, machines } => obj(vec![
            ("type", Json::Str("machine-compare".into())),
            (
                "loads",
                Json::Arr(loads.iter().map(|&l| num_json(l)).collect()),
            ),
            ("machines", named_machines_to_json(machines)),
        ]),
        ScenarioKind::Autoscale {
            rps,
            horizon_factor,
            configs,
        } => obj(vec![
            ("type", Json::Str("autoscale".into())),
            ("rps", num_json(*rps)),
            ("horizon_factor", num_json(*horizon_factor)),
            (
                "configs",
                Json::Arr(
                    configs
                        .iter()
                        .map(|c| {
                            obj(vec![
                                ("name", Json::Str(c.name.clone())),
                                ("autoscale", Json::Bool(c.autoscale)),
                                ("pool", Json::Bool(c.pool)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        ScenarioKind::SrptAblation { workloads } => obj(vec![
            ("type", Json::Str("srpt-ablation".into())),
            (
                "workloads",
                Json::Arr(
                    workloads
                        .iter()
                        .map(|w| {
                            obj(vec![
                                ("name", Json::Str(w.name.clone())),
                                ("workload", workload_to_json(&w.workload)),
                                (
                                    "loads",
                                    Json::Arr(w.loads.iter().map(|&l| num_json(l)).collect()),
                                ),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
        ScenarioKind::Grid(g) => obj(vec![
            ("type", Json::Str("grid".into())),
            (
                "loads",
                Json::Arr(g.loads.iter().map(|&l| num_json(l)).collect()),
            ),
            (
                "seeds",
                Json::Arr(g.seeds.iter().map(|&s| uint_json(s)).collect()),
            ),
            (
                "nodes",
                Json::Arr(g.nodes.iter().map(|&n| uint_json(n as u64)).collect()),
            ),
            (
                "policies",
                Json::Arr(
                    g.policies
                        .iter()
                        .map(|p| {
                            obj(vec![
                                ("name", Json::Str(p.name.clone())),
                                ("mitigation", mitigation_to_json(&p.mitigation)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ]),
    }
}

impl Scenario {
    /// The canonical JSON document (fixed field order; optional fields
    /// omitted when absent, so serialize → parse → serialize is
    /// byte-stable).
    pub fn to_json(&self) -> Json {
        let mut pairs = vec![
            ("name", Json::Str(self.name.clone())),
            ("kind", kind_to_json(&self.kind)),
            ("machine", machine_to_json(&self.machine)),
            ("workload", workload_to_json(&self.workload)),
            ("scale", scale_to_json(&self.scale)),
            (
                "faults",
                Json::Arr(self.faults.iter().map(fault_to_json).collect()),
            ),
            ("mitigation", mitigation_to_json(&self.mitigation)),
        ];
        if let Some(c) = &self.cluster {
            pairs.push(("cluster", cluster_to_json(c)));
        }
        obj(pairs)
    }

    /// [`Scenario::to_json`] rendered to text.
    pub fn to_json_text(&self) -> String {
        self.to_json().render()
    }
}

fn p_obj<'a>(v: &'a Json, path: &str, allowed: &[&str]) -> Result<&'a Json, String> {
    let pairs = v
        .as_obj()
        .ok_or_else(|| format!("{path}: expected an object"))?;
    for (k, _) in pairs {
        if !allowed.contains(&k.as_str()) {
            return Err(format!("{path}: unknown field `{k}`"));
        }
    }
    Ok(v)
}

fn p_get<'a>(v: &'a Json, path: &str, key: &str) -> Result<&'a Json, String> {
    v.get(key)
        .ok_or_else(|| format!("{path}: missing field `{key}`"))
}

fn p_num(v: &Json, path: &str) -> Result<f64, String> {
    v.as_num()
        .ok_or_else(|| format!("{path}: expected a number"))
}

fn p_uint(v: &Json, path: &str) -> Result<u64, String> {
    let n = p_num(v, path)?;
    if !(n >= 0.0 && n.fract() == 0.0 && n < MAX_EXACT_INT as f64) {
        return Err(format!("{path}: expected an exact nonnegative integer"));
    }
    Ok(n as u64)
}

fn p_usize(v: &Json, path: &str) -> Result<usize, String> {
    Ok(p_uint(v, path)? as usize)
}

fn p_u32(v: &Json, path: &str) -> Result<u32, String> {
    u32::try_from(p_uint(v, path)?).map_err(|_| format!("{path}: value does not fit in 32 bits"))
}

fn p_str(v: &Json, path: &str) -> Result<String, String> {
    v.as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{path}: expected a string"))
}

fn p_bool(v: &Json, path: &str) -> Result<bool, String> {
    match v {
        Json::Bool(b) => Ok(*b),
        _ => Err(format!("{path}: expected a boolean")),
    }
}

fn p_arr<'a>(v: &'a Json, path: &str) -> Result<&'a [Json], String> {
    v.as_arr()
        .ok_or_else(|| format!("{path}: expected an array"))
}

fn p_f64_arr(v: &Json, path: &str) -> Result<Vec<f64>, String> {
    p_arr(v, path)?
        .iter()
        .enumerate()
        .map(|(i, e)| p_num(e, &format!("{path}[{i}]")))
        .collect()
}

fn machine_from_json(v: &Json, path: &str) -> Result<MachineSpec, String> {
    p_obj(
        v,
        path,
        &["base", "shape", "rq_capacity", "ctx_switch_cycles", "icn"],
    )?;
    let base = match p_str(p_get(v, path, "base")?, &format!("{path}.base"))?.as_str() {
        "umanycore" => MachineBase::Umanycore,
        "scaleout" => MachineBase::Scaleout,
        "server-class-iso-power" => MachineBase::ServerClassIsoPower,
        "server-class-iso-area" => MachineBase::ServerClassIsoArea,
        other => return Err(format!("{path}.base: unknown machine `{other}`")),
    };
    let shape = match v.get("shape") {
        None => None,
        Some(s) => {
            let spath = format!("{path}.shape");
            let dims = p_arr(s, &spath)?;
            if dims.len() != 3 {
                return Err(format!(
                    "{spath}: expected [cores_per_village, villages_per_cluster, clusters]"
                ));
            }
            let mut out = [0usize; 3];
            for (i, d) in dims.iter().enumerate() {
                out[i] = p_usize(d, &format!("{spath}[{i}]"))?;
            }
            Some(out)
        }
    };
    let rq_capacity = v
        .get("rq_capacity")
        .map(|n| p_usize(n, &format!("{path}.rq_capacity")))
        .transpose()?;
    let ctx_switch_cycles = v
        .get("ctx_switch_cycles")
        .map(|n| p_uint(n, &format!("{path}.ctx_switch_cycles")))
        .transpose()?;
    let icn = match v.get("icn") {
        None => None,
        Some(i) => Some(match p_str(i, &format!("{path}.icn"))?.as_str() {
            "mesh" => IcnKind::Mesh,
            "fat-tree" => IcnKind::FatTree,
            "leaf-spine" => IcnKind::LeafSpine,
            other => return Err(format!("{path}.icn: unknown interconnect `{other}`")),
        }),
    };
    Ok(MachineSpec {
        base,
        shape,
        rq_capacity,
        ctx_switch_cycles,
        icn,
    })
}

fn workload_from_json(v: &Json, path: &str) -> Result<WorkloadSpec, String> {
    let kind = p_str(p_get(v, path, "type")?, &format!("{path}.type"))?;
    match kind.as_str() {
        "social-mix" => {
            p_obj(v, path, &["type"])?;
            Ok(WorkloadSpec::SocialMix)
        }
        "train-mix" => {
            p_obj(v, path, &["type"])?;
            Ok(WorkloadSpec::TrainMix)
        }
        "synthetic" => {
            p_obj(v, path, &["type", "mean_us", "scv", "min_rpcs", "max_rpcs"])?;
            Ok(WorkloadSpec::Synthetic {
                mean_us: p_num(p_get(v, path, "mean_us")?, &format!("{path}.mean_us"))?,
                scv: p_num(p_get(v, path, "scv")?, &format!("{path}.scv"))?,
                min_rpcs: p_u32(p_get(v, path, "min_rpcs")?, &format!("{path}.min_rpcs"))?,
                max_rpcs: p_u32(p_get(v, path, "max_rpcs")?, &format!("{path}.max_rpcs"))?,
            })
        }
        other => Err(format!("{path}.type: unknown workload `{other}`")),
    }
}

fn scale_from_json(v: &Json, path: &str) -> Result<ScaleSpec, String> {
    p_obj(v, path, &["horizon_us", "warmup_us", "servers", "seed"])?;
    Ok(ScaleSpec {
        horizon_us: p_num(p_get(v, path, "horizon_us")?, &format!("{path}.horizon_us"))?,
        warmup_us: p_num(p_get(v, path, "warmup_us")?, &format!("{path}.warmup_us"))?,
        servers: p_usize(p_get(v, path, "servers")?, &format!("{path}.servers"))?,
        seed: p_uint(p_get(v, path, "seed")?, &format!("{path}.seed"))?,
    })
}

fn mitigation_from_json(v: &Json, path: &str) -> Result<MitigationSpec, String> {
    p_obj(v, path, &["hedge_delay_us", "retry", "steer"])?;
    let hedge_delay_us = v
        .get("hedge_delay_us")
        .map(|n| p_num(n, &format!("{path}.hedge_delay_us")))
        .transpose()?;
    let retry = match v.get("retry") {
        None => None,
        Some(r) => {
            let rpath = format!("{path}.retry");
            p_obj(
                r,
                &rpath,
                &["timeout_us", "backoff", "max_attempts", "budget_fraction"],
            )?;
            Some(RetrySpec {
                timeout_us: p_num(
                    p_get(r, &rpath, "timeout_us")?,
                    &format!("{rpath}.timeout_us"),
                )?,
                backoff: p_num(p_get(r, &rpath, "backoff")?, &format!("{rpath}.backoff"))?,
                max_attempts: p_u32(
                    p_get(r, &rpath, "max_attempts")?,
                    &format!("{rpath}.max_attempts"),
                )?,
                budget_fraction: p_num(
                    p_get(r, &rpath, "budget_fraction")?,
                    &format!("{rpath}.budget_fraction"),
                )?,
            })
        }
    };
    let steer = p_bool(p_get(v, path, "steer")?, &format!("{path}.steer"))?;
    Ok(MitigationSpec {
        hedge_delay_us,
        retry,
        steer,
    })
}

fn routing_from_json(v: &Json, path: &str) -> Result<NamedRouting, String> {
    p_obj(v, path, &["name", "policy", "d"])?;
    let name = p_str(p_get(v, path, "name")?, &format!("{path}.name"))?;
    let policy = p_str(p_get(v, path, "policy")?, &format!("{path}.policy"))?;
    let policy = match policy.as_str() {
        "random" => RoutingPolicy::Random,
        "round-robin" => RoutingPolicy::RoundRobin,
        "jsq" => RoutingPolicy::JsqD {
            d: p_usize(p_get(v, path, "d")?, &format!("{path}.d"))?,
        },
        "central-queue" => RoutingPolicy::CentralQueue,
        other => return Err(format!("{path}.policy: unknown policy `{other}`")),
    };
    if !matches!(policy, RoutingPolicy::JsqD { .. }) && v.get("d").is_some() {
        return Err(format!("{path}.d: only valid with the `jsq` policy"));
    }
    Ok(NamedRouting { name, policy })
}

fn cluster_from_json(v: &Json, path: &str) -> Result<ClusterSpec, String> {
    p_obj(
        v,
        path,
        &["nodes", "routing", "max_in_flight", "jitter", "steer"],
    )?;
    let routing = p_arr(p_get(v, path, "routing")?, &format!("{path}.routing"))?
        .iter()
        .enumerate()
        .map(|(i, r)| routing_from_json(r, &format!("{path}.routing[{i}]")))
        .collect::<Result<Vec<_>, _>>()?;
    let jitter = match v.get("jitter") {
        None => None,
        Some(j) => {
            let jpath = format!("{path}.jitter");
            p_obj(j, &jpath, &["mean_us", "scv"])?;
            Some(JitterSpec {
                mean_us: p_num(p_get(j, &jpath, "mean_us")?, &format!("{jpath}.mean_us"))?,
                scv: p_num(p_get(j, &jpath, "scv")?, &format!("{jpath}.scv"))?,
            })
        }
    };
    Ok(ClusterSpec {
        nodes: p_usize(p_get(v, path, "nodes")?, &format!("{path}.nodes"))?,
        routing,
        max_in_flight: v
            .get("max_in_flight")
            .map(|n| p_usize(n, &format!("{path}.max_in_flight")))
            .transpose()?,
        jitter,
        steer: p_bool(p_get(v, path, "steer")?, &format!("{path}.steer"))?,
    })
}

fn fault_from_json(v: &Json, path: &str) -> Result<FaultRecipe, String> {
    let kind = p_str(p_get(v, path, "type")?, &format!("{path}.type"))?;
    let num = |key: &str| p_num(p_get(v, path, key)?, &format!("{path}.{key}"));
    let uint = |key: &str| p_uint(p_get(v, path, key)?, &format!("{path}.{key}"));
    let idx = |key: &str| p_usize(p_get(v, path, key)?, &format!("{path}.{key}"));
    let u32_ = |key: &str| p_u32(p_get(v, path, key)?, &format!("{path}.{key}"));
    match kind.as_str() {
        "message-drops" => {
            p_obj(v, path, &["type", "probability"])?;
            Ok(FaultRecipe::MessageDrops {
                probability: num("probability")?,
            })
        }
        "core-fail-stop" => {
            p_obj(v, path, &["type", "server", "village", "at_cycles"])?;
            Ok(FaultRecipe::CoreFailStop {
                server: idx("server")?,
                village: idx("village")?,
                at_cycles: uint("at_cycles")?,
            })
        }
        "core-fail-slow" => {
            p_obj(
                v,
                path,
                &[
                    "type",
                    "server",
                    "village",
                    "cores",
                    "from_cycles",
                    "until_cycles",
                    "slowdown",
                ],
            )?;
            Ok(FaultRecipe::CoreFailSlow {
                server: idx("server")?,
                village: idx("village")?,
                cores: u32_("cores")?,
                from_cycles: uint("from_cycles")?,
                until_cycles: uint("until_cycles")?,
                slowdown: num("slowdown")?,
            })
        }
        "link-fault" => {
            p_obj(
                v,
                path,
                &[
                    "type",
                    "server",
                    "link",
                    "from_cycles",
                    "until_cycles",
                    "slowdown",
                ],
            )?;
            Ok(FaultRecipe::LinkFault {
                server: idx("server")?,
                link: idx("link")?,
                from_cycles: uint("from_cycles")?,
                until_cycles: uint("until_cycles")?,
                slowdown: num("slowdown")?,
            })
        }
        "fail-slow-every-village" => {
            p_obj(
                v,
                path,
                &[
                    "type",
                    "servers",
                    "villages",
                    "cores",
                    "from_cycles",
                    "until_cycles",
                    "slowdown",
                ],
            )?;
            Ok(FaultRecipe::FailSlowEveryVillage {
                servers: idx("servers")?,
                villages: idx("villages")?,
                cores: u32_("cores")?,
                from_cycles: uint("from_cycles")?,
                until_cycles: uint("until_cycles")?,
                slowdown: num("slowdown")?,
            })
        }
        "random-fail-stops" => {
            p_obj(
                v,
                path,
                &["type", "count", "servers", "villages", "horizon_cycles"],
            )?;
            Ok(FaultRecipe::RandomFailStops {
                count: idx("count")?,
                servers: idx("servers")?,
                villages: idx("villages")?,
                horizon_cycles: uint("horizon_cycles")?,
            })
        }
        "random-link-faults" => {
            p_obj(
                v,
                path,
                &[
                    "type",
                    "count",
                    "servers",
                    "links",
                    "horizon_cycles",
                    "mean_duration_cycles",
                    "slowdown",
                ],
            )?;
            Ok(FaultRecipe::RandomLinkFaults {
                count: idx("count")?,
                servers: idx("servers")?,
                links: idx("links")?,
                horizon_cycles: uint("horizon_cycles")?,
                mean_duration_cycles: uint("mean_duration_cycles")?,
                slowdown: num("slowdown")?,
            })
        }
        other => Err(format!("{path}.type: unknown fault `{other}`")),
    }
}

fn named_machines_from_json(v: &Json, path: &str) -> Result<Vec<NamedMachine>, String> {
    p_arr(v, path)?
        .iter()
        .enumerate()
        .map(|(i, m)| {
            let mpath = format!("{path}[{i}]");
            p_obj(m, &mpath, &["name", "machine"])?;
            Ok(NamedMachine {
                name: p_str(p_get(m, &mpath, "name")?, &format!("{mpath}.name"))?,
                machine: machine_from_json(
                    p_get(m, &mpath, "machine")?,
                    &format!("{mpath}.machine"),
                )?,
            })
        })
        .collect()
}

fn kind_from_json(v: &Json, path: &str) -> Result<ScenarioKind, String> {
    let kind = p_str(p_get(v, path, "type")?, &format!("{path}.type"))?;
    match kind.as_str() {
        "fig7" => {
            p_obj(v, path, &["type", "loads"])?;
            Ok(ScenarioKind::Fig7 {
                loads: p_f64_arr(p_get(v, path, "loads")?, &format!("{path}.loads"))?,
            })
        }
        "breakdown" => {
            p_obj(v, path, &["type", "rps", "machines"])?;
            Ok(ScenarioKind::Breakdown {
                rps: p_num(p_get(v, path, "rps")?, &format!("{path}.rps"))?,
                machines: named_machines_from_json(
                    p_get(v, path, "machines")?,
                    &format!("{path}.machines"),
                )?,
            })
        }
        "fault-tail" => {
            p_obj(v, path, &["type", "rps", "drop_rates", "retry_timeout_us"])?;
            Ok(ScenarioKind::FaultTail {
                rps: p_num(p_get(v, path, "rps")?, &format!("{path}.rps"))?,
                drop_rates: p_f64_arr(
                    p_get(v, path, "drop_rates")?,
                    &format!("{path}.drop_rates"),
                )?,
                retry_timeout_us: p_num(
                    p_get(v, path, "retry_timeout_us")?,
                    &format!("{path}.retry_timeout_us"),
                )?,
            })
        }
        "cluster-tail" => {
            p_obj(v, path, &["type", "loads"])?;
            Ok(ScenarioKind::ClusterTail {
                loads: p_f64_arr(p_get(v, path, "loads")?, &format!("{path}.loads"))?,
            })
        }
        "machine-compare" => {
            p_obj(v, path, &["type", "loads", "machines"])?;
            Ok(ScenarioKind::MachineCompare {
                loads: p_f64_arr(p_get(v, path, "loads")?, &format!("{path}.loads"))?,
                machines: named_machines_from_json(
                    p_get(v, path, "machines")?,
                    &format!("{path}.machines"),
                )?,
            })
        }
        "autoscale" => {
            p_obj(v, path, &["type", "rps", "horizon_factor", "configs"])?;
            let configs = p_arr(p_get(v, path, "configs")?, &format!("{path}.configs"))?
                .iter()
                .enumerate()
                .map(|(i, c)| {
                    let cpath = format!("{path}.configs[{i}]");
                    p_obj(c, &cpath, &["name", "autoscale", "pool"])?;
                    Ok(AutoscaleConfig {
                        name: p_str(p_get(c, &cpath, "name")?, &format!("{cpath}.name"))?,
                        autoscale: p_bool(
                            p_get(c, &cpath, "autoscale")?,
                            &format!("{cpath}.autoscale"),
                        )?,
                        pool: p_bool(p_get(c, &cpath, "pool")?, &format!("{cpath}.pool"))?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(ScenarioKind::Autoscale {
                rps: p_num(p_get(v, path, "rps")?, &format!("{path}.rps"))?,
                horizon_factor: p_num(
                    p_get(v, path, "horizon_factor")?,
                    &format!("{path}.horizon_factor"),
                )?,
                configs,
            })
        }
        "srpt-ablation" => {
            p_obj(v, path, &["type", "workloads"])?;
            let workloads = p_arr(p_get(v, path, "workloads")?, &format!("{path}.workloads"))?
                .iter()
                .enumerate()
                .map(|(i, w)| {
                    let wpath = format!("{path}.workloads[{i}]");
                    p_obj(w, &wpath, &["name", "workload", "loads"])?;
                    Ok(NamedWorkload {
                        name: p_str(p_get(w, &wpath, "name")?, &format!("{wpath}.name"))?,
                        workload: workload_from_json(
                            p_get(w, &wpath, "workload")?,
                            &format!("{wpath}.workload"),
                        )?,
                        loads: p_f64_arr(p_get(w, &wpath, "loads")?, &format!("{wpath}.loads"))?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(ScenarioKind::SrptAblation { workloads })
        }
        "grid" => {
            p_obj(v, path, &["type", "loads", "seeds", "nodes", "policies"])?;
            let seeds = p_arr(p_get(v, path, "seeds")?, &format!("{path}.seeds"))?
                .iter()
                .enumerate()
                .map(|(i, s)| p_uint(s, &format!("{path}.seeds[{i}]")))
                .collect::<Result<Vec<_>, _>>()?;
            let nodes = p_arr(p_get(v, path, "nodes")?, &format!("{path}.nodes"))?
                .iter()
                .enumerate()
                .map(|(i, n)| p_usize(n, &format!("{path}.nodes[{i}]")))
                .collect::<Result<Vec<_>, _>>()?;
            let policies = p_arr(p_get(v, path, "policies")?, &format!("{path}.policies"))?
                .iter()
                .enumerate()
                .map(|(i, p)| {
                    let ppath = format!("{path}.policies[{i}]");
                    p_obj(p, &ppath, &["name", "mitigation"])?;
                    Ok(NamedPolicy {
                        name: p_str(p_get(p, &ppath, "name")?, &format!("{ppath}.name"))?,
                        mitigation: mitigation_from_json(
                            p_get(p, &ppath, "mitigation")?,
                            &format!("{ppath}.mitigation"),
                        )?,
                    })
                })
                .collect::<Result<Vec<_>, String>>()?;
            Ok(ScenarioKind::Grid(GridSpec {
                loads: p_f64_arr(p_get(v, path, "loads")?, &format!("{path}.loads"))?,
                seeds,
                nodes,
                policies,
            }))
        }
        other => Err(format!("{path}.type: unknown scenario kind `{other}`")),
    }
}

impl Scenario {
    /// Parses the canonical document, rejecting unknown fields with the
    /// offending path, then validates every knob.
    ///
    /// # Errors
    ///
    /// Returns the first structural or range violation.
    pub fn from_json(doc: &Json) -> Result<Scenario, String> {
        let path = "scenario";
        p_obj(
            doc,
            path,
            &[
                "name",
                "kind",
                "machine",
                "workload",
                "scale",
                "faults",
                "mitigation",
                "cluster",
            ],
        )?;
        let faults = p_arr(p_get(doc, path, "faults")?, &format!("{path}.faults"))?
            .iter()
            .enumerate()
            .map(|(i, f)| fault_from_json(f, &format!("{path}.faults[{i}]")))
            .collect::<Result<Vec<_>, _>>()?;
        let cluster = doc
            .get("cluster")
            .map(|c| cluster_from_json(c, &format!("{path}.cluster")))
            .transpose()?;
        let s = Scenario {
            name: p_str(p_get(doc, path, "name")?, &format!("{path}.name"))?,
            kind: kind_from_json(p_get(doc, path, "kind")?, &format!("{path}.kind"))?,
            machine: machine_from_json(p_get(doc, path, "machine")?, &format!("{path}.machine"))?,
            workload: workload_from_json(
                p_get(doc, path, "workload")?,
                &format!("{path}.workload"),
            )?,
            scale: scale_from_json(p_get(doc, path, "scale")?, &format!("{path}.scale"))?,
            faults,
            mitigation: mitigation_from_json(
                p_get(doc, path, "mitigation")?,
                &format!("{path}.mitigation"),
            )?,
            cluster,
        };
        s.validate()?;
        Ok(s)
    }

    /// Parses and validates a scenario from JSON text.
    ///
    /// # Errors
    ///
    /// Returns the parse error or the first schema/range violation.
    pub fn from_json_text(text: &str) -> Result<Scenario, String> {
        Scenario::from_json(&Json::parse(text)?)
    }
}

// ---------------------------------------------------------------------
// Registry and environment
// ---------------------------------------------------------------------

/// The named built-in scenarios behind the committed `results/` tables.
pub mod registry {
    use super::*;
    use umanycore::experiments::{cluster, resilience};

    /// Figure 7: ICN contention on the ScaleOut, mesh vs fat tree.
    pub fn fig7() -> Scenario {
        Scenario {
            name: "fig7".to_string(),
            machine: MachineSpec {
                // ICN contention is the variable under study; scheduling
                // and context-switch overheads are studied separately.
                ctx_switch_cycles: Some(0),
                ..MachineSpec::of(MachineBase::Scaleout)
            },
            workload: WorkloadSpec::SocialMix,
            scale: ScaleSpec::full(),
            faults: Vec::new(),
            mitigation: MitigationSpec::default(),
            cluster: None,
            kind: ScenarioKind::Fig7 {
                loads: vec![1_000.0, 5_000.0, 10_000.0, 50_000.0],
            },
        }
    }

    /// The measured per-component latency breakdown across the three
    /// paper machines.
    pub fn breakdown() -> Scenario {
        Scenario {
            name: "breakdown".to_string(),
            machine: MachineSpec::of(MachineBase::Umanycore),
            workload: WorkloadSpec::SocialMix,
            scale: ScaleSpec::full(),
            faults: Vec::new(),
            mitigation: MitigationSpec::default(),
            cluster: None,
            kind: ScenarioKind::Breakdown {
                rps: 10_000.0,
                machines: vec![
                    NamedMachine {
                        name: "ServerClass-40".to_string(),
                        machine: MachineSpec::of(MachineBase::ServerClassIsoPower),
                    },
                    NamedMachine {
                        name: "ScaleOut".to_string(),
                        machine: MachineSpec::of(MachineBase::Scaleout),
                    },
                    NamedMachine {
                        name: "uManycore".to_string(),
                        machine: MachineSpec::of(MachineBase::Umanycore),
                    },
                ],
            },
        }
    }

    /// Tail vs message-loss rate, unmitigated vs timeout/retry.
    pub fn fault_tail() -> Scenario {
        Scenario {
            name: "fault_tail".to_string(),
            machine: MachineSpec::of(MachineBase::Umanycore),
            workload: WorkloadSpec::SocialMix,
            scale: ScaleSpec::full(),
            faults: Vec::new(),
            mitigation: MitigationSpec::default(),
            cluster: None,
            kind: ScenarioKind::FaultTail {
                rps: resilience::RESILIENCE_RPS,
                drop_rates: resilience::DROP_RATES.to_vec(),
                retry_timeout_us: 1_500.0,
            },
        }
    }

    /// Fleet tail by routing policy: the committed
    /// `results/cluster_tail.txt` rack.
    pub fn cluster_tail() -> Scenario {
        let full = ClusterScale::full();
        Scenario {
            name: "cluster_tail".to_string(),
            machine: MachineSpec {
                shape: Some([8, 2, 4]),
                // Deep RQs keep the sweep inside the regime where every
                // request completes (see DESIGN.md, "Cluster layer").
                rq_capacity: Some(512),
                ..MachineSpec::of(MachineBase::Umanycore)
            },
            workload: WorkloadSpec::SocialMix,
            scale: ScaleSpec {
                horizon_us: full.horizon_us,
                warmup_us: full.warmup_us,
                servers: 1,
                seed: full.seed,
            },
            faults: Vec::new(),
            mitigation: MitigationSpec::default(),
            cluster: Some(ClusterSpec {
                nodes: full.nodes,
                routing: cluster::POLICIES
                    .iter()
                    .map(|&(name, policy)| NamedRouting {
                        name: name.to_string(),
                        policy,
                    })
                    .collect(),
                max_in_flight: None,
                jitter: Some(JitterSpec {
                    mean_us: 0.5,
                    scv: 4.0,
                }),
                steer: false,
            }),
            kind: ScenarioKind::ClusterTail { loads: full.loads },
        }
    }

    /// The abstract's headline experiment: 10-server clusters of the
    /// four paper machines, committed as `results/cluster10.txt`.
    pub fn cluster10() -> Scenario {
        Scenario {
            name: "cluster10".to_string(),
            machine: MachineSpec::of(MachineBase::Umanycore),
            workload: WorkloadSpec::SocialMix,
            scale: ScaleSpec {
                servers: 10,
                ..ScaleSpec::full()
            },
            faults: Vec::new(),
            mitigation: MitigationSpec::default(),
            cluster: None,
            kind: ScenarioKind::MachineCompare {
                loads: vec![5_000.0, 10_000.0, 15_000.0],
                machines: vec![
                    NamedMachine {
                        name: "ServerClass-40".to_string(),
                        machine: MachineSpec::of(MachineBase::ServerClassIsoPower),
                    },
                    NamedMachine {
                        name: "ServerClass-128".to_string(),
                        machine: MachineSpec::of(MachineBase::ServerClassIsoArea),
                    },
                    NamedMachine {
                        name: "ScaleOut".to_string(),
                        machine: MachineSpec::of(MachineBase::Scaleout),
                    },
                    NamedMachine {
                        name: "uManycore".to_string(),
                        machine: MachineSpec::of(MachineBase::Umanycore),
                    },
                ],
            },
        }
    }

    /// Autoscaling under bursts: the snapshot memory pool in the request
    /// path, committed as `results/autoscale.txt`.
    pub fn autoscale() -> Scenario {
        Scenario {
            name: "autoscale".to_string(),
            machine: MachineSpec {
                // Small RQs so bursts overflow a single instance.
                rq_capacity: Some(8),
                ..MachineSpec::of(MachineBase::Umanycore)
            },
            workload: WorkloadSpec::SocialMix,
            scale: ScaleSpec::full(),
            faults: Vec::new(),
            mitigation: MitigationSpec::default(),
            cluster: None,
            kind: ScenarioKind::Autoscale {
                rps: 160_000.0,
                // The MMPP dwells ~220 ms low and ~30 ms bursting, so one
                // scale unit (200 ms) samples roughly one burst cycle and
                // the comparison would hinge on whether it happens to
                // burst. Run 5x longer so every configuration sees
                // several bursts regardless of the seed.
                horizon_factor: 5.0,
                configs: vec![
                    AutoscaleConfig {
                        name: "no autoscaling".to_string(),
                        autoscale: false,
                        pool: true,
                    },
                    AutoscaleConfig {
                        name: "autoscale, cold boots".to_string(),
                        autoscale: true,
                        pool: false,
                    },
                    AutoscaleConfig {
                        name: "autoscale + snapshot pool".to_string(),
                        autoscale: true,
                        pool: true,
                    },
                ],
            },
        }
    }

    /// FCFS vs SRPT dequeue (paper §4.3), committed as
    /// `results/ablation_srpt.txt`.
    pub fn ablation_srpt() -> Scenario {
        Scenario {
            name: "ablation_srpt".to_string(),
            machine: MachineSpec::of(MachineBase::Umanycore),
            workload: WorkloadSpec::SocialMix,
            scale: ScaleSpec::full(),
            faults: Vec::new(),
            mitigation: MitigationSpec::default(),
            cluster: None,
            kind: ScenarioKind::SrptAblation {
                workloads: vec![
                    NamedWorkload {
                        name: "SocialMix".to_string(),
                        workload: WorkloadSpec::SocialMix,
                        loads: vec![200_000.0, 1_200_000.0],
                    },
                    NamedWorkload {
                        name: "HeavyTail".to_string(),
                        workload: WorkloadSpec::Synthetic {
                            mean_us: 400.0,
                            scv: 9.0,
                            min_rpcs: 2,
                            max_rpcs: 6,
                        },
                        loads: vec![200_000.0, 1_000_000.0],
                    },
                ],
            },
        }
    }

    /// The default `um-sweep` grid: 4 loads x 3 mitigation policies x 2
    /// seeds (24 points) on a uManycore under 1% message loss.
    pub fn sweep_default() -> Scenario {
        Scenario {
            name: "sweep_default".to_string(),
            machine: MachineSpec::of(MachineBase::Umanycore),
            workload: WorkloadSpec::SocialMix,
            scale: ScaleSpec {
                horizon_us: 60_000.0,
                warmup_us: 6_000.0,
                servers: 1,
                seed: 42,
            },
            faults: vec![FaultRecipe::MessageDrops { probability: 0.01 }],
            mitigation: MitigationSpec::default(),
            cluster: None,
            kind: ScenarioKind::Grid(GridSpec {
                loads: vec![2_000.0, 5_000.0, 8_000.0, 11_000.0],
                seeds: vec![42, 43],
                nodes: Vec::new(),
                policies: vec![
                    NamedPolicy {
                        name: "none".to_string(),
                        mitigation: MitigationSpec::default(),
                    },
                    NamedPolicy {
                        name: "retry".to_string(),
                        mitigation: MitigationSpec {
                            retry: Some(RetrySpec::with_timeout_us(1_500.0)),
                            ..MitigationSpec::default()
                        },
                    },
                    NamedPolicy {
                        name: "hedge".to_string(),
                        mitigation: MitigationSpec {
                            hedge_delay_us: Some(150.0),
                            ..MitigationSpec::default()
                        },
                    },
                ],
            }),
        }
    }

    /// Every built-in scenario, in display order.
    pub fn all() -> Vec<Scenario> {
        vec![
            fig7(),
            breakdown(),
            fault_tail(),
            cluster_tail(),
            cluster10(),
            autoscale(),
            ablation_srpt(),
            sweep_default(),
        ]
    }

    /// Looks a built-in scenario up by name.
    pub fn by_name(name: &str) -> Option<Scenario> {
        all().into_iter().find(|s| s.name == name)
    }
}

/// Applies `UM_SCALE`/`UM_SEED` to a scenario, mirroring
/// [`crate::scale_from_env`] / [`crate::cluster_scale_from_env`] for the
/// converted binaries.
pub fn apply_env(s: &mut Scenario) {
    apply_scale_values(
        s,
        std::env::var("UM_SCALE").ok().as_deref(),
        std::env::var("UM_SEED").ok().as_deref(),
    );
}

/// [`apply_env`] with the environment values passed explicitly, for
/// tests. `quick` shrinks horizons (and, for cluster-tail scenarios,
/// the rack and load list) exactly the way the legacy env helpers did.
///
/// # Panics
///
/// Panics when `seed` is set but not an integer (the legacy contract).
pub fn apply_scale_values(s: &mut Scenario, scale: Option<&str>, seed: Option<&str>) {
    if scale == Some("quick") {
        match &mut s.kind {
            ScenarioKind::ClusterTail { loads } => {
                let q = ClusterScale::quick();
                s.scale.horizon_us = q.horizon_us;
                s.scale.warmup_us = q.warmup_us;
                *loads = q.loads;
                if let Some(c) = &mut s.cluster {
                    c.nodes = q.nodes;
                }
            }
            ScenarioKind::Grid(g) if !g.nodes.is_empty() => {
                let q = ClusterScale::quick();
                s.scale.horizon_us = q.horizon_us;
                s.scale.warmup_us = q.warmup_us;
            }
            _ => {
                let q = Scale::quick();
                s.scale.horizon_us = q.horizon_us;
                s.scale.warmup_us = q.warmup_us;
            }
        }
    }
    if let Some(seed) = seed {
        s.scale.seed = seed.parse().expect("UM_SEED must be an integer");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_registry_scenario_validates() {
        for s in registry::all() {
            s.validate().unwrap_or_else(|e| panic!("{}: {e}", s.name));
        }
    }

    #[test]
    fn registry_lookup_by_name() {
        assert_eq!(registry::by_name("fig7").expect("exists").name, "fig7");
        assert!(registry::by_name("no-such-scenario").is_none());
    }

    #[test]
    fn canonical_json_round_trips_byte_stably() {
        for s in registry::all() {
            let text = s.to_json_text();
            let back =
                Scenario::from_json_text(&text).unwrap_or_else(|e| panic!("{}: {e}", s.name));
            assert_eq!(back, s, "{}", s.name);
            assert_eq!(back.to_json_text(), text, "{}", s.name);
        }
    }

    #[test]
    fn unknown_fields_are_rejected_with_their_path() {
        let mut doc = registry::fig7().to_json();
        if let Json::Obj(pairs) = &mut doc {
            pairs.push(("surprise".to_string(), Json::Num(1.0)));
        }
        let err = Scenario::from_json(&doc).expect_err("unknown field");
        assert!(err.contains("unknown field `surprise`"), "{err}");

        let mut doc = registry::fig7().to_json();
        if let Some(Json::Obj(pairs)) = doc.get("machine").cloned().as_mut() {
            pairs.push(("warp_factor".to_string(), Json::Num(9.0)));
            if let Json::Obj(top) = &mut doc {
                top.iter_mut()
                    .find(|(k, _)| k == "machine")
                    .expect("machine field")
                    .1 = Json::Obj(pairs.clone());
            }
        }
        let err = Scenario::from_json(&doc).expect_err("unknown machine field");
        assert!(err.contains("scenario.machine"), "{err}");
        assert!(err.contains("unknown field `warp_factor`"), "{err}");
    }

    #[test]
    fn out_of_range_knobs_fail_validation_not_panic() {
        let mut s = registry::fault_tail();
        if let ScenarioKind::FaultTail { drop_rates, .. } = &mut s.kind {
            drop_rates[1] = 1.5;
        }
        let err = s.validate().expect_err("bad drop rate");
        assert!(err.contains("drop_rates[1]"), "{err}");

        let mut s = registry::fig7();
        s.scale.warmup_us = s.scale.horizon_us * 2.0;
        assert!(s.validate().is_err());

        let mut s = registry::sweep_default();
        if let ScenarioKind::Grid(g) = &mut s.kind {
            g.policies[1].mitigation.retry = Some(RetrySpec {
                backoff: 0.5,
                ..RetrySpec::with_timeout_us(100.0)
            });
        }
        let err = s.validate().expect_err("bad backoff");
        assert!(err.contains("backoff"), "{err}");
    }

    #[test]
    fn shallow_rq_cluster_without_admission_cap_is_refused() {
        let mut s = registry::cluster_tail();
        s.machine.rq_capacity = None; // default 64-entry RQ
        let err = s.validate().expect_err("deadlock-prone scenario");
        assert!(err.contains("max_in_flight"), "{err}");
        assert!(err.contains("rq_capacity"), "{err}");
        assert!(err.contains("Cluster layer"), "{err}");

        // An admission cap within the pigeonhole bound is accepted...
        s.cluster.as_mut().expect("cluster spec").max_in_flight = Some(32);
        s.validate().expect("capped shallow-RQ rack is safe");
        // ...a cap past it is not.
        s.cluster.as_mut().expect("cluster spec").max_in_flight = Some(33);
        assert!(s.validate().is_err());
    }

    #[test]
    fn fig7_expansion_matches_the_legacy_inline_driver() {
        let mut s = registry::fig7();
        apply_scale_values(&mut s, Some("quick"), None);
        let loads = match &s.kind {
            ScenarioKind::Fig7 { loads } => loads.clone(),
            _ => unreachable!(),
        };
        let legacy = motivation::fig7_configs(Scale::quick(), &loads);
        let expanded = s.expand().expect("valid scenario");
        assert_eq!(expanded.len(), legacy.len());
        for (p, l) in expanded.iter().zip(&legacy) {
            assert_eq!(
                format!("{:?}", p.as_node().expect("node point")),
                format!("{l:?}")
            );
        }
    }

    #[test]
    fn grid_expands_the_full_cross_product() {
        let mut s = registry::sweep_default();
        apply_scale_values(&mut s, Some("quick"), Some("7"));
        assert_eq!(s.scale.seed, 7);
        let points = s.expand().expect("valid scenario");
        assert_eq!(points.len(), 24);
        assert!(points.iter().all(|p| p.as_node().is_some()));
        // Distinct axis seeds derive distinct per-point seeds.
        let seeds: std::collections::BTreeSet<u64> = points
            .iter()
            .map(|p| p.as_node().expect("node point").seed)
            .collect();
        assert_eq!(seeds.len(), 8, "4 loads x 2 seed-axis values");
    }
}
