//! Figure 15: contribution of the four uManycore techniques to the tail
//! latency reduction at 15K RPS, applied cumulatively to ScaleOut.
//!
//! Paper anchors: villages 1.1x, +leaf-spine 2.3x, +HW scheduling 3.9x,
//! +HW context switching 7.4x (averages over the eight apps).

use um_bench::{banner, scale_from_env};
use um_stats::summary::geomean;
use um_stats::table::{f2, Table};
use umanycore::experiments::evaluation::fig15_grid;

fn main() {
    let scale = scale_from_env();
    banner(
        "Figure 15",
        "Cumulative tail-latency reduction over ScaleOut at 15K RPS.",
    );
    let mut t = Table::with_columns(&["app", "+Villages", "+Leaf-spine", "+HW-Sched", "+HW-CtxSw"]);
    let mut per_stage: Vec<Vec<f64>> = vec![Vec::new(); 4];
    for row in fig15_grid(15_000.0, scale) {
        t.row(vec![
            row.app.to_string(),
            f2(row.reductions[0]),
            f2(row.reductions[1]),
            f2(row.reductions[2]),
            f2(row.reductions[3]),
        ]);
        for (i, &r) in row.reductions.iter().enumerate() {
            per_stage[i].push(r);
        }
    }
    print!("{}", t.render());
    println!();
    println!(
        "average cumulative reductions: {:.1}x / {:.1}x / {:.1}x / {:.1}x",
        geomean(&per_stage[0]),
        geomean(&per_stage[1]),
        geomean(&per_stage[2]),
        geomean(&per_stage[3])
    );
    println!("paper: 1.1x / 2.3x / 3.9x / 7.4x");
}
