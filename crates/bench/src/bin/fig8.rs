//! Figure 8: handler-handler and handler-initialization sharing of data
//! and instruction pages and cache lines.
//!
//! Paper anchor: 78-99% of a handler's footprint is common.

use um_bench::{banner, scale_from_env};
use um_stats::table::{f2, Table};
use umanycore::experiments::motivation;

fn main() {
    let scale = scale_from_env();
    banner(
        "Figure 8",
        "Fraction of one handler's memory footprint common with another handler\n\
         of the same instance, and with the instance's initialization process.",
    );
    let rows = motivation::fig8_rows(scale.seed, 200);
    let mut t = Table::with_columns(&["pair", "d-Page", "d-Line", "i-Page", "i-Line"]);
    for (label, s) in [
        ("Handler-Handler", rows.handler_handler),
        ("Handler-Init", rows.handler_init),
    ] {
        t.row(vec![
            label.to_string(),
            f2(s.d_page),
            f2(s.d_line),
            f2(s.i_page),
            f2(s.i_line),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("paper: common fractions of 0.78-0.99 across all eight bars");
}
