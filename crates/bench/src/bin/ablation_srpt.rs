//! Ablation: FCFS vs SRPT dequeue (paper §4.3).
//!
//! The paper argues SRPT is unlikely to beat FCFS for microservices
//! because same-service requests have similar durations and frequent I/O
//! blocking already interleaves requests. This bench tests the claim on
//! the full system: the SocialNetwork mix (homogeneous per service) and a
//! heavy-tailed synthetic workload (where SRPT classically shines).

use um_arch::MachineConfig;
use um_bench::{banner, scale_from_env};
use um_sched::DequeuePolicy;
use um_stats::table::{f1, Table};
use um_workload::synthetic::SyntheticWorkload;
use um_workload::ServiceTimeDist;
use umanycore::experiments::parallel;
use umanycore::{SimConfig, SystemSim, Workload};

fn main() {
    let scale = scale_from_env();
    banner(
        "Ablation: FCFS vs SRPT",
        "Tail latency of the uManycore hardware RQ under both dequeue policies.",
    );
    let mut t = Table::with_columns(&[
        "workload",
        "load",
        "FCFS tail (us)",
        "SRPT tail (us)",
        "SRPT/FCFS",
    ]);
    let heavy = Workload::Synthetic(SyntheticWorkload::new(
        ServiceTimeDist::lognormal_with_mean(400.0, 9.0),
        2,
        6,
    ));
    // The last load of each pair drives uManycore near saturation, where
    // village queues actually form and the policies can differ. Each
    // (workload, load) point runs its FCFS/SRPT pair on one worker with
    // a shared seed, so the ratio is paired; points fan out in parallel.
    let points: Vec<(&str, Workload, f64)> = [
        (
            "SocialMix",
            Workload::social_mix(),
            [200_000.0, 1_200_000.0],
        ),
        ("HeavyTail", heavy, [200_000.0, 1_000_000.0]),
    ]
    .into_iter()
    .flat_map(|(label, workload, loads)| loads.map(move |rps| (label, workload.clone(), rps)))
    .collect();
    let rows = parallel::map(points, |_, (label, workload, rps)| {
        let run = |policy: DequeuePolicy| {
            // um-tidy: allow(scenario-inline-config) -- not yet converted to the scenario layer; tracked in results/tidy_debt.txt
            SystemSim::new(SimConfig {
                machine: MachineConfig::umanycore(),
                workload: workload.clone(),
                rps_per_server: rps,
                servers: scale.servers,
                horizon_us: scale.horizon_us,
                warmup_us: scale.warmup_us,
                seed: scale.seed,
                dequeue_policy: policy,
                ..SimConfig::default()
            })
            .run()
            .latency
            .p99
        };
        (
            label,
            rps,
            run(DequeuePolicy::Fcfs),
            run(DequeuePolicy::Srpt),
        )
    });
    for (label, rps, fcfs, srpt) in rows {
        t.row(vec![
            label.to_string(),
            format!("{:.0}K", rps / 1000.0),
            f1(fcfs),
            f1(srpt),
            format!("{:.2}", srpt / fcfs),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("paper claim (§4.3): SRPT is unlikely to improve over FCFS for");
    println!("microservices. At evaluation loads the village queues stay shallow and");
    println!("the policies coincide (ratio 1.00); near saturation SRPT actively");
    println!("*hurts* the P99 by starving long requests. FCFS is the right choice.");
}
