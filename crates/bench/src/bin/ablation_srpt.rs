//! Ablation: FCFS vs SRPT dequeue (paper §4.3).
//!
//! The paper argues SRPT is unlikely to beat FCFS for microservices
//! because same-service requests have similar durations and frequent I/O
//! blocking already interleaves requests. This bench tests the claim on
//! the full system: the SocialNetwork mix (homogeneous per service) and a
//! heavy-tailed synthetic workload (where SRPT classically shines).
//!
//! Thin wrapper over the `ablation_srpt` registry scenario; the
//! conformance tests pin its expansion against the legacy inline config
//! list and CI byte-diffs the output against `results/ablation_srpt.txt`.

use um_bench::{sanitizer_check, scenario};

fn main() {
    sanitizer_check();
    let mut s = scenario::registry::ablation_srpt();
    scenario::apply_env(&mut s);
    let out = scenario::run(&s).expect("ablation_srpt scenario is valid");
    print!("{}", out.text);
}
