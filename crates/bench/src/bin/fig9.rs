//! Figure 9: L1 and L2 data/instruction TLB and cache hit rates for
//! microservice handlers.
//!
//! Paper anchor: L1 TLB and cache hit rates above 95%; L2 structures lower
//! because the L1s filter the high-locality accesses.

use um_bench::{banner, scale_from_env};
use um_stats::table::{f3, Table};
use umanycore::experiments::motivation;

fn main() {
    let scale = scale_from_env();
    banner(
        "Figure 9",
        "TLB and cache hit rates, data and instruction sides.",
    );
    let r = motivation::fig9_rows(scale.seed, 400_000);
    let mut t = Table::with_columns(&["structure", "Data", "Instructions"]);
    t.row(vec!["L1 TLB".into(), f3(r.d_l1_tlb), f3(r.i_l1_tlb)]);
    t.row(vec!["L1 Cache".into(), f3(r.d_l1_cache), f3(r.i_l1_cache)]);
    t.row(vec!["L2 TLB".into(), f3(r.d_l2_tlb), f3(r.i_l2_tlb)]);
    t.row(vec!["L2 Cache".into(), f3(r.d_l2_cache), f3(r.i_l2_cache)]);
    print!("{}", t.render());
    println!();
    println!("paper: L1 rates > 0.95; L2 rates visibly lower (L1s act as filters)");
}
