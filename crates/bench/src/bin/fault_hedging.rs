//! The hedging ablation: one fail-slow core in every village, p99 with
//! and without hedged backup requests.
//!
//! This is the classic tail-at-scale straggler scenario: a single slow
//! core per coherence domain multiplies the service time of whatever it
//! dispatches, and at 128 villages nearly every request tree touches one.
//! Hedging issues a backup to a different village once an operation has
//! been outstanding for the healthy p90-equivalent delay; the first
//! delivery wins, the loser is discarded without double-charging latency.

use um_bench::{banner, scale_from_env};
use um_stats::table::{f1, f2, Table};
use umanycore::experiments::resilience::hedging_ablation;

fn main() {
    let scale = scale_from_env();
    banner(
        "Hedging ablation under fail-slow stragglers",
        "uManycore, SocialNetwork mix at 8K RPS, 1 fail-slow core per village for\n\
         the whole run. Hedge fires after the p90-equivalent outstanding delay\n\
         (HedgeConfig::after_quantile(0.9, 150us)).",
    );
    let (healthy, rows) = hedging_ablation(scale);
    println!(
        "healthy reference: p50 {} us, p99 {} us",
        f1(healthy.latency.p50),
        f1(healthy.latency.p99)
    );
    let mut t = Table::with_columns(&[
        "slowdown",
        "degraded p99(us)",
        "hedged p99(us)",
        "p99 recovered",
        "hedges",
        "wasted",
    ]);
    for row in &rows {
        let degraded = row.degraded.latency.p99;
        let hedged = row.hedged.latency.p99;
        let inflation = degraded - healthy.latency.p99;
        let recovered = if inflation > 0.0 {
            format!("{:.0}%", 100.0 * (degraded - hedged) / inflation)
        } else {
            "-".to_string()
        };
        t.row(vec![
            f1(row.slowdown),
            f1(degraded),
            f1(hedged),
            recovered,
            row.hedged.faults.hedges.to_string(),
            row.hedged.faults.wasted_attempts.to_string(),
        ]);
    }
    print!("{}", t.render());
    let worst = rows.last().expect("nonempty sweep");
    println!(
        "at {}x: hedging cuts p99 from {} to {} us ({}x of the healthy tail)",
        f1(worst.slowdown),
        f1(worst.degraded.latency.p99),
        f1(worst.hedged.latency.p99),
        f2(worst.hedged.latency.p99 / healthy.latency.p99),
    );
}
