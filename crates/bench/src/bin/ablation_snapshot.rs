//! Ablation: service snapshots in the cluster memory pool (§3.5, §4.1).
//!
//! When a village fills up, the system boots another instance of the
//! service in a different village. With a snapshot resident in the
//! cluster's memory pool the boot takes ~1-2 ms; without it, a cold boot
//! takes over 300 ms — and every request that waits for the new instance
//! eats that delay. Paper anchor: boot drops from >300 ms to <10 ms with
//! <16 MB per service.

use um_bench::banner;
use um_mem::pool::{MemoryPool, COLD_BOOT_MS};
use um_sim::Frequency;
use um_stats::table::{f1, f2, Table};
use um_stats::Samples;

fn main() {
    banner(
        "Ablation: snapshot memory pool",
        "Instance boot latency and burst tail with and without snapshots.",
    );
    let freq = Frequency::ghz(2.0);
    let mut with_pool = MemoryPool::new(256 * 1024 * 1024);
    for service in 0..11u32 {
        with_pool
            .store(service, 14 * 1024 * 1024) // <16 MB per service (paper)
            .expect("capacity for 11 snapshots");
    }
    let mut no_pool = MemoryPool::new(1); // nothing ever fits: always cold

    let mut t = Table::with_columns(&["configuration", "boot (ms)", "p99 burst latency (ms)"]);
    for (label, pool) in [
        ("with snapshots", &mut with_pool),
        ("cold boots", &mut no_pool),
    ] {
        let mut boots = Samples::new();
        let mut burst = Samples::new();
        // A burst of 200 requests arrives; the first must wait for the new
        // instance to boot, later ones queue behind it (1 ms service).
        for service in 0..11u32 {
            let boot = pool.boot_latency(service, freq).as_millis(freq);
            boots.record(boot);
            for k in 0..200 {
                burst.record(boot + k as f64 * 0.05);
            }
        }
        t.row(vec![label.to_string(), f2(boots.mean()), f1(burst.p99())]);
    }
    print!("{}", t.render());
    println!();
    println!("paper: boot drops from >{COLD_BOOT_MS:.0} ms to <10 ms with ~14-16 MB snapshots");
}
