//! Figure 2: CDF of requests per second (RPS) received by a server, from
//! the synthetic Alibaba-like trace model.
//!
//! Paper anchors: median ~500 RPS; >=1000 RPS 20% of the time; >=1500 RPS
//! 5% of the time.

use um_bench::{banner, scale_from_env};
use um_stats::table::{f2, Table};
use umanycore::experiments::motivation;

fn main() {
    let scale = scale_from_env();
    banner("Figure 2", "CDF of per-server load (RPS).");
    let cdf = motivation::fig2_cdf(scale.seed, 100_000);
    let mut t = Table::with_columns(&["RPS", "CDF"]);
    for (x, y) in curve_points(&cdf, 2_000.0, 9) {
        t.row(vec![format!("{x:.0}"), f2(y)]);
    }
    print!("{}", t.render());
    println!();
    println!(
        "median={:.0} p80={:.0} p95={:.0} (paper: ~500 / ~1000 / ~1500)",
        cdf.inverse(0.5),
        cdf.inverse(0.8),
        cdf.inverse(0.95)
    );
}

fn curve_points(cdf: &um_stats::Cdf, max_x: f64, points: usize) -> Vec<(f64, f64)> {
    (0..=points)
        .map(|i| {
            let x = max_x * i as f64 / points as f64;
            (x, cdf.eval(x))
        })
        .collect()
}
