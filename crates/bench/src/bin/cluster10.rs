//! The abstract's headline experiment: a cluster of 10 servers, each with
//! a 1024-core uManycore, against clusters of iso-power and iso-area
//! conventional multicores.
//!
//! Paper anchors: 3.7x lower average latency, 10.4x lower tail latency,
//! 15.5x higher throughput than the iso-power ServerClass cluster
//! (averages over the loads).

use um_arch::MachineConfig;
use um_bench::{banner, scale_from_env};
use um_stats::summary::geomean;
use um_stats::table::{f1, Table};
use umanycore::experiments::parallel;
use umanycore::{SimConfig, SystemSim, Workload};

fn main() {
    let mut scale = scale_from_env();
    scale.servers = 10;
    banner(
        "Cluster of 10 servers",
        "End-to-end latency of 10-server clusters under the SocialNetwork mix.",
    );
    let mut t = Table::with_columns(&["machine", "load", "avg (us)", "p99 (us)", "cluster util"]);
    let mut avg_ratio = Vec::new();
    let mut tail_ratio = Vec::new();
    let loads = [5_000.0, 10_000.0, 15_000.0];
    let names = ["ServerClass-40", "ServerClass-128", "ScaleOut", "uManycore"];
    let variants = || {
        [
            MachineConfig::server_class_iso_power(),
            MachineConfig::server_class_iso_area(),
            MachineConfig::scaleout(),
            MachineConfig::umanycore(),
        ]
    };
    // All 12 cluster runs in parallel; the four machines at one load
    // share the seed so the headline ratios stay paired.
    let points: Vec<(f64, MachineConfig)> = loads
        .iter()
        .flat_map(|&rps| variants().map(|m| (rps, m)))
        .collect();
    let reports = parallel::map(points, |_, (rps, machine)| {
        // um-tidy: allow(scenario-inline-config) -- not yet converted to the scenario layer; tracked in results/tidy_debt.txt
        SystemSim::new(SimConfig {
            machine,
            workload: Workload::social_mix(),
            rps_per_server: rps,
            servers: scale.servers,
            horizon_us: scale.horizon_us,
            warmup_us: scale.warmup_us,
            seed: scale.seed,
            ..SimConfig::default()
        })
        .run()
    });
    for (&rps, chunk) in loads.iter().zip(reports.chunks_exact(names.len())) {
        for (name, r) in names.iter().zip(chunk) {
            t.row(vec![
                name.to_string(),
                format!("{:.0}K/srv", rps / 1000.0),
                f1(r.latency.mean),
                f1(r.latency.p99),
                format!("{:.3}", r.utilization),
            ]);
        }
        avg_ratio.push(chunk[0].latency.mean / chunk[3].latency.mean);
        tail_ratio.push(chunk[0].latency.p99 / chunk[3].latency.p99);
    }
    print!("{}", t.render());
    println!();
    println!(
        "uManycore cluster vs iso-power ServerClass cluster: {:.1}x lower average,\n\
         {:.1}x lower tail (paper: 3.7x and 10.4x)",
        geomean(&avg_ratio),
        geomean(&tail_ratio)
    );
}
