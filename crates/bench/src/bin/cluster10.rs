//! The abstract's headline experiment: a cluster of 10 servers, each with
//! a 1024-core uManycore, against clusters of iso-power and iso-area
//! conventional multicores.
//!
//! Paper anchors: 3.7x lower average latency, 10.4x lower tail latency,
//! 15.5x higher throughput than the iso-power ServerClass cluster
//! (averages over the loads).

use um_bench::{banner, scale_from_env};
use um_arch::MachineConfig;
use um_stats::summary::geomean;
use um_stats::table::{f1, Table};
use umanycore::{SimConfig, SystemSim, Workload};

fn main() {
    let mut scale = scale_from_env();
    scale.servers = 10;
    banner(
        "Cluster of 10 servers",
        "End-to-end latency of 10-server clusters under the SocialNetwork mix.",
    );
    let mut t = Table::with_columns(&[
        "machine", "load", "avg (us)", "p99 (us)", "cluster util",
    ]);
    let mut avg_ratio = Vec::new();
    let mut tail_ratio = Vec::new();
    for rps in [5_000.0, 10_000.0, 15_000.0] {
        let mut tails = Vec::new();
        let mut avgs = Vec::new();
        for (name, machine) in [
            ("ServerClass-40", MachineConfig::server_class_iso_power()),
            ("ServerClass-128", MachineConfig::server_class_iso_area()),
            ("ScaleOut", MachineConfig::scaleout()),
            ("uManycore", MachineConfig::umanycore()),
        ] {
            let r = SystemSim::new(SimConfig {
                machine,
                workload: Workload::social_mix(),
                rps_per_server: rps,
                servers: scale.servers,
                horizon_us: scale.horizon_us,
                warmup_us: scale.warmup_us,
                seed: scale.seed,
                ..SimConfig::default()
            })
            .run();
            t.row(vec![
                name.to_string(),
                format!("{:.0}K/srv", rps / 1000.0),
                f1(r.latency.mean),
                f1(r.latency.p99),
                format!("{:.3}", r.utilization),
            ]);
            avgs.push(r.latency.mean);
            tails.push(r.latency.p99);
        }
        avg_ratio.push(avgs[0] / avgs[3]);
        tail_ratio.push(tails[0] / tails[3]);
    }
    print!("{}", t.render());
    println!();
    println!(
        "uManycore cluster vs iso-power ServerClass cluster: {:.1}x lower average,\n\
         {:.1}x lower tail (paper: 3.7x and 10.4x)",
        geomean(&avg_ratio),
        geomean(&tail_ratio)
    );
}
