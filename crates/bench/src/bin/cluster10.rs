//! The abstract's headline experiment: a cluster of 10 servers, each with
//! a 1024-core uManycore, against clusters of iso-power and iso-area
//! conventional multicores.
//!
//! Paper anchors: 3.7x lower average latency, 10.4x lower tail latency,
//! 15.5x higher throughput than the iso-power ServerClass cluster
//! (averages over the loads).
//!
//! Thin wrapper over the `cluster10` registry scenario; the conformance
//! tests pin its expansion against the legacy inline config list and CI
//! byte-diffs the output against `results/cluster10.txt`.

use um_bench::{sanitizer_check, scenario};

fn main() {
    sanitizer_check();
    let mut s = scenario::registry::cluster10();
    scenario::apply_env(&mut s);
    let out = scenario::run(&s).expect("cluster10 scenario is valid");
    print!("{}", out.text);
}
