//! Table 1: main sources of tail latency and the uManycore solutions.
//!
//! Qualitative table, rendered for completeness; every row maps to a
//! mechanism implemented in this repository.

use um_bench::banner;
use um_stats::table::Table;

fn main() {
    banner("Table 1", "Main sources of tail latency (qualitative).");
    let mut t = Table::with_columns(&["Source", "Reason", "uManycore solution", "module"]);
    t.row(vec![
        "Monolithic cache coherence".into(),
        "remote directory/cache/network accesses and contention".into(),
        "multiple small cache-coherent domains (villages)".into(),
        "um-arch::coherence, umanycore::system".into(),
    ]);
    t.row(vec![
        "Request scheduling".into(),
        "synchronization and queuing of requests".into(),
        "request enqueue/dequeue/scheduling in hardware".into(),
        "um-sched::rq, umanycore::system".into(),
    ]);
    t.row(vec![
        "Context switching".into(),
        "OS invocation and saving & restoring state".into(),
        "hardware-based context switching".into(),
        "um-sched::ctxswitch".into(),
    ]);
    t.row(vec![
        "On-package network".into(),
        "network link/router latency and contention".into(),
        "on-package hierarchical leaf-spine network".into(),
        "um-net::leafspine".into(),
    ]);
    print!("{}", t.render());
}
