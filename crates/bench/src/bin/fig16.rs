//! Figure 16: end-to-end average latency, normalized to ServerClass.
//!
//! Paper anchors: uManycore reduces the average by 2.3x / 3.2x / 5.6x over
//! ServerClass and 2.1x / 2.5x / 3.2x over ScaleOut.

use um_bench::{banner, scale_from_env};
use um_stats::summary::geomean;
use um_stats::table::{f1, f2, Table};
use umanycore::experiments::evaluation::{app_grid, LOADS};

fn main() {
    let scale = scale_from_env();
    banner("Figure 16", "Average latency normalized to ServerClass.");
    for &rps in &LOADS {
        println!("-- load {:.0}K RPS --", rps / 1000.0);
        let grid = app_grid(rps, scale);
        let mut t = Table::with_columns(&[
            "app",
            "ServerClass(ms)",
            "ServerClass",
            "ScaleOut",
            "uManycore",
        ]);
        let mut sc_over_um = Vec::new();
        let mut so_over_um = Vec::new();
        for row in &grid {
            let (sc, so, um) = row.norm_avgs();
            t.row(vec![
                row.app.to_string(),
                f1(row.server_class.latency.mean / 1000.0),
                f2(sc),
                f2(so),
                f2(um),
            ]);
            sc_over_um.push(1.0 / um);
            so_over_um.push(so / um);
        }
        print!("{}", t.render());
        println!(
            "uManycore average reduction: {:.1}x vs ServerClass, {:.1}x vs ScaleOut",
            geomean(&sc_over_um),
            geomean(&so_over_um)
        );
        println!();
    }
    println!("paper: 2.3/3.2/5.6x vs ServerClass; 2.1/2.5/3.2x vs ScaleOut");
}
