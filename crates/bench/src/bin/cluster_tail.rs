//! Fleet tail latency by load-balancer routing policy: a rack of
//! uManycore packages behind one front end.
//!
//! The paper's single-package story (hardware queues, village-local
//! dispatch) meets the classic serving-layer question: with N packages
//! behind a load balancer, how much fleet tail does the *routing
//! policy* cost on top of the package itself? The sweep compares
//! random, round-robin, JSQ(2) (power-of-two-choices) and an idealized
//! central queue across offered loads, with every hop through the rack
//! fabric charged to the cluster-hop breakdown component.
//!
//! Regenerate with `cargo run --release -p um-bench --bin
//! cluster_tail > results/cluster_tail.txt`; the output is
//! bit-identical at any `UM_THREADS`, and CI byte-diffs a regeneration
//! against the committed file.

use um_bench::{banner, cluster_scale_from_env};
use um_stats::table::{f1, Table};
use umanycore::experiments::cluster::cluster_tail_rows;

fn main() {
    let scale = cluster_scale_from_env();
    banner(
        "Cluster tail by routing policy",
        &format!(
            "{} uManycore package slices (8-core villages, 64 cores each) behind one\n\
             load balancer; SocialNetwork mix, 0.5 us rack fabric with lognormal\n\
             jitter; per-node offered load swept up to ~0.95 utilization.",
            scale.nodes
        ),
    );
    let rows = cluster_tail_rows(&scale);
    let mut t = Table::with_columns(&[
        "policy",
        "rps/node",
        "avg (us)",
        "p99 (us)",
        "hop avg (us)",
        "hop p99 (us)",
        "peak LB queue",
    ]);
    for row in &rows {
        let r = &row.report;
        t.row(vec![
            row.policy.to_string(),
            format!("{:.0}", row.rps_per_node),
            f1(r.latency.mean),
            f1(r.latency.p99),
            f1(r.cluster_hop.mean),
            f1(r.cluster_hop.p99),
            r.peak_lb_queue.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("At low load the package's internal parallelism absorbs routing imbalance");
    println!("and every policy ties; past ~0.9 utilization JSQ(2) tracks the central");
    println!("queue while random routing pays at the p99 — the uqSim/CloudNativeSim-style");
    println!("cluster result, with a many-core package (not a single worker) per node.");
}
