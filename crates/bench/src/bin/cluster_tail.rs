//! Fleet tail latency by load-balancer routing policy: a rack of
//! uManycore packages behind one front end.
//!
//! The paper's single-package story (hardware queues, village-local
//! dispatch) meets the classic serving-layer question: with N packages
//! behind a load balancer, how much fleet tail does the *routing
//! policy* cost on top of the package itself? The sweep compares
//! random, round-robin, JSQ(2) (power-of-two-choices) and an idealized
//! central queue across offered loads, with every hop through the rack
//! fabric charged to the cluster-hop breakdown component.
//!
//! Regenerate with `cargo run --release -p um-bench --bin
//! cluster_tail > results/cluster_tail.txt`; the output is
//! bit-identical at any `UM_THREADS`, and CI byte-diffs a regeneration
//! against the committed file.
//!
//! Thin wrapper over the `cluster_tail` registry scenario; the
//! conformance tests pin its expansion and output against the legacy
//! inline driver.

use um_bench::{sanitizer_check, scenario};

fn main() {
    sanitizer_check();
    let mut s = scenario::registry::cluster_tail();
    scenario::apply_env(&mut s);
    let out = scenario::run(&s).expect("cluster_tail scenario is valid");
    print!("{}", out.text);
}
