//! Figure 7: impact of on-package ICN contention on tail latency, 2D mesh
//! vs fat tree on the 1024-core ScaleOut.
//!
//! Paper anchors: at 50K RPS contention inflates the tail 14.7x on the
//! mesh and 7.5x on the fat tree; the effect shrinks with load.
//!
//! Thin wrapper over the `fig7` registry scenario; the conformance tests
//! pin its expansion and output against the legacy inline driver.

use um_bench::{sanitizer_check, scenario};

fn main() {
    sanitizer_check();
    let mut s = scenario::registry::fig7();
    scenario::apply_env(&mut s);
    let out = scenario::run(&s).expect("fig7 scenario is valid");
    print!("{}", out.text);
}
