//! Figure 7: impact of on-package ICN contention on tail latency, 2D mesh
//! vs fat tree on the 1024-core ScaleOut.
//!
//! Paper anchors: at 50K RPS contention inflates the tail 14.7x on the
//! mesh and 7.5x on the fat tree; the effect shrinks with load.

use um_bench::{banner, scale_from_env};
use um_stats::table::{f2, Table};
use umanycore::experiments::motivation;

fn main() {
    let scale = scale_from_env();
    banner(
        "Figure 7",
        "Tail latency with ICN contention, normalized to the same system without\n\
         contention.",
    );
    let loads = [1_000.0, 5_000.0, 10_000.0, 50_000.0];
    let rows = motivation::fig7_rows(scale, &loads);
    let mut t = Table::with_columns(&["load", "2D mesh", "fat tree"]);
    for r in &rows {
        t.row(vec![
            format!("{:.0}K-RPS", r.rps / 1000.0),
            f2(r.mesh_norm_tail),
            f2(r.fat_tree_norm_tail),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("paper at 50K RPS: mesh 14.7x, fat tree 7.5x");
}
