//! Lint-gate throughput: `um-tidy`'s full workspace pass (lex + rules +
//! cross-file analysis) timed at several scanner-thread counts, emitted
//! as `BENCH_tidy.json` so lint speed joins the engine/cluster perf
//! trajectory. The pass runs first in CI on every push; if the v2 lexer
//! ever makes it slow, this file is where the regression shows up.
//!
//! One axis — **threads**: the deterministic worker-pool size. Every
//! point re-scans the same tree; reports must be byte-identical at every
//! thread count (the scan's whole design), so a run that diverged aborts
//! instead of reporting a meaningless rate.
//!
//! Each point is repeated several times; the best wall-clock is reported
//! as lines/second of Rust source linted.
//!
//! Environment:
//!
//! - `UM_SCALE=quick`: CI smoke mode — fewer repetitions.
//! - `UM_BENCH_OUT`: output path (default `BENCH_tidy.json`).

use std::path::Path;
use std::time::Instant;

use um_bench::benchjson::{obj, rounded, validate_bench, Json};

const THREAD_AXIS: [usize; 4] = [1, 2, 4, 8];

struct Point {
    threads: usize,
    files: usize,
    lines: usize,
    lines_per_sec: f64,
}

fn main() {
    let quick = std::env::var("UM_SCALE").is_ok_and(|s| s == "quick");
    let reps = if quick { 2 } else { 5 };
    let mode = if quick { "quick" } else { "full" };
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    eprintln!("bench_tidy: workspace lint pass, {mode} scale, {reps} reps");

    let reference = um_tidy::workspace_report(&root, 1).expect("workspace scan");
    assert!(
        reference.diagnostics.is_empty(),
        "the tree under benchmark must be lint-clean"
    );
    let reference_json = um_tidy::render_json(&reference);

    let mut points = Vec::new();
    for threads in THREAD_AXIS {
        let mut best = f64::INFINITY;
        let mut report = None;
        for _ in 0..reps {
            let start = Instant::now();
            let r = um_tidy::workspace_report(&root, threads).expect("workspace scan");
            let secs = start.elapsed().as_secs_f64();
            best = best.min(secs);
            report = Some(r);
        }
        let report = report.expect("at least one repetition");
        assert_eq!(
            um_tidy::render_json(&report),
            reference_json,
            "jobs={threads} changed the report: the rate would be meaningless"
        );
        let lines_per_sec = report.lines as f64 / best;
        eprintln!(
            "  threads={threads}: {} files, {} lines, {:.2} Mlines/s",
            report.files,
            report.lines,
            lines_per_sec / 1e6
        );
        points.push(Point {
            threads,
            files: report.files,
            lines: report.lines,
            lines_per_sec,
        });
    }

    // The headline is the parallel speedup at the widest pool: the axis
    // the deterministic scanner exists for.
    let serial = points[0].lines_per_sec;
    let widest = points.last().expect("points are non-empty");
    let speedup = widest.lines_per_sec / serial;

    let doc = obj(vec![
        ("bench", Json::Str("tidy".into())),
        ("scale", Json::Str(mode.into())),
        ("rules", Json::Num(um_tidy::Rule::COUNT as f64)),
        ("debt", Json::Num(reference.total_debt() as f64)),
        (
            "headline",
            obj(vec![
                ("threads", Json::Num(widest.threads as f64)),
                ("lines_per_sec", Json::Num(widest.lines_per_sec.round())),
                ("speedup", Json::Num(rounded(speedup, 2))),
            ]),
        ),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        obj(vec![
                            ("threads", Json::Num(p.threads as f64)),
                            ("files", Json::Num(p.files as f64)),
                            ("lines", Json::Num(p.lines as f64)),
                            ("lines_per_sec", Json::Num(p.lines_per_sec.round())),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    validate_bench(&doc).expect("bench_tidy emits the BENCH_*.json envelope");
    let json = doc.render();

    let out = std::env::var("UM_BENCH_OUT").unwrap_or_else(|_| "BENCH_tidy.json".to_string());
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    print!("{json}");
    eprintln!(
        "bench_tidy: wrote {out} (headline {:.2} Mlines/s at {} threads)",
        widest.lines_per_sec / 1e6,
        widest.threads
    );
}
