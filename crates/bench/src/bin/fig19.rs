//! Figure 19: tail latency of different uManycore topology configurations
//! (cores per village x villages per cluster x clusters), normalized to
//! the default 8x4x32.
//!
//! Paper anchors: all configurations within ~15% of each other; leaf-heavy
//! services prefer larger villages, call-heavy services prefer many small
//! villages; the default has the lowest overall tail.

use um_arch::TopologyShape;
use um_bench::{banner, scale_from_env};
use um_stats::table::{f2, Table};
use umanycore::experiments::evaluation::fig19_grid;

fn main() {
    let scale = scale_from_env();
    banner(
        "Figure 19",
        "Normalized tail latency across uManycore shapes at 15K RPS.",
    );
    let labels: Vec<String> = TopologyShape::FIG19_SWEEP
        .iter()
        .map(|s| s.label())
        .collect();
    let mut cols: Vec<&str> = vec!["app"];
    for l in &labels {
        cols.push(l);
    }
    let mut t = Table::with_columns(&cols);
    for row in fig19_grid(15_000.0, scale) {
        let mut cells = vec![row.app.to_string()];
        cells.extend(row.norm_tails.iter().map(|&v| f2(v)));
        t.row(cells);
    }
    print!("{}", t.render());
    println!();
    println!("paper: all shapes within ~15%; default 8x4x32 lowest overall");
}
