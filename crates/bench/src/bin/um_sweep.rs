//! `um-sweep`: the generic scenario sweep driver.
//!
//! Expands a declarative [`um_bench::scenario::Scenario`] grid into its
//! fully-specified point list, evaluates every point through the
//! deterministic `UM_THREADS` worker pool (results are bit-identical at
//! any value), prints the legacy-style text table, and — for grid
//! scenarios — emits a `BENCH_*.json` document that passes
//! `bench_validate`.
//!
//! ```text
//! um-sweep                          # run the built-in sweep_default grid
//! um-sweep NAME                     # run a registry scenario by name
//! um-sweep --scenario FILE          # run a scenario from a JSON file
//! um-sweep --json PATH              # also write the benchjson document
//! um-sweep --csv PATH               # also write the points as CSV
//! um-sweep --list                   # list the registry
//! um-sweep --dump-registry DIR      # write every registry scenario to DIR
//! ```
//!
//! `UM_SCALE=quick` / `UM_SEED` apply to whichever scenario runs, the
//! same way they do for the figure binaries.

use um_bench::benchjson::{obj, validate_bench, Json};
use um_bench::{sanitizer_check, scenario};

fn usage() -> ! {
    eprintln!(
        "usage: um-sweep [NAME] [--scenario FILE] [--json PATH] [--csv PATH] [--list] \
         [--dump-registry DIR]"
    );
    std::process::exit(2);
}

fn kind_label(s: &scenario::Scenario) -> &'static str {
    match &s.kind {
        scenario::ScenarioKind::Fig7 { .. } => "fig7",
        scenario::ScenarioKind::Breakdown { .. } => "breakdown",
        scenario::ScenarioKind::FaultTail { .. } => "fault-tail",
        scenario::ScenarioKind::ClusterTail { .. } => "cluster-tail",
        scenario::ScenarioKind::MachineCompare { .. } => "machine-compare",
        scenario::ScenarioKind::Autoscale { .. } => "autoscale",
        scenario::ScenarioKind::SrptAblation { .. } => "srpt-ablation",
        scenario::ScenarioKind::Grid(_) => "grid",
    }
}

/// One CSV cell: numbers exactly as benchjson renders them (so the CSV
/// and the JSON document agree byte-for-byte on every value), strings
/// raw — no point emits cells needing quoting, and the writer refuses
/// rather than quietly producing a misaligned file.
fn csv_cell(v: &Json) -> String {
    match v {
        Json::Num(n) => {
            if n.fract() == 0.0 && n.abs() < 9.0e15 {
                format!("{n:.0}")
            } else {
                format!("{n}")
            }
        }
        Json::Str(s) => {
            assert!(
                !s.contains([',', '"', '\n']),
                "CSV cell {s:?} would need quoting"
            );
            s.clone()
        }
        Json::Bool(b) => b.to_string(),
        other => panic!("CSV cells must be scalars, got {other:?}"),
    }
}

/// Renders the grid points as CSV: the header comes from the first
/// point's keys, and every point must carry exactly the same columns.
fn points_to_csv(points: &Json) -> String {
    let rows = points.as_arr().expect("points is an array");
    let first = rows.first().expect("grid expansion is non-empty");
    let header: Vec<&str> = first
        .as_obj()
        .expect("points are objects")
        .iter()
        .map(|(k, _)| k.as_str())
        .collect();
    let mut out = header.join(",");
    out.push('\n');
    for row in rows {
        let pairs = row.as_obj().expect("points are objects");
        let keys: Vec<&str> = pairs.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, header, "every point must carry the same columns");
        let cells: Vec<String> = pairs.iter().map(|(_, v)| csv_cell(v)).collect();
        out.push_str(&cells.join(","));
        out.push('\n');
    }
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scenario_file: Option<String> = None;
    let mut registry_name: Option<String> = None;
    let mut json_path: Option<String> = None;
    let mut csv_path: Option<String> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--list" => {
                for s in scenario::registry::all() {
                    let points = s.expand().expect("registry scenarios are valid").len();
                    println!("{:<16} {:<12} {points} points", s.name, kind_label(&s));
                }
                return;
            }
            "--dump-registry" => {
                let dir = it.next().unwrap_or_else(|| usage());
                std::fs::create_dir_all(dir).expect("create dump directory");
                for s in scenario::registry::all() {
                    let path = format!("{dir}/{}.json", s.name);
                    std::fs::write(&path, s.to_json_text()).expect("write scenario");
                    println!("wrote {path}");
                }
                return;
            }
            "--scenario" => scenario_file = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--json" => json_path = Some(it.next().unwrap_or_else(|| usage()).clone()),
            "--csv" => csv_path = Some(it.next().unwrap_or_else(|| usage()).clone()),
            name if !name.starts_with('-') && registry_name.is_none() => {
                registry_name = Some(name.to_string());
            }
            _ => usage(),
        }
    }
    if scenario_file.is_some() && registry_name.is_some() {
        usage();
    }

    sanitizer_check();
    let mut s = match (&scenario_file, &registry_name) {
        (Some(path), _) => {
            let text =
                std::fs::read_to_string(path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
            scenario::Scenario::from_json_text(&text).unwrap_or_else(|e| panic!("{path}: {e}"))
        }
        (None, Some(name)) => scenario::registry::by_name(name).unwrap_or_else(|| {
            eprintln!("um-sweep: no registry scenario named '{name}' (see --list)");
            std::process::exit(2);
        }),
        (None, None) => scenario::registry::sweep_default(),
    };
    scenario::apply_env(&mut s);
    let out = scenario::run(&s).unwrap_or_else(|e| panic!("{}: {e}", s.name));
    print!("{}", out.text);

    if json_path.is_some() || csv_path.is_some() {
        let points = out
            .points
            .unwrap_or_else(|| panic!("{}: only grid scenarios emit benchjson points", s.name));
        if let Some(path) = json_path {
            let scale = match std::env::var("UM_SCALE").ok().as_deref() {
                Some("quick") => "quick",
                _ => "full",
            };
            let doc = obj(vec![
                ("bench", Json::Str(s.name.clone())),
                ("scale", Json::Str(scale.to_string())),
                ("points", points.clone()),
            ]);
            validate_bench(&doc).expect("sweep output satisfies the bench envelope");
            std::fs::write(&path, doc.render())
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("um-sweep: wrote {path}");
        }
        if let Some(path) = csv_path {
            std::fs::write(&path, points_to_csv(&points))
                .unwrap_or_else(|e| panic!("cannot write {path}: {e}"));
            eprintln!("um-sweep: wrote {path}");
        }
    }
}
