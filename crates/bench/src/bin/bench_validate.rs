//! Validates `BENCH_*.json` files against the shared envelope
//! (`um_bench::benchjson`): parseable, `bench`/`scale` present,
//! non-empty homogeneous `points`. CI runs this over both the committed
//! files and freshly generated ones, so the emitters and the schema
//! cannot drift apart silently.
//!
//! `--tidy <file>` switches to the `um-tidy --json` report shape instead:
//! the document must parse, round-trip byte-exactly through the
//! benchjson renderer (the report's contract with this document model),
//! and carry the report fields (`tool`, `rules`, `violations`, `debt`,
//! `total_debt`).
//!
//! `--scenario <file>` validates a declarative scenario document
//! (`um_bench::scenario`) instead: it must parse against the scenario
//! schema (unknown fields are errors), pass `Scenario::validate`,
//! serialize back byte-identically, and expand to a non-empty point
//! list. CI runs this over every registry scenario dumped by
//! `um-sweep --dump-registry`.
//!
//! `--service <file>` validates a `bench_service` throughput document:
//! the usual bench envelope, plus every point must carry the `clients`
//! and `jobs_per_sec` axes the service trajectory is plotted on.
//!
//! ```text
//! cargo run --release -p um-bench --bin bench_validate -- BENCH_engine.json
//! cargo run --release -p um-bench --bin bench_validate -- --tidy /tmp/tidy.json
//! cargo run --release -p um-bench --bin bench_validate -- --scenario fig7.json
//! cargo run --release -p um-bench --bin bench_validate -- --service BENCH_service.json
//! ```

use um_bench::benchjson::{validate_bench_str, Json};
use um_bench::scenario::Scenario;

fn validate_tidy(path: &str, text: &str) {
    let doc = Json::parse(text).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert_eq!(
        doc.render(),
        text,
        "{path}: um-tidy --json must round-trip byte-exactly through benchjson"
    );
    let tool = doc.get("tool").and_then(Json::as_str);
    assert_eq!(tool, Some("um-tidy"), "{path}: `tool` must be \"um-tidy\"");
    let rules = doc
        .get("rules")
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("{path}: missing numeric `rules`"));
    let violations = doc
        .get("violations")
        .and_then(Json::as_arr)
        .unwrap_or_else(|| panic!("{path}: missing `violations` array"));
    let count = doc
        .get("violation_count")
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("{path}: missing numeric `violation_count`"));
    assert_eq!(
        violations.len() as f64,
        count,
        "{path}: `violation_count` disagrees with `violations`"
    );
    let debt = doc
        .get("debt")
        .and_then(Json::as_obj)
        .unwrap_or_else(|| panic!("{path}: missing `debt` object"));
    assert_eq!(
        debt.len() as f64,
        rules,
        "{path}: `debt` must carry one entry per rule"
    );
    let ledger_total: f64 = debt.iter().filter_map(|(_, v)| v.as_num()).sum();
    let total = doc
        .get("total_debt")
        .and_then(Json::as_num)
        .unwrap_or_else(|| panic!("{path}: missing numeric `total_debt`"));
    assert_eq!(
        ledger_total, total,
        "{path}: `total_debt` disagrees with the per-rule `debt` entries"
    );
    println!(
        "{path}: ok (um-tidy report, {} rules, {} violations, debt {total})",
        rules,
        violations.len()
    );
}

fn validate_scenario(path: &str, text: &str) {
    let s = Scenario::from_json_text(text).unwrap_or_else(|e| panic!("{path}: {e}"));
    assert_eq!(
        s.to_json_text(),
        text,
        "{path}: scenario documents must be in canonical form (serialize back byte-identically)"
    );
    let points = s.expand().unwrap_or_else(|e| panic!("{path}: {e}")).len();
    println!("{path}: ok (scenario '{}', {points} points)", s.name);
}

fn validate_service(path: &str, text: &str) {
    let doc = validate_bench_str(text).unwrap_or_else(|e| panic!("{path}: {e}"));
    let bench = doc.get("bench").and_then(Json::as_str).expect("validated");
    assert_eq!(bench, "service", "{path}: `bench` must be \"service\"");
    let points = doc.get("points").and_then(Json::as_arr).expect("validated");
    for (i, p) in points.iter().enumerate() {
        for axis in ["clients", "jobs_per_sec"] {
            let v = p
                .get(axis)
                .and_then(Json::as_num)
                .unwrap_or_else(|| panic!("{path}: points[{i}] missing numeric `{axis}`"));
            assert!(v > 0.0, "{path}: points[{i}].{axis} must be positive");
        }
    }
    println!("{path}: ok (service throughput, {} points)", points.len());
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    assert!(
        !args.is_empty(),
        "usage: bench_validate [--tidy|--scenario|--service] <file.json> [more...] \
         (--tidy/--scenario/--service apply per following file)"
    );
    let mut tidy_mode = false;
    let mut scenario_mode = false;
    let mut service_mode = false;
    let mut validated = 0usize;
    for arg in &args {
        if arg == "--tidy" {
            tidy_mode = true;
            continue;
        }
        if arg == "--scenario" {
            scenario_mode = true;
            continue;
        }
        if arg == "--service" {
            service_mode = true;
            continue;
        }
        let path = arg;
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        if tidy_mode {
            validate_tidy(path, &text);
            tidy_mode = false;
        } else if scenario_mode {
            validate_scenario(path, &text);
            scenario_mode = false;
        } else if service_mode {
            validate_service(path, &text);
            service_mode = false;
        } else {
            let doc = validate_bench_str(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
            let bench = doc.get("bench").and_then(Json::as_str).expect("validated");
            let points = doc.get("points").and_then(Json::as_arr).expect("validated");
            println!("{path}: ok (bench '{bench}', {} points)", points.len());
        }
        validated += 1;
    }
    assert!(validated > 0, "no files validated");
}
