//! Validates `BENCH_*.json` files against the shared envelope
//! (`um_bench::benchjson`): parseable, `bench`/`scale` present,
//! non-empty homogeneous `points`. CI runs this over both the committed
//! files and freshly generated ones, so the emitters and the schema
//! cannot drift apart silently.
//!
//! ```text
//! cargo run --release -p um-bench --bin bench_validate -- BENCH_engine.json
//! ```

use um_bench::benchjson::{validate_bench_str, Json};

fn main() {
    let paths: Vec<String> = std::env::args().skip(1).collect();
    assert!(
        !paths.is_empty(),
        "usage: bench_validate <BENCH_*.json> [more...]"
    );
    for path in &paths {
        let text = std::fs::read_to_string(path).unwrap_or_else(|e| panic!("reading {path}: {e}"));
        let doc = validate_bench_str(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
        let bench = doc.get("bench").and_then(Json::as_str).expect("validated");
        let points = doc.get("points").and_then(Json::as_arr).expect("validated");
        println!("{path}: ok (bench '{bench}', {} points)", points.len());
    }
}
