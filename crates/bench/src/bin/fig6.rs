//! Figure 6: impact of context-switch overhead on tail latency at 5K, 10K
//! and 50K RPS on the 1024-core ScaleOut.
//!
//! Paper anchors: 128-256 cycles barely impact tail latency; the ~2K-cycle
//! software schedulers degrade it 13-23x at 50K RPS; Linux's ~5K cycles
//! degrade it 26-38x.

use um_bench::{banner, scale_from_env};
use um_stats::table::{f2, Table};
use umanycore::experiments::motivation;

fn main() {
    let scale = scale_from_env();
    banner(
        "Figure 6",
        "Tail latency vs context-switch overhead, normalized to CS=0 per load.",
    );
    let loads = [5_000.0, 10_000.0, 50_000.0];
    let rows = motivation::fig6_rows(scale, &loads);
    let mut t = Table::with_columns(&["CS cycles", "5K RPS", "10K RPS", "50K RPS"]);
    for &cs in &motivation::FIG6_CS {
        let cells: Vec<String> = loads
            .iter()
            .map(|&rps| {
                rows.iter()
                    .find(|r| r.cs_cycles == cs && r.rps == rps)
                    .map(|r| f2(r.norm_tail))
                    .expect("row exists")
            })
            .collect();
        t.row(vec![
            cs.to_string(),
            cells[0].clone(),
            cells[1].clone(),
            cells[2].clone(),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!(
        "markers: HW target 128-256 | Shenango 1024 | Shinjuku 1536 | ZygOS 2048 | Linux ~5000"
    );
    println!("paper: <=256 cycles ~ flat; 2K cycles 13-23x at 50K; 5-8K cycles 26-38x at 50K");
}
