//! Ablation: ECMP path-selection strategy on the leaf-spine (§4.2).
//!
//! The leaf-spine's value is its redundant paths; this bench quantifies
//! how much of Figure 12's benefit comes from *using* them — comparing
//! deterministic single-path routing, random ECMP, and the idealized
//! least-loaded adaptive router uManycore assumes.

use rand::Rng;
use um_bench::banner;
use um_net::{LeafSpine, Network, NetworkConfig, RouteStrategy, Topology};
use um_sim::{rng, Cycles};
use um_stats::table::{f1, Table};
use um_stats::Samples;
use umanycore::experiments::parallel;

fn run(strategy: RouteStrategy) -> (f64, f64) {
    let mut net = Network::new(
        LeafSpine::paper_default(),
        NetworkConfig {
            strategy,
            ..NetworkConfig::on_package()
        },
    );
    let n = net.topology().endpoints();
    let mut r = rng::stream(3, "ablation-routing");
    let mut lat = Samples::new();
    // A hotspot pattern: half the traffic targets cluster 0 (a popular
    // backend), half is uniform; bursty departures.
    for i in 0..20_000u64 {
        let src = r.gen_range(0..n);
        let dst = if r.gen_bool(0.5) {
            0
        } else {
            r.gen_range(0..n)
        };
        let depart = Cycles::new(i * 12);
        let arrive = net.send(src, dst, 2048, depart);
        lat.record((arrive - depart).raw() as f64);
    }
    (lat.mean(), lat.p99())
}

fn main() {
    banner(
        "Ablation: leaf-spine path selection",
        "Message latency under a hotspot pattern, by ECMP strategy (cycles).",
    );
    let mut t = Table::with_columns(&["strategy", "mean", "p99"]);
    let strategies = [
        ("deterministic (single path)", RouteStrategy::Deterministic),
        ("random ECMP", RouteStrategy::RandomEcmp),
        ("least-loaded (uManycore)", RouteStrategy::LeastLoaded),
    ];
    // Each run builds its own network and RNG stream, so the three
    // strategies are independent points.
    let results = parallel::map(strategies.to_vec(), |_, (_, s)| run(s));
    for ((name, _), (mean, p99)) in strategies.iter().zip(results) {
        t.row(vec![name.to_string(), f1(mean), f1(p99)]);
    }
    print!("{}", t.render());
    println!();
    println!("redundant paths only pay off when the router spreads load across them;");
    println!("deterministic routing degenerates the leaf-spine into a skinny tree.");
}
