//! Figure 14: end-to-end tail (P99) latency of ServerClass, ScaleOut and
//! uManycore, normalized to ServerClass, at 5K/10K/15K RPS per app.
//!
//! Paper anchors: uManycore reduces the tail by 6.3x / 8.3x / 16.7x over
//! ServerClass and 5.4x / 6.5x / 7.4x over ScaleOut at the three loads.

use um_bench::{banner, scale_from_env};
use um_stats::summary::geomean;
use um_stats::table::{f1, f2, Table};
use umanycore::experiments::evaluation::{app_grid, LOADS};

fn main() {
    let scale = scale_from_env();
    banner(
        "Figure 14",
        "Tail latency normalized to ServerClass (absolute ServerClass values in ms\n\
         shown as annotations, as in the paper).",
    );
    for &rps in &LOADS {
        println!("-- load {:.0}K RPS --", rps / 1000.0);
        let grid = app_grid(rps, scale);
        let mut t = Table::with_columns(&[
            "app",
            "ServerClass(ms)",
            "ServerClass",
            "ScaleOut",
            "uManycore",
        ]);
        let mut sc_over_um = Vec::new();
        let mut so_over_um = Vec::new();
        for row in &grid {
            let (sc, so, um) = row.norm_tails();
            t.row(vec![
                row.app.to_string(),
                f1(row.server_class.latency.p99 / 1000.0),
                f2(sc),
                f2(so),
                f2(um),
            ]);
            sc_over_um.push(1.0 / um);
            so_over_um.push(so / um);
        }
        print!("{}", t.render());
        println!(
            "uManycore tail reduction: {:.1}x vs ServerClass, {:.1}x vs ScaleOut",
            geomean(&sc_over_um),
            geomean(&so_over_um)
        );
        println!();
    }
    println!("paper: 6.3/8.3/16.7x vs ServerClass; 5.4/6.5/7.4x vs ScaleOut");
}
