//! The paper's §5 claim: "The results are similar for the other
//! applications of the benchmark suite." This bench reruns the Figure 14
//! comparison on the TrainTicket booking path and reports the same
//! normalized tails.

use um_bench::{banner, scale_from_env};
use um_arch::MachineConfig;
use um_stats::summary::geomean;
use um_stats::table::{f1, f2, Table};
use um_workload::trainticket::TrainTicket;
use umanycore::experiments::run_machine;
use umanycore::Workload;

fn main() {
    let scale = scale_from_env();
    banner(
        "Other suites: TrainTicket",
        "Tail latency normalized to ServerClass, TrainTicket booking path at 10K RPS.",
    );
    let apps = TrainTicket::new();
    let mut t = Table::with_columns(&[
        "app", "ServerClass(ms)", "ServerClass", "ScaleOut", "uManycore",
    ]);
    let mut reductions = Vec::new();
    for &root in &TrainTicket::ALL {
        let sc = run_machine(
            MachineConfig::server_class_iso_power(),
            Workload::train_app(root),
            10_000.0,
            scale,
        );
        let so = run_machine(
            MachineConfig::scaleout(),
            Workload::train_app(root),
            10_000.0,
            scale,
        );
        let um = run_machine(
            MachineConfig::umanycore(),
            Workload::train_app(root),
            10_000.0,
            scale,
        );
        t.row(vec![
            apps.profile(root).name.to_string(),
            f1(sc.latency.p99 / 1000.0),
            "1.00".to_string(),
            f2(so.latency.p99 / sc.latency.p99),
            f2(um.latency.p99 / sc.latency.p99),
        ]);
        reductions.push(sc.latency.p99 / um.latency.p99);
    }
    print!("{}", t.render());
    println!();
    println!(
        "uManycore tail reduction on TrainTicket: {:.1}x vs ServerClass",
        geomean(&reductions)
    );
    println!("(SocialNetwork at the same load: see results/fig14.txt — the paper's");
    println!("\"results are similar for the other applications\" claim, checked)");
}
