//! The paper's §5 claim: "The results are similar for the other
//! applications of the benchmark suite." This bench reruns the Figure 14
//! comparison on the TrainTicket booking path and reports the same
//! normalized tails.

use um_arch::MachineConfig;
use um_bench::{banner, scale_from_env};
use um_stats::summary::geomean;
use um_stats::table::{f1, f2, Table};
use um_workload::trainticket::TrainTicket;
use umanycore::experiments::{parallel, run_machine};
use umanycore::Workload;

fn main() {
    let scale = scale_from_env();
    banner(
        "Other suites: TrainTicket",
        "Tail latency normalized to ServerClass, TrainTicket booking path at 10K RPS.",
    );
    let apps = TrainTicket::new();
    let mut t = Table::with_columns(&[
        "app",
        "ServerClass(ms)",
        "ServerClass",
        "ScaleOut",
        "uManycore",
    ]);
    let mut reductions = Vec::new();
    let variants = || {
        [
            MachineConfig::server_class_iso_power(),
            MachineConfig::scaleout(),
            MachineConfig::umanycore(),
        ]
    };
    // All app x machine points in parallel; the three machines of one
    // app share the seed so the normalization is paired.
    let points: Vec<(usize, MachineConfig)> = (0..TrainTicket::ALL.len())
        .flat_map(|a| variants().map(|m| (a, m)))
        .collect();
    let tails = parallel::map(points, |_, (a, machine)| {
        run_machine(
            machine,
            Workload::train_app(TrainTicket::ALL[a]),
            10_000.0,
            scale,
        )
        .latency
        .p99
    });
    for (&root, chunk) in TrainTicket::ALL.iter().zip(tails.chunks_exact(3)) {
        let (sc, so, um) = (chunk[0], chunk[1], chunk[2]);
        t.row(vec![
            apps.profile(root).name.to_string(),
            f1(sc / 1000.0),
            "1.00".to_string(),
            f2(so / sc),
            f2(um / sc),
        ]);
        reductions.push(sc / um);
    }
    print!("{}", t.render());
    println!();
    println!(
        "uManycore tail reduction on TrainTicket: {:.1}x vs ServerClass",
        geomean(&reductions)
    );
    println!("(SocialNetwork at the same load: see results/fig14.txt — the paper's");
    println!("\"results are similar for the other applications\" claim, checked)");
}
