//! Figure 1: speedups of four published microarchitectural optimizations
//! on monolithic vs microservice applications.
//!
//! Paper anchors: monoliths gain 19% / 14% / 16% / 2%; microservices gain
//! 2% / 1% / ~0% / ~0%.

use um_bench::{banner, scale_from_env};
use um_stats::table::{f3, Table};
use umanycore::experiments::motivation;

fn main() {
    let scale = scale_from_env();
    banner(
        "Figure 1",
        "Speedup of D-Prefetcher / Branch Predictor / I-Prefetcher / I-Cache Replace,\n\
         normalized to Baseline (= 1.0); calibrated stall breakdowns, with a\n\
         trace-driven cross-check below.",
    );
    let rows = motivation::fig1_rows();
    let mut t = Table::with_columns(&[
        "optimization",
        "Mono baseline",
        "Mono optimized",
        "Micro baseline",
        "Micro optimized",
    ]);
    for r in &rows {
        t.row(vec![
            r.opt.name().to_string(),
            "1.000".to_string(),
            f3(r.mono_speedup),
            "1.000".to_string(),
            f3(r.micro_speedup),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("paper: Mono 1.19 / 1.14 / 1.16 / 1.02 ; Micro 1.02 / 1.01 / 1.00 / 1.00");
    println!();
    println!("cross-check from trace-driven cache simulation (coarser, ordering only):");
    let mut t2 = Table::with_columns(&["optimization", "Mono optimized", "Micro optimized"]);
    for r in motivation::fig1_rows_measured(scale.seed) {
        t2.row(vec![
            r.opt.name().to_string(),
            f3(r.mono_speedup),
            f3(r.micro_speedup),
        ]);
    }
    print!("{}", t2.render());
}
