//! Rack-level autoscaling under bursty traffic, extending the
//! single-package `autoscale` figure (`results/autoscale.txt`).
//!
//! §3.5's claim is that snapshot-backed instance boots (~2 ms) let a
//! service absorb bursts that cold boots (>300 ms) cannot. At rack
//! scale the knob is whole standby *packages*: a small rack that takes
//! the full aggregate load, a full rack provisioned for the peak, and
//! small racks that scale out with snapshot vs cold boots when the
//! load balancer's in-flight count crosses the high-water mark.
//!
//! Regenerate with `cargo run --release -p um-bench --bin
//! cluster_autoscale > results/cluster_autoscale.txt`.

use um_bench::{banner, cluster_scale_from_env};
use um_stats::table::{f1, Table};
use umanycore::experiments::cluster::cluster_autoscale_rows;

/// Offered load per full-rack node; the small racks carry the same
/// aggregate, concentrated on a quarter of the packages — bursts then
/// push the concentrated nodes past their ~125K-RPS saturation point
/// while the full rack barely notices.
const RPS_PER_NODE: f64 = 12_000.0;

fn main() {
    let scale = cluster_scale_from_env();
    banner(
        "Rack autoscaling with snapshot boots",
        &format!(
            "Bursty (MMPP) SocialNetwork traffic; {} packages at full provisioning,\n\
             {} to start when autoscaling; JSQ(2) routing.",
            scale.nodes,
            (scale.nodes / 4).max(1)
        ),
    );
    let rows = cluster_autoscale_rows(&scale, RPS_PER_NODE);
    let mut t = Table::with_columns(&[
        "configuration",
        "avg (us)",
        "p99 (us)",
        "boots",
        "final nodes",
        "peak LB queue",
    ]);
    for row in &rows {
        let r = &row.report;
        t.row(vec![
            row.name.to_string(),
            f1(r.latency.mean),
            f1(r.latency.p99),
            r.boots.to_string(),
            r.active_nodes.to_string(),
            r.peak_lb_queue.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("paper: snapshots cut instance boot from >300 ms to <10 ms (§3.5); at rack");
    println!("scale that is the difference between absorbing a burst with standby");
    println!("packages and queueing it at the load balancer for the cold boot's duration.");
}
