//! Self-validation: checks the reproduction's headline claims against the
//! paper's published bands in one run and prints PASS/FAIL per claim.
//!
//! ```text
//! cargo run --release -p um-bench --bin validate          # figure scale
//! UM_SCALE=quick cargo run --release -p um-bench --bin validate
//! ```

use um_arch::MachineConfig;
use um_bench::{banner, scale_from_env};
use um_stats::summary::geomean;
use umanycore::experiments::{evaluation, motivation};

struct Check {
    name: &'static str,
    paper: f64,
    measured: f64,
    lo: f64,
    hi: f64,
}

impl Check {
    fn passed(&self) -> bool {
        (self.lo..=self.hi).contains(&self.measured)
    }
}

fn main() {
    let scale = scale_from_env();
    banner(
        "Validation",
        "Headline claims vs the paper's published numbers (bands are generous:\n\
         this is a shape reproduction, not a cycle-accurate replay).",
    );
    let mut checks: Vec<Check> = Vec::new();

    // Power/area anchors (§5, §6.8) — cheap and exact.
    let um = MachineConfig::umanycore();
    let sc40 = MachineConfig::server_class_iso_power();
    let sc128 = MachineConfig::server_class_iso_area();
    checks.push(Check {
        name: "uManycore area (mm2)",
        paper: 547.2,
        measured: um.area_mm2(),
        lo: 520.0,
        hi: 575.0,
    });
    checks.push(Check {
        name: "area ratio vs ServerClass-40",
        paper: 3.1,
        measured: um.area_mm2() / sc40.area_mm2(),
        lo: 2.8,
        hi: 3.4,
    });
    checks.push(Check {
        name: "iso-area power ratio (SC-128 / uM)",
        paper: 3.2,
        measured: sc128.power_watts() / um.power_watts(),
        lo: 2.9,
        hi: 3.5,
    });

    // Figure 1 (calibrated model).
    let fig1 = motivation::fig1_rows();
    checks.push(Check {
        name: "Fig1 D-prefetcher monolith speedup",
        paper: 1.19,
        measured: fig1[0].mono_speedup,
        lo: 1.15,
        hi: 1.23,
    });
    checks.push(Check {
        name: "Fig1 D-prefetcher microservice speedup",
        paper: 1.02,
        measured: fig1[0].micro_speedup,
        lo: 1.0,
        hi: 1.05,
    });

    // Alibaba marginals (Figs 2, 4, 5).
    checks.push(Check {
        name: "Fig2 median server RPS",
        paper: 500.0,
        measured: motivation::fig2_cdf(scale.seed, 50_000).inverse(0.5),
        lo: 440.0,
        hi: 560.0,
    });
    checks.push(Check {
        name: "Fig4 median CPU utilization",
        paper: 0.14,
        measured: motivation::fig4_cdf(scale.seed, 50_000).inverse(0.5),
        lo: 0.11,
        hi: 0.17,
    });
    checks.push(Check {
        name: "Fig5 median RPCs per request",
        paper: 4.2,
        measured: motivation::fig5_cdf(scale.seed, 50_000).inverse(0.5),
        lo: 3.0,
        hi: 5.5,
    });

    // End-to-end tails at 10K RPS (Figure 14 mid-load).
    let grid = evaluation::app_grid(10_000.0, scale);
    let vs_sc: Vec<f64> = grid
        .iter()
        .map(|row| row.server_class.latency.p99 / row.umanycore.latency.p99)
        .collect();
    checks.push(Check {
        name: "Fig14 tail reduction vs ServerClass @10K",
        paper: 8.3,
        measured: geomean(&vs_sc),
        lo: 4.0,
        hi: 18.0,
    });
    let vs_so: Vec<f64> = grid
        .iter()
        .map(|row| row.scaleout.latency.p99 / row.umanycore.latency.p99)
        .collect();
    checks.push(Check {
        name: "Fig14 tail reduction vs ScaleOut @10K",
        paper: 6.5,
        measured: geomean(&vs_so),
        lo: 3.0,
        hi: 26.0,
    });

    // Figure 15 first stages.
    let ab = evaluation::fig15_row(um_workload::apps::SocialNetwork::SGRAPH, 15_000.0, scale);
    checks.push(Check {
        name: "Fig15 villages stage (SGraph)",
        paper: 1.1,
        measured: ab.reductions[0],
        lo: 0.8,
        hi: 2.5,
    });

    // Render.
    let mut failed = 0;
    println!(
        "{:44} {:>9} {:>10} {:>16}  verdict",
        "claim", "paper", "measured", "accepted band"
    );
    println!("{}", "-".repeat(92));
    for c in &checks {
        let verdict = if c.passed() { "PASS" } else { "FAIL" };
        if !c.passed() {
            failed += 1;
        }
        println!(
            "{:44} {:>9.2} {:>10.2} {:>7.2} ..{:>7.2}  {}",
            c.name, c.paper, c.measured, c.lo, c.hi, verdict
        );
    }
    println!();
    if failed == 0 {
        println!("all {} checks passed", checks.len());
    } else {
        println!("{failed} of {} checks FAILED", checks.len());
        std::process::exit(1);
    }
}
