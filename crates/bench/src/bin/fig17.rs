//! Figure 17: tail-to-average latency ratio, normalized to ServerClass,
//! averaged across the three loads.
//!
//! Paper anchors: uManycore's ratio is 2.7x lower than ServerClass's and
//! 2.3x lower than ScaleOut's (absolute ServerClass ratios 3.1-7.7).

use um_bench::{banner, scale_from_env};
use um_stats::summary::{geomean, mean};
use um_stats::table::{f1, f2, Table};
use umanycore::experiments::evaluation::{app_grid, LOADS};

fn main() {
    let scale = scale_from_env();
    banner(
        "Figure 17",
        "Tail-to-average latency ratio normalized to ServerClass, averaged over\n\
         the three loads; absolute ServerClass ratios shown as annotations.",
    );
    // Accumulate per-app ratios across loads.
    type AppRatios = (String, Vec<f64>, Vec<f64>, Vec<f64>);
    let mut acc: Vec<AppRatios> = Vec::new();
    for &rps in &LOADS {
        for (i, row) in app_grid(rps, scale).into_iter().enumerate() {
            if acc.len() <= i {
                acc.push((row.app.to_string(), vec![], vec![], vec![]));
            }
            acc[i].1.push(row.server_class.tail_to_avg());
            acc[i].2.push(row.scaleout.tail_to_avg());
            acc[i].3.push(row.umanycore.tail_to_avg());
        }
    }
    let mut t = Table::with_columns(&[
        "app",
        "ServerClass(abs)",
        "ServerClass",
        "ScaleOut",
        "uManycore",
    ]);
    let mut um_norm = Vec::new();
    let mut so_norm = Vec::new();
    for (app, sc, so, um) in &acc {
        let sc_m = mean(sc);
        let so_m = mean(so);
        let um_m = mean(um);
        t.row(vec![
            app.clone(),
            f1(sc_m),
            "1.00".to_string(),
            f2(so_m / sc_m),
            f2(um_m / sc_m),
        ]);
        um_norm.push(sc_m / um_m);
        so_norm.push(so_m / um_m);
    }
    print!("{}", t.render());
    println!();
    println!(
        "uManycore ratio is {:.1}x lower than ServerClass, {:.1}x lower than ScaleOut",
        geomean(&um_norm),
        geomean(&so_norm)
    );
    println!("paper: 2.7x and 2.3x; absolute ServerClass ratios 3.1-7.7");
}
