//! Extension: heterogeneous villages (paper §8's future work).
//!
//! "A possible enhancement is to have different hardware in different
//! villages. For example, some villages might have bigger cores." We give
//! 16 or 32 of the 128 villages IceLake-class (6-issue, 352-ROB) cores at
//! the package clock and steer the heaviest-handler services to them,
//! then measure per-app latency and the package power cost.

use um_arch::MachineConfig;
use um_bench::{banner, scale_from_env};
use um_stats::table::{f1, Table};
use um_workload::apps::SocialNetwork;
use um_workload::ServiceId;
use umanycore::experiments::{parallel, run_machine};
use umanycore::Workload;

fn main() {
    let scale = scale_from_env();
    banner(
        "Extension: heterogeneous villages (§8)",
        "Per-app latency at 15K RPS with 0/16/32 big-core villages.",
    );
    let machines = [
        ("homogeneous", MachineConfig::umanycore()),
        (
            "16 big villages",
            MachineConfig::umanycore_heterogeneous(16),
        ),
        (
            "32 big villages",
            MachineConfig::umanycore_heterogeneous(32),
        ),
    ];
    let apps = SocialNetwork::new();
    let mut t = Table::with_columns(&["app", "homogeneous p99", "16-big p99", "32-big p99"]);
    let roots = [
        SocialNetwork::CPOST,
        SocialNetwork::TEXT,
        SocialNetwork::URL_SHORT,
    ];
    let points: Vec<(ServiceId, MachineConfig)> = roots
        .iter()
        .flat_map(|&root| machines.iter().map(move |(_, m)| (root, m.clone())))
        .collect();
    let tails = parallel::map(points, |_, (root, m)| {
        run_machine(m, Workload::social_app(root), 15_000.0, scale)
            .latency
            .p99
    });
    for (&root, chunk) in roots.iter().zip(tails.chunks_exact(machines.len())) {
        let mut cells = vec![apps.profile(root).name.to_string()];
        cells.extend(chunk.iter().map(|&p99| f1(p99)));
        t.row(cells);
    }
    print!("{}", t.render());
    println!();
    let mut p = Table::with_columns(&["configuration", "package power (W)", "area (mm2)"]);
    for (name, m) in &machines {
        p.row(vec![
            name.to_string(),
            f1(m.power_watts()),
            f1(m.area_mm2()),
        ]);
    }
    print!("{}", p.render());
    println!();
    println!("Finding: at DeathStarBench-like workloads the gains are marginal —");
    println!("handler compute is a small slice of end-to-end latency, which queueing");
    println!("and downstream waits dominate — while 16 big villages cost ~1.7x the");
    println!("package power. This answers §8's open question for this workload class:");
    println!("spend the transistors on more small villages, not bigger cores.");
}
