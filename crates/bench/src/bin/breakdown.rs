//! Where does request time go? A quantitative rendering of Table 1: per
//! completed invocation, how much time is spent on a core, waiting in
//! queues, and blocked on RPCs, for each machine.
//!
//! Paper context: §3.3 (requests spend most of their time blocked; median
//! CPU utilization per request ~14%) and Table 1's overhead sources.

use um_arch::MachineConfig;
use um_bench::{banner, scale_from_env};
use um_stats::table::{f1, Table};
use umanycore::experiments::{parallel, run_machine};
use umanycore::Workload;

fn main() {
    let scale = scale_from_env();
    banner(
        "Invocation time breakdown",
        "Mean microseconds per completed invocation at 10K RPS (SocialNetwork mix).",
    );
    let mut t = Table::with_columns(&[
        "machine",
        "on-core",
        "queued",
        "blocked",
        "CPU util/request",
    ]);
    let machines = [
        ("ServerClass-40", MachineConfig::server_class_iso_power()),
        ("ScaleOut", MachineConfig::scaleout()),
        ("uManycore", MachineConfig::umanycore()),
    ];
    let reports = parallel::map(machines.to_vec(), |_, (_, machine)| {
        run_machine(machine, Workload::social_mix(), 10_000.0, scale)
    });
    for ((name, _), r) in machines.iter().zip(reports) {
        let cpu = r.cpu_per_invocation.mean;
        let queued = r.queued_per_invocation.mean;
        let blocked = r.blocked_per_invocation.mean;
        let total = cpu + queued + blocked;
        t.row(vec![
            name.to_string(),
            f1(cpu),
            f1(queued),
            f1(blocked),
            format!("{:.2}", cpu / total.max(1e-9)),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("Table 1's story in numbers: the baselines burn 3-7x more core time per");
    println!("invocation (the software RPC stack) and block far longer (slow callees,");
    println!("contended ICN); uManycore's on-core column is almost exactly the ~120 us");
    println!("handler compute of §3.3. Root requests — whose blocked time contains");
    println!("their whole downstream tree — sit well below the paper's ~14% CPU");
    println!("utilization, as in Figure 4.");
}
