//! Where does request time go? The *measured* per-component latency
//! breakdown, from the tracing layer: every cycle of a root request's
//! lifetime (its merged RPC tree included) charged to exactly one
//! component, with conservation checked to the cycle.
//!
//! Paper context: §3.2/Figure 3 (queueing), §4.4/Figure 6 (context
//! switching), §3.3/Table 1 (overhead sources). The previous incarnation
//! of this table summed caller-side per-invocation counters (CPU, queued,
//! blocked); since a parent's blocked time *contains* its callees'
//! lifetimes, that double-counted every downstream microsecond. The
//! traced breakdown cannot: components sum to end-to-end latency exactly,
//! so each row is a disjoint share of the mean.
//!
//! Thin wrapper over the `breakdown` registry scenario; the conformance
//! tests pin its expansion and output against the legacy inline driver.

use um_bench::{sanitizer_check, scenario};

fn main() {
    sanitizer_check();
    let mut s = scenario::registry::breakdown();
    scenario::apply_env(&mut s);
    let out = scenario::run(&s).expect("breakdown scenario is valid");
    print!("{}", out.text);
}
