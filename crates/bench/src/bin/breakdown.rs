//! Where does request time go? The *measured* per-component latency
//! breakdown, from the tracing layer: every cycle of a root request's
//! lifetime (its merged RPC tree included) charged to exactly one
//! component, with conservation checked to the cycle.
//!
//! Paper context: §3.2/Figure 3 (queueing), §4.4/Figure 6 (context
//! switching), §3.3/Table 1 (overhead sources). The previous incarnation
//! of this table summed caller-side per-invocation counters (CPU, queued,
//! blocked); since a parent's blocked time *contains* its callees'
//! lifetimes, that double-counted every downstream microsecond. The
//! traced breakdown cannot: components sum to end-to-end latency exactly,
//! so each row is a disjoint share of the mean.

use um_arch::MachineConfig;
use um_bench::{banner, scale_from_env};
use um_sim::trace::Component;
use um_stats::table::{f1, Table};
use umanycore::experiments::{parallel, run_machine_traced};
use umanycore::Workload;

fn main() {
    let scale = scale_from_env();
    banner(
        "Measured latency breakdown",
        "Mean microseconds per root request (downstream RPC tree merged in) at 10K RPS\n\
         (SocialNetwork mix), attributed by the tracing layer. Components sum to the\n\
         mean end-to-end latency exactly.",
    );
    let machines = [
        ("ServerClass-40", MachineConfig::server_class_iso_power()),
        ("ScaleOut", MachineConfig::scaleout()),
        ("uManycore", MachineConfig::umanycore()),
    ];
    let reports = parallel::map(machines.to_vec(), |_, (_, machine)| {
        run_machine_traced(machine, Workload::social_mix(), 10_000.0, scale)
    });

    let mut t = Table::with_columns(&["component", "ServerClass-40", "ScaleOut", "uManycore"]);
    let breakdowns: Vec<_> = reports
        .iter()
        .map(|r| r.breakdown.as_ref().expect("traced run"))
        .collect();
    for c in Component::ALL {
        t.row(vec![
            c.name().to_string(),
            f1(breakdowns[0].component(c).mean),
            f1(breakdowns[1].component(c).mean),
            f1(breakdowns[2].component(c).mean),
        ]);
    }
    t.row(vec![
        "= end-to-end mean".to_string(),
        f1(reports[0].latency.mean),
        f1(reports[1].latency.mean),
        f1(reports[2].latency.mean),
    ]);
    print!("{}", t.render());
    println!();
    for ((name, _), r) in machines.iter().zip(&reports) {
        assert!(
            r.conservation.exact(),
            "{name}: conservation violated: {:?}",
            r.conservation
        );
        println!(
            "{name}: conservation exact over {} requests ({} cycles attributed).",
            r.conservation.checked, r.conservation.breakdown_cycles
        );
    }
    println!();
    println!("The software baselines' latency is RPC processing, memory stalls and (as");
    println!("load grows) queueing; uManycore's is the handler compute plus the storage");
    println!("tier, with scheduling, switching and RPC overheads at noise level — the");
    println!("per-component rendering of Figures 3 and 6. Downstream RPC wait appears");
    println!("as the callee's components (storage-service, compute, rpc-processing),");
    println!("never as caller queue-wait: the rows sum to the mean latency exactly.");
}
