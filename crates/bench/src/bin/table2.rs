//! Table 2: architectural parameters used in the evaluation, as encoded by
//! `um-arch::MachineConfig`, plus the derived area/power figures.

use um_arch::MachineConfig;
use um_bench::banner;
use um_stats::table::{f1, Table};

fn main() {
    banner(
        "Table 2",
        "Architectural parameters of the evaluated machines.",
    );
    let mut t = Table::with_columns(&[
        "machine",
        "cores",
        "issue",
        "ROB",
        "GHz",
        "ICN",
        "ctx switch",
        "sched",
        "area mm2",
        "power W",
    ]);
    for m in [
        MachineConfig::server_class_iso_power(),
        MachineConfig::server_class_iso_area(),
        MachineConfig::scaleout(),
        MachineConfig::umanycore(),
    ] {
        t.row(vec![
            format!("{} ({})", m.name, m.total_cores()),
            m.total_cores().to_string(),
            m.core.issue_width.to_string(),
            m.core.rob_entries.to_string(),
            format!("{:.1}", m.core.frequency.as_ghz()),
            format!("{:?}", m.icn),
            m.ctx_switch.to_string(),
            if m.hw_scheduling {
                "hardware"
            } else {
                "software"
            }
            .to_string(),
            f1(m.area_mm2()),
            f1(m.power_watts()),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("paper anchors: 10.225 / 0.396 / 0.408 W per core+caches;");
    println!("547.2 mm2 uManycore vs 176.1 mm2 ServerClass-40 (3.1x); iso-area = 128 cores");
}
