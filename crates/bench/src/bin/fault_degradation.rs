//! Graceful degradation: tail and throughput as cores fail-stop.
//!
//! Random cores fail permanently at seeded times through the run (a
//! village's last core never fails — the liveness floor masks that
//! event). Straggler-aware steering routes dispatches around degraded
//! villages, so capacity bends rather than collapses.

use um_bench::{banner, scale_from_env};
use um_stats::table::{f1, f3, Table};
use umanycore::experiments::resilience::degradation_sweep;

fn main() {
    let scale = scale_from_env();
    banner(
        "Graceful degradation under fail-stop",
        "uManycore (1024 cores), SocialNetwork mix at 8K RPS. N random cores\n\
         fail-stop at seeded times through the run; steering is enabled.",
    );
    let rows = degradation_sweep(scale);
    let mut t = Table::with_columns(&[
        "planned fail-stops",
        "cores lost",
        "masked",
        "completed",
        "p50(us)",
        "p99(us)",
        "utilization",
    ]);
    for row in &rows {
        let r = &row.report;
        t.row(vec![
            row.fail_stops.to_string(),
            r.faults.cores_failed.to_string(),
            r.faults.faults_masked.to_string(),
            r.completed.to_string(),
            f1(r.latency.p50),
            f1(r.latency.p99),
            f3(r.utilization),
        ]);
    }
    print!("{}", t.render());
    let healthy = &rows[0].report;
    let worst = rows.last().expect("nonempty sweep");
    println!(
        "losing {} cores costs {:.1}% of completions and {:.2}x the p99",
        worst.report.faults.cores_failed,
        100.0 * (1.0 - worst.report.completed as f64 / healthy.completed as f64),
        worst.report.latency.p99 / healthy.latency.p99,
    );
}
