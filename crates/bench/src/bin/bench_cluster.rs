//! Cluster-sweep throughput: simulated events/second vs rack size,
//! emitted as `BENCH_cluster.json`.
//!
//! The calendar-queue engine overhaul (BENCH_engine.json) was justified
//! by fleet-scale event backlogs; this bench closes the loop by timing
//! the real coupled simulation — N packages behind the load balancer,
//! JSQ(2) routing, the rack fabric with jitter — rather than a replayed
//! trace. The interesting curve is events/second as the rack grows from
//! 8 to 512 packages: the per-event cost should stay roughly flat,
//! which is what makes the `cluster_tail` sweeps affordable.
//!
//! Each rack size is run several times; the best wall-clock is
//! reported. Runs are deterministic, so repetitions must agree on the
//! event count and the recorded-request count, and the bench aborts if
//! they do not.
//!
//! Environment:
//!
//! - `UM_SCALE=quick`: CI smoke mode — tiny racks, shorter horizon.
//!   The committed JSON comes from the default (full) scale.
//! - `UM_BENCH_OUT`: output path (default `BENCH_cluster.json`).

use std::time::Instant;

use um_bench::benchjson::{obj, rounded, validate_bench, Json};
use umanycore::experiments::cluster::{rack_config, ClusterScale};
use umanycore::{ClusterSim, RoutingPolicy};

struct Point {
    nodes: usize,
    events: u64,
    recorded: u64,
    eps: f64,
    p99_us: f64,
}

fn measure(nodes: usize, rps_per_node: f64, horizon_us: f64, reps: usize) -> Point {
    let scale = ClusterScale {
        nodes,
        loads: vec![rps_per_node],
        horizon_us,
        warmup_us: horizon_us / 10.0,
        seed: 42,
    };
    let mut best = f64::INFINITY;
    let mut last: Option<(u64, u64, f64)> = None;
    for _ in 0..reps {
        let cfg = rack_config(&scale, rps_per_node, RoutingPolicy::JsqD { d: 2 });
        let start = Instant::now();
        let report = ClusterSim::new(cfg).run();
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        let fingerprint = (report.events, report.recorded, report.latency.p99);
        if let Some(prev) = last {
            assert_eq!(
                prev, fingerprint,
                "repetitions of one rack diverged at {nodes} nodes"
            );
        }
        last = Some(fingerprint);
    }
    let (events, recorded, p99_us) = last.expect("at least one repetition");
    let eps = events as f64 / best;
    eprintln!(
        "  nodes={nodes:>4}: {:>6.2} Mev/s ({events} events, {recorded} requests, p99 {:.0} us)",
        eps / 1e6,
        p99_us
    );
    Point {
        nodes,
        events,
        recorded,
        eps,
        p99_us,
    }
}

fn main() {
    let quick = std::env::var("UM_SCALE").is_ok_and(|s| s == "quick");
    // Full scale sweeps the rack sizes the tentpole targets (64–512
    // packages); smoke mode keeps CI to a couple of seconds.
    let (fleets, horizon_us, rps, reps) = if quick {
        (&[4usize, 16][..], 2_000.0, 60_000.0, 1)
    } else {
        (&[8usize, 32, 64, 128, 256, 512][..], 5_000.0, 60_000.0, 2)
    };
    let mode = if quick { "quick" } else { "full" };
    eprintln!("bench_cluster: JSQ(2) rack sweep, {mode} scale, horizon {horizon_us} us");

    let points: Vec<Point> = fleets
        .iter()
        .map(|&nodes| measure(nodes, rps, horizon_us, reps))
        .collect();

    // The headline is events/second at the largest rack vs the
    // smallest: a flat curve means per-event cost does not grow with
    // the pending-event population, which is the engine-overhaul claim
    // applied to the real coupled simulation.
    let first = points.first().expect("points are non-empty");
    let headline = points.last().expect("points are non-empty");
    let retained = headline.eps / first.eps;

    let doc = obj(vec![
        ("bench", Json::Str("cluster".into())),
        ("workload", Json::Str("social-mix".into())),
        ("scale", Json::Str(mode.into())),
        ("horizon_us", Json::Num(horizon_us)),
        ("rps_per_node", Json::Num(rps)),
        ("routing", Json::Str("jsq(2)".into())),
        (
            "headline",
            obj(vec![
                ("nodes", Json::Num(headline.nodes as f64)),
                ("events_per_sec", Json::Num(headline.eps.round())),
                ("throughput_retained", Json::Num(rounded(retained, 2))),
            ]),
        ),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        obj(vec![
                            ("nodes", Json::Num(p.nodes as f64)),
                            ("events", Json::Num(p.events as f64)),
                            ("requests", Json::Num(p.recorded as f64)),
                            ("events_per_sec", Json::Num(p.eps.round())),
                            ("p99_us", Json::Num(rounded(p.p99_us, 1))),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    validate_bench(&doc).expect("bench_cluster emits the BENCH_*.json envelope");
    let json = doc.render();

    let out = std::env::var("UM_BENCH_OUT").unwrap_or_else(|_| "BENCH_cluster.json".to_string());
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    print!("{json}");
    eprintln!(
        "bench_cluster: wrote {out} ({:.0}% of small-rack throughput at {} nodes)",
        retained * 100.0,
        headline.nodes
    );
}
