//! Autoscaling under bursts: the snapshot memory pool in the request path.
//!
//! §3.5/§4.1: when a burst overwhelms a service's village, the system
//! boots another instance elsewhere. With a snapshot in the cluster pool
//! the boot takes ~2 ms; without one it takes >300 ms — during which the
//! burst's requests pile up. This bench drives uManycore with bursty
//! (MMPP) arrivals and compares pool-backed and cold-boot autoscaling
//! against no autoscaling at all.

use um_arch::MachineConfig;
use um_bench::{banner, scale_from_env};
use um_stats::table::{f1, Table};
use umanycore::experiments::parallel;
use umanycore::system::ArrivalProcess;
use umanycore::{SimConfig, SystemSim, Workload};

fn main() {
    let scale = scale_from_env();
    banner(
        "Autoscaling with snapshot pools",
        "Bursty (MMPP) SocialNetwork traffic on uManycore; small 8-entry RQs so\n\
         bursts overflow a single instance.",
    );
    // The MMPP dwells ~220 ms in the low state and ~30 ms in bursts, so
    // a horizon of one scale unit (200 ms) samples roughly one burst
    // cycle and the whole comparison hinges on whether that cycle
    // happens to burst. Run 5x longer so every configuration sees
    // several bursts regardless of the seed.
    let run = |autoscale: bool, pool: bool| {
        let mut machine = MachineConfig::umanycore();
        machine.memory_pool = pool;
        machine.rq_capacity = 8;
        // um-tidy: allow(scenario-inline-config) -- not yet converted to the scenario layer; tracked in results/tidy_debt.txt
        SystemSim::new(SimConfig {
            machine,
            workload: Workload::social_mix(),
            rps_per_server: 160_000.0,
            servers: scale.servers,
            horizon_us: scale.horizon_us * 5.0,
            warmup_us: scale.warmup_us,
            seed: scale.seed,
            arrivals: ArrivalProcess::Bursty,
            autoscale,
            ..SimConfig::default()
        })
        .run()
    };
    let mut t = Table::with_columns(&[
        "configuration",
        "avg (us)",
        "p99 (us)",
        "boots",
        "RQ overflows",
    ]);
    let configs = [
        ("no autoscaling", false, true),
        ("autoscale, cold boots", true, false),
        ("autoscale + snapshot pool", true, true),
    ];
    let reports = parallel::map(configs.to_vec(), |_, (_, autoscale, pool)| {
        run(autoscale, pool)
    });
    for ((name, _, _), r) in configs.iter().zip(reports) {
        t.row(vec![
            name.to_string(),
            f1(r.latency.mean),
            f1(r.latency.p99),
            r.instance_boots.to_string(),
            r.rq_overflows.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!();
    println!("paper: snapshots cut instance boot from >300 ms to <10 ms (§3.5), which");
    println!("is what lets the system absorb the Figure 2 bursts without tail spikes.");
}
