//! Autoscaling under bursts: the snapshot memory pool in the request path.
//!
//! §3.5/§4.1: when a burst overwhelms a service's village, the system
//! boots another instance elsewhere. With a snapshot in the cluster pool
//! the boot takes ~2 ms; without one it takes >300 ms — during which the
//! burst's requests pile up. This bench drives uManycore with bursty
//! (MMPP) arrivals and compares pool-backed and cold-boot autoscaling
//! against no autoscaling at all.
//!
//! Thin wrapper over the `autoscale` registry scenario; the conformance
//! tests pin its expansion against the legacy inline config list and CI
//! byte-diffs the output against `results/autoscale.txt`.

use um_bench::{sanitizer_check, scenario};

fn main() {
    sanitizer_check();
    let mut s = scenario::registry::autoscale();
    scenario::apply_env(&mut s);
    let out = scenario::run(&s).expect("autoscale scenario is valid");
    print!("{}", out.text);
}
