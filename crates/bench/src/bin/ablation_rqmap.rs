//! Ablation: the RQ_Map partitioned Request Queue (paper §4.3's "more
//! advanced design", described but not evaluated there).
//!
//! When two services co-locate in a village, a shared RQ lets one
//! service's burst occupy every entry and starve the other (capacity
//! interference). The RQ_Map partitions entries per service. This bench
//! drives both designs through an adversarial burst pattern.

use um_bench::banner;
use um_sched::{PartitionedRq, RequestQueue};
use um_stats::table::{f1, Table};
use um_stats::Samples;

/// Outcome of one co-location run for the victim (trickle) service.
struct VictimStats {
    admitted_frac: f64,
    p99_delay: f64,
}

/// Service A floods in bursts of 64 with a slow server (one A completion
/// every 4 ticks); service B trickles one request per 4 ticks with a fast
/// dedicated core. Under a shared RQ, A's backlog occupies every entry
/// and B's requests bounce off a full queue (the NIC would buffer or
/// reject them, §4.3).
fn run_shared() -> VictimStats {
    let mut rq: RequestQueue<(u8, u64)> = RequestQueue::new(64);
    let mut b_delays = Samples::new();
    let mut b_offered = 0u64;
    let mut b_admitted = 0u64;
    let mut backlog_a: u64 = 0;
    let mut a_running = Vec::new();
    for tick in 0..10_000u64 {
        if tick % 64 == 0 {
            backlog_a += 64; // burst arrives at the NIC
        }
        while backlog_a > 0 && rq.enqueue(0, (b'a', tick)).is_ok() {
            backlog_a -= 1;
        }
        if tick % 4 == 0 {
            b_offered += 1;
            if rq.enqueue(1, (b'b', tick)).is_ok() {
                b_admitted += 1;
            }
        }
        // A's cores complete one request every 4 ticks.
        if tick % 4 == 0 {
            if let Some(slot) = a_running.pop() {
                rq.complete(slot).expect("completes");
            }
            if let Some((slot, _)) = rq.dequeue(0) {
                a_running.push(slot);
            }
        }
        // B's dedicated core serves immediately.
        if let Some((slot, &(_, t0))) = rq.dequeue(1) {
            b_delays.record((tick - t0) as f64);
            rq.complete(slot).expect("completes");
        }
    }
    VictimStats {
        admitted_frac: b_admitted as f64 / b_offered as f64,
        p99_delay: b_delays.p99(),
    }
}

fn run_partitioned() -> VictimStats {
    let mut rq: PartitionedRq<(u8, u64)> = PartitionedRq::new(64);
    rq.set_share(0, 48);
    rq.set_share(1, 16);
    let mut b_delays = Samples::new();
    let mut b_offered = 0u64;
    let mut b_admitted = 0u64;
    let mut backlog_a: u64 = 0;
    let mut a_running = Vec::new();
    for tick in 0..10_000u64 {
        if tick % 64 == 0 {
            backlog_a += 64;
        }
        while backlog_a > 0 && rq.enqueue(0, (b'a', tick)).is_ok() {
            backlog_a -= 1;
        }
        if tick % 4 == 0 {
            b_offered += 1;
            if rq.enqueue(1, (b'b', tick)).is_ok() {
                b_admitted += 1;
            }
        }
        if tick % 4 == 0 {
            if let Some(slot) = a_running.pop() {
                rq.complete(0, slot).expect("completes");
            }
            if let Some((slot, _)) = rq.dequeue(0) {
                a_running.push(slot);
            }
        }
        if let Some((slot, &(_, t0))) = rq.dequeue(1) {
            b_delays.record((tick - t0) as f64);
            rq.complete(1, slot).expect("completes");
        }
    }
    VictimStats {
        admitted_frac: b_admitted as f64 / b_offered as f64,
        p99_delay: b_delays.p99(),
    }
}

fn main() {
    banner(
        "Ablation: RQ_Map partitioning",
        "A bursty co-located service vs a latency-sensitive trickle service\n\
         sharing one village RQ: admission and delay of the victim.",
    );
    let shared = run_shared();
    let partitioned = run_partitioned();
    let mut t = Table::with_columns(&["RQ design", "victim admitted", "victim p99 delay (ticks)"]);
    t.row(vec![
        "shared 64-entry RQ".into(),
        format!("{:.1}%", shared.admitted_frac * 100.0),
        f1(shared.p99_delay),
    ]);
    t.row(vec![
        "RQ_Map 48/16 partition".into(),
        format!("{:.1}%", partitioned.admitted_frac * 100.0),
        f1(partitioned.p99_delay),
    ]);
    print!("{}", t.render());
    println!();
    println!("partitioning guarantees the victim's slots regardless of the burst");
    println!("(the paper describes this design in §4.3 but does not evaluate it)");
}
