//! Event-engine throughput: the calendar-queue `EventQueue` vs the
//! `BinaryHeap` reference on the fig7 workload, emitted as
//! `BENCH_engine.json` so the repo carries a perf trajectory for the
//! engine overhaul (ROADMAP open item 1).
//!
//! Two axes (see `um_bench::engine` for the trace construction):
//!
//! - **load**: the fig7 RPS axis at the committed single-server scale —
//!   the calendar queue must not regress the runs the repo already does.
//! - **fleet**: the 50K-RPS fig7 point fanned out to cluster-sweep fleet
//!   sizes. The pending-event backlog grows with the fleet, the heap's
//!   `O(log n)` cost with it; the calendar queue stays flat. This is the
//!   scale the overhaul exists for, and where the headline speedup is
//!   measured.
//!
//! Each point is replayed several times per engine; the best wall-clock
//! per engine is reported as events/second. Delivery-stream checksums
//! must agree between engines, so a run that diverged aborts instead of
//! reporting a meaningless speedup.
//!
//! Environment:
//!
//! - `UM_SCALE=quick`: CI smoke mode — shorter horizon, smaller fleet,
//!   fewer repetitions; minutes become seconds. The committed JSON comes
//!   from the default (full) scale.
//! - `UM_BENCH_OUT`: output path (default `BENCH_engine.json`).

use std::time::Instant;

use um_bench::benchjson::{obj, rounded, validate_bench, Json};
use um_bench::engine::{replay, Engine, Replay, Workload, CHAIN_DEPTH, FIG7_LOADS};
use um_sim::baseline::HeapQueue;
use um_sim::EventQueue;

struct Point {
    axis: &'static str,
    rps: f64,
    servers: usize,
    events: u64,
    calendar_eps: f64,
    heap_eps: f64,
}

fn best_eps<Q: Engine, F: FnMut() -> Q>(
    mut fresh: F,
    workload: &Workload,
    reps: usize,
) -> (f64, Replay) {
    let mut best = f64::INFINITY;
    let mut replayed = None;
    for _ in 0..reps {
        let mut q = fresh();
        let start = Instant::now();
        let r = replay(&mut q, workload);
        let secs = start.elapsed().as_secs_f64();
        best = best.min(secs);
        if let Some(prev) = replayed {
            assert_eq!(prev, r, "replays of one workload must be identical");
        }
        replayed = Some(r);
    }
    let replayed = replayed.expect("at least one repetition");
    (replayed.events as f64 / best, replayed)
}

fn measure(axis: &'static str, rps: f64, servers: usize, horizon_us: f64, reps: usize) -> Point {
    let workload = Workload::fig7(rps, horizon_us, servers, 42);
    let pool = workload.arrivals.len() + 1;
    let (calendar_eps, cal) = best_eps(|| EventQueue::with_capacity(pool), &workload, reps);
    let (heap_eps, heap) = best_eps(HeapQueue::new, &workload, reps);
    assert_eq!(
        cal, heap,
        "engines diverged at {rps} RPS x{servers}: the speedup would be meaningless"
    );
    eprintln!(
        "  {axis:>5} rps={rps:>6.0} servers={servers:>3}: calendar {:>5.1} Mev/s, \
         heap {:>5.1} Mev/s ({:.1}x)",
        calendar_eps / 1e6,
        heap_eps / 1e6,
        calendar_eps / heap_eps
    );
    Point {
        axis,
        rps,
        servers,
        events: cal.events,
        calendar_eps,
        heap_eps,
    }
}

fn main() {
    let quick = std::env::var("UM_SCALE").is_ok_and(|s| s == "quick");
    // Full scale matches the committed Figure 7 horizon (200 ms of
    // arrivals); smoke mode keeps CI under a few seconds.
    let (horizon_us, fleets, reps) = if quick {
        (10_000.0, &[1usize, 32][..], 2)
    } else {
        (200_000.0, &[1usize, 32, 128, 512][..], 3)
    };
    let mode = if quick { "quick" } else { "full" };
    eprintln!("bench_engine: fig7 workload, {mode} scale, horizon {horizon_us} us");

    let mut points = Vec::new();
    for rps in FIG7_LOADS {
        points.push(measure("load", rps, 1, horizon_us, reps));
    }
    for &servers in fleets {
        points.push(measure("fleet", 50_000.0, servers, horizon_us, reps));
    }

    // The headline is the largest fleet point: the cluster-sweep backlog
    // the overhaul targets. The acceptance bar for the rewrite is 5x.
    let headline = points.last().expect("points are non-empty");
    let speedup = headline.calendar_eps / headline.heap_eps;

    let doc = obj(vec![
        ("bench", Json::Str("engine".into())),
        ("workload", Json::Str("fig7".into())),
        ("scale", Json::Str(mode.into())),
        ("horizon_us", Json::Num(horizon_us)),
        ("chain_depth", Json::Num(CHAIN_DEPTH as f64)),
        (
            "headline",
            obj(vec![
                ("axis", Json::Str("fleet".into())),
                ("servers", Json::Num(headline.servers as f64)),
                ("speedup", Json::Num(rounded(speedup, 2))),
            ]),
        ),
        (
            "points",
            Json::Arr(
                points
                    .iter()
                    .map(|p| {
                        obj(vec![
                            ("axis", Json::Str(p.axis.into())),
                            ("rps", Json::Num(p.rps)),
                            ("servers", Json::Num(p.servers as f64)),
                            ("events", Json::Num(p.events as f64)),
                            ("calendar_events_per_sec", Json::Num(p.calendar_eps.round())),
                            ("heap_events_per_sec", Json::Num(p.heap_eps.round())),
                            (
                                "speedup",
                                Json::Num(rounded(p.calendar_eps / p.heap_eps, 2)),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ]);
    validate_bench(&doc).expect("bench_engine emits the BENCH_*.json envelope");
    let json = doc.render();

    let out = std::env::var("UM_BENCH_OUT").unwrap_or_else(|_| "BENCH_engine.json".to_string());
    std::fs::write(&out, &json).unwrap_or_else(|e| panic!("writing {out}: {e}"));
    print!("{json}");
    eprintln!(
        "bench_engine: wrote {out} (headline {speedup:.1}x at {} servers)",
        headline.servers
    );
}
