//! Figure 18: maximum throughput without violating QoS (request latency
//! must stay within 5x the contention-free average).
//!
//! Paper anchors: uManycore sustains 13.9-17.1x the ServerClass
//! throughput (15.5x average) and 4.3x the ScaleOut throughput; absolute
//! uManycore throughputs 150-254 KRPS.

use um_bench::{banner, scale_from_env};
use um_stats::summary::geomean;
use um_stats::table::{f1, Table};
use umanycore::experiments::evaluation::fig18_grid;

fn main() {
    let scale = scale_from_env();
    banner(
        "Figure 18",
        "Max QoS-compliant throughput, normalized to ServerClass; absolute\n\
         uManycore values in KRPS as annotations.",
    );
    let mut t = Table::with_columns(&[
        "app",
        "uManycore(KRPS)",
        "ServerClass",
        "ScaleOut",
        "uManycore",
    ]);
    let mut vs_sc = Vec::new();
    let mut vs_so = Vec::new();
    for row in fig18_grid(scale, 512_000.0) {
        let sc = row.server_class.max_rps;
        let so = row.scaleout.max_rps;
        let um = row.umanycore.max_rps;
        t.row(vec![
            row.app.to_string(),
            f1(um / 1000.0),
            "1.0".to_string(),
            f1(so / sc),
            f1(um / sc),
        ]);
        vs_sc.push(um / sc);
        vs_so.push(um / so);
    }
    print!("{}", t.render());
    println!();
    println!(
        "uManycore throughput: {:.1}x ServerClass, {:.1}x ScaleOut",
        geomean(&vs_sc),
        geomean(&vs_so)
    );
    println!("paper: 15.5x and 4.3x; absolute 150-254 KRPS");
}
