//! Figure 20: tail latency with synthetic exponential / lognormal /
//! bimodal service-time distributions, normalized to ServerClass.
//!
//! Paper anchors: across loads and distributions uManycore reduces the
//! tail 9.1x over ServerClass and 7.2x over ScaleOut, growing with load.

use um_bench::{banner, scale_from_env};
use um_stats::summary::geomean;
use um_stats::table::{f1, f2, Table};
use umanycore::experiments::evaluation::fig20_rows;

fn main() {
    let scale = scale_from_env();
    banner(
        "Figure 20",
        "Synthetic-workload tail latency normalized to ServerClass; absolute\n\
         ServerClass tails in us as annotations.",
    );
    let rows = fig20_rows(scale, &[5_000.0, 10_000.0, 15_000.0], 100.0);
    let mut t = Table::with_columns(&[
        "workload",
        "ServerClass(us)",
        "ServerClass",
        "ScaleOut",
        "uManycore",
    ]);
    let mut vs_sc = Vec::new();
    let mut vs_so = Vec::new();
    for r in &rows {
        t.row(vec![
            format!("{}{:.0}K", r.dist, r.rps / 1000.0),
            f1(r.server_class_tail_us),
            "1.00".to_string(),
            f2(r.scaleout_norm),
            f2(r.umanycore_norm),
        ]);
        vs_sc.push(1.0 / r.umanycore_norm);
        vs_so.push(r.scaleout_norm / r.umanycore_norm);
    }
    print!("{}", t.render());
    println!();
    println!(
        "uManycore tail reduction: {:.1}x vs ServerClass, {:.1}x vs ScaleOut",
        geomean(&vs_sc),
        geomean(&vs_so)
    );
    println!("paper: 9.1x and 7.2x on average");
}
