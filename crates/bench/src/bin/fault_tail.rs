//! Tail latency vs fault rate: the cost of losing messages, with and
//! without timeout/retry mitigation.
//!
//! An unmitigated operation that loses a request or response leg stalls
//! until the default RPC timeout abandons it, so even sub-percent loss
//! rates poison the tail. Timeout + exponential-backoff retry (with a
//! retry budget) converts most losses into one extra round trip.

use um_bench::{banner, scale_from_env};
use um_stats::table::{f1, f2, Table};
use umanycore::experiments::resilience::{fault_tail_sweep, RESILIENCE_RPS};

fn main() {
    let scale = scale_from_env();
    banner(
        "Tail vs fault rate",
        "uManycore, SocialNetwork mix at 8K RPS, per-leg message-drop probability\n\
         swept. `none` = no mitigation (lost operations abandoned at the default\n\
         RPC timeout, their requests excluded from latency); `retry` = timeout +\n\
         exponential backoff with a 10% retry budget.",
    );
    let rows = fault_tail_sweep(scale);
    let mut t = Table::with_columns(&[
        "drop_p",
        "none p50(us)",
        "none p99(us)",
        "none gave-up",
        "retry p50(us)",
        "retry p99(us)",
        "retry gave-up",
        "retries",
    ]);
    for row in &rows {
        t.row(vec![
            format!("{:.3}", row.drop_p),
            f1(row.baseline.latency.p50),
            f1(row.baseline.latency.p99),
            row.baseline.faults.gave_up_requests.to_string(),
            f1(row.mitigated.latency.p50),
            f1(row.mitigated.latency.p99),
            row.mitigated.faults.gave_up_requests.to_string(),
            row.mitigated.faults.retries.to_string(),
        ]);
    }
    print!("{}", t.render());
    let worst = rows.last().expect("nonempty sweep");
    println!(
        "at drop_p={:.3}: retry keeps {} of {} lost operations alive \
         (baseline abandons {})",
        worst.drop_p,
        worst.mitigated.faults.retries,
        worst.mitigated.faults.drops,
        worst.baseline.faults.gave_up_requests,
    );
    println!(
        "offered load {RESILIENCE_RPS:.0} RPS/server; all runs conserve latency \
         to the cycle (checked: {})",
        f2(worst.baseline.conservation.checked as f64),
    );
}
