//! Tail latency vs fault rate: the cost of losing messages, with and
//! without timeout/retry mitigation.
//!
//! An unmitigated operation that loses a request or response leg stalls
//! until the default RPC timeout abandons it, so even sub-percent loss
//! rates poison the tail. Timeout + exponential-backoff retry (with a
//! retry budget) converts most losses into one extra round trip.
//!
//! Thin wrapper over the `fault_tail` registry scenario; the conformance
//! tests pin its expansion and output against the legacy inline driver.

use um_bench::{sanitizer_check, scenario};

fn main() {
    sanitizer_check();
    let mut s = scenario::registry::fault_tail();
    scenario::apply_env(&mut s);
    let out = scenario::run(&s).expect("fault_tail scenario is valid");
    print!("{}", out.text);
}
