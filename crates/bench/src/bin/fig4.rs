//! Figure 4: CDF of CPU utilization per request.
//!
//! Paper anchors: median ~14%; 99% of requests below 60%.

use um_bench::{banner, scale_from_env};
use um_stats::table::{f2, Table};
use umanycore::experiments::motivation;

fn main() {
    let scale = scale_from_env();
    banner("Figure 4", "CDF of CPU utilization per dynamic request.");
    let cdf = motivation::fig4_cdf(scale.seed, 100_000);
    let mut t = Table::with_columns(&["utilization", "CDF"]);
    for i in 0..=8 {
        let x = 0.7 * i as f64 / 8.0;
        t.row(vec![f2(x), f2(cdf.eval(x))]);
    }
    print!("{}", t.render());
    println!();
    println!(
        "median={:.3} p99={:.3} (paper: ~0.14 / <0.60)",
        cdf.inverse(0.5),
        cdf.inverse(0.99)
    );
}
