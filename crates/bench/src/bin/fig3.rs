//! Figure 3: average and tail response time vs the number of queues in a
//! 1024-core manycore, with and without work stealing, at 50K RPS.
//!
//! Paper anchors: tail is ~4.1x worse with 1024 queues and ~4.5x worse
//! with 1 queue than with 32 queues; work stealing rescues the many-queue
//! end but adds overhead at the few-queue end; averages move much less.

use um_bench::{banner, scale_from_env};
use um_stats::table::{f1, Table};
use umanycore::experiments::motivation;

fn main() {
    let scale = scale_from_env();
    banner(
        "Figure 3",
        "Response time vs queue count, 1024-core ScaleOut, Poisson 50K RPS.",
    );
    let rows = motivation::fig3_rows(scale, 50_000.0);
    let mut t = Table::with_columns(&[
        "queues",
        "avg (us)",
        "tail (us)",
        "avg+steal (us)",
        "tail+steal (us)",
    ]);
    for r in &rows {
        t.row(vec![
            r.queues.to_string(),
            f1(r.avg_us),
            f1(r.tail_us),
            f1(r.avg_steal_us),
            f1(r.tail_steal_us),
        ]);
    }
    print!("{}", t.render());
    println!();
    let best = rows
        .iter()
        .min_by(|a, b| a.tail_us.total_cmp(&b.tail_us))
        .expect("rows");
    println!(
        "best tail at {} queues; 1024-queue tail = {:.1}x best, 1-queue tail = {:.1}x best",
        best.queues,
        rows[0].tail_us / best.tail_us,
        rows.last().expect("rows").tail_us / best.tail_us
    );
    println!("paper: best at 32 queues; 4.1x at 1024 queues, 4.5x at 1 queue");
}
