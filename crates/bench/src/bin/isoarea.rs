//! Section 6.8: comparison to an iso-area (128-core) ServerClass CPU.
//!
//! Paper anchors: the 128-core ServerClass matches or slightly beats
//! ScaleOut's tail but remains on average 7.3x worse than uManycore, while
//! burning 3.2x uManycore's power.

use um_bench::{banner, scale_from_env};
use um_stats::summary::geomean;
use um_stats::table::{f1, Table};
use umanycore::experiments::evaluation::{area_power_rows, iso_area_rows, LOADS};

fn main() {
    let scale = scale_from_env();
    banner(
        "Section 6.8",
        "Iso-area comparison: 128-core ServerClass vs ScaleOut vs uManycore.",
    );
    let rows = iso_area_rows(scale, &LOADS);
    let mut t = Table::with_columns(&[
        "load",
        "ServerClass-128 tail (us)",
        "ScaleOut tail (us)",
        "uManycore tail (us)",
    ]);
    let mut ratios = Vec::new();
    for r in &rows {
        t.row(vec![
            format!("{:.0}K", r.rps / 1000.0),
            f1(r.server_class_128_tail_us),
            f1(r.scaleout_tail_us),
            f1(r.umanycore_tail_us),
        ]);
        ratios.push(r.server_class_128_tail_us / r.umanycore_tail_us);
    }
    print!("{}", t.render());
    println!();
    println!(
        "ServerClass-128 tail is {:.1}x uManycore's (paper: 7.3x on average)",
        geomean(&ratios)
    );
    println!();
    let mut t2 = Table::with_columns(&["machine", "cores", "area mm2", "power W"]);
    for r in area_power_rows() {
        t2.row(vec![
            r.name.to_string(),
            r.cores.to_string(),
            f1(r.area_mm2),
            f1(r.power_w),
        ]);
    }
    print!("{}", t2.render());
    println!();
    println!("paper: ServerClass-128 burns 3.2x uManycore's power at equal area");
}
