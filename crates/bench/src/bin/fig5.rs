//! Figure 5: CDF of the number of RPC invocations per request.
//!
//! Paper anchors: median ~4.2; ~5% of requests invoke 16 or more RPCs.

use um_bench::{banner, scale_from_env};
use um_stats::table::{f2, Table};
use umanycore::experiments::motivation;

fn main() {
    let scale = scale_from_env();
    banner("Figure 5", "CDF of RPC invocations per dynamic request.");
    let cdf = motivation::fig5_cdf(scale.seed, 100_000);
    let mut t = Table::with_columns(&["callees per caller", "CDF"]);
    for x in [0.0, 2.0, 4.0, 8.0, 12.0, 16.0, 24.0, 32.0, 40.0] {
        t.row(vec![format!("{x:.0}"), f2(cdf.eval(x))]);
    }
    print!("{}", t.render());
    println!();
    println!(
        "median={:.1}; fraction >=16 RPCs: {:.3} (paper: ~4.2 / ~0.05)",
        cdf.inverse(0.5),
        1.0 - cdf.eval(15.99)
    );
}
