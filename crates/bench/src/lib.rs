//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary regenerates one of the paper's tables or figures:
//!
//! ```text
//! cargo run --release -p um-bench --bin fig14
//! ```
//!
//! Binaries honour three environment variables:
//!
//! - `UM_SCALE`: `quick` (seconds per figure, noisier) or `full`
//!   (default; the scale used for EXPERIMENTS.md).
//! - `UM_SEED`: master seed (default 42).
//! - `UM_THREADS`: sweep worker-pool size (default: all cores; `1`
//!   forces serial execution). Results are bit-identical at any value.
//! - `UM_SANITIZER`: set to `1` to require the runtime invariant
//!   checkers. The checkers only exist when the binary was built with
//!   `--features sim-sanitizer`; a binary built without it refuses to
//!   run rather than silently skipping the checks.

use umanycore::experiments::cluster::ClusterScale;
use umanycore::experiments::Scale;

pub mod benchjson;
pub mod engine;
pub mod scenario;

/// Reads the run scale from `UM_SCALE`/`UM_SEED`.
pub fn scale_from_env() -> Scale {
    scale_from_values(
        std::env::var("UM_SCALE").ok().as_deref(),
        std::env::var("UM_SEED").ok().as_deref(),
    )
}

/// [`scale_from_env`] with the environment values passed explicitly, so
/// tests can exercise the parsing without depending on (or mutating)
/// process-global state.
///
/// # Panics
///
/// Panics when `seed` is set but not an integer.
pub fn scale_from_values(scale: Option<&str>, seed: Option<&str>) -> Scale {
    let mut out = match scale {
        Some("quick") => Scale::quick(),
        _ => Scale::default(),
    };
    if let Some(seed) = seed {
        out.seed = seed.parse().expect("UM_SEED must be an integer");
    }
    out
}

/// Reads the rack scale from `UM_SCALE`/`UM_SEED` (the cluster
/// binaries' analogue of [`scale_from_env`]).
pub fn cluster_scale_from_env() -> ClusterScale {
    cluster_scale_from_values(
        std::env::var("UM_SCALE").ok().as_deref(),
        std::env::var("UM_SEED").ok().as_deref(),
    )
}

/// [`cluster_scale_from_env`] with the environment values passed
/// explicitly, for tests.
///
/// # Panics
///
/// Panics when `seed` is set but not an integer.
pub fn cluster_scale_from_values(scale: Option<&str>, seed: Option<&str>) -> ClusterScale {
    let mut out = match scale {
        Some("quick") => ClusterScale::quick(),
        _ => ClusterScale::full(),
    };
    if let Some(seed) = seed {
        out.seed = seed.parse().expect("UM_SEED must be an integer");
    }
    out
}

/// Honours `UM_SANITIZER` without printing a figure header: announces
/// the runtime checkers on stderr when they are compiled in, and refuses
/// to run when they are requested but absent. Binaries whose stdout
/// comes from [`scenario::run`] (which renders its own header) call this
/// instead of [`banner`].
///
/// # Panics
///
/// Panics when `UM_SANITIZER` requests the runtime checkers but the
/// binary was built without the `sim-sanitizer` feature.
pub fn sanitizer_check() {
    match sanitizer_status(
        std::env::var("UM_SANITIZER").ok().as_deref(),
        cfg!(feature = "sim-sanitizer"),
    ) {
        Ok(true) => eprintln!("um-bench: sim-sanitizer active (runtime invariant checkers on)"),
        Ok(false) => {}
        Err(msg) => panic!("{msg}"),
    }
}

/// The standard figure header as a string (what [`banner`] prints).
pub fn header_text(figure: &str, caption: &str) -> String {
    format!("== {figure} ==\n{caption}\n\n")
}

/// Prints the standard figure header, after honouring `UM_SANITIZER`.
///
/// # Panics
///
/// Panics when `UM_SANITIZER` requests the runtime checkers but the
/// binary was built without the `sim-sanitizer` feature.
pub fn banner(figure: &str, caption: &str) {
    sanitizer_check();
    print!("{}", header_text(figure, caption));
}

/// Resolves the `UM_SANITIZER` request against the compiled feature set:
/// `Ok(true)` when the checkers are compiled in, `Ok(false)` when not
/// requested, `Err` when requested but unavailable.
///
/// # Errors
///
/// Returns the refusal message when `var` requests the checkers but the
/// binary was compiled without them.
pub fn sanitizer_status(var: Option<&str>, compiled: bool) -> Result<bool, String> {
    let requested = var.is_some_and(|v| !v.is_empty() && v != "0");
    if requested && !compiled {
        return Err(
            "UM_SANITIZER is set but this binary was built without the `sim-sanitizer` \
             feature; rebuild with `cargo run --release --features sim-sanitizer -p um-bench ...`"
                .to_string(),
        );
    }
    Ok(compiled)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_full() {
        let s = scale_from_values(None, None);
        assert_eq!(s, Scale::default());
        assert!(s.horizon_us >= Scale::quick().horizon_us);
    }

    #[test]
    fn quick_scale_selected_by_value() {
        assert_eq!(scale_from_values(Some("quick"), None), Scale::quick());
        // Unknown values fall back to the full scale.
        assert_eq!(scale_from_values(Some("huge"), None), Scale::default());
    }

    #[test]
    fn seed_override_applies() {
        let s = scale_from_values(None, Some("7"));
        assert_eq!(s.seed, 7);
        assert_eq!(
            Scale { seed: 42, ..s },
            Scale::default(),
            "seed is the only field UM_SEED changes"
        );
    }

    #[test]
    #[should_panic(expected = "UM_SEED must be an integer")]
    fn non_integer_seed_rejected() {
        scale_from_values(None, Some("forty-two"));
    }

    #[test]
    fn cluster_scale_parsing_mirrors_scale_parsing() {
        assert_eq!(cluster_scale_from_values(None, None), ClusterScale::full());
        assert_eq!(
            cluster_scale_from_values(Some("quick"), None),
            ClusterScale::quick()
        );
        let s = cluster_scale_from_values(Some("quick"), Some("9"));
        assert_eq!(s.seed, 9);
        assert_eq!(ClusterScale { seed: 42, ..s }, ClusterScale::quick());
    }

    #[test]
    fn sanitizer_request_without_feature_refused() {
        assert!(sanitizer_status(Some("1"), false).is_err());
        assert!(sanitizer_status(Some("yes"), false).is_err());
    }

    #[test]
    fn sanitizer_not_requested_reports_compile_state() {
        assert_eq!(sanitizer_status(None, false), Ok(false));
        assert_eq!(sanitizer_status(Some("0"), false), Ok(false));
        assert_eq!(sanitizer_status(Some(""), false), Ok(false));
        assert_eq!(sanitizer_status(None, true), Ok(true));
        assert_eq!(sanitizer_status(Some("1"), true), Ok(true));
    }
}
