//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary regenerates one of the paper's tables or figures:
//!
//! ```text
//! cargo run --release -p um-bench --bin fig14
//! ```
//!
//! Binaries honour three environment variables:
//!
//! - `UM_SCALE`: `quick` (seconds per figure, noisier) or `full`
//!   (default; the scale used for EXPERIMENTS.md).
//! - `UM_SEED`: master seed (default 42).
//! - `UM_THREADS`: sweep worker-pool size (default: all cores; `1`
//!   forces serial execution). Results are bit-identical at any value.

use umanycore::experiments::Scale;

/// Reads the run scale from `UM_SCALE`/`UM_SEED`.
pub fn scale_from_env() -> Scale {
    scale_from_values(
        std::env::var("UM_SCALE").ok().as_deref(),
        std::env::var("UM_SEED").ok().as_deref(),
    )
}

/// [`scale_from_env`] with the environment values passed explicitly, so
/// tests can exercise the parsing without depending on (or mutating)
/// process-global state.
///
/// # Panics
///
/// Panics when `seed` is set but not an integer.
pub fn scale_from_values(scale: Option<&str>, seed: Option<&str>) -> Scale {
    let mut out = match scale {
        Some("quick") => Scale::quick(),
        _ => Scale::default(),
    };
    if let Some(seed) = seed {
        out.seed = seed.parse().expect("UM_SEED must be an integer");
    }
    out
}

/// Prints the standard figure header.
pub fn banner(figure: &str, caption: &str) {
    println!("== {figure} ==");
    println!("{caption}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_full() {
        let s = scale_from_values(None, None);
        assert_eq!(s, Scale::default());
        assert!(s.horizon_us >= Scale::quick().horizon_us);
    }

    #[test]
    fn quick_scale_selected_by_value() {
        assert_eq!(scale_from_values(Some("quick"), None), Scale::quick());
        // Unknown values fall back to the full scale.
        assert_eq!(scale_from_values(Some("huge"), None), Scale::default());
    }

    #[test]
    fn seed_override_applies() {
        let s = scale_from_values(None, Some("7"));
        assert_eq!(s.seed, 7);
        assert_eq!(
            Scale { seed: 42, ..s },
            Scale::default(),
            "seed is the only field UM_SEED changes"
        );
    }

    #[test]
    #[should_panic(expected = "UM_SEED must be an integer")]
    fn non_integer_seed_rejected() {
        scale_from_values(None, Some("forty-two"));
    }
}
