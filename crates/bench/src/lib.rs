//! Shared plumbing for the figure/table regeneration binaries.
//!
//! Every binary regenerates one of the paper's tables or figures:
//!
//! ```text
//! cargo run --release -p um-bench --bin fig14
//! ```
//!
//! Binaries honour two environment variables:
//!
//! - `UM_SCALE`: `quick` (seconds per figure, noisier) or `full`
//!   (default; the scale used for EXPERIMENTS.md).
//! - `UM_SEED`: master seed (default 42).

use umanycore::experiments::Scale;

/// Reads the run scale from `UM_SCALE`/`UM_SEED`.
pub fn scale_from_env() -> Scale {
    let mut scale = match std::env::var("UM_SCALE").as_deref() {
        Ok("quick") => Scale::quick(),
        _ => Scale::default(),
    };
    if let Ok(seed) = std::env::var("UM_SEED") {
        scale.seed = seed.parse().expect("UM_SEED must be an integer");
    }
    scale
}

/// Prints the standard figure header.
pub fn banner(figure: &str, caption: &str) {
    println!("== {figure} ==");
    println!("{caption}");
    println!();
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_is_full() {
        // The test environment does not set UM_SCALE.
        let s = scale_from_env();
        assert!(s.horizon_us >= Scale::quick().horizon_us);
    }
}
