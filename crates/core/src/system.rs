//! The full-system discrete-event simulator.
//!
//! One [`SystemSim`] models a cluster of servers, each carrying one package
//! of the configured machine (ServerClass / ScaleOut / uManycore). External
//! client requests arrive per server as a Poisson process; each request
//! executes its sampled plan — compute segments separated by blocking
//! storage RPCs and synchronous service calls — on the village/queue fabric
//! of the machine, paying that machine's scheduling, context-switch,
//! RPC-processing, coherence and interconnect costs.

use crate::params;
use crate::report::{BreakdownReport, ConservationStats, FaultStats, RunReport};
use crate::request::{Origin, Phase, ReqId, Request};
use crate::workload::Workload;
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;
use um_arch::coherence::CoherenceModel;
use um_arch::config::{CoherenceDomain, IcnKind, MachineConfig};
use um_arch::ServiceMap;
use um_net::{ExternalNetwork, FatTree, LeafSpine, Mesh2D, Network, NetworkConfig};
use um_sched::{Dispatcher, MitigationConfig, RequestQueue, RetryBudget};
use um_sim::fault::{FaultEvent, FaultPlan};
use um_sim::trace::{Component, LatencyBreakdown, Span};
use um_sim::{rng as simrng, Cycles, EventQueue};
use um_stats::Samples;
use um_workload::{PoissonArrivals, RpcKind, ServiceId};

/// Configuration of one system run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The machine in every server.
    pub machine: MachineConfig,
    /// Request workload.
    pub workload: Workload,
    /// External request rate per server, requests per second.
    pub rps_per_server: f64,
    /// Number of servers in the cluster.
    pub servers: usize,
    /// Arrival horizon in microseconds; requests arriving before it are
    /// all simulated to completion.
    pub horizon_us: f64,
    /// Requests arriving before this time are executed but not recorded
    /// (cache/queue warm-up).
    pub warmup_us: f64,
    /// Master random seed; same seed, same results.
    pub seed: u64,
    /// Overrides the number of queues (villages) per server — the Figure 3
    /// sweep. Cores are redistributed evenly.
    pub queues_override: Option<usize>,
    /// Allow idle cores to steal from other queues (software scheduling
    /// only; Figure 3).
    pub work_stealing: bool,
    /// Model ICN link contention (disable for Figure 7's normalization
    /// baseline).
    pub icn_contention: bool,
    /// Run-to-completion mode: a core is held while its request blocks on
    /// an RPC and the request resumes in place (no context switches).
    /// This is §3.2's queueing experiment setup (Figure 3), where the
    /// queue structure is isolated from context-switch effects.
    pub hold_core_while_blocked: bool,
    /// Dequeue ordering. The hardware RQ serves FCFS (§4.3); SRPT is the
    /// alternative the paper argues brings little for microservices — the
    /// `ablation_srpt` bench checks that claim.
    pub dequeue_policy: um_sched::DequeuePolicy,
    /// External arrival process: Poisson (the paper's evaluation) or the
    /// bursty MMPP the Alibaba characterization motivates (§3.2).
    pub arrivals: ArrivalProcess,
    /// Instance autoscaling: when a service's village queue runs hot, the
    /// system software boots another instance in a different village,
    /// reading its snapshot from the cluster memory pool when present
    /// (§3.5/§4.1) and cold-booting otherwise.
    pub autoscale: bool,
    /// Collect per-component latency distributions (the measured Figure
    /// 3/6 breakdowns) into [`RunReport::breakdown`]. Cycle attribution
    /// and the conservation check run unconditionally — they are plain
    /// integer adds on state the event handlers already touch — but the
    /// per-request sample recording is gated here.
    pub trace: bool,
    /// Scheduled faults for this run. [`FaultPlan::none`] (the default)
    /// leaves the run bit-identical to one predating fault injection:
    /// the plan adds no events, no RNG draws and no charges.
    pub fault_plan: FaultPlan,
    /// Tail-mitigation policies (hedging, timeout/retry, steering). The
    /// default disables all of them; an all-off config likewise changes
    /// nothing about a run.
    pub mitigation: MitigationConfig,
}

/// How external requests arrive at each server.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ArrivalProcess {
    /// Exponential inter-arrival times at the configured rate (§5).
    Poisson,
    /// Two-state Markov-modulated bursts with the configured long-run
    /// rate (the Figure 2 burstiness).
    Bursty,
    /// No self-generated arrivals: an outer driver (the cluster layer's
    /// load balancer) feeds requests in via [`SystemSim::inject_arrival`]
    /// and steps the package with [`SystemSim::step`].
    Injected,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            machine: MachineConfig::umanycore(),
            workload: Workload::social_mix(),
            rps_per_server: 5_000.0,
            servers: 1,
            horizon_us: 50_000.0,
            warmup_us: 5_000.0,
            seed: 42,
            queues_override: None,
            work_stealing: false,
            icn_contention: true,
            hold_core_while_blocked: false,
            dequeue_policy: um_sched::DequeuePolicy::Fcfs,
            arrivals: ArrivalProcess::Poisson,
            autoscale: false,
            trace: false,
            fault_plan: FaultPlan::none(),
            mitigation: MitigationConfig::default(),
        }
    }
}

/// Run-wide latency-provenance accounting: the conservation invariant
/// (checked for every finished request) plus, when tracing is enabled,
/// per-component sample sets over recorded root requests.
#[derive(Clone, Debug)]
pub(crate) struct BreakdownCollector {
    /// One sample set per [`Component`], indexed by [`Component::index`].
    pub(crate) samples: Vec<Samples>,
    /// Whether to collect samples (the [`SimConfig::trace`] gate).
    collect: bool,
    checked: u64,
    max_error_cycles: u64,
    breakdown_cycles: u128,
    end_to_end_cycles: u128,
}

impl BreakdownCollector {
    pub(crate) fn new(collect: bool) -> Self {
        Self {
            samples: (0..Component::COUNT).map(|_| Samples::new()).collect(),
            collect,
            checked: 0,
            max_error_cycles: 0,
            breakdown_cycles: 0,
            end_to_end_cycles: 0,
        }
    }

    /// Verifies one finished request's conservation invariant: breakdown
    /// components must sum to the end-to-end lifetime, to the cycle.
    pub(crate) fn check(&mut self, bd: &LatencyBreakdown, end_to_end: Cycles) {
        let total = bd.total();
        self.checked += 1;
        self.breakdown_cycles += total.raw() as u128;
        self.end_to_end_cycles += end_to_end.raw() as u128;
        self.max_error_cycles = self
            .max_error_cycles
            .max(total.raw().abs_diff(end_to_end.raw()));
        debug_assert_eq!(
            total, end_to_end,
            "latency conservation violated: breakdown [{bd}] sums to {total:?}, \
             lifetime is {end_to_end:?}"
        );
    }

    /// Records a recorded root request's per-component shares, in
    /// microseconds (no-op unless collecting).
    pub(crate) fn record(&mut self, bd: &LatencyBreakdown, freq: um_sim::Frequency) {
        if !self.collect {
            return;
        }
        for (c, v) in bd.iter() {
            self.samples[c.index()].record(v.as_micros(freq));
        }
    }

    pub(crate) fn stats(&self) -> ConservationStats {
        ConservationStats {
            checked: self.checked,
            max_error_cycles: self.max_error_cycles,
            breakdown_cycles: self.breakdown_cycles,
            end_to_end_cycles: self.end_to_end_cycles,
        }
    }
}

/// Any of the three on-package networks, unified behind one send surface.
#[derive(Clone, Debug)]
enum Icn {
    Mesh(Network<Mesh2D>),
    Fat(Network<FatTree>),
    Leaf(Network<LeafSpine>),
}

impl Icn {
    fn send(&mut self, src: usize, dst: usize, bytes: u64, depart: Cycles) -> Cycles {
        match self {
            Icn::Mesh(n) => n.send(src, dst, bytes, depart),
            Icn::Fat(n) => n.send(src, dst, bytes, depart),
            Icn::Leaf(n) => n.send(src, dst, bytes, depart),
        }
    }

    /// Returns `(arrival, queueing_delay)` for a transfer.
    fn send_traced(
        &mut self,
        src: usize,
        dst: usize,
        bytes: u64,
        depart: Cycles,
    ) -> (Cycles, Cycles) {
        match self {
            Icn::Mesh(n) => n.send_traced(src, dst, bytes, depart),
            Icn::Fat(n) => n.send_traced(src, dst, bytes, depart),
            Icn::Leaf(n) => n.send_traced(src, dst, bytes, depart),
        }
    }

    fn stats(&self) -> um_net::NetworkStats {
        match self {
            Icn::Mesh(n) => n.stats(),
            Icn::Fat(n) => n.stats(),
            Icn::Leaf(n) => n.stats(),
        }
    }

    fn hop_latency(&self) -> Cycles {
        match self {
            Icn::Mesh(n) => n.config().hop_latency,
            Icn::Fat(n) => n.config().hop_latency,
            Icn::Leaf(n) => n.config().hop_latency,
        }
    }

    /// Registers a fault window on a link (index taken modulo the link
    /// count by the network layer).
    fn inject_link_fault(&mut self, link: usize, window: um_sim::fault::FaultWindow) {
        match self {
            Icn::Mesh(n) => n.inject_link_fault(link, window),
            Icn::Fat(n) => n.inject_link_fault(link, window),
            Icn::Leaf(n) => n.inject_link_fault(link, window),
        }
    }
}

/// Per-village queue state.
#[derive(Clone, Debug)]
enum VillageQueue {
    /// uManycore: hardware RQ plus the NIC overflow buffer (§4.3).
    Hardware {
        rq: RequestQueue<ReqId>,
        nic_buffer: VecDeque<ReqId>,
    },
    /// Baselines: a software FCFS ready queue.
    Software { ready: VecDeque<ReqId> },
}

#[derive(Clone, Debug)]
struct Village {
    /// The core microarchitecture this village's cores implement (§8's
    /// heterogeneous-villages extension; homogeneous machines use the
    /// package core everywhere).
    core: um_arch::CoreModel,
    /// First cluster this village's cores live in.
    cluster: usize,
    /// Number of consecutive clusters the village spans (a logical queue
    /// larger than one cluster — the Figure 3 override — has cores in
    /// several physical clusters).
    cluster_span: usize,
    idle_cores: usize,
    cores: usize,
    /// Fail-stop kills waiting for a busy core to free: the next
    /// `CoreFree` is absorbed instead of returning the core to the pool.
    kill_pending: usize,
    queue: VillageQueue,
    /// Software queues are protected by a lock whose critical section
    /// scales with the sharer count (§3.2's synchronization overheads);
    /// hardware RQs arbitrate in the Dequeue instruction (zero here).
    lock_cycles: Cycles,
    lock_free_at: Cycles,
}

impl Village {
    /// Serializes one queue operation starting at `now`; returns when the
    /// operation completes.
    fn queue_op(&mut self, now: Cycles) -> Cycles {
        if self.lock_cycles == Cycles::ZERO {
            return now;
        }
        let start = now.max(self.lock_free_at);
        self.lock_free_at = start + self.lock_cycles;
        self.lock_free_at
    }
}

#[derive(Clone, Debug)]
struct Server {
    villages: Vec<Village>,
    icn: Icn,
    dispatcher: Option<Dispatcher>,
    service_map: ServiceMap,
    busy_cycles: u128,
    /// One snapshot memory pool per cluster (§4.1); pre-populated with
    /// every service's snapshot when the machine carries pools.
    pools: Vec<um_mem::pool::MemoryPool>,
    /// Services with an instance boot in flight (stampede guard).
    booting: std::collections::BTreeSet<u32>,
}

#[derive(Clone, Copy, Debug)]
enum Event {
    ClientArrival {
        server: usize,
    },
    /// A root request handed over by the cluster layer's load balancer:
    /// delivered like a client arrival, but its completion is pushed into
    /// the node's outbox under `token` instead of ending at the package
    /// edge (no client-RTT charge — the rack fabric legs are the cluster
    /// layer's to account).
    InjectedArrival {
        server: usize,
        token: u64,
    },
    Enqueue {
        req: ReqId,
    },
    SegmentDone {
        req: ReqId,
    },
    Unblock {
        req: ReqId,
    },
    CoreFree {
        server: usize,
        village: usize,
    },
    /// A freshly booted service instance comes online in a village.
    InstanceReady {
        server: usize,
        service: u32,
        village: usize,
    },
    /// A scheduled fail-stop: one core of the village dies.
    CoreFail {
        server: usize,
        village: usize,
    },
    /// A storage attempt's response arrives. The legs were computed at
    /// issue time but are charged here, at delivery, so a losing attempt
    /// (late retry, wasted hedge) never touches the breakdown.
    StorageDone {
        req: ReqId,
        /// Operation generation the attempt belongs to.
        gen: u32,
        /// On-package egress+ingress share of the blocked interval.
        icn: Cycles,
        /// External-fabric share.
        ext: Cycles,
        /// Storage service-time share.
        storage: Cycles,
        /// Issue delay relative to the operation start (0 for a primary
        /// attempt), charged to `Component::Resilience` if this attempt
        /// wins.
        resilience: Cycles,
    },
    /// A hedging policy's backup-issue point for an operation.
    HedgeFire {
        req: ReqId,
        gen: u32,
    },
    /// An attempt's timeout: retry or give up unless the operation has
    /// resolved.
    RpcTimeout {
        req: ReqId,
        gen: u32,
    },
}

/// A finished injected root request, reported back to the cluster layer
/// through [`SystemSim::drain_completions`].
#[derive(Clone, Copy, Debug)]
pub struct NodeCompletion {
    /// The token passed to [`SystemSim::inject_arrival`].
    pub token: u64,
    /// When the response cleared the package edge (last ICN egress hop
    /// included) — the instant the rack fabric takes over.
    pub finished_at: Cycles,
    /// The request's full in-package breakdown; its total equals
    /// `finished_at` minus the injection time, to the cycle.
    pub breakdown: LatencyBreakdown,
    /// Whether the request exhausted its RPC attempts (an error response,
    /// not a latency sample).
    pub gave_up: bool,
}

/// The full-system simulator. Construct with [`SystemSim::new`], run with
/// [`SystemSim::run`]; or drive it as one node of a rack — step by step,
/// with arrivals injected by a load balancer — via
/// [`SystemSim::next_event_time`], [`SystemSim::step`],
/// [`SystemSim::inject_arrival`] and [`SystemSim::drain_completions`].
pub struct SystemSim {
    cfg: SimConfig,
    events: EventQueue<Event>,
    requests: Vec<Request>,
    servers: Vec<Server>,
    external: ExternalNetwork,
    coherence: CoherenceModel,
    rng: SmallRng,
    /// Separate stream for fault decisions (drop sampling, fail-slow core
    /// assignment) so a fault plan never perturbs the healthy-run draws.
    fault_rng: SmallRng,
    /// Cached [`FaultPlan::drop_probability`].
    drop_p: f64,
    retry_budget: RetryBudget,
    horizon: Cycles,
    warmup: Cycles,
    // Statistics.
    latency: Samples,
    queueing: Samples,
    cpu_per_invocation: Samples,
    blocked_per_invocation: Samples,
    queued_per_invocation: Samples,
    completed: u64,
    recorded: u64,
    ctx_switches: u64,
    steals: u64,
    rq_overflows: u64,
    instance_boots: u64,
    faults: FaultStats,
    breakdown: BreakdownCollector,
    /// Finished injected requests awaiting pickup by the cluster layer.
    completions: Vec<NodeCompletion>,
}

impl SystemSim {
    /// Builds the cluster and pre-schedules all external arrivals.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations (zero servers, zero rate,
    /// queue override that does not divide the core count).
    pub fn new(cfg: SimConfig) -> Self {
        assert!(cfg.servers > 0, "need at least one server");
        assert!(cfg.horizon_us > 0.0, "need a positive horizon");
        assert!(
            cfg.warmup_us < cfg.horizon_us,
            "warm-up must end before the horizon"
        );
        let freq = cfg.machine.core.frequency;
        let total_cores = cfg.machine.total_cores();

        // Queue layout: villages per server, either from the machine shape
        // or from the Figure 3 override.
        let n_villages = match cfg.queues_override {
            Some(q) => {
                assert!(
                    q >= 1 && total_cores.is_multiple_of(q),
                    "queue override {q} must divide {total_cores} cores"
                );
                q
            }
            None => cfg.machine.shape.total_villages(),
        };
        let cores_per_village = total_cores / n_villages;
        let clusters = cfg.machine.shape.clusters;

        let net_config = if cfg.icn_contention {
            NetworkConfig {
                seed: cfg.seed,
                ..NetworkConfig::on_package()
            }
        } else {
            NetworkConfig {
                seed: cfg.seed,
                ..NetworkConfig::contention_free()
            }
        };

        let services = cfg.workload.services();
        let mut servers = Vec::with_capacity(cfg.servers);
        for _ in 0..cfg.servers {
            let icn = match cfg.machine.icn {
                IcnKind::Mesh => Icn::Mesh(Network::new(Mesh2D::near_square(clusters), net_config)),
                IcnKind::FatTree => Icn::Fat(Network::new(FatTree::new(clusters), net_config)),
                IcnKind::LeafSpine => {
                    // Keep 4-way pods when possible, as in Figure 12.
                    let pods = if clusters.is_multiple_of(8) {
                        clusters / 8
                    } else {
                        1
                    };
                    let leaves = clusters / pods;
                    Icn::Leaf(Network::new(LeafSpine::new(pods, leaves, 4, 8), net_config))
                }
            };
            let lock_cycles = if cfg.machine.hw_scheduling {
                Cycles::ZERO
            } else {
                // Cache-line ping-pong makes the critical section grow
                // linearly with the sharer count: the §3.2 argument
                // against one fully-centralized queue.
                Cycles::new(
                    (crate::params::SW_QUEUE_LOCK_CYCLES_PER_SHARER * cores_per_village as f64)
                        as u64,
                )
            };
            let cluster_span = (clusters / n_villages).max(1);
            let villages: Vec<Village> = (0..n_villages)
                .map(|v| Village {
                    core: match cfg.machine.village_cores {
                        um_arch::config::VillageCores::Heterogeneous {
                            big_villages,
                            big_core,
                        } if v < big_villages => big_core,
                        _ => cfg.machine.core,
                    },
                    cluster: v * clusters / n_villages,
                    cluster_span,
                    idle_cores: cores_per_village,
                    cores: cores_per_village,
                    kill_pending: 0,
                    queue: if cfg.machine.hw_scheduling {
                        VillageQueue::Hardware {
                            rq: RequestQueue::new(cfg.machine.rq_capacity),
                            nic_buffer: VecDeque::new(),
                        }
                    } else {
                        VillageQueue::Software {
                            ready: VecDeque::new(),
                        }
                    },
                    lock_cycles,
                    lock_free_at: Cycles::ZERO,
                })
                .collect();
            // ServiceMap: uManycore partitions services across villages;
            // baselines deploy every service everywhere and pick queues
            // uniformly at random (§3.2's experiment setup). With
            // heterogeneous villages (§8), the big-core villages are
            // reserved for the heaviest-handler services.
            let mut service_map = ServiceMap::new();
            if cfg.machine.hw_scheduling && n_villages >= services.len() {
                let mut order = services.clone();
                order.sort_by(|a, b| {
                    cfg.workload
                        .service_weight(*b)
                        .total_cmp(&cfg.workload.service_weight(*a))
                });
                let big = match cfg.machine.village_cores {
                    um_arch::config::VillageCores::Heterogeneous { big_villages, .. } => {
                        big_villages.min(n_villages.saturating_sub(services.len()))
                    }
                    um_arch::config::VillageCores::Homogeneous => 0,
                };
                let heavy_count = (services.len() / 3).max(1);
                for v in 0..n_villages {
                    let svc = if v < big {
                        order[v % heavy_count]
                    } else {
                        order[(v - big) % services.len()]
                    };
                    service_map.register(svc.raw(), v);
                }
            } else {
                for svc in &services {
                    for v in 0..n_villages {
                        service_map.register(svc.raw(), v);
                    }
                }
            }
            // Snapshot pools: ~14 MB per service (paper: <16 MB), one
            // 256 MB pool per cluster, pre-populated when the machine has
            // pools; a 1-byte pool otherwise makes every boot cold.
            let pools = (0..clusters)
                .map(|_| {
                    if cfg.machine.memory_pool {
                        let mut pool = um_mem::pool::MemoryPool::new(256 * 1024 * 1024);
                        for svc in &services {
                            pool.store(svc.raw(), 14 * 1024 * 1024)
                                .expect("pool sized for all services");
                        }
                        pool
                    } else {
                        um_mem::pool::MemoryPool::new(1)
                    }
                })
                .collect();
            servers.push(Server {
                villages,
                icn,
                dispatcher: Dispatcher::for_model(cfg.machine.ctx_switch, total_cores),
                service_map,
                busy_cycles: 0,
                pools,
                booting: std::collections::BTreeSet::new(),
            });
        }

        let coherence = match cfg.machine.coherence {
            CoherenceDomain::Village => CoherenceModel::village(),
            CoherenceDomain::Global if total_cores > 256 => CoherenceModel::global_1024(),
            CoherenceDomain::Global => CoherenceModel::global_small(total_cores),
        };

        // Pre-size the queue's event pool for the arrival schedule below
        // (every arrival is scheduled up front), plus headroom for the
        // in-flight per-request events; the arena then recycles pooled
        // nodes instead of growing during the run.
        let expected_arrivals =
            (cfg.rps_per_server * cfg.horizon_us / 1e6 * cfg.servers as f64).ceil() as usize;
        let mut events = EventQueue::with_capacity(expected_arrivals + expected_arrivals / 8 + 64);
        for s in 0..cfg.servers {
            let seed = simrng::stream_indexed(cfg.seed, "server-arrivals", s as u64).gen::<u64>();
            let arrivals = match cfg.arrivals {
                ArrivalProcess::Poisson => {
                    PoissonArrivals::new(cfg.rps_per_server, seed).within(cfg.horizon_us)
                }
                ArrivalProcess::Bursty => {
                    let mut mmpp = um_workload::Mmpp::alibaba_like(cfg.rps_per_server, seed);
                    mmpp.within(cfg.horizon_us)
                }
                // The cluster layer injects arrivals one by one.
                ArrivalProcess::Injected => Vec::new(),
            };
            for t in arrivals {
                events.schedule_at(
                    Cycles::from_micros(t, freq),
                    Event::ClientArrival { server: s },
                );
            }
        }

        // The external fabric connects the cluster's servers plus the
        // storage tier (index = cfg.servers).
        let external = ExternalNetwork::paper_default(cfg.servers + 1, freq);

        // Install the fault plan: link faults and drop probabilities take
        // effect (are "applied") at install time, fail-stops when their
        // CoreFail event fires; anything aimed at a nonexistent target is
        // masked. The fault-accounting sanitizer checks that every plan
        // event ends up in exactly one of the two buckets.
        let mut faults = FaultStats::default();
        for event in cfg.fault_plan.events() {
            match *event {
                FaultEvent::CoreFailStop {
                    server,
                    village,
                    at,
                } => {
                    if server < cfg.servers && village < n_villages {
                        events.schedule_at(at, Event::CoreFail { server, village });
                    } else {
                        faults.faults_masked += 1;
                    }
                }
                FaultEvent::CoreFailSlow {
                    server, village, ..
                } => {
                    if server < cfg.servers && village < n_villages {
                        faults.faults_applied += 1;
                    } else {
                        faults.faults_masked += 1;
                    }
                }
                FaultEvent::LinkFault {
                    server,
                    link,
                    window,
                } => {
                    if server < cfg.servers {
                        servers[server].icn.inject_link_fault(link, window);
                        faults.faults_applied += 1;
                    } else {
                        faults.faults_masked += 1;
                    }
                }
                FaultEvent::MessageDrops { .. } => faults.faults_applied += 1,
            }
        }

        Self {
            horizon: Cycles::from_micros(cfg.horizon_us, freq),
            warmup: Cycles::from_micros(cfg.warmup_us, freq),
            external,
            coherence,
            rng: simrng::stream(cfg.seed, "system"),
            fault_rng: simrng::stream(cfg.seed, "fault"),
            drop_p: cfg.fault_plan.drop_probability(),
            retry_budget: RetryBudget::new(cfg.mitigation.retry.map_or(0.0, |r| r.budget_fraction)),
            events,
            requests: Vec::with_capacity(expected_arrivals),
            servers,
            latency: Samples::new(),
            queueing: Samples::new(),
            cpu_per_invocation: Samples::new(),
            blocked_per_invocation: Samples::new(),
            queued_per_invocation: Samples::new(),
            completed: 0,
            recorded: 0,
            ctx_switches: 0,
            steals: 0,
            rq_overflows: 0,
            instance_boots: 0,
            faults,
            breakdown: BreakdownCollector::new(cfg.trace),
            completions: Vec::new(),
            cfg,
        }
    }

    /// Runs the simulation to completion (all admitted requests finish)
    /// and returns the report.
    pub fn run(mut self) -> RunReport {
        while self.step() {}
        self.finish()
    }

    /// The time of the next pending event, if any. A cluster driver uses
    /// this to interleave node steps with its own events on one global
    /// clock.
    pub fn next_event_time(&self) -> Option<Cycles> {
        self.events.peek_time()
    }

    /// Hands a root request over to this package at time `at` (the instant
    /// the rack fabric delivered it to server `server`'s NIC). The
    /// completion surfaces in [`SystemSim::drain_completions`] under
    /// `token` once the response clears the package edge.
    ///
    /// # Panics
    ///
    /// Panics if `at` precedes an already-delivered event (the queue's
    /// monotonicity contract) or `server` is out of range.
    pub fn inject_arrival(&mut self, at: Cycles, server: usize, token: u64) {
        assert!(server < self.cfg.servers, "injected arrival server index");
        self.events
            .schedule_at(at, Event::InjectedArrival { server, token });
    }

    /// Finished injected requests since the last drain, in completion
    /// order.
    pub fn drain_completions(&mut self) -> Vec<NodeCompletion> {
        std::mem::take(&mut self.completions)
    }

    /// Finalizes a step-driven run: sanitizer end-of-run checks plus the
    /// report. [`SystemSim::run`] calls this after draining the queue.
    pub fn finish(self) -> RunReport {
        self.into_report()
    }

    /// Delivers the next pending event. Returns `false` when the queue is
    /// empty (the run is complete until more arrivals are injected).
    pub fn step(&mut self) -> bool {
        let Some((now, event)) = self.events.pop() else {
            return false;
        };
        {
            match event {
                Event::ClientArrival { server } => self.on_client_arrival(server, now, None),
                Event::InjectedArrival { server, token } => {
                    self.on_client_arrival(server, now, Some(token))
                }
                Event::Enqueue { req } => self.on_enqueue(req, now),
                Event::SegmentDone { req } => self.on_segment_done(req, now),
                Event::Unblock { req } => self.on_unblock(req, now),
                Event::CoreFree { server, village } => {
                    let v = &mut self.servers[server].villages[village];
                    if v.kill_pending > 0 {
                        // A fail-stop was waiting for this core: it dies
                        // instead of rejoining the pool.
                        v.kill_pending -= 1;
                    } else {
                        v.idle_cores += 1;
                        self.try_start(server, village, now);
                    }
                }
                Event::InstanceReady {
                    server,
                    service,
                    village,
                } => {
                    self.servers[server].booting.remove(&service);
                    self.servers[server].service_map.register(service, village);
                }
                Event::CoreFail { server, village } => self.on_core_fail(server, village),
                Event::StorageDone {
                    req,
                    gen,
                    icn,
                    ext,
                    storage,
                    resilience,
                } => self.on_storage_done(req, gen, icn, ext, storage, resilience, now),
                Event::HedgeFire { req, gen } => self.on_hedge_fire(req, gen, now),
                Event::RpcTimeout { req, gen } => self.on_rpc_timeout(req, gen, now),
            }
        }
        true
    }

    // ---- unit helpers -------------------------------------------------

    fn freq(&self) -> um_sim::Frequency {
        self.cfg.machine.core.frequency
    }

    /// Wall-clock microseconds (network, storage) to cycles.
    fn wall_cycles(&self, us: f64) -> Cycles {
        Cycles::from_micros(us, self.freq())
    }

    fn rpc_proc_us(&self) -> f64 {
        if self.cfg.machine.hw_scheduling {
            params::HW_RPC_PROC_US
        } else {
            params::SW_RPC_PROC_US
        }
    }

    fn rpc_msg_us(&self) -> f64 {
        if self.cfg.machine.hw_scheduling {
            params::HW_RPC_MSG_US
        } else {
            params::SW_RPC_MSG_US
        }
    }

    fn cs_half(&self) -> Cycles {
        self.cfg.machine.ctx_switch.half_cost()
    }

    /// The physical cluster a request's core sits in: villages narrower
    /// than a cluster have one; logical queues spanning several clusters
    /// (queue overrides) place cores across the span.
    fn core_cluster(&mut self, server: usize, village: usize) -> usize {
        let v = &self.servers[server].villages[village];
        if v.cluster_span <= 1 {
            v.cluster
        } else {
            v.cluster + self.rng.gen_range(0..v.cluster_span)
        }
    }

    /// Whether the machine's read-mostly state sits in a per-cluster
    /// memory pool next to its villages (§4.1) — the combination that
    /// localizes memory traffic.
    fn has_local_pool(&self) -> bool {
        self.cfg.machine.coherence == CoherenceDomain::Village && self.cfg.machine.memory_pool
    }

    fn mem_bytes_per_us(&self) -> f64 {
        if self.has_local_pool() {
            // Snapshot/state reads served by the cluster pool; only the
            // residual (DRAM writes, cold misses) moves — and locally.
            params::MEM_BYTES_PER_US_VILLAGE
        } else if self.cfg.machine.kind == um_arch::config::MachineKind::ServerClass {
            // ServerClass's 4 MB of cache per core absorbs much of the
            // refetch traffic the small-cache manycores must replay.
            params::MEM_BYTES_PER_US_GLOBAL / 2.0
        } else {
            params::MEM_BYTES_PER_US_GLOBAL
        }
    }

    // ---- event handlers ------------------------------------------------

    fn on_client_arrival(&mut self, server: usize, now: Cycles, cluster_token: Option<u64>) {
        let service = self.cfg.workload.sample_root(&mut self.rng);
        let village = self.pick_village(server, service, now);
        let plan = self.cfg.workload.sample_plan(service, &mut self.rng);
        let req = self.requests.len();
        self.requests.push(Request::new(
            plan,
            Origin::Client { sent_at: now },
            server,
            village,
        ));
        self.requests[req].cluster_token = cluster_token;
        // Top-level NIC ingress + one hop to the village's leaf, plus the
        // enqueue operation itself.
        let nic = self.wall_cycles(params::NIC_INGRESS_US);
        let hop = self.servers[server].icn.hop_latency();
        let op = self.cfg.machine.sched_op_cost;
        let ingress = nic + hop + op;
        {
            let r = &mut self.requests[req];
            r.spawned_at = now;
            r.breakdown.charge(Component::ExternalNet, nic);
            r.breakdown.charge(Component::IcnTransit, hop);
            r.breakdown.charge(Component::SchedOp, op);
        }
        self.events
            .schedule_at(now + ingress, Event::Enqueue { req });
    }

    fn pick_village(&mut self, server: usize, service: ServiceId, now: Cycles) -> usize {
        // Straggler-aware steering only engages when a fault plan exists:
        // a healthy run must take exactly the original dispatch path
        // (same draws, same round-robin cursor movement).
        let steer = self.cfg.mitigation.steer && !self.cfg.fault_plan.is_empty();
        if self.cfg.machine.hw_scheduling {
            let primary = self.servers[server]
                .service_map
                .dispatch(service.raw())
                .expect("every workload service is registered");
            if steer && self.cfg.fault_plan.is_degraded(server, primary, now) {
                let plan = &self.cfg.fault_plan;
                let srv = &self.servers[server];
                // Least-loaded healthy village still hosting the service;
                // ties break on the lower index (deterministic).
                if let Some(&v) = srv
                    .service_map
                    .villages(service.raw())
                    .iter()
                    .filter(|&&v| !plan.is_degraded(server, v, now))
                    .min_by_key(|&&v| (Self::queue_len(&srv.villages[v]), v))
                {
                    return v;
                }
            }
            primary
        } else {
            let n = self.servers[server].villages.len();
            if steer {
                let plan = &self.cfg.fault_plan;
                let healthy: Vec<usize> = (0..n)
                    .filter(|&v| !plan.is_degraded(server, v, now))
                    .collect();
                if !healthy.is_empty() && healthy.len() < n {
                    return healthy[self.rng.gen_range(0..healthy.len())];
                }
            }
            self.rng.gen_range(0..n)
        }
    }

    /// Occupancy of a village's ready queue (steering's load key).
    fn queue_len(v: &Village) -> usize {
        match &v.queue {
            VillageQueue::Hardware { rq, nic_buffer } => rq.len() + nic_buffer.len(),
            VillageQueue::Software { ready } => ready.len(),
        }
    }

    /// Village for a hedge (backup) attempt: prefer a healthy,
    /// least-loaded village other than `avoid`; fall back to `avoid` when
    /// it is the only host.
    fn pick_hedge_village(
        &mut self,
        server: usize,
        service: ServiceId,
        avoid: usize,
        now: Cycles,
    ) -> usize {
        let plan = &self.cfg.fault_plan;
        let srv = &self.servers[server];
        let candidates: Vec<usize> = if self.cfg.machine.hw_scheduling {
            srv.service_map.villages(service.raw()).to_vec()
        } else {
            (0..srv.villages.len()).collect()
        };
        candidates
            .iter()
            .copied()
            .filter(|&v| v != avoid)
            .min_by_key(|&v| {
                (
                    plan.is_degraded(server, v, now),
                    Self::queue_len(&srv.villages[v]),
                    v,
                )
            })
            .unwrap_or(avoid)
    }

    fn on_enqueue(&mut self, req: ReqId, now: Cycles) {
        // Software queues serialize the insert through their lock; batched
        // NIC-to-queue delivery keeps plain enqueues off the dispatcher
        // (the baselines use state-of-the-art NIC-to-core optimizations,
        // §5). Hardware enqueuing is done by the village NIC.
        let arrived = now;
        let now = {
            let (server, village) = (self.requests[req].server, self.requests[req].village);
            self.servers[server].villages[village].queue_op(now)
        };
        let (server, village) = {
            let r = &mut self.requests[req];
            r.breakdown.charge(Component::QueueWait, now - arrived);
            r.enqueued_at = now;
            r.phase = Phase::Queued;
            (r.server, r.village)
        };
        let service = self.requests[req].service().raw();
        let mut hot = false;
        match &mut self.servers[server].villages[village].queue {
            VillageQueue::Hardware { rq, nic_buffer } => {
                match rq.enqueue_at(service, req, now) {
                    Ok(slot) => self.requests[req].rq_slot = Some(slot),
                    Err(_) => {
                        self.rq_overflows += 1;
                        nic_buffer.push_back(req);
                    }
                }
                // Autoscaling watermark: the RQ three-quarters full means
                // this instance cannot absorb the burst (§4.1: "when the
                // number of concurrent requests exceeds the capacity of
                // the village, the system creates another instance").
                hot = rq.len() * 4 >= rq.capacity() * 3;
            }
            VillageQueue::Software { ready } => ready.push_back(req),
        }
        if hot && self.cfg.autoscale {
            self.boot_instance(server, service, now);
        }
        self.try_start(server, village, now);
        self.trigger_steal(server, village, now);
    }

    /// Boots another instance of `service` in the emptiest village,
    /// reading its snapshot from that village's cluster pool (or cold
    /// booting without one). The new instance serves requests once its
    /// `InstanceReady` fires.
    fn boot_instance(&mut self, server: usize, service: u32, now: Cycles) {
        if !self.servers[server].booting.insert(service) {
            return; // a boot is already in flight
        }
        // Place where the hardware queues are least loaded and the
        // service is not already hosted.
        let hosted: Vec<usize> = self.servers[server].service_map.villages(service).to_vec();
        let target = (0..self.servers[server].villages.len())
            .filter(|v| !hosted.contains(v))
            .min_by_key(|&v| match &self.servers[server].villages[v].queue {
                VillageQueue::Hardware { rq, .. } => rq.len(),
                VillageQueue::Software { ready } => ready.len(),
            });
        let Some(village) = target else {
            self.servers[server].booting.remove(&service);
            return; // hosted everywhere already
        };
        let cluster = self.servers[server].villages[village].cluster;
        let freq = self.freq();
        let boot = self.servers[server].pools[cluster].boot_latency(service, freq);
        self.instance_boots += 1;
        self.events.schedule_at(
            now + boot,
            Event::InstanceReady {
                server,
                service,
                village,
            },
        );
    }

    fn on_unblock(&mut self, req: ReqId, now: Cycles) {
        {
            let r = &mut self.requests[req];
            r.blocked_cycles += now.saturating_sub(r.blocked_at);
        }
        if self.cfg.hold_core_while_blocked {
            debug_assert_eq!(self.requests[req].phase, Phase::Blocked);
            self.resume_in_place(req, now);
            return;
        }
        let arrived = now;
        let now = {
            let (server, village) = (self.requests[req].server, self.requests[req].village);
            self.servers[server].villages[village].queue_op(now)
        };
        let (server, village) = {
            let r = &mut self.requests[req];
            debug_assert_eq!(r.phase, Phase::Blocked);
            r.breakdown.charge(Component::QueueWait, now - arrived);
            r.phase = Phase::Queued;
            r.enqueued_at = now;
            (r.server, r.village)
        };
        match &mut self.servers[server].villages[village].queue {
            VillageQueue::Hardware { rq, .. } => {
                let slot = self.requests[req].rq_slot.expect("blocked in RQ");
                rq.unblock_at(slot, now).expect("blocked entry unblocks");
            }
            VillageQueue::Software { ready } => ready.push_back(req),
        }
        self.try_start(server, village, now);
        self.trigger_steal(server, village, now);
    }

    /// After new work lands in `village`, let an idle core elsewhere on
    /// the server steal it (the spinning-idle-core model of §3.2's
    /// work-stealing variant).
    fn trigger_steal(&mut self, server: usize, village: usize, now: Cycles) {
        if !self.cfg.work_stealing {
            return;
        }
        let pending = match &self.servers[server].villages[village].queue {
            VillageQueue::Software { ready } => !ready.is_empty(),
            VillageQueue::Hardware { .. } => false,
        };
        if !pending {
            return;
        }
        let n = self.servers[server].villages.len();
        for off in 1..n {
            let v = (village + off) % n;
            if self.servers[server].villages[v].idle_cores > 0 {
                self.try_start(server, v, now);
                return;
            }
        }
    }

    /// Pairs idle cores in `village` with ready requests; steals from
    /// sibling queues when enabled.
    fn try_start(&mut self, server: usize, village: usize, now: Cycles) {
        loop {
            if self.servers[server].villages[village].idle_cores == 0 {
                return;
            }
            let Some((req, stolen)) = self.pop_ready(server, village, now) else {
                return;
            };
            self.servers[server].villages[village].idle_cores -= 1;
            self.start_segment(req, now, stolen);
        }
    }

    fn pop_ready(&mut self, server: usize, village: usize, now: Cycles) -> Option<(ReqId, bool)> {
        let policy = self.cfg.dequeue_policy;
        let requests = &self.requests;
        // Remaining handler compute of a request, the SRPT key (the
        // hardware would carry this estimate in the Request Context
        // Memory, written by the NIC from per-service profiles).
        let remaining = |&req: &ReqId| -> u64 {
            requests[req].plan.segments[requests[req].next_segment..]
                .iter()
                .map(|s| s.compute_us)
                .sum::<f64>() as u64 // um-tidy: allow(float-accumulation) -- serial fold over one request's fixed segment order
        };
        let srv = &mut self.servers[server];
        match &mut srv.villages[village].queue {
            VillageQueue::Hardware { rq, .. } => rq
                .dequeue_any_with_at(policy, remaining, now)
                .map(|(_, &req, wait)| {
                    // The RQ's own ready-wait measurement must agree with
                    // the queue-wait the breakdown will charge.
                    debug_assert_eq!(
                        wait,
                        now.saturating_sub(requests[req].enqueued_at),
                        "RQ wait disagrees with request {req} enqueue time"
                    );
                    (req, false)
                }),
            VillageQueue::Software { ready } => {
                let popped = match policy {
                    um_sched::DequeuePolicy::Fcfs => ready.pop_front(),
                    um_sched::DequeuePolicy::Srpt => ready
                        .iter()
                        .enumerate()
                        .min_by_key(|(_, req)| remaining(req))
                        .map(|(i, _)| i)
                        .and_then(|i| ready.remove(i)),
                };
                if let Some(req) = popped {
                    return Some((req, false));
                }
                if !self.cfg.work_stealing {
                    return None;
                }
                let n = srv.villages.len();
                for off in 1..n {
                    let v = (village + off) % n;
                    if let VillageQueue::Software { ready } = &mut srv.villages[v].queue {
                        if let Some(req) = ready.pop_front() {
                            self.steals += 1;
                            // The request now runs (and will resume) here.
                            self.requests[req].village = village;
                            return Some((req, true));
                        }
                    }
                }
                None
            }
        }
    }

    /// Begins the request's next segment on a core of its village at
    /// `now`: charges dequeue, context-restore, RPC-processing, coherence
    /// and steal costs, then schedules the segment's completion.
    fn start_segment(&mut self, req: ReqId, now: Cycles, stolen: bool) {
        self.start_segment_inner(req, now, stolen, false)
    }

    /// Resumes a request on the core it never released (run-to-completion
    /// mode): no dequeue, no restore, no migration.
    fn resume_in_place(&mut self, req: ReqId, now: Cycles) {
        self.start_segment_inner(req, now, false, true)
    }

    fn start_segment_inner(&mut self, req: ReqId, now: Cycles, stolen: bool, in_place: bool) {
        let server = self.requests[req].server;
        let village = self.requests[req].village;
        // An abandoned request does not execute the rest of its plan: it
        // runs a synthetic zero-compute segment (the error-response path)
        // and completes.
        let seg = if self.requests[req].gave_up {
            um_workload::Segment {
                compute_us: 0.0,
                rpc: None,
            }
        } else {
            self.requests[req].plan.segments[self.requests[req].next_segment]
        };
        let first = self.requests[req].next_segment == 0;
        let resumed = self.requests[req].has_run && !in_place;

        // A request may be claimed by a core whose dispatch attempt began
        // before the request's (lock-serialized) insertion completed; it
        // cannot start before it is actually in the queue.
        let now = now.max(self.requests[req].enqueued_at);
        let mut t = now;
        if !in_place {
            let waited = now - self.requests[req].enqueued_at;
            self.requests[req].queued_cycles += waited;
            self.queueing.record(waited.as_micros(self.freq()));
            // The queue-residence span opened when the (lock-serialized)
            // insert completed and closes at dispatch.
            Span::open(Component::QueueWait, self.requests[req].enqueued_at)
                .close_into(now, &mut self.requests[req].breakdown);

            // Dequeue operation: the queue lock serializes the removal on
            // software machines; hardware machines execute the Dequeue
            // instruction against the RQ.
            let lock_done = self.servers[server].villages[village].queue_op(t);
            let op = self.cfg.machine.sched_op_cost;
            {
                let bd = &mut self.requests[req].breakdown;
                bd.charge(Component::QueueWait, lock_done - t);
                bd.charge(Component::SchedOp, op);
            }
            t = lock_done + op;
            // Context restore for resumed requests (the other half of the
            // switch whose save ran at block time).
            if resumed {
                let half = self.cs_half();
                self.requests[req]
                    .breakdown
                    .charge(Component::CtxSwitch, half);
                t += half;
                self.ctx_switches += 1;
            }
        }

        // On-core RPC-layer work around this segment (§4.3). This is
        // wall-clock time (frequency-insensitive NIC/kernel latencies)
        // that nevertheless occupies the core.
        let mut tax_us = 0.0;
        if first {
            tax_us += self.rpc_proc_us(); // incoming request processing
        }
        if resumed {
            tax_us += self.rpc_msg_us(); // response receipt processing
        }
        if seg.rpc.is_some() {
            tax_us += self.rpc_msg_us(); // call issue processing
        }
        // Attribution splits the tax by *prefix*: converting each running
        // prefix sum with the same rounding as the total and differencing
        // telescopes exactly, so the component charges sum to the one
        // `wall_cycles(tax_us)` the timing arithmetic uses. (Each prefix
        // is a monotone f64 accumulation, so the differences cannot
        // underflow.)
        let rpc_tax_us = tax_us;
        if stolen {
            tax_us += params::STEAL_COST_US;
        }
        let sched_tax_us = tax_us;
        // Tail-at-scale software interference [16]: rare core-occupying
        // hiccups (kernel preemption, interrupts, daemons). Hardware
        // request scheduling removes the kernel's NIC/queue path — about
        // half the interference windows (§4.3) — and hardware context
        // switching takes the OS off the request path entirely (§4.4).
        let hiccup_p = if !self.cfg.machine.ctx_switch.is_software() {
            0.0
        } else if self.cfg.machine.hw_scheduling {
            params::SW_HICCUP_P / 2.0
        } else {
            params::SW_HICCUP_P
        };
        if hiccup_p > 0.0 && self.rng.gen::<f64>() < hiccup_p {
            tax_us +=
                um_workload::dist::sample_exponential(&mut self.rng, params::SW_HICCUP_MEAN_US);
        }

        let village_core = self.servers[server].villages[village].core;
        let mut handler = village_core.compute_cycles(seg.compute_us);
        // Fail-slow cores: while the village carries degraded cores, a
        // dispatch lands on one with probability slow/cores and the
        // handler compute stretches by the slowdown. Drawn from the fault
        // stream so a healthy run's draws are untouched.
        if !self.cfg.fault_plan.is_empty() {
            if let Some((slow, slowdown)) = self.cfg.fault_plan.fail_slow(server, village, now) {
                let total = self.servers[server].villages[village].cores;
                let p = f64::from(slow).min(total as f64) / total.max(1) as f64;
                if self.fault_rng.gen::<f64>() < p {
                    handler = handler.scale(slowdown);
                }
            }
        }
        let tax = self.wall_cycles(tax_us);
        let compute = handler + tax;
        {
            let rpc = self.wall_cycles(rpc_tax_us);
            let sched = self.wall_cycles(sched_tax_us);
            let bd = &mut self.requests[req].breakdown;
            bd.charge(Component::Compute, handler);
            bd.charge(Component::RpcProcessing, rpc);
            bd.charge(Component::SchedOp, sched - rpc);
            bd.charge(Component::Interference, tax - sched);
        }
        // Coherence: resumed requests may land on a different core of the
        // domain and refetch their warm state (§4.1).
        let cores = self.servers[server].villages[village].cores;
        let migrated =
            resumed && cores > 1 && self.rng.gen::<f64>() < (cores - 1) as f64 / cores as f64;
        let coherent = if migrated {
            self.coherence.overhead_migrated(compute)
        } else {
            self.coherence.overhead(compute)
        };

        // Memory-system traffic on the ICN: the segment's working-set
        // refetch, write-backs and directory messages. Global coherence
        // spreads it across the package (random LLC/directory/controller
        // cluster); village coherence with the cluster memory pool keeps
        // it local. Link queueing delays the segment (stalled misses).
        let occupied_us = compute.as_micros(self.freq());
        let mem_bytes = (occupied_us * self.mem_bytes_per_us()) as u64;
        let mem_stall = if mem_bytes > 0 {
            let src = self.core_cluster(server, village);
            // Without the per-cluster memory pool, even village-coherent
            // machines fetch read-mostly state from wherever it lives in
            // the package; the pool (§4.1) is what localizes the traffic.
            let dst = if self.has_local_pool() {
                src
            } else {
                let clusters = self.cfg.machine.shape.clusters;
                self.rng.gen_range(0..clusters)
            };
            // Pipelined chunks: redundant leaf-spine paths can carry them
            // in parallel, a tree serializes them through its one route.
            let chunk = (mem_bytes / params::MEM_TRAFFIC_CHUNKS).max(1);
            let mut queued = Cycles::ZERO;
            for _ in 0..params::MEM_TRAFFIC_CHUNKS {
                let (_, q) = self.servers[server].icn.send_traced(src, dst, chunk, t);
                queued += q;
            }
            // The request stalls for the worst chunk's queueing, not the
            // sum (chunks overlap with compute).
            Cycles::new(queued.raw() / params::MEM_TRAFFIC_CHUNKS)
        } else {
            Cycles::ZERO
        };

        let end = t + compute + coherent + mem_stall;
        {
            let r = &mut self.requests[req];
            r.breakdown.charge(Component::CoherenceStall, coherent);
            r.breakdown.charge(Component::MemStall, mem_stall);
            r.phase = Phase::Running;
            r.has_run = true;
            r.cpu_cycles += end - now;
        }
        self.servers[server].busy_cycles += (end - now).raw() as u128;
        self.events.schedule_at(end, Event::SegmentDone { req });
    }

    fn on_segment_done(&mut self, req: ReqId, now: Cycles) {
        if self.requests[req].gave_up {
            // The synthetic wind-down segment of an abandoned request just
            // finished: skip the rest of the plan and send the (error)
            // response.
            self.complete_request(req, now);
            return;
        }
        let seg_idx = self.requests[req].next_segment;
        let seg = self.requests[req].plan.segments[seg_idx];
        self.requests[req].next_segment += 1;

        match seg.rpc {
            Some(kind) => {
                self.begin_rpc_op(req, kind, now);
                self.block_request(req, now);
            }
            None => {
                debug_assert!(self.requests[req].is_complete());
                self.complete_request(req, now);
            }
        }
    }

    /// Context-save path: the core holds the request's state save, then
    /// frees; the request is marked blocked (its RQ entry persists). In
    /// run-to-completion mode the core simply stays with the request.
    fn block_request(&mut self, req: ReqId, now: Cycles) {
        if self.cfg.hold_core_while_blocked {
            let r = &mut self.requests[req];
            r.phase = Phase::Blocked;
            r.blocked_at = now;
            return;
        }
        let (server, village) = {
            let r = &mut self.requests[req];
            r.phase = Phase::Blocked;
            r.blocked_at = now;
            r.ctx_switches += 1;
            (r.server, r.village)
        };
        self.ctx_switches += 1;
        if let Some(slot) = self.requests[req].rq_slot {
            if let VillageQueue::Hardware { rq, .. } =
                &mut self.servers[server].villages[village].queue
            {
                rq.block(slot).expect("running entry blocks");
            }
        }
        let mut free_at = now;
        if let Some(d) = &mut self.servers[server].dispatcher {
            free_at = d.dispatch(free_at);
        }
        free_at += self.cs_half();
        self.servers[server].busy_cycles += (free_at - now).raw() as u128;
        self.events
            .schedule_at(free_at, Event::CoreFree { server, village });
    }

    /// Starts a blocking RPC operation: issues the primary attempt and
    /// arms the mitigation machinery (hedge point, retry/liveness
    /// timeout) around it. With mitigation off and no drops this reduces
    /// to exactly one attempt and no extra events.
    fn begin_rpc_op(&mut self, req: ReqId, kind: RpcKind, now: Cycles) {
        let gen = {
            let r = &mut self.requests[req];
            r.op_gen += 1;
            r.op_resolved = false;
            r.op_attempts = 0;
            r.op_started_at = now;
            r.op_rpc = Some(kind);
            r.op_gen
        };
        self.faults.rpc_ops += 1;
        if self.cfg.mitigation.retry.is_some() {
            // Adaptive budget: every operation earns a fraction of one
            // retry, capping the retry rate cluster-wide.
            self.retry_budget.earn();
        }
        self.issue_attempt(req, now);
        if let Some(h) = self.cfg.mitigation.hedge {
            self.events.schedule_at(
                now + self.wall_cycles(h.delay_us),
                Event::HedgeFire { req, gen },
            );
        }
        if let Some(rc) = self.cfg.mitigation.retry {
            self.events.schedule_at(
                now + self.wall_cycles(rc.timeout_for_attempt_us(1)),
                Event::RpcTimeout { req, gen },
            );
        } else if self.drop_p > 0.0 {
            // No retry policy, but legs can be lost: a liveness timeout
            // turns a stranded operation into a give-up instead of a
            // hang.
            self.events.schedule_at(
                now + self.wall_cycles(params::DEFAULT_RPC_TIMEOUT_US),
                Event::RpcTimeout { req, gen },
            );
        }
    }

    /// Issues one attempt of the request's current operation (the primary,
    /// a hedge, or a retry).
    fn issue_attempt(&mut self, req: ReqId, now: Cycles) {
        let kind = self.requests[req].op_rpc.expect("operation in progress");
        let backup = self.requests[req].op_attempts > 0;
        {
            let r = &mut self.requests[req];
            r.op_attempts += 1;
            r.attempts += 1;
        }
        self.faults.rpc_attempts += 1;
        match kind {
            RpcKind::Storage { bytes } => self.issue_storage_attempt(req, bytes, now),
            RpcKind::Call { service } => self.issue_call_attempt(req, service, backup, now),
        }
    }

    /// Storage RPC attempt: on-package egress, external fabric to the
    /// storage tier, exponential storage service, and the journey back.
    /// The leg decomposition rides in the `StorageDone` event and is
    /// charged only if this attempt wins its operation.
    fn issue_storage_attempt(&mut self, req: ReqId, bytes: u64, now: Cycles) {
        let server = self.requests[req].server;
        let storage = self.cfg.servers; // the storage tier's index
        let egress = self.servers[server].icn.hop_latency() * 2;
        let at_storage = self.external.send(server, storage, bytes, now + egress);
        // In-memory key-value stores serve GETs with low variance: a
        // lognormal with scv 0.25 around the mean (a long exponential tail
        // here would put an identical latency floor under every machine
        // and mask the architectural differences the paper isolates).
        let service_us =
            um_workload::ServiceTimeDist::lognormal_with_mean(params::STORAGE_MEAN_US, 0.25)
                .sample(&mut self.rng);
        let done = at_storage + self.wall_cycles(service_us);
        let back = self
            .external
            .send(storage, server, params::RESPONSE_BYTES, done);
        let ingress = self.servers[server].icn.hop_latency() * 2;
        // Injected message drops: the legs still occupy the fabric (the
        // message is lost at the receiver), the response just never
        // arrives; the operation recovers through its timeout.
        if self.drop_p > 0.0 {
            let lost_request = self.fault_rng.gen::<f64>() < self.drop_p;
            let lost_response = self.fault_rng.gen::<f64>() < self.drop_p;
            let lost = u64::from(lost_request) + u64::from(lost_response);
            if lost > 0 {
                self.faults.drops += lost;
                return;
            }
        }
        // The attempt's span [now, back + ingress] decomposes exactly
        // into the on-package legs, the external-fabric legs and the
        // storage service time; the issue delay back to the operation
        // start is resilience overhead.
        let resilience = now - self.requests[req].op_started_at;
        self.events.schedule_at(
            back + ingress,
            Event::StorageDone {
                req,
                gen: self.requests[req].op_gen,
                icn: egress + ingress,
                ext: (at_storage - (now + egress)) + (back - done),
                storage: done - at_storage,
                resilience,
            },
        );
    }

    /// Synchronous downstream call attempt: spawn a child request on this
    /// server; the parent unblocks when the first winning response
    /// returns. `backup` attempts (hedges, retries) prefer a village other
    /// than the primary's.
    fn issue_call_attempt(&mut self, req: ReqId, service: ServiceId, backup: bool, now: Cycles) {
        let server = self.requests[req].server;
        // Injected drops can lose the request leg: the child is never
        // spawned and the parent recovers through its timeout.
        if self.drop_p > 0.0 && self.fault_rng.gen::<f64>() < self.drop_p {
            self.faults.drops += 1;
            return;
        }
        let src_cluster = {
            let v = self.requests[req].village;
            self.core_cluster(server, v)
        };
        let child_village = if backup {
            let avoid = self.requests[req].op_village;
            self.pick_hedge_village(server, service, avoid, now)
        } else {
            let v = self.pick_village(server, service, now);
            self.requests[req].op_village = v;
            v
        };
        let dst_cluster = self.core_cluster(server, child_village);
        let plan = self.cfg.workload.sample_plan(service, &mut self.rng);
        let gen = self.requests[req].op_gen;
        let child = self.requests.len();
        self.requests.push(Request::new(
            plan,
            Origin::Parent { req, gen },
            server,
            child_village,
        ));
        let arrive =
            self.servers[server]
                .icn
                .send(src_cluster, dst_cluster, params::REQUEST_BYTES, now);
        // The child's lifetime starts at the parent's call issue; the
        // parent's blocked interval is exactly this lifetime, so the
        // downstream wait lands in the *child's* components and folds into
        // the parent when the response is delivered — never double-counted
        // as caller queue wait.
        {
            let r = &mut self.requests[child];
            r.spawned_at = now;
            r.breakdown.charge(Component::IcnTransit, arrive - now);
            r.breakdown
                .charge(Component::SchedOp, self.cfg.machine.sched_op_cost);
        }
        self.events.schedule_at(
            arrive + self.cfg.machine.sched_op_cost,
            Event::Enqueue { req: child },
        );
    }

    /// A storage attempt's response arrives: if its operation is still
    /// open, charge the winning legs and unblock; otherwise it lost.
    #[allow(clippy::too_many_arguments)]
    fn on_storage_done(
        &mut self,
        req: ReqId,
        gen: u32,
        icn: Cycles,
        ext: Cycles,
        storage: Cycles,
        resilience: Cycles,
        now: Cycles,
    ) {
        {
            let r = &self.requests[req];
            if r.phase != Phase::Blocked || r.op_resolved || r.op_gen != gen {
                // A losing attempt: its operation already resolved (or
                // was abandoned and the request moved on).
                self.faults.wasted_attempts += 1;
                return;
            }
        }
        {
            let r = &mut self.requests[req];
            let bd = &mut r.breakdown;
            bd.charge(Component::IcnTransit, icn);
            bd.charge(Component::ExternalNet, ext);
            bd.charge(Component::StorageService, storage);
            bd.charge(Component::Resilience, resilience);
            r.op_resolved = true;
        }
        self.on_unblock(req, now);
    }

    /// The hedging policy's backup-issue point: if the operation is still
    /// open past the hedge delay, issue a backup attempt.
    fn on_hedge_fire(&mut self, req: ReqId, gen: u32, now: Cycles) {
        {
            let r = &self.requests[req];
            if r.phase != Phase::Blocked || r.op_resolved || r.op_gen != gen {
                return; // resolved before the hedge point
            }
        }
        self.faults.hedges += 1;
        self.requests[req].hedges += 1;
        self.issue_attempt(req, now);
    }

    /// An attempt timeout: retry (with exponential backoff, against the
    /// retry budget) or abandon the operation.
    fn on_rpc_timeout(&mut self, req: ReqId, gen: u32, now: Cycles) {
        {
            let r = &self.requests[req];
            if r.phase != Phase::Blocked || r.op_resolved || r.op_gen != gen {
                return; // resolved in time
            }
        }
        if let Some(rc) = self.cfg.mitigation.retry {
            if self.requests[req].op_attempts < rc.max_attempts && self.retry_budget.try_spend() {
                self.faults.retries += 1;
                self.issue_attempt(req, now);
                let attempt = self.requests[req].op_attempts;
                self.events.schedule_at(
                    now + self.wall_cycles(rc.timeout_for_attempt_us(attempt)),
                    Event::RpcTimeout { req, gen },
                );
                return;
            }
        }
        // Out of attempts (or no retry policy at all): the operation is
        // abandoned. No attempt's legs were ever charged, so the whole
        // blocked span is resilience overhead; the request winds down
        // through a synthetic final segment and is excluded from the
        // latency samples.
        self.faults.gave_up_ops += 1;
        {
            let r = &mut self.requests[req];
            r.gave_up = true;
            r.op_resolved = true;
            let span = now - r.op_started_at;
            r.breakdown.charge(Component::Resilience, span);
        }
        self.on_unblock(req, now);
    }

    /// A scheduled fail-stop fires: one core of the village dies. A
    /// village is never taken below one core (the liveness floor) — such
    /// an event is masked, like one aimed at a nonexistent target.
    fn on_core_fail(&mut self, server: usize, village: usize) {
        let v = &mut self.servers[server].villages[village];
        if v.cores <= 1 {
            self.faults.faults_masked += 1;
            return;
        }
        v.cores -= 1;
        if v.idle_cores > 0 {
            v.idle_cores -= 1;
        } else {
            // Every core is busy: the next one to free dies instead of
            // rejoining the pool.
            v.kill_pending += 1;
        }
        self.faults.cores_failed += 1;
        self.faults.faults_applied += 1;
    }

    fn complete_request(&mut self, req: ReqId, now: Cycles) {
        let (server, village, cpu, blocked, queued) = {
            let r = &mut self.requests[req];
            r.phase = Phase::Done;
            (
                r.server,
                r.village,
                r.cpu_cycles,
                r.blocked_cycles,
                r.queued_cycles,
            )
        };
        self.completed += 1;
        let f = self.freq();
        self.cpu_per_invocation.record(cpu.as_micros(f));
        self.blocked_per_invocation.record(blocked.as_micros(f));
        self.queued_per_invocation.record(queued.as_micros(f));

        // The Complete instruction / software completion bookkeeping.
        let free_at = now + self.cfg.machine.sched_op_cost;

        // Reclaim the RQ slot and admit NIC-buffered requests (§4.3).
        if let Some(slot) = self.requests[req].rq_slot.take() {
            let mut admitted = Vec::new();
            if let VillageQueue::Hardware { rq, nic_buffer } =
                &mut self.servers[server].villages[village].queue
            {
                rq.complete(slot).expect("running entry completes");
                while let Some(&waiting) = nic_buffer.front() {
                    let service = self.requests[waiting].service().raw();
                    // The admitted request has been ready since its
                    // original (NIC-buffered) arrival.
                    match rq.enqueue_at(service, waiting, self.requests[waiting].enqueued_at) {
                        Ok(new_slot) => {
                            nic_buffer.pop_front();
                            admitted.push((waiting, new_slot));
                        }
                        Err(_) => break,
                    }
                }
            }
            for (waiting, slot) in admitted {
                self.requests[waiting].rq_slot = Some(slot);
            }
        }

        // Deliver the response, close the final span, and check the
        // conservation invariant against the request's whole lifetime.
        match self.requests[req].origin {
            Origin::Client { sent_at } => {
                let egress = self.servers[server].icn.hop_latency();
                let token = self.requests[req].cluster_token;
                // An injected request's client is the load balancer: the
                // rack-fabric legs (and any client RTT beyond the rack)
                // are charged by the cluster layer, not here.
                let rtt_us = if token.is_some() {
                    0.0
                } else {
                    params::CLIENT_RTT_US
                };
                let rtt = self.wall_cycles(rtt_us);
                let bd = {
                    let r = &mut self.requests[req];
                    debug_assert_eq!(r.spawned_at, sent_at);
                    r.breakdown.charge(Component::IcnTransit, egress);
                    r.breakdown.charge(Component::ExternalNet, rtt);
                    r.breakdown
                };
                self.breakdown.check(&bd, (now + egress - sent_at) + rtt);
                let latency_us = (now + egress - sent_at).as_micros(self.freq()) + rtt_us;
                let gave_up = self.requests[req].gave_up;
                if let Some(token) = token {
                    self.completions.push(NodeCompletion {
                        token,
                        finished_at: now + egress,
                        breakdown: bd,
                        gave_up,
                    });
                }
                if gave_up {
                    // An abandoned request's "latency" is an error
                    // response, not a service time: count it, don't
                    // sample it.
                    self.faults.gave_up_requests += 1;
                } else if sent_at >= self.warmup {
                    let freq = self.freq();
                    self.breakdown.record(&bd, freq);
                    self.latency.record(latency_us);
                    self.recorded += 1;
                }
            }
            Origin::Parent { req: parent, gen } => {
                let parent_village = self.requests[parent].village;
                let dst_cluster = self.core_cluster(server, parent_village);
                let src_cluster = self.core_cluster(server, village);
                let arrive = self.servers[server].icn.send(
                    src_cluster,
                    dst_cluster,
                    params::RESPONSE_BYTES,
                    now,
                );
                let bd = {
                    let r = &mut self.requests[req];
                    r.breakdown.charge(Component::IcnTransit, arrive - now);
                    r.breakdown
                };
                let spawned_at = self.requests[req].spawned_at;
                self.breakdown.check(&bd, arrive - spawned_at);
                let stale = {
                    let p = &self.requests[parent];
                    p.op_resolved || p.op_gen != gen || p.phase != Phase::Blocked
                };
                if stale {
                    // A losing attempt's child: conservation-checked
                    // above, but its operation already resolved (or was
                    // abandoned) — never merged into the parent.
                    self.faults.wasted_attempts += 1;
                } else if self.drop_p > 0.0 && self.fault_rng.gen::<f64>() < self.drop_p {
                    // The response leg is lost; the parent recovers
                    // through its timeout.
                    self.faults.drops += 1;
                } else {
                    // The winning attempt: the child's components cover
                    // [spawned_at, arrive]; the issue delay back to the
                    // operation start (zero for an unhedged primary) is
                    // resilience. Fold both into the parent, whose
                    // blocked interval they exactly tile.
                    let child_gave_up = self.requests[req].gave_up;
                    let p = &mut self.requests[parent];
                    p.breakdown.merge(&bd);
                    let resilience = spawned_at - p.op_started_at;
                    p.breakdown.charge(Component::Resilience, resilience);
                    p.gave_up |= child_gave_up;
                    p.op_resolved = true;
                    self.events
                        .schedule_at(arrive, Event::Unblock { req: parent });
                }
            }
        }

        self.events
            .schedule_at(free_at, Event::CoreFree { server, village });
    }

    fn into_report(mut self) -> RunReport {
        // Request conservation: with the event queue drained, every admitted
        // request must have reached Done and been counted exactly once.
        #[cfg(feature = "sim-sanitizer")]
        {
            for (id, r) in self.requests.iter().enumerate() {
                if r.phase != Phase::Done {
                    um_sim::sanitizer::report(
                        "request-conservation",
                        format!(
                            "request {id} ended the run in phase {:?}, not Done",
                            r.phase
                        ),
                    );
                }
            }
            if self.completed != self.requests.len() as u64 {
                um_sim::sanitizer::report(
                    "request-conservation",
                    format!(
                        "{} completions recorded for {} admitted requests",
                        self.completed,
                        self.requests.len()
                    ),
                );
            }
            // Fault accounting: every plan event must have either taken
            // effect or been explicitly masked — never silently vanished.
            let planned = self.cfg.fault_plan.len() as u64;
            if self.faults.faults_applied + self.faults.faults_masked != planned {
                um_sim::sanitizer::report(
                    "fault-accounting",
                    format!(
                        "{} applied + {} masked != {planned} planned fault events",
                        self.faults.faults_applied, self.faults.faults_masked
                    ),
                );
            }
            um_sim::sanitizer::assert_clean(&format!(
                "SystemSim run (seed {}, {} requests)",
                self.cfg.seed,
                self.requests.len()
            ));
        }
        self.latency.freeze();
        let total_core_cycles = (self.cfg.machine.total_cores() as u128)
            * (self.horizon.raw() as u128)
            * (self.cfg.servers as u128);
        let busy: u128 = self.servers.iter().map(|s| s.busy_cycles).sum();
        let icn_stats: Vec<um_net::NetworkStats> =
            self.servers.iter().map(|s| s.icn.stats()).collect();
        let icn_messages: u64 = icn_stats.iter().map(|s| s.messages).sum();
        let icn_queue: u64 = icn_stats.iter().map(|s| s.queue_cycles).sum();
        let conservation = self.breakdown.stats();
        let breakdown = self
            .cfg
            .trace
            .then(|| BreakdownReport::from_samples(&self.breakdown.samples));
        RunReport {
            latency: self.latency.summary(),
            queueing: self.queueing.summary(),
            cpu_per_invocation: self.cpu_per_invocation.summary(),
            blocked_per_invocation: self.blocked_per_invocation.summary(),
            queued_per_invocation: self.queued_per_invocation.summary(),
            latency_samples: self.latency,
            completed: self.completed,
            recorded: self.recorded,
            utilization: (busy as f64 / total_core_cycles as f64).min(1.0),
            ctx_switches: self.ctx_switches,
            steals: self.steals,
            rq_overflows: self.rq_overflows,
            instance_boots: self.instance_boots,
            icn_messages,
            icn_mean_queue_cycles: if icn_messages == 0 {
                0.0
            } else {
                icn_queue as f64 / icn_messages as f64
            },
            conservation,
            faults: self.faults,
            breakdown,
        }
    }

    /// Unbalances the fault-accounting totals so the `fault-accounting`
    /// sanitizer checker trips at the end of the run. Deliberate-violation
    /// tests only.
    #[cfg(feature = "sim-sanitizer")]
    #[doc(hidden)]
    pub fn corrupt_fault_accounting_for_sanitizer_test(&mut self) {
        self.faults.faults_applied += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use um_workload::apps::SocialNetwork;

    fn quick(machine: MachineConfig, rps: f64, seed: u64) -> RunReport {
        run_for(machine, rps, seed, 20_000.0)
    }

    /// Like [`quick`] but with an explicit horizon. Tail-latency
    /// assertions need enough post-warmup samples for a stable p99
    /// estimate (a 20 ms horizon yields only a few hundred requests), so
    /// tests comparing p99s run longer.
    fn run_for(machine: MachineConfig, rps: f64, seed: u64, horizon_us: f64) -> RunReport {
        SystemSim::new(SimConfig {
            machine,
            workload: Workload::social_mix(),
            rps_per_server: rps,
            servers: 1,
            horizon_us,
            warmup_us: horizon_us * 0.1,
            seed,
            ..SimConfig::default()
        })
        .run()
    }

    #[test]
    fn umanycore_completes_all_requests() {
        let r = quick(MachineConfig::umanycore(), 5_000.0, 1);
        assert!(r.completed > 50, "completed {}", r.completed);
        assert!(r.recorded > 0);
        assert!(r.latency.mean > 0.0);
        assert!(r.latency.p99 >= r.latency.p50);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = quick(MachineConfig::umanycore(), 5_000.0, 7);
        let b = quick(MachineConfig::umanycore(), 5_000.0, 7);
        assert_eq!(a.latency.p99, b.latency.p99);
        assert_eq!(a.completed, b.completed);
        let c = quick(MachineConfig::umanycore(), 5_000.0, 8);
        assert_ne!(a.latency.p99, c.latency.p99);
    }

    #[test]
    fn umanycore_beats_scaleout_tail() {
        let um = quick(MachineConfig::umanycore(), 10_000.0, 2);
        let so = quick(MachineConfig::scaleout(), 10_000.0, 2);
        assert!(
            um.latency.p99 < so.latency.p99,
            "uManycore {} vs ScaleOut {}",
            um.latency.p99,
            so.latency.p99
        );
    }

    #[test]
    fn scaleout_and_server_class_tails_comparable_at_mid_load() {
        // Figure 14b: at 10K RPS ScaleOut's tail is within ~25% of
        // ServerClass's (0.78x in the paper); neither dominates strongly.
        // A 100 ms horizon keeps the p99 estimator noise well inside the
        // asserted band (at 20 ms the ratio swings past 2.5x across
        // seeds purely from sampling error).
        let so = run_for(MachineConfig::scaleout(), 10_000.0, 3, 100_000.0);
        let sc = run_for(
            MachineConfig::server_class_iso_power(),
            10_000.0,
            3,
            100_000.0,
        );
        let ratio = so.latency.p99 / sc.latency.p99;
        // EXPERIMENTS.md documents that our ScaleOut model runs somewhat
        // worse than the paper's; the band below accepts that and the
        // noise of this reduced scale while still catching an order-of-
        // magnitude regression in either machine.
        assert!(
            (0.3..2.5).contains(&ratio),
            "ScaleOut/ServerClass tail ratio {ratio}"
        );
    }

    #[test]
    fn scaleout_beats_saturating_server_class_at_high_load() {
        // Figure 14c: at high RPS of a heavy application (ComposePost)
        // the 40-core ServerClass saturates; ScaleOut's 1024 cores pull
        // clearly ahead on tail latency. 25K RPS puts ServerClass firmly
        // past capacity so its backlog (and thus p99) grows throughout
        // the run — at 15K the two machines' tails are within estimator
        // noise of each other over this horizon.
        let run = |machine: MachineConfig| {
            SystemSim::new(SimConfig {
                machine,
                workload: Workload::social_app(SocialNetwork::CPOST),
                rps_per_server: 25_000.0,
                horizon_us: 60_000.0,
                warmup_us: 6_000.0,
                seed: 3,
                ..SimConfig::default()
            })
            .run()
        };
        let so = run(MachineConfig::scaleout());
        let sc = run(MachineConfig::server_class_iso_power());
        assert!(
            so.latency.p99 < sc.latency.p99,
            "ScaleOut {} vs ServerClass {}",
            so.latency.p99,
            sc.latency.p99
        );
    }

    #[test]
    fn server_class_utilization_bands() {
        // §5: 5K RPS is <30% utilization, 15K is >60% on ServerClass.
        let low = quick(MachineConfig::server_class_iso_power(), 5_000.0, 4);
        assert!(
            low.utilization < 0.35,
            "5K load utilization {}",
            low.utilization
        );
        let high = quick(MachineConfig::server_class_iso_power(), 15_000.0, 4);
        assert!(
            high.utilization > 0.5,
            "15K load utilization {}",
            high.utilization
        );
    }

    #[test]
    fn umanycore_runs_at_low_utilization() {
        let r = quick(MachineConfig::umanycore(), 15_000.0, 5);
        assert!(r.utilization < 0.2, "utilization {}", r.utilization);
    }

    #[test]
    fn tail_grows_with_load() {
        // 5K RPS is light load for ServerClass; 25K is past saturation,
        // so the tail must grow decisively. A 60 ms horizon gives the
        // backlog time to build and the p99 enough samples — the effect
        // is 3-5x across every seed at this scale, whereas a 15K
        // contrast over 20 ms is within p99 estimator noise.
        let lo = run_for(
            MachineConfig::server_class_iso_power(),
            5_000.0,
            6,
            60_000.0,
        );
        let hi = run_for(
            MachineConfig::server_class_iso_power(),
            25_000.0,
            6,
            60_000.0,
        );
        assert!(
            hi.latency.p99 > lo.latency.p99,
            "p99 at 25K ({}) should exceed p99 at 5K ({})",
            hi.latency.p99,
            lo.latency.p99
        );
    }

    #[test]
    fn per_app_workload_runs() {
        let r = SystemSim::new(SimConfig {
            machine: MachineConfig::umanycore(),
            workload: Workload::social_app(SocialNetwork::CPOST),
            rps_per_server: 3_000.0,
            horizon_us: 20_000.0,
            warmup_us: 2_000.0,
            seed: 9,
            ..SimConfig::default()
        })
        .run();
        assert!(r.completed > 20);
    }

    #[test]
    fn queue_override_changes_layout() {
        let one_queue = SystemSim::new(SimConfig {
            machine: MachineConfig::scaleout(),
            queues_override: Some(1),
            rps_per_server: 5_000.0,
            horizon_us: 10_000.0,
            warmup_us: 1_000.0,
            seed: 10,
            ..SimConfig::default()
        })
        .run();
        assert!(one_queue.completed > 10);
    }

    #[test]
    fn work_stealing_counts_steals() {
        let r = SystemSim::new(SimConfig {
            machine: MachineConfig::scaleout(),
            queues_override: Some(1024),
            work_stealing: true,
            rps_per_server: 5_000.0,
            horizon_us: 10_000.0,
            warmup_us: 1_000.0,
            seed: 11,
            ..SimConfig::default()
        })
        .run();
        assert!(r.steals > 0, "per-core queues should trigger steals");
    }

    #[test]
    fn ctx_switches_happen() {
        let r = quick(MachineConfig::scaleout(), 5_000.0, 12);
        // Every storage RPC blocks: several context switches per request.
        assert!(r.ctx_switches as f64 > r.completed as f64);
    }

    #[test]
    fn contention_free_icn_not_slower() {
        let base = SimConfig {
            machine: MachineConfig::scaleout(),
            rps_per_server: 20_000.0,
            horizon_us: 15_000.0,
            warmup_us: 1_000.0,
            seed: 13,
            ..SimConfig::default()
        };
        let with = SystemSim::new(base.clone()).run();
        let without = SystemSim::new(SimConfig {
            icn_contention: false,
            ..base
        })
        .run();
        assert!(without.latency.p99 <= with.latency.p99 * 1.05);
    }

    #[test]
    fn heterogeneous_villages_run_and_differ() {
        let homo = quick(MachineConfig::umanycore(), 8_000.0, 21);
        let hetero = quick(MachineConfig::umanycore_heterogeneous(32), 8_000.0, 21);
        assert!(hetero.completed > 50);
        // Big cores change segment timings, so the runs must diverge.
        assert_ne!(homo.latency.mean.to_bits(), hetero.latency.mean.to_bits());
    }

    #[test]
    fn train_ticket_runs_through_the_system() {
        let r = SystemSim::new(SimConfig {
            machine: MachineConfig::umanycore(),
            workload: Workload::train_mix(),
            rps_per_server: 5_000.0,
            horizon_us: 20_000.0,
            warmup_us: 2_000.0,
            seed: 31,
            ..SimConfig::default()
        })
        .run();
        assert!(r.completed > 50);
        assert!(r.latency.p99 > r.latency.p50);
    }

    #[test]
    fn breakdown_components_are_consistent() {
        let r = quick(MachineConfig::umanycore(), 8_000.0, 22);
        // Every completed invocation consumed some CPU.
        assert!(r.cpu_per_invocation.mean > 0.0);
        // An invocation's CPU share cannot exceed its end-to-end budget:
        // the mean root latency bounds the mean per-invocation components.
        assert!(r.cpu_per_invocation.mean < r.latency.mean);
        // Hardware machines do not queue-wait at these loads.
        assert!(r.queued_per_invocation.mean < 50.0);
    }

    #[test]
    fn conservation_is_exact_on_every_machine() {
        for machine in [
            MachineConfig::umanycore(),
            MachineConfig::scaleout(),
            MachineConfig::server_class_iso_power(),
        ] {
            let r = quick(machine, 8_000.0, 33);
            assert!(r.conservation.checked >= r.completed);
            assert!(
                r.conservation.exact(),
                "per-request breakdowns must sum to lifetimes: {:?}",
                r.conservation
            );
        }
    }

    #[test]
    fn tracing_collects_breakdowns_without_changing_timing() {
        let base = SimConfig {
            machine: MachineConfig::scaleout(),
            rps_per_server: 8_000.0,
            horizon_us: 15_000.0,
            warmup_us: 1_500.0,
            seed: 44,
            ..SimConfig::default()
        };
        let off = SystemSim::new(base.clone()).run();
        let on = SystemSim::new(SimConfig {
            trace: true,
            ..base
        })
        .run();
        assert!(off.breakdown.is_none(), "tracing is opt-in");
        // Tracing is pure observation: bit-identical results.
        assert_eq!(off.latency.p99.to_bits(), on.latency.p99.to_bits());
        assert_eq!(off.completed, on.completed);
        let bd = on.breakdown.expect("tracing collects a breakdown");
        // The per-component means sum back to the mean end-to-end latency
        // (conservation, modulo f64 cycle->us conversion noise).
        let err = (bd.mean_total_us() - on.latency.mean).abs();
        assert!(
            err <= on.latency.mean * 1e-9,
            "component means {} vs latency mean {}",
            bd.mean_total_us(),
            on.latency.mean
        );
    }

    #[test]
    fn srpt_policy_is_accepted_and_deterministic() {
        let run = |policy| {
            SystemSim::new(SimConfig {
                machine: MachineConfig::umanycore(),
                workload: Workload::social_mix(),
                rps_per_server: 8_000.0,
                horizon_us: 15_000.0,
                warmup_us: 1_500.0,
                seed: 23,
                dequeue_policy: policy,
                ..SimConfig::default()
            })
            .run()
        };
        let a = run(um_sched::DequeuePolicy::Srpt);
        let b = run(um_sched::DequeuePolicy::Srpt);
        assert_eq!(a.latency.p99.to_bits(), b.latency.p99.to_bits());
        assert!(a.completed > 20);
    }

    #[test]
    fn autoscaling_boots_instances_under_bursts() {
        let run = |autoscale: bool| {
            let mut machine = MachineConfig::umanycore();
            machine.rq_capacity = 8;
            SystemSim::new(SimConfig {
                machine,
                workload: Workload::social_mix(),
                rps_per_server: 120_000.0,
                // Long enough for the MMPP to visit its burst state
                // (~220 ms mean low-state sojourn).
                horizon_us: 150_000.0,
                warmup_us: 15_000.0,
                seed: 13,
                arrivals: crate::system::ArrivalProcess::Bursty,
                autoscale,
                ..SimConfig::default()
            })
            .run()
        };
        let off = run(false);
        let on = run(true);
        assert_eq!(off.instance_boots, 0);
        assert!(on.instance_boots > 0, "bursts must trigger boots");
        assert!(
            on.latency.p99 <= off.latency.p99,
            "pool-backed autoscaling must not hurt the tail: {} vs {}",
            on.latency.p99,
            off.latency.p99
        );
    }

    #[test]
    fn bursty_arrivals_are_deterministic_and_bursty() {
        let run = || {
            SystemSim::new(SimConfig {
                machine: MachineConfig::umanycore(),
                workload: Workload::social_mix(),
                rps_per_server: 10_000.0,
                horizon_us: 20_000.0,
                warmup_us: 2_000.0,
                seed: 17,
                arrivals: crate::system::ArrivalProcess::Bursty,
                ..SimConfig::default()
            })
            .run()
        };
        let a = run();
        let b = run();
        assert_eq!(a.latency.p99.to_bits(), b.latency.p99.to_bits());
        assert!(a.completed > 20);
    }

    #[test]
    #[should_panic(expected = "must divide")]
    fn bad_queue_override_rejected() {
        SystemSim::new(SimConfig {
            queues_override: Some(3),
            ..SimConfig::default()
        });
    }

    // ---- fault injection & tail mitigation -----------------------------

    use um_sched::{HedgeConfig, RetryConfig};
    use um_sim::fault::FaultWindow;

    fn faulted(
        machine: MachineConfig,
        plan: FaultPlan,
        mitigation: MitigationConfig,
        seed: u64,
        horizon_us: f64,
    ) -> RunReport {
        SystemSim::new(SimConfig {
            machine,
            workload: Workload::social_mix(),
            rps_per_server: 5_000.0,
            servers: 1,
            horizon_us,
            warmup_us: horizon_us * 0.1,
            seed,
            fault_plan: plan,
            mitigation,
            ..SimConfig::default()
        })
        .run()
    }

    #[test]
    fn empty_plan_and_noop_mitigation_change_nothing() {
        // The healthy-identity contract: a fault plan with no events and
        // an all-off mitigation config must be bit-identical to the
        // default configuration — no extra draws, events or charges.
        let baseline = quick(MachineConfig::umanycore(), 5_000.0, 7);
        let plumbed = faulted(
            MachineConfig::umanycore(),
            FaultPlan::builder(99).build(),
            MitigationConfig {
                steer: true, // inert without a plan
                ..MitigationConfig::default()
            },
            7,
            20_000.0,
        );
        assert_eq!(
            baseline.latency.p99.to_bits(),
            plumbed.latency.p99.to_bits()
        );
        assert_eq!(baseline.completed, plumbed.completed);
        assert_eq!(baseline.faults.rpc_ops, plumbed.faults.rpc_ops);
        assert_eq!(baseline.faults.rpc_attempts, plumbed.faults.rpc_ops);
        assert_eq!(baseline.faults.hedges, 0);
    }

    #[test]
    fn fault_runs_are_deterministic_per_seed() {
        let plan = FaultPlan::builder(3)
            .message_drops(0.02)
            .fail_slow_every_village(
                1,
                128,
                1,
                FaultWindow::new(Cycles::ZERO, Cycles::new(u64::MAX), 4.0),
            )
            .build();
        let mitigation = MitigationConfig {
            hedge: Some(HedgeConfig::after_quantile(0.95, 400.0)),
            retry: Some(RetryConfig::with_timeout_us(1_000.0)),
            steer: true,
        };
        let a = faulted(
            MachineConfig::umanycore(),
            plan.clone(),
            mitigation,
            11,
            20_000.0,
        );
        let b = faulted(MachineConfig::umanycore(), plan, mitigation, 11, 20_000.0);
        assert_eq!(a.latency.p99.to_bits(), b.latency.p99.to_bits());
        assert_eq!(a.faults, b.faults);
        assert_eq!(a.completed, b.completed);
        assert!(
            a.conservation.exact(),
            "conservation under faults: {:?}",
            a.conservation
        );
    }

    #[test]
    fn fail_stops_shrink_capacity_and_are_accounted() {
        let horizon = 20_000.0;
        let freq = MachineConfig::umanycore().core.frequency;
        let mut b = FaultPlan::builder(5);
        for v in 0..8 {
            b = b.core_fail_stop(0, v, Cycles::from_micros(horizon * 0.2, freq));
        }
        // One aimed past the machine: masked, not lost.
        let plan = b.core_fail_stop(7, 0, Cycles::ZERO).build();
        let r = faulted(
            MachineConfig::umanycore(),
            plan.clone(),
            MitigationConfig::default(),
            5,
            horizon,
        );
        assert_eq!(r.faults.cores_failed, 8);
        assert_eq!(r.faults.faults_applied, 8);
        assert_eq!(r.faults.faults_masked, 1);
        assert_eq!(
            r.faults.faults_applied + r.faults.faults_masked,
            plan.len() as u64
        );
        assert!(r.conservation.exact());
    }

    #[test]
    fn hedging_recovers_the_tail_under_fail_slow() {
        // The ISSUE acceptance scenario: one fail-slow core in every
        // 8-core village. Unmitigated, a sixth of the dispatches run 6x
        // slower and the p99 blows up; hedging re-issues slow operations
        // elsewhere and claws most of the tail back.
        let window = FaultWindow::new(Cycles::ZERO, Cycles::new(u64::MAX), 6.0);
        let plan = FaultPlan::builder(21)
            .fail_slow_every_village(1, 128, 1, window)
            .build();
        let horizon = 60_000.0;
        let healthy = faulted(
            MachineConfig::umanycore(),
            FaultPlan::none(),
            MitigationConfig::default(),
            9,
            horizon,
        );
        let degraded = faulted(
            MachineConfig::umanycore(),
            plan.clone(),
            MitigationConfig::default(),
            9,
            horizon,
        );
        let hedged = faulted(
            MachineConfig::umanycore(),
            plan,
            MitigationConfig {
                hedge: Some(HedgeConfig::after_quantile(0.95, 250.0)),
                ..MitigationConfig::default()
            },
            9,
            horizon,
        );
        assert!(
            degraded.latency.p99 > healthy.latency.p99 * 1.3,
            "fail-slow cores must hurt the tail: degraded {} vs healthy {}",
            degraded.latency.p99,
            healthy.latency.p99
        );
        assert!(hedged.faults.hedges > 0, "hedges must fire");
        assert!(
            hedged.latency.p99 < degraded.latency.p99,
            "hedging must recover tail latency: hedged {} vs degraded {}",
            hedged.latency.p99,
            degraded.latency.p99
        );
        assert!(hedged.conservation.exact(), "{:?}", hedged.conservation);
    }

    #[test]
    fn retries_recover_dropped_messages() {
        let plan = FaultPlan::builder(8).message_drops(0.02).build();
        let r = faulted(
            MachineConfig::umanycore(),
            plan,
            MitigationConfig {
                retry: Some(RetryConfig::with_timeout_us(1_500.0)),
                ..MitigationConfig::default()
            },
            31,
            40_000.0,
        );
        assert!(r.faults.drops > 0, "drops must be injected: {:?}", r.faults);
        assert!(r.faults.retries > 0, "retries must fire: {:?}", r.faults);
        assert!(r.conservation.exact(), "{:?}", r.conservation);
        // Retries keep nearly every request alive: far fewer give-ups
        // than dropped legs.
        assert!(
            r.faults.gave_up_requests * 4 < r.faults.drops,
            "retries must absorb most drops: {:?}",
            r.faults
        );
    }

    #[test]
    fn unmitigated_drops_give_up_and_are_excluded() {
        let plan = FaultPlan::builder(13).message_drops(0.05).build();
        let r = faulted(
            MachineConfig::umanycore(),
            plan,
            MitigationConfig::default(),
            17,
            40_000.0,
        );
        assert!(r.faults.drops > 0);
        assert!(
            r.faults.gave_up_ops > 0,
            "without retries a lost leg abandons the op: {:?}",
            r.faults
        );
        assert!(r.faults.gave_up_requests > 0);
        // Abandoned requests still complete (and conserve), they are just
        // not latency samples.
        assert!(r.conservation.exact(), "{:?}", r.conservation);
        assert!(r.completed > 0);
    }

    #[test]
    fn steering_routes_around_degraded_villages() {
        // Fully degrade a handful of villages; steering should dodge
        // them at dispatch time and keep the tail near healthy.
        let window = FaultWindow::new(Cycles::ZERO, Cycles::new(u64::MAX), 10.0);
        let mut b = FaultPlan::builder(2);
        for v in 0..16 {
            b = b.core_fail_slow(0, v, 8, window);
        }
        let plan = b.build();
        let horizon = 60_000.0;
        let blind = faulted(
            MachineConfig::umanycore(),
            plan.clone(),
            MitigationConfig::default(),
            41,
            horizon,
        );
        let steered = faulted(
            MachineConfig::umanycore(),
            plan,
            MitigationConfig {
                steer: true,
                ..MitigationConfig::default()
            },
            41,
            horizon,
        );
        assert!(
            steered.latency.p99 < blind.latency.p99,
            "steering must dodge degraded villages: steered {} vs blind {}",
            steered.latency.p99,
            blind.latency.p99
        );
    }

    #[test]
    fn link_outages_delay_but_conserve() {
        let freq = MachineConfig::umanycore().core.frequency;
        let outage = FaultWindow::new(
            Cycles::from_micros(2_000.0, freq),
            Cycles::from_micros(6_000.0, freq),
            f64::INFINITY,
        );
        let plan = FaultPlan::builder(6)
            .link_fault(0, 3, outage)
            .link_fault(
                0,
                11,
                FaultWindow::new(Cycles::ZERO, Cycles::new(u64::MAX), 3.0),
            )
            .build();
        let r = faulted(
            MachineConfig::umanycore(),
            plan.clone(),
            MitigationConfig::default(),
            19,
            20_000.0,
        );
        assert_eq!(r.faults.faults_applied, plan.len() as u64);
        assert!(r.conservation.exact(), "{:?}", r.conservation);
        assert!(r.completed > 0);
    }
}
