//! QoS-bounded throughput search (paper §6.5, Figure 18).
//!
//! "We say that a QoS violation occurs if the request execution time is
//! higher than 5 times the contention-free average request execution
//! time." The maximum throughput is the largest arrival rate whose P99
//! latency still meets that bound.

use crate::system::{SimConfig, SystemSim};

/// The paper's QoS multiplier over the contention-free average.
pub const QOS_MULTIPLIER: f64 = 5.0;

/// Quantile that must meet the bound. The paper defines the violation
/// condition but not the tolerated violation rate; we require 95% of
/// requests to meet it (a stricter P99 test makes the software baselines
/// violate even near idle, because their OS-interference tail already
/// sits near 5x the average).
pub const QOS_QUANTILE: f64 = 0.95;

/// Result of a QoS throughput search.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct QosResult {
    /// Highest compliant load found, requests per second per server.
    pub max_rps: f64,
    /// The QoS latency bound used, microseconds.
    pub bound_us: f64,
    /// Contention-free average latency, microseconds.
    pub contention_free_avg_us: f64,
}

/// Measures the contention-free average latency: a near-idle run of the
/// same machine and workload.
pub fn contention_free_avg_us(base: &SimConfig) -> f64 {
    let mut cfg = base.clone();
    cfg.rps_per_server = 100.0;
    cfg.horizon_us = base.horizon_us.max(100_000.0);
    cfg.warmup_us = cfg.horizon_us * 0.1;
    let report = SystemSim::new(cfg).run();
    report.latency.mean
}

/// Binary-searches the highest per-server RPS whose P99 stays within
/// `QOS_MULTIPLIER` x the contention-free average.
///
/// `lo` and `hi` bound the search in RPS; precision is 2% of `hi`.
///
/// # Panics
///
/// Panics unless `0 < lo < hi`.
pub fn max_qos_throughput(base: &SimConfig, lo: f64, hi: f64) -> QosResult {
    assert!(lo > 0.0 && lo < hi, "invalid search range {lo}..{hi}");
    let cf_avg = contention_free_avg_us(base);
    let bound = cf_avg * QOS_MULTIPLIER;

    let meets = |rps: f64| -> bool {
        let mut cfg = base.clone();
        cfg.rps_per_server = rps;
        let report = SystemSim::new(cfg).run();
        report.latency_samples.percentile(QOS_QUANTILE) <= bound && report.recorded > 0
    };

    let mut lo = lo;
    let mut hi = hi;
    // If even `lo` violates, report it as the (degenerate) maximum.
    if !meets(lo) {
        return QosResult {
            max_rps: lo,
            bound_us: bound,
            contention_free_avg_us: cf_avg,
        };
    }
    // Expand: if `hi` meets QoS the machine out-runs the search range.
    if meets(hi) {
        return QosResult {
            max_rps: hi,
            bound_us: bound,
            contention_free_avg_us: cf_avg,
        };
    }
    // Converge to ~5% relative precision at whatever magnitude the
    // machine sustains (an absolute cut-off tied to `hi` would starve
    // low-throughput machines of resolution).
    while hi - lo > lo * 0.05 + 50.0 {
        let mid = (lo + hi) / 2.0;
        if meets(mid) {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    QosResult {
        max_rps: lo,
        bound_us: bound,
        contention_free_avg_us: cf_avg,
    }
}

/// Runs several independent QoS searches — one per config — across the
/// sweep worker pool, returning results in input order.
///
/// Each search's internal binary search stays sequential (every probe
/// depends on the previous verdict); the parallelism is across configs,
/// which is how Figure 18 uses it (one search per machine per app).
/// Results are bit-identical to calling [`max_qos_throughput`] on each
/// config in turn.
pub fn max_qos_throughput_many(bases: Vec<SimConfig>, lo: f64, hi: f64) -> Vec<QosResult> {
    crate::experiments::parallel::map(bases, |_, base| max_qos_throughput(&base, lo, hi))
}

#[cfg(test)]
mod tests {
    use super::*;
    use um_arch::MachineConfig;

    fn base(machine: MachineConfig) -> SimConfig {
        SimConfig {
            machine,
            horizon_us: 20_000.0,
            warmup_us: 2_000.0,
            seed: 5,
            ..SimConfig::default()
        }
    }

    #[test]
    fn contention_free_average_is_positive() {
        let avg = contention_free_avg_us(&base(MachineConfig::umanycore()));
        assert!(avg > 100.0, "avg {avg}");
    }

    #[test]
    fn umanycore_outruns_server_class() {
        let um = max_qos_throughput(&base(MachineConfig::umanycore()), 1_000.0, 64_000.0);
        let sc = max_qos_throughput(
            &base(MachineConfig::server_class_iso_power()),
            1_000.0,
            64_000.0,
        );
        assert!(
            um.max_rps > 2.0 * sc.max_rps,
            "uManycore {} vs ServerClass {}",
            um.max_rps,
            sc.max_rps
        );
    }

    #[test]
    #[should_panic(expected = "invalid search range")]
    fn bad_range_rejected() {
        max_qos_throughput(&base(MachineConfig::umanycore()), 10.0, 5.0);
    }

    #[test]
    fn many_matches_individual_searches() {
        let bases = vec![
            base(MachineConfig::umanycore()),
            base(MachineConfig::server_class_iso_power()),
        ];
        let many = max_qos_throughput_many(bases.clone(), 1_000.0, 16_000.0);
        for (b, m) in bases.iter().zip(&many) {
            assert_eq!(*m, max_qos_throughput(b, 1_000.0, 16_000.0));
        }
    }
}
