//! The cluster-scale serving layer: a rack of μManycore packages behind a
//! front-end load balancer.
//!
//! The paper's tail-at-scale argument is ultimately a fleet argument, so
//! this module composes N per-package [`SystemSim`] instances — each one
//! the cycle-faithful full-system model — into one coupled discrete-event
//! simulation:
//!
//! - **One global clock.** A single calendar [`EventQueue`] carries the
//!   load balancer's arrivals, response deliveries and lazy per-node wake
//!   events; nodes are stepped in global time order through
//!   [`SystemSim::step`], so the whole rack advances on one cycle base.
//! - **Rack fabric.** An [`ExternalNetwork`] with the load balancer as an
//!   extra endpoint models the LB↔node legs: per-endpoint NIC egress
//!   queues, fixed propagation, and optional per-message jitter sampled
//!   from a [`ServiceTimeDist`].
//! - **Routing policies.** Random, round-robin, JSQ(d)
//!   (power-of-d-choices) and a central least-loaded queue, optionally
//!   with straggler-aware steering away from fault-degraded nodes (the
//!   node-level analogue of `um_sched`'s village steering).
//! - **Admission control and autoscaling.** A per-node in-flight cap
//!   backs requests up in the LB's FIFO; a watermark on fleet in-flight
//!   boots standby nodes after a boot delay (the rack-level analogue of
//!   the §3.5 instance autoscaling).
//! - **Latency provenance.** Every fleet request's breakdown is the
//!   node's in-package breakdown plus [`Component::ClusterHop`] (LB queue
//!   wait + both fabric legs) plus the client RTT, and must sum to the
//!   end-to-end latency to the cycle — the same conservation invariant
//!   the single-package simulator enforces.
//!
//! Determinism: a cluster run is a single serial event loop, node `i`
//! seeds from `derive_seed(cluster_seed, i)`, and every cluster-level
//! draw comes from named [`um_sim::rng`] streams — so sweeps stay
//! bit-identical at any `UM_THREADS`, and node counts change results
//! without ever aliasing seeds between nodes.

use crate::params;
use crate::report::{BreakdownReport, ConservationStats, RunReport};
use crate::system::{ArrivalProcess, BreakdownCollector, SimConfig, SystemSim};
use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;
use um_net::ExternalNetwork;
use um_sim::trace::{Component, LatencyBreakdown};
use um_sim::{rng as simrng, Cycles, EventQueue};
use um_stats::{Samples, Summary};
use um_workload::ServiceTimeDist;

/// How the load balancer picks a node for each arriving request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RoutingPolicy {
    /// Uniformly random over eligible nodes — the fleet behaves as N
    /// independent M/M/1-ish queues (the queueing-oracle baseline).
    Random,
    /// Cyclic over eligible nodes.
    RoundRobin,
    /// Power-of-d-choices: sample `d` distinct eligible nodes, dispatch
    /// to the one with the fewest requests in flight (ties break on the
    /// lower index). `d = 2` is the classic JSQ(2).
    JsqD {
        /// Nodes sampled per decision (at least 1).
        d: usize,
    },
    /// Full join-the-shortest-queue: dispatch to the least-loaded
    /// eligible node. With a per-node in-flight cap of 1 this is exactly
    /// an M/M/k central queue (the Erlang-C oracle).
    CentralQueue,
}

/// Cluster-level autoscaling: standby nodes boot when the fleet runs hot.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ClusterAutoscale {
    /// Nodes active from time zero (the rest are standby).
    pub initial_nodes: usize,
    /// Boot the next standby node when total in-flight exceeds this many
    /// requests per active node.
    pub hi_inflight_per_node: f64,
    /// Boot delay, microseconds (snapshot-backed boots are milliseconds;
    /// cold boots hundreds of milliseconds — §3.5).
    pub boot_us: f64,
}

/// The rack fabric between the load balancer and the nodes.
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterNetConfig {
    /// One-way propagation, microseconds (the paper's external network
    /// uses 0.5 µs across the 10-server cluster; a rack-scale fabric sits
    /// in the same regime).
    pub one_way_us: f64,
    /// NIC egress bandwidth per endpoint, GB/s.
    pub nic_gbps: f64,
    /// Optional per-message propagation jitter distribution,
    /// microseconds; `None` keeps the fabric deterministic per message.
    pub jitter_us: Option<ServiceTimeDist>,
    /// Request-leg message size, bytes.
    pub request_bytes: u64,
    /// Response-leg message size, bytes.
    pub response_bytes: u64,
}

impl Default for ClusterNetConfig {
    fn default() -> Self {
        Self {
            one_way_us: 0.5,
            nic_gbps: 200.0,
            jitter_us: None,
            request_bytes: params::REQUEST_BYTES,
            response_bytes: params::RESPONSE_BYTES,
        }
    }
}

/// Configuration of one cluster run.
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Per-package configuration template. `servers` is forced to 1 (one
    /// package per node), `arrivals` to [`ArrivalProcess::Injected`],
    /// `seed` to `derive_seed(cluster seed, node)`, and `fault_plan` to
    /// the rack plan's per-node projection; everything else (machine,
    /// workload, mitigation, autoscale, …) applies to every node as
    /// written.
    pub node: SimConfig,
    /// Number of packages in the rack.
    pub nodes: usize,
    /// Offered load per node, requests per second: the load balancer's
    /// aggregate arrival rate is `rps_per_node * nodes`.
    pub rps_per_node: f64,
    /// Fleet arrival process at the load balancer.
    ///
    /// # Panics
    ///
    /// [`ClusterSim::new`] rejects [`ArrivalProcess::Injected`] here —
    /// the cluster layer *is* the injector.
    pub arrivals: ArrivalProcess,
    /// Arrival horizon, microseconds.
    pub horizon_us: f64,
    /// Requests arriving before this are executed but not recorded.
    pub warmup_us: f64,
    /// Master seed for the whole rack.
    pub seed: u64,
    /// Load-balancer routing policy.
    pub routing: RoutingPolicy,
    /// Per-node admission cap: at most this many requests in flight per
    /// node; excess waits in the LB's FIFO. `None` disables admission
    /// control. Must be at least 1 when set.
    pub max_in_flight: Option<usize>,
    /// Straggler-aware steering: route around nodes the fault plan marks
    /// degraded (engages only when a plan exists, so healthy runs are
    /// draw-for-draw identical with steering on or off).
    pub steer: bool,
    /// Cluster-level autoscaling; `None` keeps every node active.
    pub autoscale: Option<ClusterAutoscale>,
    /// The rack fabric.
    pub net: ClusterNetConfig,
    /// Rack-level fault plan; node index = the plan's server index.
    pub fault_plan: um_sim::fault::FaultPlan,
    /// Collect per-component breakdown distributions into
    /// [`ClusterReport::breakdown`].
    pub trace: bool,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        Self {
            node: SimConfig::default(),
            nodes: 4,
            rps_per_node: 5_000.0,
            arrivals: ArrivalProcess::Poisson,
            horizon_us: 20_000.0,
            warmup_us: 2_000.0,
            seed: 42,
            routing: RoutingPolicy::JsqD { d: 2 },
            max_in_flight: None,
            steer: false,
            autoscale: None,
            net: ClusterNetConfig::default(),
            fault_plan: um_sim::fault::FaultPlan::none(),
            trace: false,
        }
    }
}

/// Outcome of one cluster run.
#[derive(Clone, Debug)]
pub struct ClusterReport {
    /// Fleet end-to-end latency digest (client send to response receipt).
    pub latency: Summary,
    /// The recorded fleet latency samples, microseconds.
    pub latency_samples: Samples,
    /// Cluster-hop share digest (LB wait + both fabric legs),
    /// microseconds.
    pub cluster_hop: Summary,
    /// Requests completed (including warm-up and gave-up requests).
    pub completed: u64,
    /// Requests recorded into the latency samples.
    pub recorded: u64,
    /// Requests that exhausted their RPC attempts inside a node.
    pub gave_up: u64,
    /// Requests dispatched to each node, by node index.
    pub dispatched_per_node: Vec<u64>,
    /// Largest LB admission-queue depth observed.
    pub peak_lb_queue: usize,
    /// Standby nodes booted by the autoscaler.
    pub boots: u64,
    /// Nodes active at the end of the run.
    pub active_nodes: usize,
    /// Events processed: node steps plus cluster-level events (the
    /// scaling-curve denominator for `BENCH_cluster.json`).
    pub events: u64,
    /// Fleet-level conservation accounting over every completed request.
    pub conservation: ConservationStats,
    /// Per-component fleet breakdown distributions (with
    /// [`ClusterConfig::trace`]).
    pub breakdown: Option<BreakdownReport>,
    /// Each node's own [`RunReport`], in node order.
    pub node_reports: Vec<RunReport>,
}

impl ClusterReport {
    /// Mean node utilization over the whole rack.
    pub fn mean_node_utilization(&self) -> f64 {
        if self.node_reports.is_empty() {
            return 0.0;
        }
        self.node_reports.iter().map(|r| r.utilization).sum::<f64>() // um-tidy: allow(float-accumulation) -- report-only mean over the fixed-order node vector
            / self.node_reports.len() as f64
    }
}

/// One fleet request's load-balancer-side state, indexed by token.
#[derive(Clone, Copy, Debug)]
struct LbRequest {
    /// When the client handed the request to the LB.
    sent_at: Cycles,
    /// Node it was dispatched to (`None` while waiting in the LB queue).
    node: Option<usize>,
    /// LB queue wait + request-leg fabric cycles.
    hop_req: Cycles,
    /// Response-leg fabric cycles (set when the node finishes).
    hop_resp: Cycles,
    /// The node's in-package breakdown (set when the node finishes).
    node_bd: LatencyBreakdown,
    /// Whether the node gave the request up.
    gave_up: bool,
}

/// Cluster-level events on the global calendar queue.
#[derive(Clone, Copy, Debug)]
enum ClusterEvent {
    /// A client request reaches the load balancer.
    Arrival,
    /// A node may have an internal event due now: step it once. Stale
    /// wakes (the node's next event moved) are skipped; the wake for the
    /// true next time is always on the calendar.
    NodeWake { node: usize },
    /// A node's response reaches the load balancer.
    Response { token: u64 },
    /// A standby node finishes booting and joins the active set.
    NodeUp { node: usize },
}

/// The rack simulator. Construct with [`ClusterSim::new`], run with
/// [`ClusterSim::run`].
pub struct ClusterSim {
    cfg: ClusterConfig,
    events: EventQueue<ClusterEvent>,
    nodes: Vec<SystemSim>,
    /// The rack fabric; endpoint `cfg.nodes` is the load balancer.
    fabric: ExternalNetwork,
    records: Vec<LbRequest>,
    /// Admission-queue FIFO of tokens waiting for a node slot.
    lb_queue: VecDeque<u64>,
    in_flight: Vec<u64>,
    dispatched: Vec<u64>,
    /// Nodes `0..active` serve traffic; the rest are standby.
    active: usize,
    /// Whether a standby boot is in flight (one at a time).
    booting: bool,
    boots: u64,
    /// Round-robin cursor.
    rr_next: usize,
    route_rng: SmallRng,
    jitter_rng: SmallRng,
    warmup: Cycles,
    // Statistics.
    latency: Samples,
    hop_us: Samples,
    completed: u64,
    recorded: u64,
    gave_up: u64,
    peak_lb_queue: usize,
    node_steps: u64,
    cluster_events: u64,
    breakdown: BreakdownCollector,
}

impl ClusterSim {
    /// Builds the rack: N seeded packages, the fabric, and the fleet
    /// arrival schedule.
    ///
    /// # Panics
    ///
    /// Panics on degenerate configurations: zero nodes, a non-positive
    /// horizon, [`ArrivalProcess::Injected`] fleet arrivals, an admission
    /// cap of zero, or an autoscale window wider than the fleet.
    pub fn new(cfg: ClusterConfig) -> Self {
        assert!(cfg.nodes > 0, "need at least one node");
        assert!(cfg.horizon_us > 0.0, "need a positive horizon");
        assert!(
            cfg.arrivals != ArrivalProcess::Injected,
            "the cluster layer is the injector; fleet arrivals must be Poisson or Bursty"
        );
        assert!(
            cfg.max_in_flight != Some(0),
            "an admission cap of zero would never dispatch"
        );
        let freq = cfg.node.machine.core.frequency;

        let active = match cfg.autoscale {
            Some(a) => {
                assert!(
                    a.initial_nodes >= 1 && a.initial_nodes <= cfg.nodes,
                    "autoscale initial_nodes must be in 1..=nodes"
                );
                a.initial_nodes
            }
            None => cfg.nodes,
        };

        // One package per node, fed by injection, seeded per node so no
        // two nodes share a random stream and a sweep point's rack is a
        // pure function of (cluster seed, node index).
        let nodes: Vec<SystemSim> = (0..cfg.nodes)
            .map(|i| {
                SystemSim::new(SimConfig {
                    servers: 1,
                    arrivals: ArrivalProcess::Injected,
                    seed: simrng::derive_seed(cfg.seed, i as u64),
                    rps_per_server: cfg.rps_per_node,
                    horizon_us: cfg.horizon_us,
                    warmup_us: cfg.warmup_us,
                    fault_plan: cfg.fault_plan.for_server(i),
                    trace: false,
                    ..cfg.node.clone()
                })
            })
            .collect();

        let fabric = ExternalNetwork::new(
            cfg.nodes + 1,
            Cycles::from_micros(cfg.net.one_way_us, freq),
            cfg.net.nic_gbps / freq.as_ghz(),
        );

        // Fleet arrivals: one merged stream at the aggregate rate (the
        // M/M/k oracle needs a single Poisson stream at λ = k·λ_node).
        let rate = cfg.rps_per_node * cfg.nodes as f64;
        let arrival_seed = simrng::stream(cfg.seed, "cluster-arrivals").gen::<u64>();
        let times = match cfg.arrivals {
            ArrivalProcess::Poisson => {
                um_workload::PoissonArrivals::new(rate, arrival_seed).within(cfg.horizon_us)
            }
            ArrivalProcess::Bursty => {
                let mut mmpp = um_workload::Mmpp::alibaba_like(rate, arrival_seed);
                mmpp.within(cfg.horizon_us)
            }
            ArrivalProcess::Injected => unreachable!("rejected above"),
        };
        let mut events = EventQueue::with_capacity(times.len() + 64);
        for t in &times {
            events.schedule_at(Cycles::from_micros(*t, freq), ClusterEvent::Arrival);
        }

        Self {
            events,
            fabric,
            records: Vec::with_capacity(times.len()),
            lb_queue: VecDeque::new(),
            in_flight: vec![0; cfg.nodes],
            dispatched: vec![0; cfg.nodes],
            active,
            booting: false,
            boots: 0,
            rr_next: 0,
            route_rng: simrng::stream(cfg.seed, "cluster-routing"),
            jitter_rng: simrng::stream(cfg.seed, "cluster-jitter"),
            warmup: Cycles::from_micros(cfg.warmup_us, freq),
            latency: Samples::new(),
            hop_us: Samples::new(),
            completed: 0,
            recorded: 0,
            gave_up: 0,
            peak_lb_queue: 0,
            node_steps: 0,
            cluster_events: 0,
            breakdown: BreakdownCollector::new(cfg.trace),
            nodes,
            cfg,
        }
    }

    /// Runs the rack to completion (every admitted request has its
    /// response delivered to the load balancer) and returns the report.
    pub fn run(mut self) -> ClusterReport {
        while let Some((now, event)) = self.events.pop() {
            self.cluster_events += 1;
            match event {
                ClusterEvent::Arrival => self.on_arrival(now),
                ClusterEvent::NodeWake { node } => self.on_node_wake(node, now),
                ClusterEvent::Response { token } => self.on_response(token, now),
                ClusterEvent::NodeUp { node } => self.on_node_up(node, now),
            }
        }
        self.into_report()
    }

    fn freq(&self) -> um_sim::Frequency {
        self.cfg.node.machine.core.frequency
    }

    /// The load balancer's fabric endpoint index.
    fn lb(&self) -> usize {
        self.cfg.nodes
    }

    /// Samples one fabric-jitter value, in cycles (zero without a
    /// distribution — no draw, so jitterless runs are draw-for-draw
    /// identical to runs predating the knob).
    fn sample_jitter(&mut self) -> Cycles {
        match &self.cfg.net.jitter_us {
            Some(dist) => {
                let us = dist.sample(&mut self.jitter_rng);
                Cycles::from_micros(us, self.freq())
            }
            None => Cycles::ZERO,
        }
    }

    // ---- event handlers ------------------------------------------------

    fn on_arrival(&mut self, now: Cycles) {
        let token = self.records.len() as u64;
        self.records.push(LbRequest {
            sent_at: now,
            node: None,
            hop_req: Cycles::ZERO,
            hop_resp: Cycles::ZERO,
            node_bd: LatencyBreakdown::new(),
            gave_up: false,
        });
        match self.route(now, false) {
            Some(node) => self.dispatch(token, node, now),
            None => {
                self.lb_queue.push_back(token);
                self.peak_lb_queue = self.peak_lb_queue.max(self.lb_queue.len());
            }
        }
        self.maybe_scale_up(now);
    }

    /// Picks a node for one request, or `None` when admission control
    /// leaves no eligible node. `require_slot` restricts the choice to
    /// below-cap nodes (queue drain); the arrival path lets the policy
    /// pick freely and queues if the pick is at its cap, which is what
    /// "random routing with per-node admission" means.
    fn route(&mut self, now: Cycles, require_slot: bool) -> Option<usize> {
        let cap = self.cfg.max_in_flight.map_or(u64::MAX, |c| c as u64);
        // Steering engages only when a fault plan exists (healthy runs
        // must not depend on the steer flag), and never empties the
        // candidate set.
        let steer = self.cfg.steer && !self.cfg.fault_plan.is_empty();
        let eligible: Vec<usize> = {
            let degraded = |n: usize| steer && self.cfg.fault_plan.is_degraded_server(n, now);
            let healthy: Vec<usize> = (0..self.active)
                .filter(|&n| !degraded(n) && (!require_slot || self.in_flight[n] < cap))
                .collect();
            if healthy.is_empty() {
                (0..self.active)
                    .filter(|&n| !require_slot || self.in_flight[n] < cap)
                    .collect()
            } else {
                healthy
            }
        };
        if eligible.is_empty() {
            return None;
        }
        let pick = match self.cfg.routing {
            RoutingPolicy::Random => eligible[self.route_rng.gen_range(0..eligible.len())],
            RoutingPolicy::RoundRobin => {
                // Next eligible node at or after the cursor, cyclically.
                let pick = eligible
                    .iter()
                    .copied()
                    .find(|&n| n >= self.rr_next)
                    .unwrap_or(eligible[0]);
                self.rr_next = (pick + 1) % self.active.max(1);
                pick
            }
            RoutingPolicy::JsqD { d } => {
                assert!(d >= 1, "JSQ(d) needs d >= 1");
                // Sample min(d, |eligible|) distinct candidates with a
                // partial Fisher-Yates over the eligible list.
                let mut pool = eligible.clone();
                let k = d.min(pool.len());
                let mut best: Option<(u64, usize)> = None;
                for i in 0..k {
                    let j = self.route_rng.gen_range(i..pool.len());
                    pool.swap(i, j);
                    let n = pool[i];
                    let key = (self.in_flight[n], n);
                    if best.is_none_or(|b| key < b) {
                        best = Some(key);
                    }
                }
                best.expect("k >= 1").1
            }
            RoutingPolicy::CentralQueue => eligible
                .into_iter()
                .min_by_key(|&n| (self.in_flight[n], n))
                .expect("nonempty"),
        };
        if !require_slot && self.in_flight[pick] >= cap {
            return None;
        }
        Some(pick)
    }

    fn dispatch(&mut self, token: u64, node: usize, now: Cycles) {
        let jitter = self.sample_jitter();
        let lb = self.lb();
        let tr =
            self.fabric
                .send_traced_jittered(lb, node, self.cfg.net.request_bytes, now, jitter);
        let rec = &mut self.records[token as usize];
        rec.node = Some(node);
        // LB queue wait (now - sent_at) plus the full request leg.
        rec.hop_req = tr.arrival - rec.sent_at;
        self.in_flight[node] += 1;
        self.dispatched[node] += 1;
        self.nodes[node].inject_arrival(tr.arrival, 0, token);
        self.wake(node);
    }

    /// Schedules a wake at the node's next internal event time. Called
    /// after every operation that can change that time, so the calendar
    /// always holds a wake at exactly the node's true next event (plus
    /// possibly stale earlier ones, which `on_node_wake` skips).
    fn wake(&mut self, node: usize) {
        if let Some(t) = self.nodes[node].next_event_time() {
            self.events.schedule_at(t, ClusterEvent::NodeWake { node });
        }
    }

    fn on_node_wake(&mut self, node: usize, now: Cycles) {
        if self.nodes[node].next_event_time() != Some(now) {
            return; // Stale: the node's next event moved; its wake exists.
        }
        self.nodes[node].step();
        self.node_steps += 1;
        let completions = self.nodes[node].drain_completions();
        for c in completions {
            let jitter = self.sample_jitter();
            let lb = self.lb();
            let tr = self.fabric.send_traced_jittered(
                node,
                lb,
                self.cfg.net.response_bytes,
                c.finished_at,
                jitter,
            );
            let rec = &mut self.records[c.token as usize];
            rec.hop_resp = tr.arrival - c.finished_at;
            rec.node_bd = c.breakdown;
            rec.gave_up = c.gave_up;
            self.events
                .schedule_at(tr.arrival, ClusterEvent::Response { token: c.token });
        }
        self.wake(node);
    }

    fn on_response(&mut self, token: u64, now: Cycles) {
        let rec = self.records[token as usize];
        let node = rec.node.expect("response implies dispatch");
        self.in_flight[node] -= 1;
        self.completed += 1;

        // Fleet end-to-end: LB wait + request leg + in-package lifetime +
        // response leg, plus the client RTT beyond the rack. The node's
        // breakdown covers exactly [injection, finished_at]; the hop
        // charges tile the rest, so conservation is cycle-exact.
        let rtt = Cycles::from_micros(params::CLIENT_RTT_US, self.freq());
        let mut bd = rec.node_bd;
        bd.charge(Component::ClusterHop, rec.hop_req + rec.hop_resp);
        bd.charge(Component::ExternalNet, rtt);
        self.breakdown.check(&bd, (now - rec.sent_at) + rtt);

        if rec.gave_up {
            self.gave_up += 1;
        } else if rec.sent_at >= self.warmup {
            let freq = self.freq();
            self.breakdown.record(&bd, freq);
            self.latency
                .record((now - rec.sent_at).as_micros(freq) + params::CLIENT_RTT_US);
            self.hop_us
                .record((rec.hop_req + rec.hop_resp).as_micros(freq));
            self.recorded += 1;
        }

        self.drain_lb_queue(now);
    }

    fn on_node_up(&mut self, node: usize, now: Cycles) {
        debug_assert_eq!(node, self.active, "nodes boot in index order");
        self.active += 1;
        self.booting = false;
        self.boots += 1;
        self.drain_lb_queue(now);
        self.maybe_scale_up(now);
    }

    /// Dispatches queued requests while a below-cap node exists.
    fn drain_lb_queue(&mut self, now: Cycles) {
        while !self.lb_queue.is_empty() {
            match self.route(now, true) {
                Some(node) => {
                    let token = self.lb_queue.pop_front().expect("nonempty");
                    self.dispatch(token, node, now);
                }
                None => break,
            }
        }
    }

    fn maybe_scale_up(&mut self, now: Cycles) {
        let Some(a) = self.cfg.autoscale else { return };
        if self.booting || self.active >= self.cfg.nodes {
            return;
        }
        let total: u64 = self.in_flight.iter().sum::<u64>() + self.lb_queue.len() as u64;
        if total as f64 > a.hi_inflight_per_node * self.active as f64 {
            self.booting = true;
            let boot = Cycles::from_micros(a.boot_us, self.freq());
            self.events
                .schedule_at(now + boot, ClusterEvent::NodeUp { node: self.active });
        }
    }

    fn into_report(mut self) -> ClusterReport {
        #[cfg(feature = "sim-sanitizer")]
        {
            // Fleet conservation: with the calendar drained, every
            // admitted request must have been dispatched and answered.
            if !self.lb_queue.is_empty() {
                um_sim::sanitizer::report(
                    "cluster-conservation",
                    format!(
                        "{} requests stranded in the LB queue at end of run",
                        self.lb_queue.len()
                    ),
                );
            }
            if let Some(n) = (0..self.cfg.nodes).find(|&n| self.in_flight[n] != 0) {
                um_sim::sanitizer::report(
                    "cluster-conservation",
                    format!(
                        "node {n} ended the run with {} requests in flight",
                        self.in_flight[n]
                    ),
                );
            }
            if self.completed != self.records.len() as u64 {
                um_sim::sanitizer::report(
                    "cluster-conservation",
                    format!(
                        "{} responses for {} admitted requests",
                        self.completed,
                        self.records.len()
                    ),
                );
            }
            um_sim::sanitizer::assert_clean(&format!(
                "ClusterSim run (seed {}, {} nodes, {} requests)",
                self.cfg.seed,
                self.cfg.nodes,
                self.records.len()
            ));
        }
        self.latency.freeze();
        let conservation = self.breakdown.stats();
        let breakdown = self
            .cfg
            .trace
            .then(|| BreakdownReport::from_samples(&self.breakdown.samples));
        // Each node's own end-of-run checks (request conservation, fault
        // accounting) run inside `finish`.
        let node_reports: Vec<RunReport> = self.nodes.into_iter().map(SystemSim::finish).collect();
        ClusterReport {
            latency: self.latency.summary(),
            cluster_hop: self.hop_us.summary(),
            latency_samples: self.latency,
            completed: self.completed,
            recorded: self.recorded,
            gave_up: self.gave_up,
            dispatched_per_node: self.dispatched,
            peak_lb_queue: self.peak_lb_queue,
            boots: self.boots,
            active_nodes: self.active,
            events: self.node_steps + self.cluster_events,
            conservation,
            breakdown,
            node_reports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workload::Workload;
    use um_arch::config::TopologyShape;
    use um_arch::MachineConfig;

    fn tiny(routing: RoutingPolicy) -> ClusterConfig {
        ClusterConfig {
            node: SimConfig {
                machine: MachineConfig::umanycore_shaped(TopologyShape::new(2, 2, 4)),
                workload: Workload::social_mix(),
                ..SimConfig::default()
            },
            nodes: 3,
            rps_per_node: 4_000.0,
            horizon_us: 8_000.0,
            warmup_us: 800.0,
            seed: 7,
            routing,
            ..ClusterConfig::default()
        }
    }

    #[test]
    fn all_policies_complete_every_request() {
        for routing in [
            RoutingPolicy::Random,
            RoutingPolicy::RoundRobin,
            RoutingPolicy::JsqD { d: 2 },
            RoutingPolicy::CentralQueue,
        ] {
            let r = ClusterSim::new(tiny(routing)).run();
            assert_eq!(
                r.completed,
                r.dispatched_per_node.iter().sum::<u64>(),
                "{routing:?}"
            );
            assert!(r.recorded > 0, "{routing:?}");
            assert!(r.conservation.exact(), "{routing:?}");
            assert_eq!(r.node_reports.len(), 3);
        }
    }

    #[test]
    fn runs_are_seed_deterministic() {
        let a = ClusterSim::new(tiny(RoutingPolicy::JsqD { d: 2 })).run();
        let b = ClusterSim::new(tiny(RoutingPolicy::JsqD { d: 2 })).run();
        assert_eq!(a.latency.p99.to_bits(), b.latency.p99.to_bits());
        assert_eq!(a.latency.mean.to_bits(), b.latency.mean.to_bits());
        assert_eq!(a.events, b.events);
        let mut c = tiny(RoutingPolicy::JsqD { d: 2 });
        c.seed = 8;
        let c = ClusterSim::new(c).run();
        assert_ne!(a.latency.mean.to_bits(), c.latency.mean.to_bits());
    }

    #[test]
    fn round_robin_spreads_evenly() {
        let r = ClusterSim::new(tiny(RoutingPolicy::RoundRobin)).run();
        let max = *r.dispatched_per_node.iter().max().unwrap();
        let min = *r.dispatched_per_node.iter().min().unwrap();
        assert!(max - min <= 1, "round-robin imbalance: {max} vs {min}");
    }

    #[test]
    fn admission_cap_backs_up_into_the_lb_queue() {
        let mut cfg = tiny(RoutingPolicy::CentralQueue);
        cfg.max_in_flight = Some(1);
        let r = ClusterSim::new(cfg).run();
        assert!(r.peak_lb_queue > 0, "a cap of 1 must queue at this load");
        assert_eq!(r.completed, r.dispatched_per_node.iter().sum::<u64>());
        assert!(r.conservation.exact());
    }

    #[test]
    fn jitter_perturbs_but_preserves_conservation() {
        let mut cfg = tiny(RoutingPolicy::JsqD { d: 2 });
        cfg.net.jitter_us = Some(ServiceTimeDist::exponential(2.0));
        let jittered = ClusterSim::new(cfg).run();
        let plain = ClusterSim::new(tiny(RoutingPolicy::JsqD { d: 2 })).run();
        assert!(jittered.conservation.exact());
        assert_ne!(
            jittered.latency.mean.to_bits(),
            plain.latency.mean.to_bits()
        );
        assert!(jittered.latency.mean > plain.latency.mean);
    }

    #[test]
    fn autoscale_boots_standby_nodes_under_load() {
        let mut cfg = tiny(RoutingPolicy::JsqD { d: 2 });
        cfg.rps_per_node = 12_000.0;
        cfg.autoscale = Some(ClusterAutoscale {
            initial_nodes: 1,
            hi_inflight_per_node: 4.0,
            boot_us: 500.0,
        });
        let r = ClusterSim::new(cfg).run();
        assert!(r.boots > 0, "hot fleet must boot standby nodes");
        assert_eq!(r.active_nodes, 1 + r.boots as usize);
        assert!(r.conservation.exact());
    }

    #[test]
    fn steering_routes_around_a_degraded_node() {
        use um_sim::fault::{FaultPlan, FaultWindow};
        let horizon =
            Cycles::from_micros(8_000.0, um_arch::MachineConfig::umanycore().core.frequency);
        // Node 1 is a straggler for the whole run.
        let plan = FaultPlan::builder(3)
            .core_fail_slow(1, 0, 1, FaultWindow::new(Cycles::ZERO, horizon, 8.0))
            .build();
        let mut cfg = tiny(RoutingPolicy::Random);
        cfg.fault_plan = plan;
        cfg.steer = true;
        let steered = ClusterSim::new(cfg.clone()).run();
        cfg.steer = false;
        let unsteered = ClusterSim::new(cfg).run();
        assert!(
            steered.dispatched_per_node[1] < unsteered.dispatched_per_node[1],
            "steering must shed load from the degraded node: {} vs {}",
            steered.dispatched_per_node[1],
            unsteered.dispatched_per_node[1]
        );
        assert!(steered.conservation.exact() && unsteered.conservation.exact());
    }

    #[test]
    fn cluster_hop_component_is_charged() {
        let mut cfg = tiny(RoutingPolicy::CentralQueue);
        cfg.trace = true;
        let r = ClusterSim::new(cfg).run();
        let bd = r.breakdown.expect("trace on");
        assert!(
            bd.component(Component::ClusterHop).mean > 0.0,
            "every fleet request pays the rack fabric"
        );
        assert!(r.cluster_hop.mean > 0.0);
    }

    #[test]
    #[should_panic(expected = "the cluster layer is the injector")]
    fn injected_fleet_arrivals_are_rejected() {
        let mut cfg = tiny(RoutingPolicy::Random);
        cfg.arrivals = ArrivalProcess::Injected;
        let _ = ClusterSim::new(cfg);
    }
}
