//! In-flight request state.

use um_sim::trace::LatencyBreakdown;
use um_sim::Cycles;
use um_workload::{RequestPlan, RpcKind, ServiceId};

/// Index of a request in the simulation's request table.
pub type ReqId = usize;

/// Who receives a request's final response.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Origin {
    /// An external client (latency is recorded when the response leaves).
    Client {
        /// Time the client sent the request.
        sent_at: Cycles,
    },
    /// A parent request blocked on this call.
    Parent {
        /// The blocked parent request.
        req: ReqId,
        /// The parent RPC operation this child answers. A response whose
        /// generation no longer matches the parent's current operation
        /// (a late hedge, a retried call's first attempt) is an orphan:
        /// its breakdown is conservation-checked but never merged.
        gen: u32,
    },
}

/// Lifecycle phase of a request.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Phase {
    /// Travelling to or waiting in its village's queue.
    Queued,
    /// Executing a segment on a core.
    Running,
    /// Blocked on an outstanding RPC.
    Blocked,
    /// Finished (response sent).
    Done,
}

/// One request's mutable simulation state.
#[derive(Clone, Debug)]
pub struct Request {
    /// The sampled execution plan.
    pub plan: RequestPlan,
    /// Which segment executes next (index into `plan.segments`).
    pub next_segment: usize,
    /// Current phase.
    pub phase: Phase,
    /// Where the final response goes.
    pub origin: Origin,
    /// Server the request executes on.
    pub server: usize,
    /// Village (queue) the request belongs to.
    pub village: usize,
    /// Whether the request has run on a core before (controls the
    /// migration-coherence charge and the context-restore cost).
    pub has_run: bool,
    /// Number of context switches this request has suffered.
    pub ctx_switches: u32,
    /// Cycles of CPU the request has consumed (for utilization stats).
    pub cpu_cycles: Cycles,
    /// Arrival time at the village queue (for queueing-delay stats).
    pub enqueued_at: Cycles,
    /// When the request last blocked on an RPC.
    pub blocked_at: Cycles,
    /// Total cycles spent blocked on RPCs so far.
    pub blocked_cycles: Cycles,
    /// Total cycles spent waiting in queues so far.
    pub queued_cycles: Cycles,
    /// Slot in the village's hardware Request Queue, when the machine
    /// schedules in hardware and the request is admitted.
    pub rq_slot: Option<um_sched::RqSlot>,
    /// When this request's lifetime began: the client send time for roots,
    /// the parent's call-issue time for child requests. The conservation
    /// invariant compares the breakdown total against the span from here
    /// to response delivery.
    pub spawned_at: Cycles,
    /// Cycle-exact latency attribution: where every cycle of this
    /// request's lifetime went. Components sum to the end-to-end latency
    /// (checked at completion); a child's breakdown is merged into its
    /// parent's when the response arrives.
    pub breakdown: LatencyBreakdown,
    /// RPC attempts issued by this request across all its operations
    /// (primary issues, hedges and retries).
    pub attempts: u32,
    /// Hedge attempts issued by this request.
    pub hedges: u32,
    /// Whether any RPC operation of this request (or of a merged child)
    /// exhausted its attempts; gave-up requests complete immediately and
    /// are excluded from latency samples.
    pub gave_up: bool,
    /// Generation of the current (or most recent) RPC operation; bumped
    /// when an operation begins, so stale attempt events are ignored.
    pub op_gen: u32,
    /// Whether the current operation has resolved (winner delivered or
    /// given up).
    pub op_resolved: bool,
    /// Attempts issued for the current operation.
    pub op_attempts: u32,
    /// When the current operation began (the block time); the gap to the
    /// winning attempt's issue time is charged to `Resilience`.
    pub op_started_at: Cycles,
    /// The RPC the current operation performs (needed to reissue it on a
    /// retry).
    pub op_rpc: Option<RpcKind>,
    /// Village the current operation's primary call attempt targeted
    /// (hedges prefer a different one).
    pub op_village: usize,
    /// Cluster-layer correlation token for injected root requests: the
    /// load balancer's request index. `None` for requests the package's
    /// own arrival process generated; `Some` routes the completion into
    /// the node's completion outbox instead of ending at the package edge.
    pub cluster_token: Option<u64>,
}

impl Request {
    /// Creates a freshly planned request bound to a village.
    pub fn new(plan: RequestPlan, origin: Origin, server: usize, village: usize) -> Self {
        assert!(
            !plan.segments.is_empty(),
            "a request plan needs at least one segment"
        );
        Self {
            plan,
            next_segment: 0,
            phase: Phase::Queued,
            origin,
            server,
            village,
            has_run: false,
            ctx_switches: 0,
            cpu_cycles: Cycles::ZERO,
            enqueued_at: Cycles::ZERO,
            blocked_at: Cycles::ZERO,
            blocked_cycles: Cycles::ZERO,
            queued_cycles: Cycles::ZERO,
            rq_slot: None,
            spawned_at: Cycles::ZERO,
            breakdown: LatencyBreakdown::new(),
            attempts: 0,
            hedges: 0,
            gave_up: false,
            op_gen: 0,
            op_resolved: true,
            op_attempts: 0,
            op_started_at: Cycles::ZERO,
            op_rpc: None,
            op_village: 0,
            cluster_token: None,
        }
    }

    /// The service this request invokes.
    pub fn service(&self) -> ServiceId {
        self.plan.service
    }

    /// Whether the segment about to run is the last one.
    pub fn on_last_segment(&self) -> bool {
        self.next_segment + 1 == self.plan.segments.len()
    }

    /// Whether all segments have run.
    pub fn is_complete(&self) -> bool {
        self.next_segment >= self.plan.segments.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use um_workload::{RpcKind, Segment};

    fn plan(n_segments: usize) -> RequestPlan {
        RequestPlan {
            service: ServiceId::new(1),
            segments: (0..n_segments)
                .map(|i| Segment {
                    compute_us: 10.0,
                    rpc: (i + 1 < n_segments).then_some(RpcKind::Storage { bytes: 64 }),
                })
                .collect(),
        }
    }

    #[test]
    fn lifecycle_flags() {
        let mut r = Request::new(
            plan(2),
            Origin::Client {
                sent_at: Cycles::ZERO,
            },
            0,
            3,
        );
        assert_eq!(r.phase, Phase::Queued);
        assert!(!r.on_last_segment() || r.plan.segments.len() == 1);
        r.next_segment = 1;
        assert!(r.on_last_segment());
        r.next_segment = 2;
        assert!(r.is_complete());
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_plan_rejected() {
        let empty = RequestPlan {
            service: ServiceId::new(0),
            segments: vec![],
        };
        Request::new(
            empty,
            Origin::Client {
                sent_at: Cycles::ZERO,
            },
            0,
            0,
        );
    }
}
