//! Workload selection for system runs.

use rand::Rng;
use um_workload::apps::SocialNetwork;
use um_workload::synthetic::SyntheticWorkload;
use um_workload::trainticket::TrainTicket;
use um_workload::{RequestPlan, ServiceGraph, ServiceId};

/// Which workload a system run draws requests from.
#[derive(Clone, Debug)]
pub enum Workload {
    /// One SocialNetwork root service (a Figure 14 per-app run); nested
    /// calls still reach the whole graph.
    SocialApp {
        /// The root service external requests invoke.
        root: ServiceId,
        /// The application graph.
        apps: SocialNetwork,
    },
    /// A uniform mix over all eight SocialNetwork roots (Figures 3, 6, 7).
    SocialMix {
        /// The application graph.
        apps: SocialNetwork,
    },
    /// A synthetic uSuite-style workload (Figure 20).
    Synthetic(SyntheticWorkload),
    /// Any custom application graph; `root` pins one externally invoked
    /// service, `None` draws uniformly over the graph's roots.
    Graph {
        /// The application graph.
        graph: ServiceGraph,
        /// Optional fixed root.
        root: Option<ServiceId>,
    },
}

impl Workload {
    /// A single-app SocialNetwork workload.
    pub fn social_app(root: ServiceId) -> Self {
        Workload::SocialApp {
            root,
            apps: SocialNetwork::new(),
        }
    }

    /// The uniform eight-app mix.
    pub fn social_mix() -> Self {
        Workload::SocialMix {
            apps: SocialNetwork::new(),
        }
    }

    /// A uniform mix over the TrainTicket suite's root services (§3 also
    /// characterizes TrainTicket; see `um_workload::trainticket`).
    pub fn train_mix() -> Self {
        Workload::Graph {
            graph: TrainTicket::new().into_graph(),
            root: None,
        }
    }

    /// A single TrainTicket root service.
    pub fn train_app(root: ServiceId) -> Self {
        Workload::Graph {
            graph: TrainTicket::new().into_graph(),
            root: Some(root),
        }
    }

    /// All service ids this workload can enqueue (used to populate
    /// ServiceMaps).
    pub fn services(&self) -> Vec<ServiceId> {
        match self {
            Workload::SocialApp { apps, .. } | Workload::SocialMix { apps } => {
                (0..apps.len() as u32).map(ServiceId::new).collect()
            }
            Workload::Synthetic(_) => vec![um_workload::synthetic::SYNTHETIC_SERVICE],
            Workload::Graph { graph, .. } => (0..graph.len() as u32).map(ServiceId::new).collect(),
        }
    }

    /// Samples the root service for the next external request.
    pub fn sample_root<R: Rng + ?Sized>(&self, rng: &mut R) -> ServiceId {
        match self {
            Workload::SocialApp { root, .. } => *root,
            Workload::SocialMix { .. } => {
                SocialNetwork::ALL[rng.gen_range(0..SocialNetwork::ALL.len())]
            }
            Workload::Synthetic(_) => um_workload::synthetic::SYNTHETIC_SERVICE,
            Workload::Graph { graph, root } => {
                root.unwrap_or_else(|| graph.roots()[rng.gen_range(0..graph.roots().len())])
            }
        }
    }

    /// Mean handler compute of a service in reference-core microseconds —
    /// the weight used to steer heavy services to big-core villages in the
    /// heterogeneous-villages extension (§8).
    pub fn service_weight(&self, service: ServiceId) -> f64 {
        match self {
            Workload::SocialApp { apps, .. } | Workload::SocialMix { apps } => {
                apps.profile(service).compute.mean()
            }
            Workload::Synthetic(w) => w.service_time.mean(),
            Workload::Graph { graph, .. } => graph.profile(service).compute.mean(),
        }
    }

    /// Samples an execution plan for a request of `service`.
    ///
    /// # Panics
    ///
    /// Panics if a synthetic workload is asked for a non-synthetic service.
    pub fn sample_plan<R: Rng + ?Sized>(&self, service: ServiceId, rng: &mut R) -> RequestPlan {
        match self {
            Workload::SocialApp { apps, .. } | Workload::SocialMix { apps } => {
                apps.sample_plan(service, rng)
            }
            Workload::Synthetic(w) => {
                assert_eq!(
                    service,
                    um_workload::synthetic::SYNTHETIC_SERVICE,
                    "synthetic workload only serves the synthetic service"
                );
                w.sample_plan(rng)
            }
            Workload::Graph { graph, .. } => graph.sample_plan(service, rng),
        }
    }

    /// Mean *tree* compute per external request in reference-core
    /// microseconds (handler time only, excluding the RPC software tax) —
    /// used for utilization estimates.
    pub fn mean_tree_compute_us<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Workload::SocialApp { root, apps } => {
                let n = 300;
                (0..n)
                    .map(|_| {
                        apps.expand_tree(*root, rng)
                            .iter()
                            .map(|p| p.compute_us())
                            .sum::<f64>() // um-tidy: allow(float-accumulation) -- serial fold over one expanded tree, fixed traversal order
                    })
                    .sum::<f64>() // um-tidy: allow(float-accumulation) -- serial Monte-Carlo mean with a fixed trial order
                    / n as f64
            }
            Workload::SocialMix { apps } => {
                let mut total = 0.0;
                for &root in &SocialNetwork::ALL {
                    for _ in 0..100 {
                        total += apps
                            .expand_tree(root, rng)
                            .iter()
                            .map(|p| p.compute_us())
                            .sum::<f64>(); // um-tidy: allow(float-accumulation) -- serial Monte-Carlo mean with a fixed trial order
                    }
                }
                total / (8.0 * 100.0)
            }
            Workload::Synthetic(w) => w.service_time.mean(),
            Workload::Graph { graph, root } => {
                let roots: Vec<ServiceId> = match root {
                    Some(r) => vec![*r],
                    None => graph.roots().to_vec(),
                };
                let n = 100;
                let mut total = 0.0;
                for &r0 in &roots {
                    for _ in 0..n {
                        total += graph
                            .expand_tree(r0, rng)
                            .iter()
                            .map(|p| p.compute_us())
                            .sum::<f64>(); // um-tidy: allow(float-accumulation) -- serial Monte-Carlo mean with a fixed trial order
                    }
                }
                total / (roots.len() * n) as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use um_workload::ServiceTimeDist;

    #[test]
    fn social_app_always_roots_at_app() {
        let w = Workload::social_app(SocialNetwork::SGRAPH);
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..20 {
            assert_eq!(w.sample_root(&mut rng), SocialNetwork::SGRAPH);
        }
        assert_eq!(w.services().len(), 11); // 8 roots + 3 backend tiers
    }

    #[test]
    fn mix_covers_all_roots() {
        let w = Workload::social_mix();
        let mut rng = SmallRng::seed_from_u64(2);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..500 {
            seen.insert(w.sample_root(&mut rng));
        }
        assert_eq!(seen.len(), 8);
    }

    #[test]
    fn synthetic_single_service() {
        let w = Workload::Synthetic(SyntheticWorkload::new(
            ServiceTimeDist::exponential(100.0),
            2,
            6,
        ));
        let mut rng = SmallRng::seed_from_u64(3);
        let svc = w.sample_root(&mut rng);
        let plan = w.sample_plan(svc, &mut rng);
        assert_eq!(plan.service, svc);
        assert_eq!(w.services(), vec![svc]);
    }

    #[test]
    fn train_ticket_workload_runs() {
        let w = Workload::train_mix();
        let mut rng = SmallRng::seed_from_u64(5);
        assert_eq!(w.services().len(), 12);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            let root = w.sample_root(&mut rng);
            seen.insert(root);
            let plan = w.sample_plan(root, &mut rng);
            assert_eq!(plan.service, root);
        }
        assert_eq!(seen.len(), 4, "all four TrainTicket roots appear");
        let pinned = Workload::train_app(um_workload::trainticket::TrainTicket::ORDER);
        assert_eq!(
            pinned.sample_root(&mut rng),
            um_workload::trainticket::TrainTicket::ORDER
        );
    }

    #[test]
    fn mean_tree_compute_positive() {
        let mut rng = SmallRng::seed_from_u64(4);
        assert!(Workload::social_mix().mean_tree_compute_us(&mut rng) > 100.0);
    }
}
