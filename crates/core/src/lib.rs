//! # uManycore — a cloud-native manycore CPU simulator for tail at scale
//!
//! This crate is the top of the reproduction of *uManycore: A Cloud-Native
//! CPU for Tail at Scale* (ISCA 2023): a discrete-event, full-system
//! simulator that composes the substrate crates (`um-sim`, `um-mem`,
//! `um-net`, `um-sched`, `um-workload`, `um-arch`) into the paper's three
//! machines and runs the paper's experiments end to end.
//!
//! ## What is modelled
//!
//! - **Machines**: ServerClass (40/128 IceLake-class cores, 2D mesh,
//!   software scheduling), ScaleOut (1024 A15-class cores, global
//!   coherence, fat tree, software scheduling), and uManycore (1024 cores
//!   in 8-core villages, leaf-spine ICN, hardware request queues, hardware
//!   context switching).
//! - **Requests**: sampled from the DeathStarBench-like SocialNetwork
//!   graph or the synthetic uSuite-style workloads; each request executes
//!   compute segments separated by blocking storage RPCs and synchronous
//!   downstream service calls, exactly as §3.3 characterizes.
//! - **Overheads**: software RPC-layer processing on cores vs hardware NIC
//!   processing (§4.3), context-switch save/restore costs with a
//!   centralized software dispatcher for the baselines (§4.4), coherence
//!   and migration overheads by domain size (§4.1), and on-package ICN
//!   contention by topology (§4.2).
//!
//! ## Quick start
//!
//! ```
//! use umanycore::{SimConfig, SystemSim, Workload};
//! use um_arch::MachineConfig;
//!
//! let cfg = SimConfig {
//!     machine: MachineConfig::umanycore(),
//!     workload: Workload::social_mix(),
//!     rps_per_server: 5_000.0,
//!     servers: 1,
//!     horizon_us: 30_000.0,
//!     seed: 42,
//!     ..SimConfig::default()
//! };
//! let report = SystemSim::new(cfg).run();
//! assert!(report.latency.count > 50);
//! assert!(report.latency.p99 >= report.latency.mean);
//! ```
//!
//! The `um-bench` crate contains one binary per paper figure/table; see
//! EXPERIMENTS.md at the repository root for the index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod experiments;
pub mod params;
pub mod qos;
pub mod report;
pub mod request;
pub mod system;
pub mod workload;

pub use cluster::{ClusterConfig, ClusterReport, ClusterSim, RoutingPolicy};
pub use report::{FaultStats, RunReport};
pub use system::{ArrivalProcess, SimConfig, SystemSim};
pub use workload::Workload;
