//! Results of a system run.

use um_stats::{Samples, Summary};

/// Aggregated results of one [`crate::SystemSim`] run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// End-to-end client latency digest, microseconds.
    pub latency: Summary,
    /// Raw end-to-end latency samples, microseconds.
    pub latency_samples: Samples,
    /// Village-queue waiting time digest (per dispatch), microseconds.
    pub queueing: Summary,
    /// CPU time per completed invocation, microseconds.
    pub cpu_per_invocation: Summary,
    /// Time blocked on RPCs per completed invocation, microseconds.
    pub blocked_per_invocation: Summary,
    /// Total queue-wait per completed invocation, microseconds.
    pub queued_per_invocation: Summary,
    /// Completed external requests.
    pub completed: u64,
    /// External requests recorded (completed after warm-up).
    pub recorded: u64,
    /// Mean core utilization across the run in `\[0, 1\]`.
    pub utilization: f64,
    /// Context switches performed.
    pub ctx_switches: u64,
    /// Work steals performed (software machines with stealing enabled).
    pub steals: u64,
    /// Requests that found a full hardware RQ and waited in the NIC.
    pub rq_overflows: u64,
    /// Service instances booted by the autoscaler (0 unless enabled).
    pub instance_boots: u64,
    /// Total ICN messages.
    pub icn_messages: u64,
    /// Mean ICN queueing delay per message, cycles.
    pub icn_mean_queue_cycles: f64,
}

impl RunReport {
    /// Tail latency (P99) in microseconds.
    pub fn tail_us(&self) -> f64 {
        self.latency.p99
    }

    /// Average latency in microseconds.
    pub fn avg_us(&self) -> f64 {
        self.latency.mean
    }

    /// Tail-to-average ratio (Figure 17).
    pub fn tail_to_avg(&self) -> f64 {
        self.latency.tail_to_avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_mirror_summary() {
        let samples: Samples = (1..=100).map(f64::from).collect();
        let report = RunReport {
            latency: samples.summary(),
            latency_samples: samples,
            queueing: Summary::default(),
            cpu_per_invocation: Summary::default(),
            blocked_per_invocation: Summary::default(),
            queued_per_invocation: Summary::default(),
            completed: 100,
            recorded: 100,
            utilization: 0.5,
            ctx_switches: 0,
            steals: 0,
            rq_overflows: 0,
            instance_boots: 0,
            icn_messages: 0,
            icn_mean_queue_cycles: 0.0,
        };
        assert_eq!(report.tail_us(), 99.0);
        assert_eq!(report.avg_us(), 50.5);
        assert!(report.tail_to_avg() > 1.0);
    }
}
