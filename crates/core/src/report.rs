//! Results of a system run.

use um_sim::trace::Component;
use um_stats::{Samples, Summary};

/// Cycle-exact latency-conservation accounting, maintained on every run
/// (tracing enabled or not). The invariant: each request's breakdown
/// components sum to its end-to-end lifetime exactly, so the totals match
/// and the max per-request error is zero.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConservationStats {
    /// Requests (roots and RPC children) whose breakdowns were checked.
    pub checked: u64,
    /// Largest per-request |breakdown total - end-to-end| seen, cycles.
    /// Non-zero means an attribution bug; debug builds assert on it at
    /// the offending request.
    pub max_error_cycles: u64,
    /// Sum of breakdown totals over all checked requests, cycles.
    pub breakdown_cycles: u128,
    /// Sum of end-to-end lifetimes over all checked requests, cycles.
    pub end_to_end_cycles: u128,
}

impl ConservationStats {
    /// Whether conservation held exactly for every checked request.
    pub fn exact(&self) -> bool {
        self.max_error_cycles == 0 && self.breakdown_cycles == self.end_to_end_cycles
    }
}

/// Measured per-component latency digests over recorded root requests
/// (each root's breakdown includes its merged RPC children), microseconds.
/// Produced when [`crate::SimConfig::trace`] is enabled.
#[derive(Clone, Debug)]
pub struct BreakdownReport {
    /// One digest per [`Component`], indexed by [`Component::index`].
    components: Vec<Summary>,
}

impl BreakdownReport {
    /// Digests per-component sample sets (indexed by [`Component::index`]).
    ///
    /// # Panics
    ///
    /// Panics unless `samples` has exactly [`Component::COUNT`] entries.
    pub fn from_samples(samples: &[Samples]) -> Self {
        assert_eq!(
            samples.len(),
            Component::COUNT,
            "one sample set per component"
        );
        Self {
            components: samples.iter().map(Samples::summary).collect(),
        }
    }

    /// The digest for one component.
    pub fn component(&self, c: Component) -> &Summary {
        &self.components[c.index()]
    }

    /// Iterates `(component, digest)` pairs in [`Component::ALL`] order.
    pub fn components(&self) -> impl Iterator<Item = (Component, &Summary)> {
        Component::ALL.iter().map(|&c| (c, self.component(c)))
    }

    /// The component with the largest mean share — "what dominates
    /// latency" for golden-shape assertions.
    pub fn dominant(&self) -> Component {
        Component::ALL
            .iter()
            .copied()
            .max_by(|&a, &b| self.component(a).mean.total_cmp(&self.component(b).mean))
            .expect("ALL is nonempty")
    }

    /// Sum of per-component means, microseconds — equals the mean
    /// end-to-end latency when conservation holds (up to f64 rounding in
    /// the cycle->us conversion).
    pub fn mean_total_us(&self) -> f64 {
        Component::ALL.iter().map(|&c| self.component(c).mean).sum()
    }
}

/// Fault-injection and tail-mitigation accounting for one run. All zeros
/// for a healthy run with mitigation off (except `rpc_ops`/`rpc_attempts`,
/// which count every blocking RPC operation and its primary issues).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Blocking RPC operations begun (storage reads + service calls).
    pub rpc_ops: u64,
    /// Attempts issued across all operations (primaries + hedges +
    /// retries).
    pub rpc_attempts: u64,
    /// Hedge (backup) attempts issued.
    pub hedges: u64,
    /// Retry attempts issued after a timeout.
    pub retries: u64,
    /// Losing attempts: deliveries that arrived after their operation had
    /// already resolved (or been abandoned).
    pub wasted_attempts: u64,
    /// Message legs lost to injected drops.
    pub drops: u64,
    /// Operations that exhausted their attempts and were abandoned.
    pub gave_up_ops: u64,
    /// Root requests that completed in a gave-up state (excluded from
    /// latency samples).
    pub gave_up_requests: u64,
    /// Cores removed by fail-stop events.
    pub cores_failed: u64,
    /// Plan events that took effect (installed or fired).
    pub faults_applied: u64,
    /// Plan events that could not take effect (out-of-range target, or a
    /// fail-stop refused to kill a village's last core).
    pub faults_masked: u64,
}

/// Aggregated results of one [`crate::SystemSim`] run.
#[derive(Clone, Debug)]
pub struct RunReport {
    /// End-to-end client latency digest, microseconds.
    pub latency: Summary,
    /// Raw end-to-end latency samples, microseconds.
    pub latency_samples: Samples,
    /// Village-queue waiting time digest (per dispatch), microseconds.
    pub queueing: Summary,
    /// CPU time per completed invocation, microseconds.
    pub cpu_per_invocation: Summary,
    /// Time blocked on RPCs per completed invocation, microseconds.
    pub blocked_per_invocation: Summary,
    /// Total queue-wait per completed invocation, microseconds.
    pub queued_per_invocation: Summary,
    /// Completed external requests.
    pub completed: u64,
    /// External requests recorded (completed after warm-up).
    pub recorded: u64,
    /// Mean core utilization across the run in `\[0, 1\]`.
    pub utilization: f64,
    /// Context switches performed.
    pub ctx_switches: u64,
    /// Work steals performed (software machines with stealing enabled).
    pub steals: u64,
    /// Requests that found a full hardware RQ and waited in the NIC.
    pub rq_overflows: u64,
    /// Service instances booted by the autoscaler (0 unless enabled).
    pub instance_boots: u64,
    /// Total ICN messages.
    pub icn_messages: u64,
    /// Mean ICN queueing delay per message, cycles.
    pub icn_mean_queue_cycles: f64,
    /// Latency-conservation accounting (always maintained).
    pub conservation: ConservationStats,
    /// Fault-injection and mitigation accounting (always maintained).
    pub faults: FaultStats,
    /// Per-component latency digests; `Some` when tracing was enabled.
    pub breakdown: Option<BreakdownReport>,
}

impl RunReport {
    /// Tail latency (P99) in microseconds.
    pub fn tail_us(&self) -> f64 {
        self.latency.p99
    }

    /// Average latency in microseconds.
    pub fn avg_us(&self) -> f64 {
        self.latency.mean
    }

    /// Tail-to-average ratio (Figure 17).
    pub fn tail_to_avg(&self) -> f64 {
        self.latency.tail_to_avg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accessors_mirror_summary() {
        let samples: Samples = (1..=100).map(f64::from).collect();
        let report = RunReport {
            latency: samples.summary(),
            latency_samples: samples,
            queueing: Summary::default(),
            cpu_per_invocation: Summary::default(),
            blocked_per_invocation: Summary::default(),
            queued_per_invocation: Summary::default(),
            completed: 100,
            recorded: 100,
            utilization: 0.5,
            ctx_switches: 0,
            steals: 0,
            rq_overflows: 0,
            instance_boots: 0,
            icn_messages: 0,
            icn_mean_queue_cycles: 0.0,
            conservation: ConservationStats::default(),
            faults: FaultStats::default(),
            breakdown: None,
        };
        assert_eq!(report.tail_us(), 99.0);
        assert_eq!(report.avg_us(), 50.5);
        assert!(report.tail_to_avg() > 1.0);
        assert!(report.conservation.exact(), "empty accounting is exact");
    }

    #[test]
    fn breakdown_report_digests_components() {
        let mut samples: Vec<Samples> = (0..Component::COUNT).map(|_| Samples::new()).collect();
        samples[Component::Compute.index()].record(10.0);
        samples[Component::Compute.index()].record(20.0);
        samples[Component::QueueWait.index()].record(4.0);
        let bd = BreakdownReport::from_samples(&samples);
        assert_eq!(bd.component(Component::Compute).mean, 15.0);
        assert_eq!(bd.component(Component::QueueWait).count, 1);
        assert_eq!(bd.dominant(), Component::Compute);
        assert_eq!(bd.mean_total_us(), 19.0);
        assert_eq!(bd.components().count(), Component::COUNT);
    }

    #[test]
    fn conservation_exactness() {
        let ok = ConservationStats {
            checked: 10,
            max_error_cycles: 0,
            breakdown_cycles: 1_000,
            end_to_end_cycles: 1_000,
        };
        assert!(ok.exact());
        assert!(!ConservationStats {
            max_error_cycles: 1,
            ..ok
        }
        .exact());
        assert!(!ConservationStats {
            breakdown_cycles: 999,
            ..ok
        }
        .exact());
    }
}
