//! Calibration parameters of the system simulator.
//!
//! Every magic number the simulator needs lives here, with the paper (or
//! cited-work) justification next to it. Values suffixed `_US` are
//! microseconds; "reference-core" values scale with core speed, while
//! "wall-clock" values do not (they are dominated by fixed-latency events
//! — NIC DMA, PCIe doorbells, interrupts, kernel crossings — and therefore
//! cost the 3 GHz ServerClass core as much wall time as the 2 GHz
//! manycore core, while still *occupying* the core).

/// Software RPC-layer processing of one *incoming* request (wall-clock,
/// occupies a core): transport, header parsing, deserialization, dispatch
/// through the service framework. Production studies (Accelerometer \[72\],
/// SoftSKU \[73\], Cerebros \[62\]) attribute a large, largely
/// frequency-insensitive per-request tax to this orchestration layer; at
/// ~180 us per invocation it makes 5/10/15 K RPS land in the paper's
/// <30% / 30–60% / >60% utilization bands on the 40-core ServerClass
/// (§5).
pub const SW_RPC_PROC_US: f64 = 180.0;

/// Software cost to issue or receive one RPC (wall-clock, occupies a
/// core): serialization, socket/NIC doorbells, interrupt or poll
/// handling. Charged per blocking-call issue and per response receipt on
/// the baselines.
pub const SW_RPC_MSG_US: f64 = 30.0;

/// uManycore's village NIC performs all RPC-layer processing in hardware
/// (§4.3); the residual on-core cost is a pipeline hand-off.
pub const HW_RPC_PROC_US: f64 = 0.05;

/// Hardware per-message RPC cost on the core (doorbell write).
pub const HW_RPC_MSG_US: f64 = 0.02;

/// Mean *external* storage service time (lognormal, scv 0.25): the rare
/// disk/replication path a backend tier takes (most storage requests are
/// served by the on-package Redis/MongoDB/Memcached service tiers — see
/// `um_workload::apps`).
pub const STORAGE_MEAN_US: f64 = 100.0;

/// Request payload bytes moved through the ICN per dispatch/call.
pub const REQUEST_BYTES: u64 = 512;

/// Response payload bytes.
pub const RESPONSE_BYTES: u64 = 1024;

/// Fixed client-side round trip added to every end-to-end latency (the
/// request's journey from the client to the cluster and back; Table 2's
/// 1 us inter-server RTT).
pub const CLIENT_RTT_US: f64 = 1.0;

/// Software work-stealing cost per successful steal (cross-queue locking;
/// §3.2 notes stealing's overheads can exceed its benefit at low
/// imbalance). Wall-clock.
pub const STEAL_COST_US: f64 = 1.0;

/// Top-level NIC ingress processing (hardware on every machine).
pub const NIC_INGRESS_US: f64 = 0.1;

/// On-package memory-system traffic (cache refetch, write-backs, LLC and
/// directory messages) generated per microsecond a core is occupied, for
/// machines with *global* hardware coherence: every invocation pulls its
/// working set across the package (§3.1's remote directory/cache
/// accesses). ~2.8 KB per occupied microsecond refetches a ~1 MB
/// working set (footprint, write-backs, directory messages) per ~350 us
/// invocation — the no-locality worst case §3.5 argues conventional
/// machines pay; it drives the 2D mesh past its bisection capacity at
/// 50 K RPS (Figure 7's regime) while leaving the 5 K evaluation load
/// below the knee, as in the paper.
pub const MEM_BYTES_PER_US_GLOBAL: f64 = 2_800.0;

/// Bulk memory traffic is moved in this many pipelined chunks per
/// segment; on the leaf-spine each chunk can take a different redundant
/// path (the §4.2 advantage), while tree topologies serialize them.
pub const MEM_TRAFFIC_CHUNKS: u64 = 8;

/// The same traffic under village-scale coherence with per-cluster
/// memory pools: refetches stay inside the cluster (self-send through the
/// local hub), so they occupy no shared ICN links.
pub const MEM_BYTES_PER_US_VILLAGE: f64 = 350.0;

/// Software-interference "hiccups": the tail-at-scale mechanism \[16\].
/// On the baselines, each executed segment has a small probability of
/// colliding with kernel preemption, interrupt storms, timer ticks, TCP
/// retransmission work or background daemons — rare, large,
/// core-occupying delays that dominate the 99th percentile even at low
/// utilization. uManycore removes the software stack from the request
/// path and partitions villages per service ("ensures a more predictable
/// performance and minimizes any negative interference", §4.1), so it
/// does not suffer them.
pub const SW_HICCUP_P: f64 = 0.01;

/// Mean hiccup magnitude, microseconds (exponentially distributed).
pub const SW_HICCUP_MEAN_US: f64 = 3_000.0;

/// Cost of one software queue operation's critical section, in cycles
/// *per core sharing the queue*: cache-line ping-pong makes the atomic
/// section grow with the sharer count — §3.2's "high synchronization
/// overheads" of fully centralized queues. ~19 cycles/sharer (~10 ns of
/// coherence traffic per contending core) puts one fully shared queue past
/// the edge of lock saturation at 50 K RPS, which is where Figure 3's
/// single-queue tail blow-up comes from.
pub const SW_QUEUE_LOCK_CYCLES_PER_SHARER: f64 = 25.0;

/// Fallback RPC-attempt timeout, microseconds, used when message drops
/// are injected but no retry policy is configured: a lost leg must not
/// strand the operation forever, so it is declared lost (and the request
/// gives up) after this long. Generous against the ~100 us storage mean
/// and the few-ms tails of degraded runs.
pub const DEFAULT_RPC_TIMEOUT_US: f64 = 5_000.0;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents a calibration rule
    fn software_tax_dwarfs_hardware() {
        assert!(SW_RPC_PROC_US > 100.0 * HW_RPC_PROC_US);
        assert!(SW_RPC_MSG_US > 100.0 * HW_RPC_MSG_US);
    }

    #[test]
    fn server_class_utilization_bands() {
        // ~6 invocations per root tree (um_workload::apps), each occupying
        // a ServerClass core for handler-compute/2.37 plus the wall-clock
        // software tax. §5: 5/10/15K RPS <=> <30%, 30-60%, >60%.
        let per_invocation_us = 120.0 / 2.37 + SW_RPC_PROC_US + 2.0 * SW_RPC_MSG_US;
        let tree = 6.2;
        let busy = |rps: f64| rps * tree * per_invocation_us / 1e6 / 40.0;
        assert!(busy(5_000.0) < 0.33, "5K RPS utilization {}", busy(5_000.0));
        assert!(
            (0.3..0.72).contains(&busy(10_000.0)),
            "10K RPS utilization {}",
            busy(10_000.0)
        );
        assert!(
            busy(15_000.0) > 0.6,
            "15K RPS utilization {}",
            busy(15_000.0)
        );
    }

    #[test]
    fn low_load_ratio_favors_umanycore() {
        // Per-invocation latency at idle: uManycore pays only handler
        // compute; ServerClass adds the software tax (partly offset by its
        // faster core). The paper's Figure 16a shows ~2.3x.
        let um = 120.0;
        let sc = 120.0 / 2.37 + SW_RPC_PROC_US + 2.0 * SW_RPC_MSG_US;
        let ratio = sc / um;
        assert!((1.6..3.2).contains(&ratio), "idle latency ratio {ratio}");
    }
}
