//! Deterministic parallel sweep runner.
//!
//! Experiment drivers fan independent simulation points out across a
//! worker pool and reassemble the results in input order, so a sweep's
//! output is **bit-identical** to a serial evaluation regardless of
//! thread count or scheduling. Two properties make that hold:
//!
//! 1. Every point is self-contained: a closure over owned inputs (e.g.
//!    a [`SimConfig`]) whose randomness comes only from its own seed,
//!    derived via [`um_sim::rng::derive_seed`] from the sweep's master
//!    seed and the point's index — never from execution order.
//! 2. Results are written back by input index, not completion order.
//!
//! The pool size comes from the `UM_THREADS` environment variable
//! (default: the machine's available parallelism; `UM_THREADS=1` forces
//! the serial path). [`map_with_threads`] takes the thread count as an
//! argument for race-free testing.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

use crate::report::RunReport;
use crate::system::{SimConfig, SystemSim};

/// Environment variable selecting the sweep worker-pool size.
pub const THREADS_ENV: &str = "UM_THREADS";

/// Returns the worker-pool size: `UM_THREADS` if set to a positive
/// integer, otherwise the machine's available parallelism (1 if
/// unknown).
pub fn threads() -> usize {
    // um-tidy: allow(env-read) -- UM_THREADS only sizes the worker pool; the sweep merge is deterministic at any value
    match std::env::var(THREADS_ENV) {
        Ok(v) => threads_from_value(Some(&v)),
        Err(_) => threads_from_value(None),
    }
}

/// [`threads`] with the environment value passed explicitly, so tests
/// can exercise the parsing without mutating process state.
pub fn threads_from_value(value: Option<&str>) -> usize {
    value
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
}

/// Maps `f` over `items` on the [`threads`]-sized pool, preserving
/// input order. `f` receives each item's index alongside the item so
/// callers can derive per-point seeds from it.
pub fn map<T, U, F>(items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    map_with_threads(threads(), items, f)
}

/// [`map`] with an explicit thread count.
///
/// `n <= 1` runs serially on the calling thread. Any `n` yields the
/// same output: workers pull indices from a shared counter, evaluate
/// points independently, and results are merged back by index.
pub fn map_with_threads<T, U, F>(n: usize, items: Vec<T>, f: F) -> Vec<U>
where
    T: Send,
    U: Send,
    F: Fn(usize, T) -> U + Sync,
{
    let len = items.len();
    if n <= 1 || len <= 1 {
        return items
            .into_iter()
            .enumerate()
            .map(|(i, t)| f(i, t))
            .collect();
    }

    // Each slot is taken exactly once by the worker that claims its
    // index, so the Mutex is uncontended; it exists only to hand owned
    // items across threads.
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let next = AtomicUsize::new(0);
    let workers = n.min(len);

    let mut results: Vec<(usize, U)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= len {
                            break;
                        }
                        let item = slots[i]
                            .lock()
                            .expect("sweep slot lock poisoned")
                            .take()
                            .expect("sweep slot claimed twice");
                        local.push((i, f(i, item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("sweep worker panicked"))
            .collect()
    });

    // Completion order varies with scheduling; input order does not.
    results.sort_by_key(|&(i, _)| i);
    debug_assert_eq!(results.len(), len);
    results.into_iter().map(|(_, u)| u).collect()
}

/// Runs a batch of fully-specified simulation points in parallel,
/// returning reports in input order.
///
/// The caller fixes each config's seed (typically via
/// [`um_sim::rng::derive_seed`]); this function adds no randomness of
/// its own, so the batch is reproducible and bit-identical to running
/// the configs serially.
pub fn run_reports(configs: Vec<SimConfig>) -> Vec<RunReport> {
    map(configs, |_, cfg| SystemSim::new(cfg).run())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_parallel_agree_on_pure_work() {
        let items: Vec<u64> = (0..100).collect();
        let f = |i: usize, x: u64| x.wrapping_mul(0x9e37_79b9).wrapping_add(i as u64);
        let serial = map_with_threads(1, items.clone(), f);
        for n in [2, 3, 4, 8, 64] {
            assert_eq!(serial, map_with_threads(n, items.clone(), f), "n={n}");
        }
    }

    #[test]
    fn order_is_preserved_under_uneven_work() {
        // Early items take longest, so completion order inverts input
        // order; output order must not.
        let items: Vec<usize> = (0..16).collect();
        let out = map_with_threads(4, items, |i, x| {
            std::thread::sleep(std::time::Duration::from_micros((16 - i as u64) * 200));
            x * 10
        });
        assert_eq!(out, (0..16).map(|x| x * 10).collect::<Vec<_>>());
    }

    #[test]
    fn more_threads_than_items_is_fine() {
        let out = map_with_threads(32, vec![1, 2, 3], |_, x| x + 1);
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(map_with_threads(4, empty, |_, x| x).is_empty());
        assert_eq!(map_with_threads(4, vec![7], |_, x| x * 2), vec![14]);
    }

    #[test]
    fn threads_value_parsing() {
        assert_eq!(threads_from_value(Some("3")), 3);
        assert_eq!(threads_from_value(Some(" 8 ")), 8);
        // Invalid or non-positive values fall back to autodetection,
        // which is always at least 1.
        assert!(threads_from_value(Some("0")) >= 1);
        assert!(threads_from_value(Some("lots")) >= 1);
        assert!(threads_from_value(None) >= 1);
    }
}
