//! Cluster-scale experiment drivers: fleet tail latency by routing policy
//! and rack-level autoscaling (ROADMAP item 2; the uqSim /
//! CloudNativeSim-style multi-node serving claims).

use super::parallel;
use crate::cluster::{
    ClusterAutoscale, ClusterConfig, ClusterNetConfig, ClusterReport, ClusterSim, RoutingPolicy,
};
use crate::system::ArrivalProcess;
use um_arch::{MachineConfig, TopologyShape};
use um_workload::ServiceTimeDist;

/// The per-node package slice the rack experiments simulate: 8-core
/// villages (the paper's coherence domain) in a 64-core package. A full
/// 1024-core package pushes the interesting per-node utilizations past
/// a million RPS per node, which a CI-regenerable 64-node sweep cannot
/// afford — and routing-policy tails depend on per-node load, not
/// package width.
pub const NODE_SHAPE: TopologyShape = TopologyShape::new(8, 2, 4);

/// The routing policies the fleet-tail experiment sweeps, with display
/// names (display order is the committed-results row order).
pub const POLICIES: [(&str, RoutingPolicy); 4] = [
    ("random", RoutingPolicy::Random),
    ("round-robin", RoutingPolicy::RoundRobin),
    ("jsq(2)", RoutingPolicy::JsqD { d: 2 }),
    ("central-queue", RoutingPolicy::CentralQueue),
];

/// Scale of a cluster experiment (the rack analogue of
/// [`super::Scale`]).
#[derive(Clone, Debug, PartialEq)]
pub struct ClusterScale {
    /// Packages in the rack.
    pub nodes: usize,
    /// Offered loads per node swept, requests per second.
    pub loads: Vec<f64>,
    /// Arrival horizon per run, microseconds.
    pub horizon_us: f64,
    /// Warm-up cut-off, microseconds.
    pub warmup_us: f64,
    /// Master seed.
    pub seed: u64,
}

impl ClusterScale {
    /// The figure-quality scale behind `results/cluster_tail.txt`: a
    /// 64-package rack, 20 ms of arrivals per point. The loads put the
    /// [`NODE_SHAPE`] slice at roughly 0.5, 0.8 and 0.95 utilization —
    /// routing policy only starts to matter once the package's internal
    /// parallelism stops absorbing the imbalance.
    pub fn full() -> Self {
        Self {
            nodes: 64,
            loads: vec![60_000.0, 100_000.0, 118_000.0],
            horizon_us: 20_000.0,
            warmup_us: 2_000.0,
            seed: 42,
        }
    }

    /// CI smoke scale: an 8-package rack, 6 ms of arrivals, the lowest
    /// and highest of the full-scale loads.
    pub fn quick() -> Self {
        Self {
            nodes: 8,
            loads: vec![60_000.0, 118_000.0],
            horizon_us: 6_000.0,
            warmup_us: 600.0,
            seed: 42,
        }
    }
}

/// The canonical rack configuration the cluster experiments share: one
/// μManycore package per node, SocialNetwork mix, a 0.5 µs rack fabric
/// with lognormal jitter, no admission cap.
pub fn rack_config(
    scale: &ClusterScale,
    rps_per_node: f64,
    routing: RoutingPolicy,
) -> ClusterConfig {
    let mut machine = MachineConfig::umanycore_shaped(NODE_SHAPE);
    // Provisioned hardware queues. The default 64-entry RQ is sized for
    // a full package's 128 villages; on an 8-village slice the skewed
    // service mix concentrates enough blocked parents in the hot
    // village to fill its RQ well before the cores saturate, and an RQ
    // full of requests blocked on RPCs into other full villages
    // deadlocks (their children wait in the NIC buffer forever). Deep
    // RQs keep the sweep inside the regime where every request
    // completes; the sanitizers verify that it does.
    machine.rq_capacity = 512;
    ClusterConfig {
        node: crate::system::SimConfig {
            machine,
            ..Default::default()
        },
        nodes: scale.nodes,
        rps_per_node,
        horizon_us: scale.horizon_us,
        warmup_us: scale.warmup_us,
        seed: scale.seed,
        routing,
        net: ClusterNetConfig {
            // A rack fabric hiccup distribution: mostly sub-µs, with a
            // heavy tail standing in for switch queueing the fabric
            // model's fixed NIC queues do not capture.
            jitter_us: Some(ServiceTimeDist::lognormal_with_mean(0.5, 4.0)),
            ..ClusterNetConfig::default()
        },
        ..ClusterConfig::default()
    }
}

/// One `cluster_tail` result row.
#[derive(Clone, Debug)]
pub struct ClusterTailRow {
    /// Routing policy display name.
    pub policy: &'static str,
    /// Offered load per node, requests per second.
    pub rps_per_node: f64,
    /// The full cluster report for the point.
    pub report: ClusterReport,
}

/// The fully-specified fleet-tail point list: [`POLICIES`] outermost,
/// loads innermost — the committed-results row order.
pub fn cluster_tail_configs(scale: &ClusterScale) -> Vec<(&'static str, f64, ClusterConfig)> {
    let mut points = Vec::new();
    for &(name, routing) in &POLICIES {
        for &rps in &scale.loads {
            points.push((name, rps, rack_config(scale, rps, routing)));
        }
    }
    points
}

/// Fleet tail latency by routing policy × offered load; points are
/// evaluated through the deterministic sweep runner, so the table is
/// bit-identical at any `UM_THREADS`.
pub fn cluster_tail_rows(scale: &ClusterScale) -> Vec<ClusterTailRow> {
    parallel::map(cluster_tail_configs(scale), move |_, (name, rps, cfg)| {
        ClusterTailRow {
            policy: name,
            rps_per_node: rps,
            report: ClusterSim::new(cfg).run(),
        }
    })
}

/// One `cluster_autoscale` result row.
#[derive(Clone, Debug)]
pub struct ClusterAutoscaleRow {
    /// Configuration display name.
    pub name: &'static str,
    /// The full cluster report for the configuration.
    pub report: ClusterReport,
}

/// Rack-level autoscaling under bursty traffic: a fixed small rack, a
/// fixed full rack, and small racks that scale out with snapshot-backed
/// (~2 ms) vs cold (~300 ms) node boots — the §3.5 story at rack scale,
/// extending `results/autoscale.txt`.
pub fn cluster_autoscale_rows(scale: &ClusterScale, rps_per_node: f64) -> Vec<ClusterAutoscaleRow> {
    let small = (scale.nodes / 4).max(1);
    let base = |routing| {
        let mut cfg = rack_config(scale, rps_per_node, routing);
        cfg.arrivals = ArrivalProcess::Bursty;
        // The MMPP dwells ~220 ms low / ~30 ms bursting: a 20 ms tail
        // horizon would make the whole comparison hinge on whether one
        // burst lands in it. Run 15x longer (~300 ms), enough to cover a
        // full burst cycle the way the single-package autoscale figure does.
        cfg.horizon_us = scale.horizon_us * 15.0;
        cfg.warmup_us = scale.warmup_us * 15.0;
        // Admission control: a burst can hold the concentrated rack past
        // node saturation for tens of milliseconds, and an unprotected
        // node melts down (see `rack_config` on RQ deadlock). Capping
        // per-node in-flight makes the burst queue at the load balancer
        // instead — visible in the cluster-hop component and the
        // LB-queue column — which is also what trips the autoscaler.
        // 128 sits just above the node's natural in-flight count at
        // saturation (~125), so it barely throttles peak throughput,
        // and each admitted root holds at most two RQ slots (itself
        // plus one outstanding RPC child), so even a pathological
        // all-in-one-village skew tops out at 256 of the 512 RQ
        // entries — the overflow deadlock is impossible by pigeonhole.
        cfg.max_in_flight = Some(128);
        cfg
    };
    let autoscaled = |boot_us: f64| {
        let mut cfg = base(RoutingPolicy::JsqD { d: 2 });
        cfg.autoscale = Some(ClusterAutoscale {
            initial_nodes: small,
            // Roughly 2x the concentrated rack's steady-state in-flight
            // count, so only a burst trips the scale-out.
            hi_inflight_per_node: 64.0,
            boot_us,
        });
        cfg
    };
    let configs: Vec<(&'static str, ClusterConfig)> = vec![
        (
            // The burst has nowhere to go: the small rack takes the
            // aggregate load of the full rack.
            "fixed small rack",
            {
                let mut cfg = base(RoutingPolicy::JsqD { d: 2 });
                cfg.rps_per_node = rps_per_node * scale.nodes as f64 / small as f64;
                cfg.nodes = small;
                cfg
            },
        ),
        ("fixed full rack", base(RoutingPolicy::JsqD { d: 2 })),
        ("autoscale, snapshot boots", autoscaled(2_000.0)),
        ("autoscale, cold boots", autoscaled(300_000.0)),
    ];
    parallel::map(configs, |_, (name, cfg)| ClusterAutoscaleRow {
        name,
        report: ClusterSim::new(cfg).run(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_tail_rows_cover_the_policy_grid() {
        let mut scale = ClusterScale::quick();
        scale.nodes = 3;
        scale.loads = vec![10_000.0];
        scale.horizon_us = 4_000.0;
        scale.warmup_us = 400.0;
        let rows = cluster_tail_rows(&scale);
        assert_eq!(rows.len(), POLICIES.len());
        for row in &rows {
            assert!(row.report.recorded > 0, "{}", row.policy);
            assert!(row.report.conservation.exact(), "{}", row.policy);
        }
    }
}
