//! Experiment drivers: one function per paper figure/table.
//!
//! Each driver returns plain data rows; the `um-bench` binaries render
//! them as tables, and the integration tests assert the paper's *shapes*
//! (who wins, by roughly what factor, where crossovers fall) on reduced
//! scales.

pub mod cluster;
pub mod evaluation;
pub mod motivation;
pub mod parallel;
pub mod resilience;

use crate::report::RunReport;
use crate::system::{SimConfig, SystemSim};
use crate::workload::Workload;
use um_arch::MachineConfig;

/// Simulation scale shared across experiment drivers.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Scale {
    /// Arrival horizon per run, microseconds.
    pub horizon_us: f64,
    /// Warm-up cut-off, microseconds.
    pub warmup_us: f64,
    /// Servers per cluster.
    pub servers: usize,
    /// Master seed.
    pub seed: u64,
}

impl Default for Scale {
    /// The figure-quality scale used by the bench binaries: 0.2 s of
    /// arrivals (thousands of requests per run).
    fn default() -> Self {
        Self {
            horizon_us: 200_000.0,
            warmup_us: 20_000.0,
            servers: 1,
            seed: 42,
        }
    }
}

impl Scale {
    /// A fast scale for unit/integration tests (tens of milliseconds).
    pub fn quick() -> Self {
        Self {
            horizon_us: 30_000.0,
            warmup_us: 3_000.0,
            servers: 1,
            seed: 42,
        }
    }
}

/// Runs one machine/workload/load combination at the given scale.
pub fn run_machine(
    machine: MachineConfig,
    workload: Workload,
    rps_per_server: f64,
    scale: Scale,
) -> RunReport {
    SystemSim::new(SimConfig {
        machine,
        workload,
        rps_per_server,
        servers: scale.servers,
        horizon_us: scale.horizon_us,
        warmup_us: scale.warmup_us,
        seed: scale.seed,
        ..SimConfig::default()
    })
    .run()
}

/// [`run_machine`] with per-component latency tracing enabled, for the
/// measured-breakdown figures. Timing and randomness are identical to the
/// untraced run (tracing is pure observation).
pub fn run_machine_traced(
    machine: MachineConfig,
    workload: Workload,
    rps_per_server: f64,
    scale: Scale,
) -> RunReport {
    SystemSim::new(SimConfig {
        machine,
        workload,
        rps_per_server,
        servers: scale.servers,
        horizon_us: scale.horizon_us,
        warmup_us: scale.warmup_us,
        seed: scale.seed,
        trace: true,
        ..SimConfig::default()
    })
    .run()
}
