//! Resilience experiment drivers: fault injection and tail mitigation.
//!
//! Three sweeps, one per `um-bench` binary:
//!
//! - [`fault_tail_sweep`]: tail latency vs message-loss rate, with and
//!   without timeout/retry — the "tail-vs-fault-rate" curve.
//! - [`hedging_ablation`]: p99 with and without request hedging while one
//!   core in every village runs fail-slow — the paper's straggler
//!   scenario, and this repo's acceptance gate for the mitigation layer.
//! - [`degradation_sweep`]: throughput and tail under an increasing count
//!   of fail-stopped cores — graceful degradation.
//!
//! Every point is a fully-specified [`SimConfig`] whose seed and fault
//! plan derive from the sweep's master seed, so results are bit-identical
//! at any `UM_THREADS`.

use um_sched::{HedgeConfig, MitigationConfig, RetryConfig};
use um_sim::fault::{FaultPlan, FaultWindow};
use um_sim::{rng, Cycles};

use super::{parallel, Scale};
use crate::report::RunReport;
use crate::system::SimConfig;
use crate::workload::Workload;
use um_arch::MachineConfig;

/// Offered load for the resilience sweeps, requests/s per server. Kept at
/// moderate utilization so latency shifts are attributable to the faults,
/// not to saturation.
pub const RESILIENCE_RPS: f64 = 8_000.0;

/// Message-drop probabilities swept by [`fault_tail_sweep`].
pub const DROP_RATES: [f64; 5] = [0.0, 0.005, 0.01, 0.02, 0.05];

/// Fail-slow slowdown factors swept by [`hedging_ablation`].
pub const SLOWDOWNS: [f64; 4] = [2.0, 4.0, 6.0, 8.0];

/// Fail-stop counts swept by [`degradation_sweep`].
pub const FAIL_STOP_COUNTS: [usize; 5] = [0, 32, 64, 128, 256];

fn base_config(scale: Scale, seed: u64) -> SimConfig {
    SimConfig {
        machine: MachineConfig::umanycore(),
        workload: Workload::social_mix(),
        rps_per_server: RESILIENCE_RPS,
        servers: scale.servers,
        horizon_us: scale.horizon_us,
        warmup_us: scale.warmup_us,
        seed,
        ..SimConfig::default()
    }
}

fn horizon_cycles(scale: Scale) -> Cycles {
    Cycles::from_micros(scale.horizon_us, MachineConfig::umanycore().core.frequency)
}

/// One fault-rate point: the same loss rate with and without mitigation.
#[derive(Clone, Debug)]
pub struct FaultTailRow {
    /// Per-leg message-drop probability.
    pub drop_p: f64,
    /// No mitigation: operations that lose a message are abandoned at the
    /// default RPC timeout.
    pub baseline: RunReport,
    /// Timeout + exponential-backoff retry with a retry budget.
    pub mitigated: RunReport,
}

/// The fully-specified fault-tail point list: per drop rate, the
/// unmitigated config then the retried one, both sharing the rate's
/// derived seed (and the plan built from it), so each pair is paired.
pub fn fault_tail_configs(scale: Scale) -> Vec<SimConfig> {
    let mut configs = Vec::new();
    for (i, &drop_p) in DROP_RATES.iter().enumerate() {
        let seed = rng::derive_seed(scale.seed, i as u64);
        let plan = if drop_p > 0.0 {
            FaultPlan::builder(seed).message_drops(drop_p).build()
        } else {
            FaultPlan::none()
        };
        for mitigation in [
            MitigationConfig::default(),
            MitigationConfig {
                retry: Some(RetryConfig::with_timeout_us(1_500.0)),
                ..MitigationConfig::default()
            },
        ] {
            configs.push(SimConfig {
                fault_plan: plan.clone(),
                mitigation,
                ..base_config(scale, seed)
            });
        }
    }
    configs
}

/// Tail latency vs message-loss rate, unmitigated vs retried.
pub fn fault_tail_sweep(scale: Scale) -> Vec<FaultTailRow> {
    let reports = parallel::run_reports(fault_tail_configs(scale));
    DROP_RATES
        .iter()
        .zip(reports.chunks_exact(2))
        .map(|(&drop_p, pair)| FaultTailRow {
            drop_p,
            baseline: pair[0].clone(),
            mitigated: pair[1].clone(),
        })
        .collect()
}

/// One straggler-severity point: fail-slow everywhere, hedging on vs off.
#[derive(Clone, Debug)]
pub struct HedgingRow {
    /// Service-time multiplier of the slow core in every village.
    pub slowdown: f64,
    /// Stragglers, no mitigation.
    pub degraded: RunReport,
    /// Stragglers, hedged (backup request after the p95-equivalent delay).
    pub hedged: RunReport,
}

/// The hedging ablation: one fail-slow core per village for the whole
/// run, at increasing severities. Returns the healthy reference run and
/// one row per slowdown.
pub fn hedging_ablation(scale: Scale) -> (RunReport, Vec<HedgingRow>) {
    let villages = MachineConfig::umanycore().shape.total_villages();
    let window = |slowdown| FaultWindow::new(Cycles::ZERO, horizon_cycles(scale), slowdown);
    let hedge = MitigationConfig {
        hedge: Some(HedgeConfig::after_quantile(0.9, 150.0)),
        ..MitigationConfig::default()
    };

    let mut configs = vec![base_config(scale, rng::derive_seed(scale.seed, 1_000))];
    for (i, &slowdown) in SLOWDOWNS.iter().enumerate() {
        let seed = rng::derive_seed(scale.seed, 1_001 + i as u64);
        let plan = FaultPlan::builder(seed)
            .fail_slow_every_village(scale.servers, villages, 1, window(slowdown))
            .build();
        for mitigation in [MitigationConfig::default(), hedge] {
            configs.push(SimConfig {
                fault_plan: plan.clone(),
                mitigation,
                ..base_config(scale, seed)
            });
        }
    }
    let mut reports = parallel::run_reports(configs);
    let healthy = reports.remove(0);
    let rows = SLOWDOWNS
        .iter()
        .zip(reports.chunks_exact(2))
        .map(|(&slowdown, pair)| HedgingRow {
            slowdown,
            degraded: pair[0].clone(),
            hedged: pair[1].clone(),
        })
        .collect();
    (healthy, rows)
}

/// One degradation point: `fail_stops` random core failures.
#[derive(Clone, Debug)]
pub struct DegradationRow {
    /// Fail-stop events planned (some may be masked by the one-core-
    /// per-village liveness floor).
    pub fail_stops: usize,
    /// The run, with straggler-aware steering routing around the damage.
    pub report: RunReport,
}

/// Graceful degradation: random fail-stops at seeded times through the
/// run, with steering enabled. Tail and throughput should bend, not
/// break, as capacity shrinks.
pub fn degradation_sweep(scale: Scale) -> Vec<DegradationRow> {
    let villages = MachineConfig::umanycore().shape.total_villages();
    let configs: Vec<SimConfig> = FAIL_STOP_COUNTS
        .iter()
        .enumerate()
        .map(|(i, &count)| {
            let seed = rng::derive_seed(scale.seed, 2_000 + i as u64);
            let plan = if count > 0 {
                FaultPlan::builder(seed)
                    .random_fail_stops(count, scale.servers, villages, horizon_cycles(scale))
                    .build()
            } else {
                FaultPlan::none()
            };
            SimConfig {
                fault_plan: plan,
                mitigation: MitigationConfig {
                    steer: true,
                    ..MitigationConfig::default()
                },
                ..base_config(scale, seed)
            }
        })
        .collect();
    FAIL_STOP_COUNTS
        .iter()
        .zip(parallel::run_reports(configs))
        .map(|(&fail_stops, report)| DegradationRow { fail_stops, report })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_scale() -> Scale {
        Scale {
            horizon_us: 15_000.0,
            warmup_us: 1_500.0,
            servers: 1,
            seed: 42,
        }
    }

    #[test]
    fn fault_tail_sweep_shapes() {
        let rows = fault_tail_sweep(test_scale());
        assert_eq!(rows.len(), DROP_RATES.len());
        // The zero-loss point is fault-free in both columns.
        assert_eq!(rows[0].baseline.faults.drops, 0);
        assert_eq!(rows[0].mitigated.faults.retries, 0);
        // The heaviest-loss point drops messages and the mitigated column
        // actually retries.
        let worst = rows.last().expect("nonempty sweep");
        assert!(worst.baseline.faults.drops > 0);
        assert!(worst.mitigated.faults.retries > 0);
        for row in &rows {
            assert!(row.baseline.conservation.exact());
            assert!(row.mitigated.conservation.exact());
        }
    }

    #[test]
    fn hedging_ablation_shapes() {
        // p99 over the quick scale's ~100 samples is too noisy to order
        // reliably; the tail comparison needs a few thousand.
        let scale = Scale {
            horizon_us: 60_000.0,
            warmup_us: 6_000.0,
            ..test_scale()
        };
        let (healthy, rows) = hedging_ablation(scale);
        assert_eq!(rows.len(), SLOWDOWNS.len());
        assert_eq!(healthy.faults.hedges, 0);
        for row in &rows {
            assert_eq!(row.degraded.faults.hedges, 0);
            assert!(row.hedged.faults.hedges > 0, "hedging engaged");
        }
        // At the worst severity, hedging recovers a measurable part of
        // the straggler-inflated tail (the ISSUE acceptance shape; the
        // committed results file shows the full-scale version).
        let worst = rows.last().expect("nonempty sweep");
        assert!(
            worst.hedged.latency.p99 < worst.degraded.latency.p99,
            "hedged p99 {} must beat degraded p99 {}",
            worst.hedged.latency.p99,
            worst.degraded.latency.p99
        );
    }

    #[test]
    fn degradation_sweep_shapes() {
        let rows = degradation_sweep(test_scale());
        assert_eq!(rows.len(), FAIL_STOP_COUNTS.len());
        assert_eq!(rows[0].report.faults.cores_failed, 0);
        let worst = rows.last().expect("nonempty sweep");
        assert!(worst.report.faults.cores_failed > 0);
        // Losing a quarter of the cores degrades service but the machine
        // keeps completing requests.
        assert!(worst.report.completed > 0);
        for row in &rows {
            assert!(row.report.conservation.exact());
        }
    }
}
