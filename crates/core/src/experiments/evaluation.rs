//! Drivers for the evaluation figures (§6).

use super::{run_machine, Scale};
use crate::qos::{self, QosResult};
use crate::report::RunReport;
use crate::system::SimConfig;
use crate::workload::Workload;
use um_arch::config::{CoherenceDomain, IcnKind, MachineConfig, TopologyShape};
use um_sched::CtxSwitchModel;
use um_sim::Cycles;
use um_workload::apps::SocialNetwork;
use um_workload::synthetic::SyntheticWorkload;
use um_workload::ServiceId;

/// The paper's three load levels, RPS per server (§5).
pub const LOADS: [f64; 3] = [5_000.0, 10_000.0, 15_000.0];

/// Display names of the eight applications, Figure 14 order.
pub fn app_names() -> Vec<&'static str> {
    SocialNetwork::new().iter().map(|p| p.name).collect()
}

/// The three machines in figure order.
pub fn machines() -> [(&'static str, MachineConfig); 3] {
    [
        ("ServerClass", MachineConfig::server_class_iso_power()),
        ("ScaleOut", MachineConfig::scaleout()),
        ("uManycore", MachineConfig::umanycore()),
    ]
}

/// One application's results on the three machines at one load.
#[derive(Clone, Debug)]
pub struct AppRow {
    /// Application name.
    pub app: &'static str,
    /// Load in RPS.
    pub rps: f64,
    /// ServerClass report.
    pub server_class: RunReport,
    /// ScaleOut report.
    pub scaleout: RunReport,
    /// uManycore report.
    pub umanycore: RunReport,
}

impl AppRow {
    /// Tail latencies normalized to ServerClass (Figure 14 bars).
    pub fn norm_tails(&self) -> (f64, f64, f64) {
        let base = self.server_class.latency.p99;
        (
            1.0,
            self.scaleout.latency.p99 / base,
            self.umanycore.latency.p99 / base,
        )
    }

    /// Average latencies normalized to ServerClass (Figure 16 bars).
    pub fn norm_avgs(&self) -> (f64, f64, f64) {
        let base = self.server_class.latency.mean;
        (
            1.0,
            self.scaleout.latency.mean / base,
            self.umanycore.latency.mean / base,
        )
    }

    /// Tail-to-average ratios normalized to ServerClass (Figure 17 bars).
    pub fn norm_tail_to_avg(&self) -> (f64, f64, f64) {
        let base = self.server_class.tail_to_avg();
        (
            1.0,
            self.scaleout.tail_to_avg() / base,
            self.umanycore.tail_to_avg() / base,
        )
    }
}

/// Runs one app at one load on all three machines (a Figure 14/16/17
/// cell).
pub fn app_row(root: ServiceId, rps: f64, scale: Scale) -> AppRow {
    let apps = SocialNetwork::new();
    let name = apps.profile(root).name;
    let [(_, sc), (_, so), (_, um)] = machines();
    AppRow {
        app: name,
        rps,
        server_class: run_machine(sc, Workload::social_app(root), rps, scale),
        scaleout: run_machine(so, Workload::social_app(root), rps, scale),
        umanycore: run_machine(um, Workload::social_app(root), rps, scale),
    }
}

/// Runs the full Figure 14/16/17 grid at one load.
pub fn app_grid(rps: f64, scale: Scale) -> Vec<AppRow> {
    SocialNetwork::ALL
        .iter()
        .map(|&root| app_row(root, rps, scale))
        .collect()
}

// ---------------------------------------------------------------------
// Figure 15: ablation
// ---------------------------------------------------------------------

/// The cumulative ablation stages of Figure 15, applied to ScaleOut in
/// the paper's order: villages, leaf-spine ICN, hardware scheduling,
/// hardware context switching.
pub fn ablation_stages() -> Vec<(&'static str, MachineConfig)> {
    let mut stages = Vec::new();

    let scaleout = MachineConfig::scaleout();
    stages.push(("ScaleOut", scaleout.clone()));

    // + Villages: 8-core coherence domains; queues and migration shrink
    // from the 32-core cluster to the village.
    let mut villages = scaleout;
    villages.coherence = CoherenceDomain::Village;
    villages.shape = TopologyShape::new(8, 4, 32);
    villages.name = "+Villages";
    stages.push(("+Villages", villages.clone()));

    // + Leaf-spine ICN: the full on-package organization of Figure 12,
    // including the per-cluster memory-pool chiplets attached to the hubs
    // (Figures 10-11), which localize read-mostly traffic.
    let mut leafspine = villages;
    leafspine.icn = IcnKind::LeafSpine;
    leafspine.memory_pool = true;
    leafspine.name = "+Leaf-spine";
    stages.push(("+Leaf-spine", leafspine.clone()));

    // + Hardware scheduling: hardware RQs and NIC RPC processing (§4.3).
    let mut hw_sched = leafspine;
    hw_sched.hw_scheduling = true;
    hw_sched.sched_op_cost = MachineConfig::umanycore().sched_op_cost;
    hw_sched.rq_capacity = 64;
    hw_sched.name = "+HW-Sched";
    stages.push(("+HW-Sched", hw_sched.clone()));

    // + Hardware context switching: the full uManycore.
    let mut hw_cs = hw_sched;
    hw_cs.ctx_switch = CtxSwitchModel::Hardware;
    hw_cs.name = "+HW-CtxSw";
    stages.push(("+HW-CtxSw", hw_cs));

    stages
}

/// One Figure 15 column: per-stage tail-latency reduction over ScaleOut.
#[derive(Clone, Debug)]
pub struct Fig15Row {
    /// Application name.
    pub app: &'static str,
    /// Reduction factor (ScaleOut tail / stage tail) per cumulative stage,
    /// in `ablation_stages()[1..]` order.
    pub reductions: Vec<f64>,
}

/// Runs the Figure 15 ablation for one app at `rps` (the paper uses
/// 15 K RPS).
pub fn fig15_row(root: ServiceId, rps: f64, scale: Scale) -> Fig15Row {
    let apps = SocialNetwork::new();
    let name = apps.profile(root).name;
    let stages = ablation_stages();
    let tails: Vec<f64> = stages
        .iter()
        .map(|(_, machine)| {
            run_machine(machine.clone(), Workload::social_app(root), rps, scale)
                .latency
                .p99
        })
        .collect();
    Fig15Row {
        app: name,
        reductions: tails[1..].iter().map(|t| tails[0] / t).collect(),
    }
}

// ---------------------------------------------------------------------
// Figure 18: QoS throughput
// ---------------------------------------------------------------------

/// One Figure 18 bar group.
#[derive(Clone, Debug)]
pub struct Fig18Row {
    /// Application name.
    pub app: &'static str,
    /// Max QoS-compliant throughput per machine, RPS.
    pub server_class: QosResult,
    /// ScaleOut result.
    pub scaleout: QosResult,
    /// uManycore result.
    pub umanycore: QosResult,
}

/// Runs the QoS throughput search for one app.
pub fn fig18_row(root: ServiceId, scale: Scale, hi_rps: f64) -> Fig18Row {
    let apps = SocialNetwork::new();
    let name = apps.profile(root).name;
    let search = |machine: MachineConfig| {
        let base = SimConfig {
            machine,
            workload: Workload::social_app(root),
            servers: scale.servers,
            horizon_us: scale.horizon_us,
            warmup_us: scale.warmup_us,
            seed: scale.seed,
            ..SimConfig::default()
        };
        qos::max_qos_throughput(&base, hi_rps / 512.0, hi_rps)
    };
    let [(_, sc), (_, so), (_, um)] = machines();
    Fig18Row {
        app: name,
        server_class: search(sc),
        scaleout: search(so),
        umanycore: search(um),
    }
}

// ---------------------------------------------------------------------
// Figure 19: topology sensitivity
// ---------------------------------------------------------------------

/// One Figure 19 bar group: per-shape tails for one app, normalized to
/// the default 8x4x32 shape.
#[derive(Clone, Debug)]
pub struct Fig19Row {
    /// Application name.
    pub app: &'static str,
    /// Normalized tails in `TopologyShape::FIG19_SWEEP` order.
    pub norm_tails: Vec<f64>,
}

/// Runs the Figure 19 shape sweep for one app.
pub fn fig19_row(root: ServiceId, rps: f64, scale: Scale) -> Fig19Row {
    let apps = SocialNetwork::new();
    let name = apps.profile(root).name;
    let tails: Vec<f64> = TopologyShape::FIG19_SWEEP
        .iter()
        .map(|&shape| {
            run_machine(
                MachineConfig::umanycore_shaped(shape),
                Workload::social_app(root),
                rps,
                scale,
            )
            .latency
            .p99
        })
        .collect();
    Fig19Row {
        app: name,
        norm_tails: tails.iter().map(|t| t / tails[0]).collect(),
    }
}

// ---------------------------------------------------------------------
// Figure 20: synthetic service-time distributions
// ---------------------------------------------------------------------

/// One Figure 20 bar group.
#[derive(Clone, Debug)]
pub struct Fig20Row {
    /// Distribution label (Exp/Lgn/Bim).
    pub dist: &'static str,
    /// Load in RPS.
    pub rps: f64,
    /// ServerClass tail, microseconds (the figure's absolute annotation).
    pub server_class_tail_us: f64,
    /// ScaleOut tail normalized to ServerClass.
    pub scaleout_norm: f64,
    /// uManycore tail normalized to ServerClass.
    pub umanycore_norm: f64,
}

/// Runs the Figure 20 grid: three distributions x the given loads.
pub fn fig20_rows(scale: Scale, loads: &[f64], mean_service_us: f64) -> Vec<Fig20Row> {
    let mut rows = Vec::new();
    for (label, synth) in SyntheticWorkload::paper_suite(mean_service_us) {
        for &rps in loads {
            let [(_, sc), (_, so), (_, um)] = machines();
            let sc_r = run_machine(sc, Workload::Synthetic(synth), rps, scale);
            let so_r = run_machine(so, Workload::Synthetic(synth), rps, scale);
            let um_r = run_machine(um, Workload::Synthetic(synth), rps, scale);
            rows.push(Fig20Row {
                dist: label,
                rps,
                server_class_tail_us: sc_r.latency.p99,
                scaleout_norm: so_r.latency.p99 / sc_r.latency.p99,
                umanycore_norm: um_r.latency.p99 / sc_r.latency.p99,
            });
        }
    }
    rows
}

// ---------------------------------------------------------------------
// §6.8: iso-area comparison
// ---------------------------------------------------------------------

/// The iso-area comparison report.
#[derive(Clone, Debug)]
pub struct IsoAreaRow {
    /// Load in RPS.
    pub rps: f64,
    /// 128-core ServerClass tail, microseconds.
    pub server_class_128_tail_us: f64,
    /// ScaleOut tail, microseconds.
    pub scaleout_tail_us: f64,
    /// uManycore tail, microseconds.
    pub umanycore_tail_us: f64,
}

/// Runs the §6.8 iso-area comparison at the given loads.
pub fn iso_area_rows(scale: Scale, loads: &[f64]) -> Vec<IsoAreaRow> {
    loads
        .iter()
        .map(|&rps| {
            let sc = run_machine(
                MachineConfig::server_class_iso_area(),
                Workload::social_mix(),
                rps,
                scale,
            );
            let so = run_machine(MachineConfig::scaleout(), Workload::social_mix(), rps, scale);
            let um = run_machine(
                MachineConfig::umanycore(),
                Workload::social_mix(),
                rps,
                scale,
            );
            IsoAreaRow {
                rps,
                server_class_128_tail_us: sc.latency.p99,
                scaleout_tail_us: so.latency.p99,
                umanycore_tail_us: um.latency.p99,
            }
        })
        .collect()
}

/// Area/power summary for the §6.8 table.
#[derive(Clone, Copy, Debug)]
pub struct AreaPowerRow {
    /// Machine label.
    pub name: &'static str,
    /// Cores.
    pub cores: usize,
    /// Package area, mm².
    pub area_mm2: f64,
    /// Package power, watts.
    pub power_w: f64,
}

/// Area and power of the four machine variants.
pub fn area_power_rows() -> Vec<AreaPowerRow> {
    [
        ("ServerClass-40", MachineConfig::server_class_iso_power()),
        ("ServerClass-128", MachineConfig::server_class_iso_area()),
        ("ScaleOut", MachineConfig::scaleout()),
        ("uManycore", MachineConfig::umanycore()),
    ]
    .into_iter()
    .map(|(name, m)| AreaPowerRow {
        name,
        cores: m.total_cores(),
        area_mm2: m.area_mm2(),
        power_w: m.power_watts(),
    })
    .collect()
}

/// A convenience for reports: converts a tail in cycles at the machine's
/// frequency to microseconds (unused by drivers, which already report in
/// microseconds, but handy for external tooling).
pub fn cycles_to_us(machine: &MachineConfig, cycles: Cycles) -> f64 {
    cycles.as_micros(machine.core.frequency)
}
