//! Drivers for the evaluation figures (§6).

use super::{parallel, run_machine, Scale};
use crate::qos::{self, QosResult};
use crate::report::RunReport;
use crate::system::SimConfig;
use crate::workload::Workload;
use um_arch::config::{CoherenceDomain, IcnKind, MachineConfig, TopologyShape};
use um_sched::CtxSwitchModel;
use um_sim::{rng, Cycles};
use um_workload::apps::SocialNetwork;
use um_workload::synthetic::SyntheticWorkload;
use um_workload::ServiceId;

/// The paper's three load levels, RPS per server (§5).
pub const LOADS: [f64; 3] = [5_000.0, 10_000.0, 15_000.0];

/// Display names of the eight applications, Figure 14 order.
pub fn app_names() -> Vec<&'static str> {
    SocialNetwork::new().iter().map(|p| p.name).collect()
}

/// The three machines in figure order.
pub fn machines() -> [(&'static str, MachineConfig); 3] {
    [
        ("ServerClass", MachineConfig::server_class_iso_power()),
        ("ScaleOut", MachineConfig::scaleout()),
        ("uManycore", MachineConfig::umanycore()),
    ]
}

/// One application's results on the three machines at one load.
#[derive(Clone, Debug)]
pub struct AppRow {
    /// Application name.
    pub app: &'static str,
    /// Load in RPS.
    pub rps: f64,
    /// ServerClass report.
    pub server_class: RunReport,
    /// ScaleOut report.
    pub scaleout: RunReport,
    /// uManycore report.
    pub umanycore: RunReport,
}

impl AppRow {
    /// Tail latencies normalized to ServerClass (Figure 14 bars).
    pub fn norm_tails(&self) -> (f64, f64, f64) {
        let base = self.server_class.latency.p99;
        (
            1.0,
            self.scaleout.latency.p99 / base,
            self.umanycore.latency.p99 / base,
        )
    }

    /// Average latencies normalized to ServerClass (Figure 16 bars).
    pub fn norm_avgs(&self) -> (f64, f64, f64) {
        let base = self.server_class.latency.mean;
        (
            1.0,
            self.scaleout.latency.mean / base,
            self.umanycore.latency.mean / base,
        )
    }

    /// Tail-to-average ratios normalized to ServerClass (Figure 17 bars).
    pub fn norm_tail_to_avg(&self) -> (f64, f64, f64) {
        let base = self.server_class.tail_to_avg();
        (
            1.0,
            self.scaleout.tail_to_avg() / base,
            self.umanycore.tail_to_avg() / base,
        )
    }
}

/// Runs one app at one load on all three machines (a Figure 14/16/17
/// cell), fanned out across the sweep worker pool.
///
/// The three machines share the row's seed (common random numbers), so
/// the normalized bars compare machines on the same arrival draws.
pub fn app_row(root: ServiceId, rps: f64, scale: Scale) -> AppRow {
    let apps = SocialNetwork::new();
    let name = apps.profile(root).name;
    let reports = parallel::map(machines().to_vec(), |_, (_, machine)| {
        run_machine(machine, Workload::social_app(root), rps, scale)
    });
    let [sc, so, um]: [RunReport; 3] = reports.try_into().expect("three machines");
    AppRow {
        app: name,
        rps,
        server_class: sc,
        scaleout: so,
        umanycore: um,
    }
}

/// Runs the full Figure 14/16/17 grid at one load: 8 apps x 3 machines,
/// all 24 points in parallel.
///
/// Each app row gets its own seed derived from `scale.seed` and the
/// row's index, so rows are statistically independent while the three
/// machines within a row stay seed-paired.
pub fn app_grid(rps: f64, scale: Scale) -> Vec<AppRow> {
    let points: Vec<(usize, MachineConfig)> = (0..SocialNetwork::ALL.len())
        .flat_map(|a| machines().map(|(_, m)| (a, m)))
        .collect();
    let reports = parallel::map(points, |_, (a, machine)| {
        let row_scale = Scale {
            seed: rng::derive_seed(scale.seed, a as u64),
            ..scale
        };
        run_machine(
            machine,
            Workload::social_app(SocialNetwork::ALL[a]),
            rps,
            row_scale,
        )
    });
    let apps = SocialNetwork::new();
    SocialNetwork::ALL
        .iter()
        .zip(reports.chunks_exact(3))
        .map(|(&root, r)| AppRow {
            app: apps.profile(root).name,
            rps,
            server_class: r[0].clone(),
            scaleout: r[1].clone(),
            umanycore: r[2].clone(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 15: ablation
// ---------------------------------------------------------------------

/// The cumulative ablation stages of Figure 15, applied to ScaleOut in
/// the paper's order: villages, leaf-spine ICN, hardware scheduling,
/// hardware context switching.
pub fn ablation_stages() -> Vec<(&'static str, MachineConfig)> {
    let mut stages = Vec::new();

    let scaleout = MachineConfig::scaleout();
    stages.push(("ScaleOut", scaleout.clone()));

    // + Villages: 8-core coherence domains; queues and migration shrink
    // from the 32-core cluster to the village.
    let mut villages = scaleout;
    villages.coherence = CoherenceDomain::Village;
    villages.shape = TopologyShape::new(8, 4, 32);
    villages.name = "+Villages";
    stages.push(("+Villages", villages.clone()));

    // + Leaf-spine ICN: the full on-package organization of Figure 12,
    // including the per-cluster memory-pool chiplets attached to the hubs
    // (Figures 10-11), which localize read-mostly traffic.
    let mut leafspine = villages;
    leafspine.icn = IcnKind::LeafSpine;
    leafspine.memory_pool = true;
    leafspine.name = "+Leaf-spine";
    stages.push(("+Leaf-spine", leafspine.clone()));

    // + Hardware scheduling: hardware RQs and NIC RPC processing (§4.3).
    let mut hw_sched = leafspine;
    hw_sched.hw_scheduling = true;
    hw_sched.sched_op_cost = MachineConfig::umanycore().sched_op_cost;
    hw_sched.rq_capacity = 64;
    hw_sched.name = "+HW-Sched";
    stages.push(("+HW-Sched", hw_sched.clone()));

    // + Hardware context switching: the full uManycore.
    let mut hw_cs = hw_sched;
    hw_cs.ctx_switch = CtxSwitchModel::Hardware;
    hw_cs.name = "+HW-CtxSw";
    stages.push(("+HW-CtxSw", hw_cs));

    stages
}

/// One Figure 15 column: per-stage tail-latency reduction over ScaleOut.
#[derive(Clone, Debug)]
pub struct Fig15Row {
    /// Application name.
    pub app: &'static str,
    /// Reduction factor (ScaleOut tail / stage tail) per cumulative stage,
    /// in `ablation_stages()[1..]` order.
    pub reductions: Vec<f64>,
}

/// Runs the Figure 15 ablation for one app at `rps` (the paper uses
/// 15 K RPS).
pub fn fig15_row(root: ServiceId, rps: f64, scale: Scale) -> Fig15Row {
    let apps = SocialNetwork::new();
    let name = apps.profile(root).name;
    // All stages share the seed: the reductions are paired ratios, so
    // every stage sees the same arrival draws.
    let tails: Vec<f64> = parallel::map(ablation_stages(), |_, (_, machine)| {
        run_machine(machine, Workload::social_app(root), rps, scale)
            .latency
            .p99
    });
    Fig15Row {
        app: name,
        reductions: tails[1..].iter().map(|t| tails[0] / t).collect(),
    }
}

/// Runs the Figure 15 ablation for all eight apps: 8 apps x 5 stages,
/// all 40 points in parallel.
///
/// Each app derives its own seed from `scale.seed`; the stages within
/// an app share it (the reductions are paired ratios).
pub fn fig15_grid(rps: f64, scale: Scale) -> Vec<Fig15Row> {
    let stages = ablation_stages();
    let points: Vec<(usize, MachineConfig)> = (0..SocialNetwork::ALL.len())
        .flat_map(|a| {
            stages
                .iter()
                .map(move |(_, m)| (a, m.clone()))
                .collect::<Vec<_>>()
        })
        .collect();
    let tails = parallel::map(points, |_, (a, machine)| {
        let row_scale = Scale {
            seed: rng::derive_seed(scale.seed, a as u64),
            ..scale
        };
        run_machine(
            machine,
            Workload::social_app(SocialNetwork::ALL[a]),
            rps,
            row_scale,
        )
        .latency
        .p99
    });
    let apps = SocialNetwork::new();
    SocialNetwork::ALL
        .iter()
        .zip(tails.chunks_exact(stages.len()))
        .map(|(&root, t)| Fig15Row {
            app: apps.profile(root).name,
            reductions: t[1..].iter().map(|tail| t[0] / tail).collect(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 18: QoS throughput
// ---------------------------------------------------------------------

/// One Figure 18 bar group.
#[derive(Clone, Debug)]
pub struct Fig18Row {
    /// Application name.
    pub app: &'static str,
    /// Max QoS-compliant throughput per machine, RPS.
    pub server_class: QosResult,
    /// ScaleOut result.
    pub scaleout: QosResult,
    /// uManycore result.
    pub umanycore: QosResult,
}

/// Runs the QoS throughput search for one app.
pub fn fig18_row(root: ServiceId, scale: Scale, hi_rps: f64) -> Fig18Row {
    let apps = SocialNetwork::new();
    let name = apps.profile(root).name;
    // One sequential binary search per machine, the three searches in
    // parallel; all share the seed so the bars are paired.
    let bases: Vec<SimConfig> = machines()
        .map(|(_, machine)| SimConfig {
            machine,
            workload: Workload::social_app(root),
            servers: scale.servers,
            horizon_us: scale.horizon_us,
            warmup_us: scale.warmup_us,
            seed: scale.seed,
            ..SimConfig::default()
        })
        .to_vec();
    let results = qos::max_qos_throughput_many(bases, hi_rps / 512.0, hi_rps);
    let [sc, so, um]: [QosResult; 3] = results.try_into().expect("three machines");
    Fig18Row {
        app: name,
        server_class: sc,
        scaleout: so,
        umanycore: um,
    }
}

/// Runs the QoS throughput search for all eight apps: 8 apps x 3
/// machines, all 24 searches in parallel.
///
/// Each app derives its own seed from `scale.seed`; the three machines
/// within an app share it (the bars are normalized to ServerClass).
pub fn fig18_grid(scale: Scale, hi_rps: f64) -> Vec<Fig18Row> {
    let bases: Vec<SimConfig> = (0..SocialNetwork::ALL.len())
        .flat_map(|a| {
            machines().map(|(_, machine)| SimConfig {
                machine,
                workload: Workload::social_app(SocialNetwork::ALL[a]),
                servers: scale.servers,
                horizon_us: scale.horizon_us,
                warmup_us: scale.warmup_us,
                seed: rng::derive_seed(scale.seed, a as u64),
                ..SimConfig::default()
            })
        })
        .collect();
    let results = qos::max_qos_throughput_many(bases, hi_rps / 512.0, hi_rps);
    let apps = SocialNetwork::new();
    SocialNetwork::ALL
        .iter()
        .zip(results.chunks_exact(3))
        .map(|(&root, r)| Fig18Row {
            app: apps.profile(root).name,
            server_class: r[0],
            scaleout: r[1],
            umanycore: r[2],
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 19: topology sensitivity
// ---------------------------------------------------------------------

/// One Figure 19 bar group: per-shape tails for one app, normalized to
/// the default 8x4x32 shape.
#[derive(Clone, Debug)]
pub struct Fig19Row {
    /// Application name.
    pub app: &'static str,
    /// Normalized tails in `TopologyShape::FIG19_SWEEP` order.
    pub norm_tails: Vec<f64>,
}

/// Runs the Figure 19 shape sweep for one app.
pub fn fig19_row(root: ServiceId, rps: f64, scale: Scale) -> Fig19Row {
    let apps = SocialNetwork::new();
    let name = apps.profile(root).name;
    // Shapes share the seed: tails are normalized to the first shape, so
    // every shape sees the same arrival draws.
    let tails: Vec<f64> = parallel::map(TopologyShape::FIG19_SWEEP.to_vec(), |_, shape| {
        run_machine(
            MachineConfig::umanycore_shaped(shape),
            Workload::social_app(root),
            rps,
            scale,
        )
        .latency
        .p99
    });
    Fig19Row {
        app: name,
        norm_tails: tails.iter().map(|t| t / tails[0]).collect(),
    }
}

/// Runs the Figure 19 shape sweep for all eight apps: 8 apps x
/// `FIG19_SWEEP.len()` shapes, all points in parallel.
///
/// Each app derives its own seed from `scale.seed`; the shapes within
/// an app share it (tails are normalized to the first shape).
pub fn fig19_grid(rps: f64, scale: Scale) -> Vec<Fig19Row> {
    let shapes = TopologyShape::FIG19_SWEEP;
    let points: Vec<(usize, TopologyShape)> = (0..SocialNetwork::ALL.len())
        .flat_map(|a| shapes.iter().map(move |&s| (a, s)))
        .collect();
    let tails = parallel::map(points, |_, (a, shape)| {
        let row_scale = Scale {
            seed: rng::derive_seed(scale.seed, a as u64),
            ..scale
        };
        run_machine(
            MachineConfig::umanycore_shaped(shape),
            Workload::social_app(SocialNetwork::ALL[a]),
            rps,
            row_scale,
        )
        .latency
        .p99
    });
    let apps = SocialNetwork::new();
    SocialNetwork::ALL
        .iter()
        .zip(tails.chunks_exact(shapes.len()))
        .map(|(&root, t)| Fig19Row {
            app: apps.profile(root).name,
            norm_tails: t.iter().map(|tail| tail / t[0]).collect(),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 20: synthetic service-time distributions
// ---------------------------------------------------------------------

/// One Figure 20 bar group.
#[derive(Clone, Debug)]
pub struct Fig20Row {
    /// Distribution label (Exp/Lgn/Bim).
    pub dist: &'static str,
    /// Load in RPS.
    pub rps: f64,
    /// ServerClass tail, microseconds (the figure's absolute annotation).
    pub server_class_tail_us: f64,
    /// ScaleOut tail normalized to ServerClass.
    pub scaleout_norm: f64,
    /// uManycore tail normalized to ServerClass.
    pub umanycore_norm: f64,
}

/// Runs the Figure 20 grid: three distributions x the given loads, all
/// machine runs in parallel.
///
/// Each (distribution, load) row derives its own seed; the three
/// machines within a row share it so the normalization is paired.
pub fn fig20_rows(scale: Scale, loads: &[f64], mean_service_us: f64) -> Vec<Fig20Row> {
    let mut row_meta = Vec::new();
    let mut points = Vec::new();
    for (label, synth) in SyntheticWorkload::paper_suite(mean_service_us) {
        for &rps in loads {
            let row = row_meta.len();
            row_meta.push((label, rps));
            for (_, machine) in machines() {
                points.push((row, synth, rps, machine));
            }
        }
    }
    let reports = parallel::map(points, |_, (row, synth, rps, machine)| {
        let row_scale = Scale {
            seed: rng::derive_seed(scale.seed, row as u64),
            ..scale
        };
        run_machine(machine, Workload::Synthetic(synth), rps, row_scale)
    });
    row_meta
        .iter()
        .zip(reports.chunks_exact(3))
        .map(|(&(label, rps), r)| Fig20Row {
            dist: label,
            rps,
            server_class_tail_us: r[0].latency.p99,
            scaleout_norm: r[1].latency.p99 / r[0].latency.p99,
            umanycore_norm: r[2].latency.p99 / r[0].latency.p99,
        })
        .collect()
}

// ---------------------------------------------------------------------
// §6.8: iso-area comparison
// ---------------------------------------------------------------------

/// The iso-area comparison report.
#[derive(Clone, Debug)]
pub struct IsoAreaRow {
    /// Load in RPS.
    pub rps: f64,
    /// 128-core ServerClass tail, microseconds.
    pub server_class_128_tail_us: f64,
    /// ScaleOut tail, microseconds.
    pub scaleout_tail_us: f64,
    /// uManycore tail, microseconds.
    pub umanycore_tail_us: f64,
}

/// Runs the §6.8 iso-area comparison at the given loads, all machine
/// runs in parallel.
///
/// Each load row derives its own seed; the three machines within a row
/// share it so the comparison is paired.
pub fn iso_area_rows(scale: Scale, loads: &[f64]) -> Vec<IsoAreaRow> {
    let variants = || {
        [
            MachineConfig::server_class_iso_area(),
            MachineConfig::scaleout(),
            MachineConfig::umanycore(),
        ]
    };
    let points: Vec<(usize, MachineConfig)> = (0..loads.len())
        .flat_map(|li| variants().map(|m| (li, m)))
        .collect();
    let reports = parallel::map(points, |_, (li, machine)| {
        let row_scale = Scale {
            seed: rng::derive_seed(scale.seed, li as u64),
            ..scale
        };
        run_machine(machine, Workload::social_mix(), loads[li], row_scale)
    });
    loads
        .iter()
        .zip(reports.chunks_exact(3))
        .map(|(&rps, r)| IsoAreaRow {
            rps,
            server_class_128_tail_us: r[0].latency.p99,
            scaleout_tail_us: r[1].latency.p99,
            umanycore_tail_us: r[2].latency.p99,
        })
        .collect()
}

/// Area/power summary for the §6.8 table.
#[derive(Clone, Copy, Debug)]
pub struct AreaPowerRow {
    /// Machine label.
    pub name: &'static str,
    /// Cores.
    pub cores: usize,
    /// Package area, mm².
    pub area_mm2: f64,
    /// Package power, watts.
    pub power_w: f64,
}

/// Area and power of the four machine variants.
pub fn area_power_rows() -> Vec<AreaPowerRow> {
    [
        ("ServerClass-40", MachineConfig::server_class_iso_power()),
        ("ServerClass-128", MachineConfig::server_class_iso_area()),
        ("ScaleOut", MachineConfig::scaleout()),
        ("uManycore", MachineConfig::umanycore()),
    ]
    .into_iter()
    .map(|(name, m)| AreaPowerRow {
        name,
        cores: m.total_cores(),
        area_mm2: m.area_mm2(),
        power_w: m.power_watts(),
    })
    .collect()
}

/// A convenience for reports: converts a tail in cycles at the machine's
/// frequency to microseconds (unused by drivers, which already report in
/// microseconds, but handy for external tooling).
pub fn cycles_to_us(machine: &MachineConfig, cycles: Cycles) -> f64 {
    cycles.as_micros(machine.core.frequency)
}
