//! Drivers for the motivation/characterization figures (§2–§3).

use super::{parallel, Scale};
use crate::system::{SimConfig, SystemSim};
use crate::workload::Workload;
use um_arch::config::{IcnKind, MachineConfig};
use um_arch::uarch_opt::{OptKind, StallBreakdown};
use um_mem::footprint::{FootprintGenerator, FootprintProfile, SharingReport};
use um_mem::hierarchy::{AccessKind, HierarchyConfig, MemoryHierarchy};
use um_sched::CtxSwitchModel;
use um_sim::{rng, Cycles};
use um_stats::Cdf;
use um_workload::alibaba::AlibabaModel;
use um_workload::trace::{TraceGenerator, TraceProfile};

// ---------------------------------------------------------------------
// Figure 1: microarchitectural optimizations on monoliths vs microservices
// ---------------------------------------------------------------------

/// One Figure 1 bar group.
#[derive(Clone, Copy, Debug)]
pub struct Fig1Row {
    /// The optimization.
    pub opt: OptKind,
    /// Speedup on monolithic applications (baseline = 1.0).
    pub mono_speedup: f64,
    /// Speedup on microservice applications.
    pub micro_speedup: f64,
}

/// Out-of-order cores hide short-latency misses; only cycles beyond this
/// threshold stall the pipeline.
const OOO_HIDE_CYCLES: u64 = 12;
/// Branch misprediction penalty, cycles.
const MISPREDICT_PENALTY: f64 = 15.0;

fn access_kind(r: um_workload::trace::MemRef) -> AccessKind {
    if r.instr {
        AccessKind::InstrFetch
    } else if r.write {
        AccessKind::DataWrite
    } else {
        AccessKind::DataRead
    }
}

/// Measures a stall breakdown by streaming a synthetic trace through the
/// ServerClass cache hierarchy (the original optimization papers evaluate
/// on big cores).
pub fn measured_breakdown(profile: TraceProfile, refs: usize, seed: u64) -> StallBreakdown {
    let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::server_class());
    let mut generator = TraceGenerator::new(profile, seed);
    // Warm one pass so compulsory misses do not masquerade as steady-state
    // stall (the original studies measure warmed-up applications).
    let mut now = Cycles::ZERO;
    for r in generator.generate(refs) {
        let kind = access_kind(r);
        let lat = hierarchy.access(r.addr, kind, now);
        now += lat; // serial single-core time
    }
    hierarchy.reset_stats();
    let mut d_stall = 0u64;
    let mut i_stall = 0u64;
    let mut instr_refs = 0u64;
    for r in generator.generate(refs) {
        if r.instr {
            instr_refs += 1;
        }
        let lat = hierarchy.access(r.addr, access_kind(r), now);
        now += lat; // serial single-core time
        if lat.raw() > OOO_HIDE_CYCLES {
            let stall = lat.raw() - OOO_HIDE_CYCLES;
            if r.instr {
                i_stall += stall;
            } else {
                d_stall += stall;
            }
        }
    }
    // Base execution: ~2.5 IPC on the 6-issue core.
    let base = (refs as f64 / 2.5).max(1.0);
    // Branch stalls: taken-branch density from the profile; misprediction
    // rate under a g-share-class predictor grows with out-of-line branch
    // entropy (footprint-driven, as §2.2 argues).
    let branches = instr_refs as f64 * profile.branch_out_p;
    let mispredict_rate = (0.55 * profile.branch_out_p + 0.005).min(0.2);
    let b_stall = branches * mispredict_rate * MISPREDICT_PENALTY;
    let total = base + d_stall as f64 + i_stall as f64 + b_stall;
    StallBreakdown::new(
        d_stall as f64 / total,
        i_stall as f64 / total,
        b_stall / total,
    )
}

/// Produces the Figure 1 rows from the calibrated reference stall
/// breakdowns (`um_arch::uarch_opt::reference`), which encode the original
/// papers' own measurements.
pub fn fig1_rows() -> Vec<Fig1Row> {
    let mono = um_arch::uarch_opt::reference::monolith();
    let micro = um_arch::uarch_opt::reference::microservice();
    OptKind::ALL
        .iter()
        .map(|&opt| Fig1Row {
            opt,
            mono_speedup: opt.speedup(&mono),
            micro_speedup: opt.speedup(&micro),
        })
        .collect()
}

/// Cross-check rows from trace-driven measurement: synthetic
/// monolith/microservice traces run through the cache hierarchy. The
/// *ordering* (monoliths stall far more than microservices, so the
/// optimizations help them far more) is reproduced mechanistically; the
/// absolute stall fractions of a first-order trace model are coarser than
/// the calibrated reference, so treat these as validation, not as the
/// figure.
pub fn fig1_rows_measured(seed: u64) -> Vec<Fig1Row> {
    let refs = 400_000;
    let mono = measured_breakdown(TraceProfile::monolith(), refs, seed);
    let micro = measured_breakdown(TraceProfile::microservice(), refs, seed);
    OptKind::ALL
        .iter()
        .map(|&opt| Fig1Row {
            opt,
            mono_speedup: opt.speedup(&mono),
            micro_speedup: opt.speedup(&micro),
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figures 2, 4, 5: Alibaba trace CDFs
// ---------------------------------------------------------------------

/// Builds the Figure 2 CDF: requests per second received by a server.
pub fn fig2_cdf(seed: u64, samples: usize) -> Cdf {
    let mut m = AlibabaModel::new(seed);
    Cdf::from_samples((0..samples).map(|_| m.server_load_rps()))
}

/// Builds the Figure 4 CDF: CPU utilization per request.
pub fn fig4_cdf(seed: u64, samples: usize) -> Cdf {
    let mut m = AlibabaModel::new(seed);
    Cdf::from_samples((0..samples).map(|_| m.cpu_utilization()))
}

/// Builds the Figure 5 CDF: RPC invocations per request.
pub fn fig5_cdf(seed: u64, samples: usize) -> Cdf {
    let mut m = AlibabaModel::new(seed);
    Cdf::from_samples((0..samples).map(|_| m.rpc_count() as f64))
}

// ---------------------------------------------------------------------
// Figure 3: queue-count sweep on the 1024-core ScaleOut
// ---------------------------------------------------------------------

/// One Figure 3 point.
#[derive(Clone, Copy, Debug)]
pub struct Fig3Row {
    /// Number of queues in the 1024-core manycore.
    pub queues: usize,
    /// Average response time without work stealing, microseconds.
    pub avg_us: f64,
    /// P99 response time without work stealing, microseconds.
    pub tail_us: f64,
    /// Average response time with work stealing, microseconds.
    pub avg_steal_us: f64,
    /// P99 response time with work stealing, microseconds.
    pub tail_steal_us: f64,
}

/// The paper's queue counts, 1024 down to 1.
pub const FIG3_QUEUES: [usize; 11] = [1024, 512, 256, 128, 64, 32, 16, 8, 4, 2, 1];

/// Runs the Figure 3 sweep (50 K RPS Poisson on ScaleOut).
///
/// §3.2 isolates queue *structure*: requests are assigned to queues
/// randomly and run to completion on their core (no context switches).
/// Nested synchronous service calls would deadlock under strict
/// run-to-completion (every ancestor pins a core), so this sweep uses the
/// paper's synthetic request shape — a service time plus 2-6 blocking
/// storage accesses — which is also how prior-work queueing studies \[36\]
/// set up this experiment.
pub fn fig3_rows(scale: Scale, rps: f64) -> Vec<Fig3Row> {
    // Heavy-tailed multi-millisecond requests: long enough that one slow
    // request parked on a per-core queue visibly delays its successors.
    let synth = um_workload::synthetic::SyntheticWorkload::new(
        um_workload::ServiceTimeDist::lognormal_with_mean(4_000.0, 4.0),
        2,
        6,
    );
    // The whole figure is one paired comparison (every point is plotted
    // against every other), so all points share `scale.seed`; the sweep
    // fans out across queue counts, with the steal/no-steal pair for
    // each count evaluated back-to-back on the same worker.
    parallel::map(FIG3_QUEUES.to_vec(), |_, queues| {
        let run = |steal: bool| {
            let mut machine = MachineConfig::scaleout();
            machine.ctx_switch = CtxSwitchModel::Custom(0);
            SystemSim::new(SimConfig {
                machine,
                workload: Workload::Synthetic(synth),
                rps_per_server: rps,
                servers: scale.servers,
                horizon_us: scale.horizon_us,
                warmup_us: scale.warmup_us,
                seed: scale.seed,
                queues_override: Some(queues),
                work_stealing: steal,
                hold_core_while_blocked: true,
                // Queue structure is the variable under study; ICN
                // contention is studied separately (Figure 7).
                icn_contention: false,
                ..SimConfig::default()
            })
            .run()
        };
        let plain = run(false);
        let steal = run(true);
        Fig3Row {
            queues,
            avg_us: plain.latency.mean,
            tail_us: plain.latency.p99,
            avg_steal_us: steal.latency.mean,
            tail_steal_us: steal.latency.p99,
        }
    })
}

// ---------------------------------------------------------------------
// Figure 6: context-switch overhead sweep
// ---------------------------------------------------------------------

/// One Figure 6 point: normalized tail latency at one CS cost and load.
#[derive(Clone, Copy, Debug)]
pub struct Fig6Row {
    /// Context-switch overhead in cycles.
    pub cs_cycles: u64,
    /// Load in RPS.
    pub rps: f64,
    /// Tail latency normalized to the zero-overhead run at the same load.
    pub norm_tail: f64,
}

/// The paper's CS sweep values.
pub const FIG6_CS: [u64; 10] = [0, 32, 64, 128, 256, 512, 1024, 2048, 4096, 8192];

/// Runs the Figure 6 sweep on ScaleOut for the given loads, all points
/// in parallel.
///
/// Each load derives its own seed; all CS values at one load share it,
/// so the normalization to the zero-overhead run is paired (and the
/// `cs = 0` point is exactly 1.0).
pub fn fig6_rows(scale: Scale, loads: &[f64]) -> Vec<Fig6Row> {
    let points: Vec<(usize, u64)> = (0..loads.len())
        .flat_map(|li| FIG6_CS.iter().map(move |&cs| (li, cs)))
        .collect();
    let tails = parallel::map(points.clone(), |_, (li, cs)| {
        let mut machine = MachineConfig::scaleout();
        machine.ctx_switch = CtxSwitchModel::Custom(cs);
        SystemSim::new(SimConfig {
            machine,
            workload: Workload::social_mix(),
            rps_per_server: loads[li],
            servers: scale.servers,
            horizon_us: scale.horizon_us,
            warmup_us: scale.warmup_us,
            seed: rng::derive_seed(scale.seed, li as u64),
            // Context-switch cost is the variable under study; ICN
            // contention is studied separately (Figure 7).
            icn_contention: false,
            ..SimConfig::default()
        })
        .run()
        .latency
        .p99
    });
    // FIG6_CS[0] is 0, so each load's chunk leads with its baseline.
    points
        .iter()
        .zip(&tails)
        .map(|(&(li, cs), &tail)| Fig6Row {
            cs_cycles: cs,
            rps: loads[li],
            norm_tail: tail / tails[li * FIG6_CS.len()],
        })
        .collect()
}

// ---------------------------------------------------------------------
// Figure 7: ICN contention impact
// ---------------------------------------------------------------------

/// One Figure 7 bar: tail latency with contention normalized to the same
/// system without ICN contention.
#[derive(Clone, Copy, Debug)]
pub struct Fig7Row {
    /// Load in RPS.
    pub rps: f64,
    /// Mesh tail, normalized to contention-free.
    pub mesh_norm_tail: f64,
    /// Fat-tree tail, normalized to contention-free.
    pub fat_tree_norm_tail: f64,
}

/// The four runs per Figure 7 load: ICN kind × contention on/off, in
/// committed-results point order.
pub const FIG7_VARIANTS: [(IcnKind, bool); 4] = [
    (IcnKind::Mesh, true),
    (IcnKind::Mesh, false),
    (IcnKind::FatTree, true),
    (IcnKind::FatTree, false),
];

/// The fully-specified Figure 7 point list — [`FIG7_VARIANTS`] per load,
/// loads outermost. Each load derives its own seed; the four runs at one
/// load share it, so each normalization is paired.
pub fn fig7_configs(scale: Scale, loads: &[f64]) -> Vec<SimConfig> {
    loads
        .iter()
        .enumerate()
        .flat_map(|(li, &rps)| {
            FIG7_VARIANTS.iter().map(move |&(icn, contention)| {
                let mut machine = MachineConfig::scaleout();
                machine.icn = icn;
                // ICN contention is the variable under study; scheduling
                // and context-switch overheads are studied separately
                // (Figures 3, 6).
                machine.ctx_switch = CtxSwitchModel::Custom(0);
                SimConfig {
                    machine,
                    workload: Workload::social_mix(),
                    rps_per_server: rps,
                    servers: scale.servers,
                    horizon_us: scale.horizon_us,
                    warmup_us: scale.warmup_us,
                    seed: rng::derive_seed(scale.seed, li as u64),
                    icn_contention: contention,
                    ..SimConfig::default()
                }
            })
        })
        .collect()
}

/// Reduces the per-point p99 tails (in [`fig7_configs`] order) to the
/// figure's paired normalizations.
pub fn fig7_rows_from(loads: &[f64], tails: &[f64]) -> Vec<Fig7Row> {
    loads
        .iter()
        .zip(tails.chunks_exact(FIG7_VARIANTS.len()))
        .map(|(&rps, t)| Fig7Row {
            rps,
            mesh_norm_tail: t[0] / t[1],
            fat_tree_norm_tail: t[2] / t[3],
        })
        .collect()
}

/// Runs the Figure 7 sweep on ScaleOut with mesh and fat-tree ICNs, all
/// points in parallel.
pub fn fig7_rows(scale: Scale, loads: &[f64]) -> Vec<Fig7Row> {
    let tails = parallel::map(fig7_configs(scale, loads), |_, cfg| {
        SystemSim::new(cfg).run().latency.p99
    });
    fig7_rows_from(loads, &tails)
}

// ---------------------------------------------------------------------
// Figure 8: footprint sharing
// ---------------------------------------------------------------------

/// The two Figure 8 bar groups.
#[derive(Clone, Copy, Debug)]
pub struct Fig8Rows {
    /// Handler vs another handler of the same instance.
    pub handler_handler: SharingReport,
    /// Handler vs the instance's initialization process.
    pub handler_init: SharingReport,
}

/// Measures footprint sharing over `pairs` sampled handler pairs.
pub fn fig8_rows(seed: u64, pairs: usize) -> Fig8Rows {
    let mut generator = FootprintGenerator::new(FootprintProfile::deathstar_default());
    let mut r = rng::stream(seed, "fig8");
    let init = generator.init();
    let mut hh = Vec::new();
    let mut hi = Vec::new();
    for _ in 0..pairs {
        let a = generator.handler(&mut r);
        let b = generator.handler(&mut r);
        hh.push(FootprintGenerator::sharing(&a, &b));
        hi.push(FootprintGenerator::sharing(&a, &init));
    }
    let mean = |v: &[SharingReport]| SharingReport {
        d_page: v.iter().map(|s| s.d_page).sum::<f64>() / v.len() as f64, // um-tidy: allow(float-accumulation) -- serial mean over a fixed-order sample vector
        d_line: v.iter().map(|s| s.d_line).sum::<f64>() / v.len() as f64, // um-tidy: allow(float-accumulation) -- serial mean over a fixed-order sample vector
        i_page: v.iter().map(|s| s.i_page).sum::<f64>() / v.len() as f64, // um-tidy: allow(float-accumulation) -- serial mean over a fixed-order sample vector
        i_line: v.iter().map(|s| s.i_line).sum::<f64>() / v.len() as f64, // um-tidy: allow(float-accumulation) -- serial mean over a fixed-order sample vector
    };
    Fig8Rows {
        handler_handler: mean(&hh),
        handler_init: mean(&hi),
    }
}

// ---------------------------------------------------------------------
// Figure 9: TLB and cache hit rates
// ---------------------------------------------------------------------

/// Figure 9's eight bars.
#[derive(Clone, Copy, Debug)]
pub struct Fig9Rows {
    /// Data-side L1 TLB hit rate.
    pub d_l1_tlb: f64,
    /// Data-side L1 cache hit rate.
    pub d_l1_cache: f64,
    /// Data-side L2 TLB hit rate.
    pub d_l2_tlb: f64,
    /// Data-side L2 cache hit rate.
    pub d_l2_cache: f64,
    /// Instruction-side L1 TLB hit rate.
    pub i_l1_tlb: f64,
    /// Instruction-side L1 cache hit rate.
    pub i_l1_cache: f64,
    /// Instruction-side L2 TLB hit rate.
    pub i_l2_tlb: f64,
    /// Instruction-side L2 cache hit rate (shared L2; instr fraction).
    pub i_l2_cache: f64,
}

/// Streams a microservice handler trace through the Table 2 hierarchy and
/// reports hit rates. The L2 entries use the two-level ServerClass
/// structures (the only hierarchy with L2 TLBs).
pub fn fig9_rows(seed: u64, refs: usize) -> Fig9Rows {
    let mut hierarchy = MemoryHierarchy::new(HierarchyConfig::server_class());
    let mut generator = TraceGenerator::new(TraceProfile::microservice(), seed);
    // Warm up with one pass, measure on the second: steady-state handlers.
    let mut now = Cycles::ZERO;
    for r in generator.generate(refs) {
        let lat = hierarchy.access(r.addr, access_kind(r), now);
        now += lat;
    }
    hierarchy.reset_stats();
    // Track instruction vs data L2 hits separately with shadow counters.
    let mut i_l2_acc = 0u64;
    let mut i_l2_hits = 0u64;
    let mut d_l2_acc = 0u64;
    let mut d_l2_hits = 0u64;
    for r in generator.generate(refs) {
        let before = hierarchy.stats();
        let lat = hierarchy.access(r.addr, access_kind(r), now);
        now += lat;
        let after = hierarchy.stats();
        let l2_new = after.l2.accesses - before.l2.accesses;
        let l2_new_hits = after.l2.hits - before.l2.hits;
        if l2_new > 0 {
            if r.instr {
                i_l2_acc += l2_new;
                i_l2_hits += l2_new_hits;
            } else {
                d_l2_acc += l2_new;
                d_l2_hits += l2_new_hits;
            }
        }
    }
    let s = hierarchy.stats();
    let rate = |hits: u64, acc: u64| {
        if acc == 0 {
            1.0
        } else {
            hits as f64 / acc as f64
        }
    };
    Fig9Rows {
        d_l1_tlb: s.dtlb.hit_rate(),
        d_l1_cache: s.l1d.hit_rate(),
        d_l2_tlb: s.tlb2.hit_rate(),
        d_l2_cache: rate(d_l2_hits, d_l2_acc),
        i_l1_tlb: s.itlb.hit_rate(),
        i_l1_cache: s.l1i.hit_rate(),
        i_l2_tlb: s.tlb2.hit_rate(),
        i_l2_cache: rate(i_l2_hits, i_l2_acc),
    }
}
