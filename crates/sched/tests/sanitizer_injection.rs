//! Deliberate-violation tests for the `sim-sanitizer` run-queue checker:
//! a corrupted occupancy counter must surface as a structured violation,
//! and a full request lifecycle must leave the registry empty.
#![cfg(feature = "sim-sanitizer")]

use um_sched::RequestQueue;
use um_sim::sanitizer;

#[test]
fn corrupted_occupancy_is_reported() {
    let _ = sanitizer::take();
    let mut rq = RequestQueue::new(4);
    rq.enqueue(1, ()).unwrap();
    rq.corrupt_len_for_sanitizer_test(3);
    rq.enqueue(1, ()).unwrap();
    let violations = sanitizer::take();
    assert!(
        violations.iter().any(|v| v.checker == "rq-occupancy"),
        "occupancy drift reported: {violations:?}"
    );
}

#[test]
fn full_lifecycle_stays_clean() {
    let _ = sanitizer::take();
    let mut rq = RequestQueue::new(4);
    for round in 0..16u32 {
        let a = rq.enqueue(round % 3, round).unwrap();
        let b = rq.enqueue(round % 3, round + 100).unwrap();
        rq.dequeue(round % 3).unwrap();
        rq.block(a).unwrap();
        rq.dequeue(round % 3).unwrap();
        rq.unblock(a).unwrap();
        rq.complete(b).unwrap();
        rq.dequeue(round % 3).unwrap();
        rq.complete(a).unwrap();
    }
    assert!(rq.is_empty());
    assert_eq!(sanitizer::violation_count(), 0);
}
