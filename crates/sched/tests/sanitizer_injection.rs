//! Deliberate-violation tests for the `sim-sanitizer` checkers in this
//! crate: a corrupted RQ occupancy counter and an overdrawn retry budget
//! must surface as structured violations, while healthy lifecycles leave
//! the registry empty.
#![cfg(feature = "sim-sanitizer")]

use um_sched::{RequestQueue, RetryBudget};
use um_sim::sanitizer;

#[test]
fn corrupted_occupancy_is_reported() {
    let _ = sanitizer::take();
    let mut rq = RequestQueue::new(4);
    rq.enqueue(1, ()).unwrap();
    rq.corrupt_len_for_sanitizer_test(3);
    rq.enqueue(1, ()).unwrap();
    let violations = sanitizer::take();
    assert!(
        violations.iter().any(|v| v.checker == "rq-occupancy"),
        "occupancy drift reported: {violations:?}"
    );
}

#[test]
fn overdrawn_retry_budget_is_reported() {
    let _ = sanitizer::take();
    let mut budget = RetryBudget::new(0.1);
    budget.earn();
    assert!(!budget.try_spend(), "0.1 tokens cannot pay for a retry");
    assert_eq!(
        sanitizer::violation_count(),
        0,
        "a refusal is not a violation"
    );
    budget.force_spend_for_sanitizer_test();
    let violations = sanitizer::take();
    assert!(
        violations.iter().any(|v| v.checker == "retry-budget"),
        "overdraw reported: {violations:?}"
    );
}

#[test]
fn healthy_budget_lifecycle_stays_clean() {
    let _ = sanitizer::take();
    let mut budget = RetryBudget::new(0.5);
    for _ in 0..100 {
        budget.earn();
        let _ = budget.try_spend();
    }
    assert_eq!(sanitizer::violation_count(), 0);
}

#[test]
fn full_lifecycle_stays_clean() {
    let _ = sanitizer::take();
    let mut rq = RequestQueue::new(4);
    for round in 0..16u32 {
        let a = rq.enqueue(round % 3, round).unwrap();
        let b = rq.enqueue(round % 3, round + 100).unwrap();
        rq.dequeue(round % 3).unwrap();
        rq.block(a).unwrap();
        rq.dequeue(round % 3).unwrap();
        rq.unblock(a).unwrap();
        rq.complete(b).unwrap();
        rq.dequeue(round % 3).unwrap();
        rq.complete(a).unwrap();
    }
    assert!(rq.is_empty());
    assert_eq!(sanitizer::violation_count(), 0);
}
