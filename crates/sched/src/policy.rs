//! Dequeue ordering policies (paper §4.3).
//!
//! The hardware Request Queue serves FCFS. The paper argues SRPT (Shortest
//! Remaining Processing Time first) is unlikely to improve on FCFS for
//! microservices — same-service requests have similar durations, and
//! frequent I/O blocking already interleaves requests — and our ablation
//! bench (`ablation_srpt`) checks exactly that claim.

/// Order in which ready entries are claimed from a queue.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum DequeuePolicy {
    /// First come, first served — the uManycore hardware policy.
    #[default]
    Fcfs,
    /// Shortest remaining processing time first.
    Srpt,
}

impl DequeuePolicy {
    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            DequeuePolicy::Fcfs => "fcfs",
            DequeuePolicy::Srpt => "srpt",
        }
    }
}

impl std::fmt::Display for DequeuePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_fcfs() {
        assert_eq!(DequeuePolicy::default(), DequeuePolicy::Fcfs);
    }

    #[test]
    fn names() {
        assert_eq!(DequeuePolicy::Fcfs.to_string(), "fcfs");
        assert_eq!(DequeuePolicy::Srpt.to_string(), "srpt");
    }
}
