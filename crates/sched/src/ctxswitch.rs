//! Context-switch cost models (paper §3.3, §4.4, Figure 6).
//!
//! A service request blocks on I/O several times per invocation (median 4.2
//! RPCs in the Alibaba traces); each block forces a context switch. The
//! paper measures ~5 K cycles per switch under Linux, ~1–2 K under
//! state-of-the-art software schedulers, and targets 128–256 cycles with
//! the uManycore hardware mechanism.

use um_sim::Cycles;

/// Which mechanism performs context switches, with its per-switch cost.
///
/// The cycle costs are the markers on Figure 6's x-axis.
///
/// # Examples
///
/// ```
/// use um_sched::CtxSwitchModel;
///
/// assert!(CtxSwitchModel::Hardware.cost() < CtxSwitchModel::Shenango.cost());
/// assert!(CtxSwitchModel::Linux.cost().raw() >= 4096);
/// ```
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum CtxSwitchModel {
    /// uManycore's hardware save/restore (§4.4): the paper targets
    /// 128–256 cycles; we use 192.
    Hardware,
    /// Shenango-class software scheduling (dedicated scheduling core).
    Shenango,
    /// Shinjuku-class software scheduling (centralized preemptive).
    Shinjuku,
    /// ZygOS-class software scheduling (work stealing over sockets).
    ZygOs,
    /// Stock Linux kernel scheduling.
    Linux,
    /// An arbitrary cost, for Figure 6's sweep.
    Custom(u64),
}

impl CtxSwitchModel {
    /// Per-switch cost in cycles.
    pub fn cost(self) -> Cycles {
        Cycles::new(match self {
            CtxSwitchModel::Hardware => 192,
            CtxSwitchModel::Shenango => 1024,
            CtxSwitchModel::Shinjuku => 1536,
            CtxSwitchModel::ZygOs => 2048,
            CtxSwitchModel::Linux => 5000,
            CtxSwitchModel::Custom(c) => c,
        })
    }

    /// The save (or restore) half of a switch: a block pays the save half
    /// on the outgoing side and the restore half when the request is
    /// re-dispatched. Rounds down; the halves are attribution quantities
    /// (the request-path restore vs the core-path save), not timing — the
    /// full [`CtxSwitchModel::cost`] still governs total switch time.
    pub fn half_cost(self) -> Cycles {
        Cycles::new(self.cost().raw() / 2)
    }

    /// Whether switches are mediated by a centralized software dispatcher
    /// (and therefore contend for it).
    pub fn is_software(self) -> bool {
        !matches!(self, CtxSwitchModel::Hardware)
    }

    /// Display name for reports.
    pub fn name(self) -> &'static str {
        match self {
            CtxSwitchModel::Hardware => "hardware",
            CtxSwitchModel::Shenango => "shenango",
            CtxSwitchModel::Shinjuku => "shinjuku",
            CtxSwitchModel::ZygOs => "zygos",
            CtxSwitchModel::Linux => "linux",
            CtxSwitchModel::Custom(_) => "custom",
        }
    }
}

impl std::fmt::Display for CtxSwitchModel {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CtxSwitchModel::Custom(c) => write!(f, "custom({c})"),
            other => f.write_str(other.name()),
        }
    }
}

/// A centralized software scheduling dispatcher (§4.4).
///
/// Shinjuku-style schedulers run on a dedicated core: every context switch
/// funnels through it, so under load switches queue behind one another.
/// This is the "centralized software easily becomes a bottleneck" effect
/// the paper measures. Hardware context switching has no dispatcher; model
/// that by simply not routing switches through one.
///
/// # Examples
///
/// ```
/// use um_sched::Dispatcher;
/// use um_sim::Cycles;
///
/// let mut d = Dispatcher::new(Cycles::new(100));
/// let a = d.dispatch(Cycles::ZERO);
/// let b = d.dispatch(Cycles::ZERO); // queues behind a
/// assert_eq!(a, Cycles::new(100));
/// assert_eq!(b, Cycles::new(200));
/// ```
#[derive(Clone, Debug)]
pub struct Dispatcher {
    op_cost: Cycles,
    busy_until: Cycles,
    ops: u64,
    queue_cycles: u64,
}

impl Dispatcher {
    /// Creates a dispatcher whose each operation occupies it for `op_cost`.
    pub fn new(op_cost: Cycles) -> Self {
        Self {
            op_cost,
            busy_until: Cycles::ZERO,
            ops: 0,
            queue_cycles: 0,
        }
    }

    /// Dispatcher occupancy derived from a context-switch model on a
    /// machine with `cores` cores: the dedicated scheduling core is
    /// occupied for the whole switch — it detects the block, saves or
    /// restores the context and scans the run queues (§4.4's five steps) —
    /// and its per-operation cost grows with the square root of the core
    /// count (queue scanning and cross-core cache traffic). This is why
    /// "this centralized software easily becomes a bottleneck" on the
    /// 1024-core ScaleOut (§4.4).
    ///
    /// # Panics
    ///
    /// Panics if `cores` is zero.
    pub fn for_model(model: CtxSwitchModel, cores: usize) -> Option<Self> {
        assert!(cores > 0, "need at least one core");
        model.is_software().then(|| {
            let scale = (cores as f64 / 64.0).sqrt().clamp(1.0, 2.0);
            Self::new(Cycles::new((model.cost().raw() as f64 * scale) as u64))
        })
    }

    /// Requests a dispatch at `now`; returns when the dispatcher completes
    /// this operation (start-of-switch time for the caller).
    pub fn dispatch(&mut self, now: Cycles) -> Cycles {
        self.dispatch_traced(now).0
    }

    /// Traced [`Dispatcher::dispatch`]: also returns how long this
    /// operation queued behind earlier switches — the dispatcher-contention
    /// share of a context switch, for latency attribution.
    pub fn dispatch_traced(&mut self, now: Cycles) -> (Cycles, Cycles) {
        let start = now.max(self.busy_until);
        let queued = start - now;
        self.queue_cycles += queued.raw();
        self.busy_until = start + self.op_cost;
        self.ops += 1;
        (self.busy_until, queued)
    }

    /// Operations served.
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    /// Total cycles operations spent queueing for the dispatcher.
    pub fn queue_cycles(&self) -> u64 {
        self.queue_cycles
    }

    /// Clears occupancy and statistics.
    pub fn reset(&mut self) {
        self.busy_until = Cycles::ZERO;
        self.ops = 0;
        self.queue_cycles = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_ordering_matches_paper() {
        // HW << Shenango < Shinjuku < ZygOS < Linux.
        let costs: Vec<u64> = [
            CtxSwitchModel::Hardware,
            CtxSwitchModel::Shenango,
            CtxSwitchModel::Shinjuku,
            CtxSwitchModel::ZygOs,
            CtxSwitchModel::Linux,
        ]
        .iter()
        .map(|m| m.cost().raw())
        .collect();
        assert!(costs.windows(2).all(|w| w[0] < w[1]), "{costs:?}");
        assert!((128..=256).contains(&costs[0]), "hardware target range");
        assert!((1000..=2500).contains(&costs[2]), "software ~2K");
        assert!((4000..=8000).contains(&costs[4]), "linux ~5K");
    }

    #[test]
    fn custom_cost() {
        assert_eq!(CtxSwitchModel::Custom(777).cost(), Cycles::new(777));
        assert_eq!(CtxSwitchModel::Custom(777).to_string(), "custom(777)");
    }

    #[test]
    fn half_cost_splits_the_switch() {
        assert_eq!(CtxSwitchModel::Hardware.half_cost(), Cycles::new(96));
        assert_eq!(CtxSwitchModel::Custom(777).half_cost(), Cycles::new(388));
        for m in [
            CtxSwitchModel::Hardware,
            CtxSwitchModel::Shenango,
            CtxSwitchModel::Linux,
        ] {
            assert!(m.half_cost() * 2 <= m.cost());
        }
    }

    #[test]
    fn dispatch_traced_reports_queueing() {
        let mut d = Dispatcher::new(Cycles::new(10));
        let (done, queued) = d.dispatch_traced(Cycles::ZERO);
        assert_eq!((done, queued), (Cycles::new(10), Cycles::ZERO));
        let (done, queued) = d.dispatch_traced(Cycles::new(4));
        // Queues behind the first op: starts at 10, not 4.
        assert_eq!((done, queued), (Cycles::new(20), Cycles::new(6)));
        assert_eq!(d.queue_cycles(), 6);
    }

    #[test]
    fn hardware_has_no_dispatcher() {
        assert!(Dispatcher::for_model(CtxSwitchModel::Hardware, 1024).is_none());
        assert!(Dispatcher::for_model(CtxSwitchModel::Shinjuku, 1024).is_some());
    }

    #[test]
    fn dispatcher_cost_scales_with_cores_up_to_clamp() {
        let mut small = Dispatcher::for_model(CtxSwitchModel::Shinjuku, 40).expect("software");
        let mut big = Dispatcher::for_model(CtxSwitchModel::Shinjuku, 1024).expect("software");
        let s = small.dispatch(Cycles::ZERO);
        let b = big.dispatch(Cycles::ZERO);
        assert!(
            b > s,
            "1024-core dispatch {b} should cost more than 40-core {s}"
        );
        assert!(b <= s * 2, "scaling is clamped at 2x: {b} vs {s}");
    }

    #[test]
    fn dispatcher_serializes() {
        let mut d = Dispatcher::new(Cycles::new(10));
        let mut last = Cycles::ZERO;
        for i in 0..5 {
            let done = d.dispatch(Cycles::ZERO);
            assert_eq!(done, Cycles::new(10 * (i + 1)));
            assert!(done > last);
            last = done;
        }
        assert_eq!(d.op_count(), 5);
        assert_eq!(d.queue_cycles(), (10 + 20 + 30 + 40) as u64);
    }

    #[test]
    fn idle_dispatcher_does_not_queue() {
        let mut d = Dispatcher::new(Cycles::new(10));
        d.dispatch(Cycles::ZERO);
        let done = d.dispatch(Cycles::new(1_000));
        assert_eq!(done, Cycles::new(1_010));
        assert_eq!(d.queue_cycles(), 0);
    }

    #[test]
    fn reset_clears() {
        let mut d = Dispatcher::new(Cycles::new(10));
        d.dispatch(Cycles::ZERO);
        d.reset();
        assert_eq!(d.op_count(), 0);
        assert_eq!(d.dispatch(Cycles::ZERO), Cycles::new(10));
    }

    #[test]
    fn display_names() {
        assert_eq!(CtxSwitchModel::Hardware.to_string(), "hardware");
        assert_eq!(CtxSwitchModel::Linux.to_string(), "linux");
    }
}
