//! Request scheduling and context-switching substrates (paper §3.2, §3.3,
//! §4.3, §4.4).
//!
//! uManycore's thesis is that queuing, scheduling and context switching
//! dominate microservice tail latency on conventional hardware, and that
//! moving them into hardware removes the overhead. This crate provides both
//! sides of that comparison:
//!
//! - [`QueueFabric`]: the §3.2 experiment fabric — any number of FCFS
//!   queues over a set of cores, optional work stealing (Figure 3).
//! - [`RequestQueue`]: the hardware Request Queue of §4.3 — a circular
//!   buffer with per-entry status, service id and a Request Context Memory
//!   slot, operated by `Enqueue`/`Dequeue`/`Complete`/`ContextSwitch`
//!   semantics.
//! - [`PartitionedRq`]: the §4.3 "more advanced design": an RQ_Map that
//!   partitions the RQ among co-located services (evaluated here as an
//!   extension/ablation; the paper describes but does not evaluate it).
//! - [`CtxSwitchModel`]: per-mechanism context-switch costs — Linux,
//!   ZygOS/Shinjuku/Shenango-class software schedulers, and the uManycore
//!   hardware mechanism (Figure 6's x-axis).
//! - [`Dispatcher`]: the centralized software dispatcher bottleneck that
//!   §4.4 measures for Shinjuku-style scheduling.
//! - [`DequeuePolicy`]: FCFS vs SRPT (§4.3 discusses why FCFS suffices).
//! - [`mitigation`]: tail-mitigation policies — request hedging,
//!   timeout/backoff retry with a token [`RetryBudget`], straggler-aware
//!   steering — applied by the system simulator under fault injection.
//!
//! # Examples
//!
//! ```
//! use um_sched::{RequestQueue, RqEntryStatus};
//!
//! let mut rq: RequestQueue<&str> = RequestQueue::new(64);
//! let slot = rq.enqueue(3, "request ctx").unwrap();
//! assert_eq!(rq.status(slot), Some(RqEntryStatus::Ready));
//! let (got, ctx) = rq.dequeue(3).unwrap();
//! assert_eq!(got, slot);
//! assert_eq!(*ctx, "request ctx");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ctxswitch;
pub mod fabric;
pub mod mitigation;
pub mod policy;
pub mod rq;

pub use ctxswitch::{CtxSwitchModel, Dispatcher};
pub use fabric::{FabricConfig, QueueFabric};
pub use mitigation::{HedgeConfig, MitigationConfig, RetryBudget, RetryConfig};
pub use policy::DequeuePolicy;
pub use rq::{PartitionedRq, RequestQueue, RqEntryStatus, RqError, RqSlot};
