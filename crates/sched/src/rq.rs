//! The hardware Request Queue (paper §4.3, Figure 13) and its RQ_Map
//! partitioned extension.

use crate::policy::DequeuePolicy;
use std::collections::BTreeMap;
use um_sim::Cycles;

/// Status of one Request Queue entry (§4.3: "running, ready to run,
/// blocked on an RPC, or finished").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RqEntryStatus {
    /// Waiting for a core.
    Ready,
    /// Currently executing on a core.
    Running,
    /// Blocked on an outstanding RPC or storage access.
    Blocked,
    /// Completed; the slot is reclaimed when it reaches the head.
    Finished,
}

/// Errors from Request Queue operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RqError {
    /// The circular buffer is full; §4.3: the request is then temporarily
    /// queued in the NIC, and rejected if the NIC also runs out of space.
    Full,
    /// A slot handle refers to a reclaimed or never-issued entry.
    StaleSlot,
    /// The operation is invalid for the entry's current status.
    BadTransition {
        /// Status the entry actually had.
        found: RqEntryStatus,
    },
}

impl std::fmt::Display for RqError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RqError::Full => f.write_str("request queue full"),
            RqError::StaleSlot => f.write_str("stale request queue slot"),
            RqError::BadTransition { found } => {
                write!(f, "invalid status transition from {found:?}")
            }
        }
    }
}

impl std::error::Error for RqError {}

/// Handle to a Request Queue entry.
///
/// Carries a generation so a handle kept across slot reuse is detected as
/// [`RqError::StaleSlot`] instead of corrupting an unrelated request.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct RqSlot {
    index: usize,
    generation: u64,
}

#[derive(Clone, Debug)]
struct Entry<T> {
    status: RqEntryStatus,
    service: u32,
    generation: u64,
    /// When the entry last became Ready (enqueue or unblock); the timed
    /// dequeue variants report `now - ready_since` as the queue wait.
    ready_since: Cycles,
    ctx: T,
}

/// The hardware Request Queue: a circular buffer whose entries carry a
/// status, a service id, and a pointer into Request Context Memory (here:
/// the owned context value `T`).
///
/// Semantics follow §4.3:
/// - the NIC `enqueue`s at the tail;
/// - an idle core's `Dequeue` instruction atomically claims the
///   highest-priority (closest to head) *ready* entry matching its service
///   id and marks it running;
/// - `ContextSwitch` marks a running entry blocked (saving state into the
///   context memory is the caller's concern — see
///   `um-sched::ctxswitch`);
/// - the NIC's RPC-response path marks a blocked entry ready again;
/// - `Complete` marks an entry finished, and the head advances over
///   finished entries to reclaim slots.
///
/// # Examples
///
/// ```
/// use um_sched::{RequestQueue, RqEntryStatus};
///
/// let mut rq = RequestQueue::new(4);
/// let a = rq.enqueue(1, "a").unwrap();
/// let b = rq.enqueue(1, "b").unwrap();
/// assert_eq!(rq.dequeue(1).map(|(s, _)| s), Some(a)); // FCFS: a first
/// rq.block(a).unwrap();
/// assert_eq!(rq.dequeue(1).map(|(s, _)| s), Some(b));
/// rq.unblock(a).unwrap();
/// assert_eq!(rq.status(a), Some(RqEntryStatus::Ready));
/// ```
#[derive(Clone, Debug)]
pub struct RequestQueue<T> {
    slots: Vec<Option<Entry<T>>>,
    head: usize,
    tail: usize,
    len: usize,
    next_generation: u64,
    enqueues: u64,
    rejections: u64,
    ready_wait: Cycles,
}

impl<T> RequestQueue<T> {
    /// Creates an empty RQ with `capacity` entries (the paper uses 64 per
    /// village).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "request queue needs nonzero capacity");
        Self {
            slots: (0..capacity).map(|_| None).collect(),
            head: 0,
            tail: 0,
            len: 0,
            next_generation: 0,
            enqueues: 0,
            rejections: 0,
            ready_wait: Cycles::ZERO,
        }
    }

    /// Capacity in entries.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of occupied entries (including finished ones not yet
    /// reclaimed).
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the RQ holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the RQ cannot accept another request.
    pub fn is_full(&self) -> bool {
        self.len == self.slots.len()
    }

    /// Enqueues a request for `service` at the tail.
    ///
    /// # Errors
    ///
    /// Returns [`RqError::Full`] when no slot is free; the caller (the
    /// village NIC) then buffers or rejects.
    pub fn enqueue(&mut self, service: u32, ctx: T) -> Result<RqSlot, RqError> {
        self.enqueue_at(service, ctx, Cycles::ZERO)
    }

    /// Timed [`RequestQueue::enqueue`]: stamps the entry's ready time so
    /// [`RequestQueue::dequeue_any_with_at`] can attribute queue wait.
    /// Mix timed and untimed calls at your peril: untimed ops stamp time
    /// zero.
    ///
    /// # Errors
    ///
    /// Returns [`RqError::Full`] when no slot is free.
    pub fn enqueue_at(&mut self, service: u32, ctx: T, now: Cycles) -> Result<RqSlot, RqError> {
        if self.is_full() {
            self.rejections += 1;
            return Err(RqError::Full);
        }
        let index = self.tail;
        debug_assert!(self.slots[index].is_none(), "tail points at occupied slot");
        let generation = self.next_generation;
        self.next_generation += 1;
        self.slots[index] = Some(Entry {
            status: RqEntryStatus::Ready,
            service,
            generation,
            ready_since: now,
            ctx,
        });
        self.tail = (self.tail + 1) % self.slots.len();
        self.len += 1;
        self.enqueues += 1;
        #[cfg(feature = "sim-sanitizer")]
        self.check_occupancy();
        Ok(RqSlot { index, generation })
    }

    /// Sanitizer hook: the cached `len` must equal the number of occupied
    /// slots, or the circular-buffer bookkeeping has drifted.
    #[cfg(feature = "sim-sanitizer")]
    fn check_occupancy(&self) {
        let occupied = self.slots.iter().filter(|s| s.is_some()).count();
        if occupied != self.len {
            um_sim::sanitizer::report(
                "rq-occupancy",
                format!(
                    "request queue len {} disagrees with {occupied} occupied slot(s)",
                    self.len
                ),
            );
        }
    }

    /// Corrupts the cached occupancy counter.
    ///
    /// Exists only so sanitizer tests can verify the `rq-occupancy` checker
    /// fires; never call this from simulation code.
    #[cfg(feature = "sim-sanitizer")]
    #[doc(hidden)]
    pub fn corrupt_len_for_sanitizer_test(&mut self, len: usize) {
        self.len = len;
    }

    /// The `Dequeue` instruction: claims the ready entry closest to the
    /// head whose service matches, marking it running (FCFS).
    pub fn dequeue(&mut self, service: u32) -> Option<(RqSlot, &T)> {
        self.dequeue_with(service, DequeuePolicy::Fcfs, |_| 0)
    }

    /// Claims the oldest ready entry of *any* service.
    pub fn dequeue_any(&mut self) -> Option<(RqSlot, &T)> {
        self.dequeue_inner(None, DequeuePolicy::Fcfs, |_| 0, Cycles::ZERO)
            .map(|(slot, ctx, _)| (slot, ctx))
    }

    /// Policy-parameterized dequeue across all services: FCFS takes the
    /// oldest ready entry; SRPT the one with the smallest `remaining`.
    pub fn dequeue_any_with(
        &mut self,
        policy: DequeuePolicy,
        remaining: impl Fn(&T) -> u64,
    ) -> Option<(RqSlot, &T)> {
        self.dequeue_inner(None, policy, remaining, Cycles::ZERO)
            .map(|(slot, ctx, _)| (slot, ctx))
    }

    /// Timed [`RequestQueue::dequeue_any_with`]: additionally returns how
    /// long the claimed entry sat Ready (`now - ready_since`, clamped at
    /// zero), and folds it into [`RequestQueue::ready_wait_cycles`].
    pub fn dequeue_any_with_at(
        &mut self,
        policy: DequeuePolicy,
        remaining: impl Fn(&T) -> u64,
        now: Cycles,
    ) -> Option<(RqSlot, &T, Cycles)> {
        self.dequeue_inner(None, policy, remaining, now)
    }

    /// Policy-parameterized dequeue: FCFS takes the oldest ready match;
    /// SRPT takes the ready match with the smallest `remaining(ctx)`.
    pub fn dequeue_with(
        &mut self,
        service: u32,
        policy: DequeuePolicy,
        remaining: impl Fn(&T) -> u64,
    ) -> Option<(RqSlot, &T)> {
        self.dequeue_inner(Some(service), policy, remaining, Cycles::ZERO)
            .map(|(slot, ctx, _)| (slot, ctx))
    }

    fn dequeue_inner(
        &mut self,
        service: Option<u32>,
        policy: DequeuePolicy,
        remaining: impl Fn(&T) -> u64,
        now: Cycles,
    ) -> Option<(RqSlot, &T, Cycles)> {
        let cap = self.slots.len();
        let mut best: Option<(usize, u64)> = None;
        for off in 0..cap {
            let idx = (self.head + off) % cap;
            let Some(entry) = &self.slots[idx] else {
                continue;
            };
            if entry.status != RqEntryStatus::Ready {
                continue;
            }
            if let Some(svc) = service {
                if entry.service != svc {
                    continue;
                }
            }
            match policy {
                DequeuePolicy::Fcfs => {
                    best = Some((idx, 0));
                    break; // scan order is head-first: first hit is oldest
                }
                DequeuePolicy::Srpt => {
                    let key = remaining(&entry.ctx);
                    if best.is_none_or(|(_, k)| key < k) {
                        best = Some((idx, key));
                    }
                }
            }
        }
        let (idx, _) = best?;
        let entry = self.slots[idx].as_mut().expect("chosen slot occupied");
        entry.status = RqEntryStatus::Running;
        let wait = now.saturating_sub(entry.ready_since);
        self.ready_wait += wait;
        let slot = RqSlot {
            index: idx,
            generation: entry.generation,
        };
        Some((slot, &self.slots[idx].as_ref().expect("occupied").ctx, wait))
    }

    fn entry_mut(&mut self, slot: RqSlot) -> Result<&mut Entry<T>, RqError> {
        match self.slots[slot.index].as_mut() {
            Some(e) if e.generation == slot.generation => Ok(e),
            _ => Err(RqError::StaleSlot),
        }
    }

    /// The `ContextSwitch` instruction's RQ side: running -> blocked.
    ///
    /// # Errors
    ///
    /// [`RqError::StaleSlot`] for reclaimed handles,
    /// [`RqError::BadTransition`] unless the entry is running.
    pub fn block(&mut self, slot: RqSlot) -> Result<(), RqError> {
        let e = self.entry_mut(slot)?;
        if e.status != RqEntryStatus::Running {
            return Err(RqError::BadTransition { found: e.status });
        }
        e.status = RqEntryStatus::Blocked;
        Ok(())
    }

    /// The NIC response path: blocked -> ready.
    ///
    /// # Errors
    ///
    /// [`RqError::StaleSlot`] / [`RqError::BadTransition`] as for `block`.
    pub fn unblock(&mut self, slot: RqSlot) -> Result<(), RqError> {
        self.unblock_at(slot, Cycles::ZERO)
    }

    /// Timed [`RequestQueue::unblock`]: re-stamps the entry's ready time,
    /// so the wait reported at dequeue covers only the post-unblock span.
    ///
    /// # Errors
    ///
    /// [`RqError::StaleSlot`] / [`RqError::BadTransition`] as for `block`.
    pub fn unblock_at(&mut self, slot: RqSlot, now: Cycles) -> Result<(), RqError> {
        let e = self.entry_mut(slot)?;
        if e.status != RqEntryStatus::Blocked {
            return Err(RqError::BadTransition { found: e.status });
        }
        e.status = RqEntryStatus::Ready;
        e.ready_since = now;
        Ok(())
    }

    /// The `Complete` instruction: running -> finished, then advance the
    /// head over finished entries, reclaiming their slots.
    ///
    /// # Errors
    ///
    /// [`RqError::StaleSlot`] / [`RqError::BadTransition`] as for `block`.
    pub fn complete(&mut self, slot: RqSlot) -> Result<(), RqError> {
        let e = self.entry_mut(slot)?;
        if e.status != RqEntryStatus::Running {
            return Err(RqError::BadTransition { found: e.status });
        }
        e.status = RqEntryStatus::Finished;
        self.reclaim();
        Ok(())
    }

    fn reclaim(&mut self) {
        let cap = self.slots.len();
        while self.len > 0 {
            match &self.slots[self.head] {
                Some(e) if e.status == RqEntryStatus::Finished => {
                    self.slots[self.head] = None;
                    self.head = (self.head + 1) % cap;
                    self.len -= 1;
                }
                _ => break,
            }
        }
        #[cfg(feature = "sim-sanitizer")]
        self.check_occupancy();
    }

    /// Status of an entry; `None` for stale handles.
    pub fn status(&self, slot: RqSlot) -> Option<RqEntryStatus> {
        match &self.slots[slot.index] {
            Some(e) if e.generation == slot.generation => Some(e.status),
            _ => None,
        }
    }

    /// Immutable access to a request's context memory.
    pub fn ctx(&self, slot: RqSlot) -> Option<&T> {
        match &self.slots[slot.index] {
            Some(e) if e.generation == slot.generation => Some(&e.ctx),
            _ => None,
        }
    }

    /// Mutable access to a request's context memory (the NIC writes RPC
    /// responses here, the core saves register state here).
    pub fn ctx_mut(&mut self, slot: RqSlot) -> Option<&mut T> {
        match self.slots.get_mut(slot.index)?.as_mut() {
            Some(e) if e.generation == slot.generation => Some(&mut e.ctx),
            _ => None,
        }
    }

    /// The per-core Work flag (§4.3): whether a ready entry exists for
    /// `service`.
    pub fn has_ready(&self, service: u32) -> bool {
        self.slots
            .iter()
            .flatten()
            .any(|e| e.status == RqEntryStatus::Ready && e.service == service)
    }

    /// Whether any service has a ready entry.
    pub fn has_any_ready(&self) -> bool {
        self.slots
            .iter()
            .flatten()
            .any(|e| e.status == RqEntryStatus::Ready)
    }

    /// Count of entries in a given status.
    pub fn count_status(&self, status: RqEntryStatus) -> usize {
        self.slots
            .iter()
            .flatten()
            .filter(|e| e.status == status)
            .count()
    }

    /// Total accepted enqueues.
    pub fn enqueue_count(&self) -> u64 {
        self.enqueues
    }

    /// Total rejected enqueues (RQ full).
    pub fn rejection_count(&self) -> u64 {
        self.rejections
    }

    /// Accumulated Ready-state residence across all timed dequeues — the
    /// RQ's own view of queue-wait, cross-checked against the system
    /// simulator's per-request attribution.
    pub fn ready_wait_cycles(&self) -> Cycles {
        self.ready_wait
    }
}

/// The §4.3 "more advanced design": the RQ_Map table partitions the RQ
/// among co-located services, eliminating cross-service contention for
/// entries. Implemented as one sub-queue per service with a bounded total
/// capacity; shares follow the per-service core assignment.
///
/// The paper describes but does not evaluate this design; this crate
/// implements it as an extension and the bench suite ablates it.
///
/// # Examples
///
/// ```
/// use um_sched::PartitionedRq;
///
/// let mut rq: PartitionedRq<&str> = PartitionedRq::new(64);
/// rq.set_share(1, 48);
/// rq.set_share(2, 16);
/// rq.enqueue(1, "a").unwrap();
/// assert!(rq.dequeue(1).is_some());
/// assert!(rq.dequeue(2).is_none());
/// ```
#[derive(Clone, Debug)]
pub struct PartitionedRq<T> {
    total_capacity: usize,
    partitions: BTreeMap<u32, RequestQueue<T>>,
    default_share: usize,
}

impl<T> PartitionedRq<T> {
    /// Creates a partitioned RQ with `total_capacity` entries overall.
    ///
    /// # Panics
    ///
    /// Panics if `total_capacity` is zero.
    pub fn new(total_capacity: usize) -> Self {
        assert!(total_capacity > 0, "need nonzero capacity");
        Self {
            total_capacity,
            partitions: BTreeMap::new(),
            default_share: total_capacity,
        }
    }

    /// Total capacity across partitions.
    pub fn total_capacity(&self) -> usize {
        self.total_capacity
    }

    /// Assigns `service` a partition of `entries` slots (recorded in the
    /// RQ_Map).
    ///
    /// # Panics
    ///
    /// Panics if `entries` is zero or exceeds the total capacity, or if the
    /// partition still holds entries (repartitioning is applied between
    /// bursts, after the partition drains — matching how the hardware
    /// would switch RQ_Map rows).
    pub fn set_share(&mut self, service: u32, entries: usize) {
        assert!(
            entries > 0 && entries <= self.total_capacity,
            "share {entries} outside 1..={}",
            self.total_capacity
        );
        match self.partitions.get_mut(&service) {
            Some(existing) if existing.capacity() == entries => {}
            Some(existing) => {
                // Shares only change between bursts in our simulations, so
                // the partition is drained here; hardware would let it
                // drain naturally before applying the new RQ_Map row.
                assert!(
                    existing.is_empty(),
                    "online repartitioning with queued entries is not modelled"
                );
                *existing = RequestQueue::new(entries);
            }
            None => {
                self.partitions.insert(service, RequestQueue::new(entries));
            }
        }
    }

    fn partition_mut(&mut self, service: u32) -> &mut RequestQueue<T> {
        let default_share = self.default_share;
        self.partitions
            .entry(service)
            .or_insert_with(|| RequestQueue::new(default_share))
    }

    /// Enqueues into the service's partition.
    ///
    /// # Errors
    ///
    /// [`RqError::Full`] when the partition is exhausted — even if other
    /// partitions have room; that isolation is the point of RQ_Map.
    pub fn enqueue(&mut self, service: u32, ctx: T) -> Result<RqSlot, RqError> {
        self.partition_mut(service).enqueue(service, ctx)
    }

    /// Dequeues the oldest ready entry of `service` from its partition.
    pub fn dequeue(&mut self, service: u32) -> Option<(RqSlot, &T)> {
        // Only consult the service's own partition (the Dequeue instruction
        // checks the RQ_Map first, §4.3).
        self.partitions.get_mut(&service)?.dequeue(service)
    }

    /// Forwards to the partition's `block`.
    ///
    /// # Errors
    ///
    /// As [`RequestQueue::block`]; stale if the service has no partition.
    pub fn block(&mut self, service: u32, slot: RqSlot) -> Result<(), RqError> {
        self.partitions
            .get_mut(&service)
            .ok_or(RqError::StaleSlot)?
            .block(slot)
    }

    /// Forwards to the partition's `unblock`.
    ///
    /// # Errors
    ///
    /// As [`RequestQueue::unblock`].
    pub fn unblock(&mut self, service: u32, slot: RqSlot) -> Result<(), RqError> {
        self.partitions
            .get_mut(&service)
            .ok_or(RqError::StaleSlot)?
            .unblock(slot)
    }

    /// Forwards to the partition's `complete`.
    ///
    /// # Errors
    ///
    /// As [`RequestQueue::complete`].
    pub fn complete(&mut self, service: u32, slot: RqSlot) -> Result<(), RqError> {
        self.partitions
            .get_mut(&service)
            .ok_or(RqError::StaleSlot)?
            .complete(slot)
    }

    /// Whether `service` has ready work.
    pub fn has_ready(&self, service: u32) -> bool {
        self.partitions
            .get(&service)
            .is_some_and(|q| q.has_ready(service))
    }

    /// Services with a configured partition.
    pub fn services(&self) -> impl Iterator<Item = u32> + '_ {
        self.partitions.keys().copied()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_order_per_service() {
        let mut rq = RequestQueue::new(8);
        let a = rq.enqueue(1, "a").unwrap();
        let _b = rq.enqueue(2, "b").unwrap();
        let c = rq.enqueue(1, "c").unwrap();
        assert_eq!(rq.dequeue(1).map(|(s, _)| s), Some(a));
        assert_eq!(rq.dequeue(1).map(|(s, _)| s), Some(c));
        assert_eq!(rq.dequeue(1), None); // only service 2 left
    }

    #[test]
    fn full_queue_rejects() {
        let mut rq = RequestQueue::new(2);
        rq.enqueue(1, 0).unwrap();
        rq.enqueue(1, 1).unwrap();
        assert_eq!(rq.enqueue(1, 2), Err(RqError::Full));
        assert_eq!(rq.rejection_count(), 1);
    }

    #[test]
    fn complete_reclaims_head_slots() {
        let mut rq = RequestQueue::new(2);
        let a = rq.enqueue(1, 0).unwrap();
        let b = rq.enqueue(1, 1).unwrap();
        rq.dequeue(1).unwrap();
        rq.complete(a).unwrap();
        assert_eq!(rq.len(), 1);
        let c = rq.enqueue(1, 2).unwrap(); // reuses a's slot
        assert_eq!(c.index, a.index);
        assert_ne!(c.generation, a.generation);
        assert_eq!(rq.status(a), None, "stale handle must not resolve");
        let _ = b;
    }

    #[test]
    fn out_of_order_completion_delays_reclaim() {
        let mut rq = RequestQueue::new(3);
        let a = rq.enqueue(1, 0).unwrap();
        let b = rq.enqueue(1, 1).unwrap();
        rq.dequeue(1).unwrap(); // a running
        rq.dequeue(1).unwrap(); // b running
        rq.complete(b).unwrap();
        // Head (a) not finished: b's slot is not yet reclaimed.
        assert_eq!(rq.len(), 2);
        rq.complete(a).unwrap();
        // Now both reclaim.
        assert_eq!(rq.len(), 0);
        assert!(rq.is_empty());
    }

    #[test]
    fn block_unblock_cycle() {
        let mut rq = RequestQueue::new(4);
        let a = rq.enqueue(7, "ctx").unwrap();
        rq.dequeue(7).unwrap();
        rq.block(a).unwrap();
        assert_eq!(rq.status(a), Some(RqEntryStatus::Blocked));
        assert!(!rq.has_ready(7));
        rq.unblock(a).unwrap();
        assert!(rq.has_ready(7));
        let (again, _) = rq.dequeue(7).unwrap();
        assert_eq!(again, a);
    }

    #[test]
    fn bad_transitions_rejected() {
        let mut rq = RequestQueue::new(4);
        let a = rq.enqueue(1, ()).unwrap();
        // Ready -> block is invalid (must be running).
        assert!(matches!(rq.block(a), Err(RqError::BadTransition { .. })));
        // Ready -> unblock is invalid.
        assert!(matches!(rq.unblock(a), Err(RqError::BadTransition { .. })));
        // Ready -> complete is invalid.
        assert!(matches!(rq.complete(a), Err(RqError::BadTransition { .. })));
    }

    #[test]
    fn blocked_requests_do_not_block_others() {
        let mut rq = RequestQueue::new(4);
        let a = rq.enqueue(1, "a").unwrap();
        let _b = rq.enqueue(1, "b").unwrap();
        rq.dequeue(1).unwrap();
        rq.block(a).unwrap();
        // b is still dequeueable although a (older) is blocked.
        let (slot, ctx) = rq.dequeue(1).unwrap();
        assert_eq!(*ctx, "b");
        assert_ne!(slot, a);
    }

    #[test]
    fn ctx_mut_updates() {
        let mut rq = RequestQueue::new(2);
        let a = rq.enqueue(1, vec![0u8; 4]).unwrap();
        rq.ctx_mut(a).unwrap().push(9);
        assert_eq!(rq.ctx(a).unwrap().len(), 5);
    }

    #[test]
    fn wraparound_preserves_fcfs() {
        let mut rq = RequestQueue::new(3);
        let mut order = Vec::new();
        // Push/complete enough to wrap several times.
        for i in 0..10 {
            let s = rq.enqueue(1, i).unwrap();
            let (got, &v) = rq.dequeue(1).unwrap();
            assert_eq!(got, s);
            order.push(v);
            rq.complete(s).unwrap();
        }
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn srpt_picks_shortest() {
        let mut rq = RequestQueue::new(4);
        rq.enqueue(1, 500u64).unwrap();
        rq.enqueue(1, 100u64).unwrap();
        rq.enqueue(1, 300u64).unwrap();
        let (_, &v) = rq.dequeue_with(1, DequeuePolicy::Srpt, |&rem| rem).unwrap();
        assert_eq!(v, 100);
    }

    #[test]
    fn dequeue_any_with_srpt_picks_shortest_across_services() {
        let mut rq = RequestQueue::new(4);
        rq.enqueue(1, 900u64).unwrap();
        rq.enqueue(2, 50u64).unwrap();
        rq.enqueue(1, 300u64).unwrap();
        let (_, &v) = rq
            .dequeue_any_with(DequeuePolicy::Srpt, |&rem| rem)
            .unwrap();
        assert_eq!(v, 50);
        // FCFS ignores the estimator and takes the oldest.
        let (_, &v) = rq
            .dequeue_any_with(DequeuePolicy::Fcfs, |&rem| rem)
            .unwrap();
        assert_eq!(v, 900);
    }

    #[test]
    fn dequeue_any_ignores_service() {
        let mut rq = RequestQueue::new(4);
        rq.enqueue(5, "x").unwrap();
        assert!(rq.dequeue(1).is_none());
        assert!(rq.dequeue_any().is_some());
    }

    #[test]
    fn counters() {
        let mut rq = RequestQueue::new(2);
        let a = rq.enqueue(1, ()).unwrap();
        rq.enqueue(1, ()).unwrap();
        let _ = rq.enqueue(1, ());
        assert_eq!(rq.enqueue_count(), 2);
        assert_eq!(rq.rejection_count(), 1);
        rq.dequeue(1).unwrap();
        assert_eq!(rq.count_status(RqEntryStatus::Running), 1);
        assert_eq!(rq.count_status(RqEntryStatus::Ready), 1);
        let _ = a;
    }

    #[test]
    fn partitioned_isolation() {
        let mut rq: PartitionedRq<u32> = PartitionedRq::new(8);
        rq.set_share(1, 2);
        rq.set_share(2, 6);
        rq.enqueue(1, 10).unwrap();
        rq.enqueue(1, 11).unwrap();
        // Service 1's partition is full even though service 2 has room.
        assert_eq!(rq.enqueue(1, 12), Err(RqError::Full));
        assert!(rq.enqueue(2, 20).is_ok());
    }

    #[test]
    fn partitioned_lifecycle() {
        let mut rq: PartitionedRq<&str> = PartitionedRq::new(8);
        rq.set_share(3, 4);
        let s = rq.enqueue(3, "req").unwrap();
        let (got, _) = rq.dequeue(3).unwrap();
        assert_eq!(got, s);
        rq.block(3, s).unwrap();
        rq.unblock(3, s).unwrap();
        rq.dequeue(3).unwrap();
        rq.complete(3, s).unwrap();
        assert!(!rq.has_ready(3));
    }

    #[test]
    fn partitioned_unknown_service_errors() {
        let mut rq: PartitionedRq<u32> = PartitionedRq::new(8);
        let fake = {
            let mut tmp: RequestQueue<u32> = RequestQueue::new(1);
            tmp.enqueue(9, 0).unwrap()
        };
        assert_eq!(rq.block(9, fake), Err(RqError::StaleSlot));
        assert!(rq.dequeue(9).is_none());
    }

    #[test]
    fn timed_dequeue_reports_ready_wait() {
        let mut rq = RequestQueue::new(4);
        rq.enqueue_at(1, "a", Cycles::new(100)).unwrap();
        rq.enqueue_at(1, "b", Cycles::new(130)).unwrap();
        let (_, &ctx, wait) = rq
            .dequeue_any_with_at(DequeuePolicy::Fcfs, |_| 0, Cycles::new(150))
            .unwrap();
        assert_eq!(ctx, "a");
        assert_eq!(wait, Cycles::new(50));
        let (_, _, wait) = rq
            .dequeue_any_with_at(DequeuePolicy::Fcfs, |_| 0, Cycles::new(160))
            .unwrap();
        assert_eq!(wait, Cycles::new(30));
        assert_eq!(rq.ready_wait_cycles(), Cycles::new(80));
    }

    #[test]
    fn unblock_at_restarts_the_wait_clock() {
        let mut rq = RequestQueue::new(4);
        let a = rq.enqueue_at(1, (), Cycles::new(0)).unwrap();
        rq.dequeue_any_with_at(DequeuePolicy::Fcfs, |_| 0, Cycles::new(10))
            .unwrap();
        rq.block(a).unwrap();
        rq.unblock_at(a, Cycles::new(500)).unwrap();
        let (_, _, wait) = rq
            .dequeue_any_with_at(DequeuePolicy::Fcfs, |_| 0, Cycles::new(520))
            .unwrap();
        // Only the post-unblock span counts, not the blocked interval.
        assert_eq!(wait, Cycles::new(20));
    }

    #[test]
    fn timed_dequeue_racing_insertion_clamps_to_zero() {
        let mut rq = RequestQueue::new(4);
        rq.enqueue_at(1, (), Cycles::new(100)).unwrap();
        // A core dispatching "in the past" (insertion raced the idle scan)
        // must see zero wait, not an underflow.
        let (_, _, wait) = rq
            .dequeue_any_with_at(DequeuePolicy::Fcfs, |_| 0, Cycles::new(40))
            .unwrap();
        assert_eq!(wait, Cycles::ZERO);
    }

    #[test]
    fn repartition_empty_queue() {
        let mut rq: PartitionedRq<u32> = PartitionedRq::new(64);
        rq.set_share(1, 16);
        rq.set_share(1, 32); // grow while empty: fine
        rq.enqueue(1, 1).unwrap();
        assert!(rq.dequeue(1).is_some());
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    #[derive(Clone, Debug)]
    enum Op {
        Enqueue(u32),
        Dequeue(u32),
        BlockNewest,
        UnblockOldestBlocked,
        CompleteNewestRunning,
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0u32..3).prop_map(Op::Enqueue),
            (0u32..3).prop_map(Op::Dequeue),
            Just(Op::BlockNewest),
            Just(Op::UnblockOldestBlocked),
            Just(Op::CompleteNewestRunning),
        ]
    }

    proptest! {
        /// The RQ never exceeds capacity, never loses a request silently,
        /// and status transitions always go through legal paths.
        #[test]
        fn rq_state_machine(ops in proptest::collection::vec(op_strategy(), 1..300)) {
            let mut rq: RequestQueue<u64> = RequestQueue::new(8);
            let mut running: Vec<RqSlot> = Vec::new();
            let mut blocked: Vec<RqSlot> = Vec::new();
            let mut accepted = 0u64;
            let mut completed = 0u64;
            for op in ops {
                match op {
                    Op::Enqueue(svc) => {
                        if rq.enqueue(svc, 0).is_ok() {
                            accepted += 1;
                        }
                    }
                    Op::Dequeue(svc) => {
                        if let Some((slot, _)) = rq.dequeue(svc) {
                            running.push(slot);
                        }
                    }
                    Op::BlockNewest => {
                        if let Some(slot) = running.pop() {
                            rq.block(slot).expect("running slot blocks");
                            blocked.push(slot);
                        }
                    }
                    Op::UnblockOldestBlocked => {
                        if !blocked.is_empty() {
                            let slot = blocked.remove(0);
                            rq.unblock(slot).expect("blocked slot unblocks");
                        }
                    }
                    Op::CompleteNewestRunning => {
                        if let Some(slot) = running.pop() {
                            rq.complete(slot).expect("running slot completes");
                            completed += 1;
                        }
                    }
                }
                prop_assert!(rq.len() <= rq.capacity());
            }
            // Everything accepted is either still tracked or completed;
            // finished entries awaiting head reclamation are both, so
            // subtract them once.
            let live = rq.len() as u64;
            let finished_unreclaimed = rq.count_status(RqEntryStatus::Finished) as u64;
            prop_assert_eq!(accepted, completed + live - finished_unreclaimed);
        }
    }
}
