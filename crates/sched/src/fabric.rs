//! The queue fabric of §3.2: N FCFS queues over C cores (Figure 3).
//!
//! The paper sweeps the number of queues in a 1024-core manycore from one
//! queue per core (1024) down to a single shared queue, with and without
//! work stealing, and finds a sweet spot at one queue per 32-core cluster.
//! `QueueFabric` reproduces that design space.

use rand::rngs::SmallRng;
use rand::Rng;
use std::collections::VecDeque;
use um_sim::rng;
use um_sim::Cycles;

/// Configuration of a [`QueueFabric`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FabricConfig {
    /// Number of cores consuming from the fabric.
    pub cores: usize,
    /// Number of FCFS queues; cores are striped across queues.
    pub queues: usize,
    /// Whether an idle core may steal from other queues.
    pub work_stealing: bool,
    /// Seed for the random queue assignment of incoming requests.
    pub seed: u64,
}

impl FabricConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `1 <= queues <= cores`.
    pub fn new(cores: usize, queues: usize, work_stealing: bool, seed: u64) -> Self {
        assert!(cores >= 1, "need at least one core");
        assert!(
            (1..=cores).contains(&queues),
            "queues must be in 1..={cores}, got {queues}"
        );
        Self {
            cores,
            queues,
            work_stealing,
            seed,
        }
    }
}

/// N FCFS queues shared by C cores, with optional work stealing.
///
/// Requests are assigned to queues uniformly at random (as in the paper's
/// experiment); core `c` is served by queue `c % queues`. With work
/// stealing enabled, a core whose queue is empty scans the other queues in
/// a deterministic rotation and steals the head of the first non-empty one.
///
/// # Examples
///
/// ```
/// use um_sched::{FabricConfig, QueueFabric};
///
/// let mut f: QueueFabric<u32> = QueueFabric::new(FabricConfig::new(4, 2, true, 7));
/// f.enqueue(10);
/// // Some core can always find the work (stealing covers empty queues).
/// let got = (0..4).find_map(|c| f.dequeue(c));
/// assert_eq!(got, Some(10));
/// ```
#[derive(Clone, Debug)]
pub struct QueueFabric<T> {
    config: FabricConfig,
    /// Each entry carries its enqueue time so the timed dequeue variants
    /// can attribute queue wait; untimed callers stamp time zero.
    queues: Vec<VecDeque<(T, Cycles)>>,
    rng: SmallRng,
    enqueued: u64,
    dequeued: u64,
    steals: u64,
    wait_cycles: Cycles,
}

impl<T> QueueFabric<T> {
    /// Creates an empty fabric.
    pub fn new(config: FabricConfig) -> Self {
        Self {
            config,
            queues: (0..config.queues).map(|_| VecDeque::new()).collect(),
            rng: rng::stream(config.seed, "queue-fabric"),
            enqueued: 0,
            dequeued: 0,
            steals: 0,
            wait_cycles: Cycles::ZERO,
        }
    }

    /// The fabric configuration.
    pub fn config(&self) -> FabricConfig {
        self.config
    }

    /// The queue a core drains by default.
    pub fn home_queue(&self, core: usize) -> usize {
        core % self.config.queues
    }

    /// Enqueues a request on a uniformly random queue (the paper's
    /// assignment policy) and returns the chosen queue.
    pub fn enqueue(&mut self, item: T) -> usize {
        self.enqueue_timed(item, Cycles::ZERO)
    }

    /// Timed [`QueueFabric::enqueue`]: stamps the entry so
    /// [`QueueFabric::dequeue_timed`] can report its queue wait.
    pub fn enqueue_timed(&mut self, item: T, now: Cycles) -> usize {
        let q = self.rng.gen_range(0..self.config.queues);
        self.enqueue_at_timed(q, item, now);
        q
    }

    /// Enqueues a request on a specific queue.
    ///
    /// # Panics
    ///
    /// Panics if `queue` is out of range.
    pub fn enqueue_at(&mut self, queue: usize, item: T) {
        self.enqueue_at_timed(queue, item, Cycles::ZERO);
    }

    /// Timed [`QueueFabric::enqueue_at`].
    ///
    /// # Panics
    ///
    /// Panics if `queue` is out of range.
    pub fn enqueue_at_timed(&mut self, queue: usize, item: T, now: Cycles) {
        assert!(queue < self.config.queues, "queue {queue} out of range");
        self.queues[queue].push_back((item, now));
        self.enqueued += 1;
    }

    /// Core `core` takes the next request: the head of its home queue, or —
    /// with work stealing — the head of the first non-empty queue in a
    /// rotation starting after its home queue.
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn dequeue(&mut self, core: usize) -> Option<T> {
        self.dequeue_timed(core, Cycles::ZERO).map(|(item, _)| item)
    }

    /// Timed [`QueueFabric::dequeue`]: additionally returns how long the
    /// item waited since its timed enqueue (clamped at zero), and folds it
    /// into [`QueueFabric::total_wait_cycles`].
    ///
    /// # Panics
    ///
    /// Panics if `core` is out of range.
    pub fn dequeue_timed(&mut self, core: usize, now: Cycles) -> Option<(T, Cycles)> {
        assert!(core < self.config.cores, "core {core} out of range");
        let home = self.home_queue(core);
        if let Some((item, since)) = self.queues[home].pop_front() {
            self.dequeued += 1;
            let wait = now.saturating_sub(since);
            self.wait_cycles += wait;
            return Some((item, wait));
        }
        if !self.config.work_stealing {
            return None;
        }
        let n = self.config.queues;
        for off in 1..n {
            let q = (home + off) % n;
            if let Some((item, since)) = self.queues[q].pop_front() {
                self.dequeued += 1;
                self.steals += 1;
                let wait = now.saturating_sub(since);
                self.wait_cycles += wait;
                return Some((item, wait));
            }
        }
        None
    }

    /// Total requests currently waiting across all queues.
    pub fn pending(&self) -> usize {
        self.queues.iter().map(VecDeque::len).sum()
    }

    /// Length of one queue.
    ///
    /// # Panics
    ///
    /// Panics if `queue` is out of range.
    pub fn queue_len(&self, queue: usize) -> usize {
        self.queues[queue].len()
    }

    /// Whether any work is waiting that `core` could obtain right now.
    pub fn work_available(&self, core: usize) -> bool {
        if !self.queues[self.home_queue(core)].is_empty() {
            return true;
        }
        self.config.work_stealing && self.pending() > 0
    }

    /// Number of successful steals so far.
    pub fn steal_count(&self) -> u64 {
        self.steals
    }

    /// Total enqueued.
    pub fn enqueue_count(&self) -> u64 {
        self.enqueued
    }

    /// Total dequeued.
    pub fn dequeue_count(&self) -> u64 {
        self.dequeued
    }

    /// Accumulated queue wait across all timed dequeues — the fabric's own
    /// view of queue-wait attribution.
    pub fn total_wait_cycles(&self) -> Cycles {
        self.wait_cycles
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fcfs_within_queue() {
        let mut f: QueueFabric<u32> = QueueFabric::new(FabricConfig::new(2, 1, false, 1));
        f.enqueue_at(0, 1);
        f.enqueue_at(0, 2);
        f.enqueue_at(0, 3);
        assert_eq!(f.dequeue(0), Some(1));
        assert_eq!(f.dequeue(1), Some(2)); // both cores share queue 0
        assert_eq!(f.dequeue(0), Some(3));
        assert_eq!(f.dequeue(0), None);
    }

    #[test]
    fn no_stealing_leaves_imbalance() {
        let mut f: QueueFabric<u32> = QueueFabric::new(FabricConfig::new(2, 2, false, 1));
        f.enqueue_at(0, 1);
        // Core 1's home is queue 1: it cannot see the work.
        assert_eq!(f.dequeue(1), None);
        assert!(f.work_available(0));
        assert!(!f.work_available(1));
    }

    #[test]
    fn stealing_fixes_imbalance() {
        let mut f: QueueFabric<u32> = QueueFabric::new(FabricConfig::new(2, 2, true, 1));
        f.enqueue_at(0, 1);
        assert_eq!(f.dequeue(1), Some(1));
        assert_eq!(f.steal_count(), 1);
    }

    #[test]
    fn random_assignment_spreads_load() {
        let mut f: QueueFabric<u64> = QueueFabric::new(FabricConfig::new(64, 8, false, 3));
        for i in 0..8_000 {
            f.enqueue(i);
        }
        for q in 0..8 {
            let len = f.queue_len(q);
            assert!((800..1200).contains(&len), "queue {q} got {len}");
        }
    }

    #[test]
    fn conservation() {
        let mut f: QueueFabric<u64> = QueueFabric::new(FabricConfig::new(16, 4, true, 9));
        for i in 0..100 {
            f.enqueue(i);
        }
        let mut got = Vec::new();
        'outer: loop {
            for c in 0..16 {
                if let Some(x) = f.dequeue(c) {
                    got.push(x);
                    continue 'outer;
                }
            }
            break;
        }
        got.sort_unstable();
        assert_eq!(got, (0..100).collect::<Vec<_>>());
        assert_eq!(f.enqueue_count(), 100);
        assert_eq!(f.dequeue_count(), 100);
        assert_eq!(f.pending(), 0);
    }

    #[test]
    fn home_queue_striping() {
        let f: QueueFabric<u32> = QueueFabric::new(FabricConfig::new(8, 4, false, 1));
        assert_eq!(f.home_queue(0), 0);
        assert_eq!(f.home_queue(5), 1);
        assert_eq!(f.home_queue(7), 3);
    }

    #[test]
    #[should_panic(expected = "queues must be in")]
    fn more_queues_than_cores_rejected() {
        FabricConfig::new(4, 8, false, 1);
    }

    #[test]
    fn timed_dequeue_reports_wait() {
        let mut f: QueueFabric<u32> = QueueFabric::new(FabricConfig::new(2, 2, true, 1));
        f.enqueue_at_timed(0, 1, Cycles::new(100));
        f.enqueue_at_timed(1, 2, Cycles::new(120));
        let (item, wait) = f.dequeue_timed(0, Cycles::new(150)).unwrap();
        assert_eq!((item, wait), (1, Cycles::new(50)));
        // Core 0 steals from queue 1; the wait is still measured from the
        // item's own enqueue time.
        let (item, wait) = f.dequeue_timed(0, Cycles::new(200)).unwrap();
        assert_eq!((item, wait), (2, Cycles::new(80)));
        assert_eq!(f.total_wait_cycles(), Cycles::new(130));
        assert_eq!(f.steal_count(), 1);
    }

    #[test]
    fn untimed_ops_report_zero_wait() {
        let mut f: QueueFabric<u32> = QueueFabric::new(FabricConfig::new(1, 1, false, 1));
        f.enqueue(9);
        let (item, wait) = f.dequeue_timed(0, Cycles::ZERO).unwrap();
        assert_eq!((item, wait), (9, Cycles::ZERO));
        assert_eq!(f.total_wait_cycles(), Cycles::ZERO);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut f: QueueFabric<u64> = QueueFabric::new(FabricConfig::new(8, 4, false, seed));
            (0..50).map(|i| f.enqueue(i)).collect::<Vec<_>>()
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5), run(6));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Work stealing never loses or duplicates requests.
        #[test]
        fn stealing_conserves(
            cores in 1usize..32,
            qfrac in 1usize..32,
            items in 0usize..200,
            steal in proptest::bool::ANY,
        ) {
            let queues = qfrac.min(cores);
            let mut f: QueueFabric<usize> =
                QueueFabric::new(FabricConfig::new(cores, queues, steal, 11));
            for i in 0..items {
                f.enqueue(i);
            }
            let mut got = Vec::new();
            loop {
                let before = got.len();
                for c in 0..cores {
                    if let Some(x) = f.dequeue(c) {
                        got.push(x);
                    }
                }
                if got.len() == before {
                    break;
                }
            }
            got.sort_unstable();
            if steal {
                // Stealing drains everything.
                prop_assert_eq!(got, (0..items).collect::<Vec<_>>());
            } else {
                // Without stealing everything is still conserved...
                prop_assert_eq!(got.len() + f.pending(), items);
                // ...and queues with a serving core are drained.
                for q in 0..queues {
                    prop_assert_eq!(f.queue_len(q), 0);
                }
            }
        }
    }
}
