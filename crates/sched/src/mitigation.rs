//! Tail-mitigation policies for RPC operations.
//!
//! "The Tail at Scale" playbook, as scheduler-side policy objects: request
//! hedging (issue a backup copy after a delay tuned to a latency
//! quantile), timeout + exponential-backoff retry gated by a token
//! [`RetryBudget`], and straggler-aware steering (dispatch away from
//! villages a fault plan marks degraded). This module holds the *policy*
//! descriptions and the budget bookkeeping; the system simulator in
//! `umanycore` applies them to its RPC operations.
//!
//! All parameters are plain data — mitigation adds no RNG streams of its
//! own, so enabling a policy never perturbs an unrelated run's draws.

/// When to issue a hedge (backup) attempt for an in-flight RPC.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HedgeConfig {
    /// Issue the backup this long after the primary, in microseconds.
    pub delay_us: f64,
}

impl HedgeConfig {
    /// Hedge after a fixed delay.
    pub fn after_delay_us(delay_us: f64) -> Self {
        assert!(delay_us >= 0.0, "hedge delay must be nonnegative");
        Self { delay_us }
    }

    /// Hedge once the attempt has outlived quantile `q` of an exponential
    /// service-time model with mean `typical_us` — the classic "hedge
    /// after the 95th percentile" rule with `q = 0.95`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < q < 1` and `typical_us > 0`.
    pub fn after_quantile(q: f64, typical_us: f64) -> Self {
        assert!((0.0..1.0).contains(&q) && q > 0.0, "quantile in (0,1)");
        assert!(typical_us > 0.0, "typical latency must be positive");
        Self {
            delay_us: typical_us * (1.0 / (1.0 - q)).ln(),
        }
    }
}

/// Timeout/retry policy for an RPC operation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryConfig {
    /// Declare an attempt lost this long after issuing it, in
    /// microseconds.
    pub timeout_us: f64,
    /// Multiplier applied to the timeout after each failed attempt
    /// (exponential backoff; 1.0 disables backoff).
    pub backoff: f64,
    /// Total attempts allowed, including the first (so `max_attempts: 3`
    /// means up to two retries).
    pub max_attempts: u32,
    /// Retry-budget earn rate: tokens of retry allowance earned per
    /// operation started (the "retries may be at most this fraction of
    /// traffic" rule). `0.1` caps retries at ~10% of operations.
    pub budget_fraction: f64,
}

impl RetryConfig {
    /// A sane default: timeout after `timeout_us`, doubling backoff,
    /// three total attempts, retries capped at 10% of traffic.
    pub fn with_timeout_us(timeout_us: f64) -> Self {
        assert!(timeout_us > 0.0, "timeout must be positive");
        Self {
            timeout_us,
            backoff: 2.0,
            max_attempts: 3,
            budget_fraction: 0.1,
        }
    }

    /// The timeout for attempt number `attempt` (1-based), with backoff
    /// applied: `timeout_us * backoff^(attempt-1)`.
    pub fn timeout_for_attempt_us(&self, attempt: u32) -> f64 {
        self.timeout_us * self.backoff.powi(attempt.saturating_sub(1) as i32)
    }
}

/// The full mitigation policy set for a run. [`Default`] is everything
/// off — a run with the default config is bit-identical to one predating
/// the mitigation machinery.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MitigationConfig {
    /// Hedged requests, if any.
    pub hedge: Option<HedgeConfig>,
    /// Timeout + retry, if any.
    pub retry: Option<RetryConfig>,
    /// Straggler-aware steering: exclude fault-degraded villages from
    /// dispatch when a healthy alternative exists.
    pub steer: bool,
}

impl MitigationConfig {
    /// Whether every policy is disabled.
    pub fn is_noop(&self) -> bool {
        self.hedge.is_none() && self.retry.is_none() && !self.steer
    }
}

/// Token-bucket retry budget in integer millitokens.
///
/// Every operation start earns `budget_fraction` of a token; each retry
/// spends a whole token. Integer arithmetic keeps the budget exactly
/// reproducible (no float-accumulation drift across UM_THREADS splits).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryBudget {
    /// Balance in 1/1000ths of a retry token. Never negative in a
    /// healthy run (the `retry-budget` sanitizer checker enforces this).
    millitokens: i64,
    /// Earned per operation start, in millitokens.
    earn_rate: i64,
}

/// Millitokens one retry costs.
const RETRY_COST: i64 = 1_000;

impl RetryBudget {
    /// A budget earning `fraction` of a retry token per operation.
    ///
    /// # Panics
    ///
    /// Panics unless `fraction` is in `[0, 1]`.
    pub fn new(fraction: f64) -> Self {
        assert!(
            (0.0..=1.0).contains(&fraction),
            "budget fraction in [0, 1], got {fraction}"
        );
        Self {
            millitokens: 0,
            earn_rate: (fraction * RETRY_COST as f64).round() as i64,
        }
    }

    /// Credits one operation start.
    pub fn earn(&mut self) {
        self.millitokens = self.millitokens.saturating_add(self.earn_rate);
    }

    /// Tries to pay for one retry. Returns whether the retry is allowed;
    /// on refusal the balance is untouched.
    pub fn try_spend(&mut self) -> bool {
        if self.millitokens >= RETRY_COST {
            self.millitokens -= RETRY_COST;
            self.check();
            true
        } else {
            false
        }
    }

    /// Current balance in whole retry tokens (floor).
    pub fn tokens(&self) -> i64 {
        self.millitokens / RETRY_COST
    }

    /// Sanitizer hook: the balance must never go negative — `try_spend`
    /// refuses before overdrawing, so a negative balance means a code
    /// path spent without asking.
    fn check(&self) {
        #[cfg(feature = "sim-sanitizer")]
        if self.millitokens < 0 {
            um_sim::sanitizer::report(
                "retry-budget",
                format!("retry budget overdrawn to {} millitokens", self.millitokens),
            );
        }
    }

    /// Overdraws the budget unconditionally.
    ///
    /// Exists only so sanitizer tests can verify the `retry-budget`
    /// checker fires; never call this from simulation code.
    #[cfg(feature = "sim-sanitizer")]
    #[doc(hidden)]
    pub fn force_spend_for_sanitizer_test(&mut self) {
        self.millitokens -= RETRY_COST;
        self.check();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_mitigation_is_noop() {
        let m = MitigationConfig::default();
        assert!(m.is_noop());
        assert!(!MitigationConfig {
            steer: true,
            ..Default::default()
        }
        .is_noop());
    }

    #[test]
    fn hedge_quantile_matches_exponential_inverse_cdf() {
        // P95 of Exp(mean=100us) is 100*ln(20) ≈ 299.6us.
        let h = HedgeConfig::after_quantile(0.95, 100.0);
        assert!((h.delay_us - 100.0 * 20.0f64.ln()).abs() < 1e-9);
        assert_eq!(HedgeConfig::after_delay_us(50.0).delay_us, 50.0);
    }

    #[test]
    fn backoff_grows_timeouts_geometrically() {
        let r = RetryConfig::with_timeout_us(200.0);
        assert_eq!(r.timeout_for_attempt_us(1), 200.0);
        assert_eq!(r.timeout_for_attempt_us(2), 400.0);
        assert_eq!(r.timeout_for_attempt_us(3), 800.0);
        let flat = RetryConfig { backoff: 1.0, ..r };
        assert_eq!(flat.timeout_for_attempt_us(3), 200.0);
    }

    #[test]
    fn budget_earns_fractionally_and_spends_whole_tokens() {
        let mut b = RetryBudget::new(0.1);
        assert!(!b.try_spend(), "empty budget refuses");
        for _ in 0..9 {
            b.earn();
        }
        assert!(!b.try_spend(), "0.9 tokens is not enough");
        b.earn();
        assert!(b.try_spend(), "1.0 tokens pays for one retry");
        assert!(!b.try_spend(), "balance spent");
        assert_eq!(b.tokens(), 0);
    }

    #[test]
    fn zero_fraction_budget_never_allows_retries() {
        let mut b = RetryBudget::new(0.0);
        for _ in 0..1_000 {
            b.earn();
        }
        assert!(!b.try_spend());
    }

    #[test]
    fn full_fraction_budget_allows_one_retry_per_op() {
        let mut b = RetryBudget::new(1.0);
        b.earn();
        assert!(b.try_spend());
        assert!(!b.try_spend());
    }
}
