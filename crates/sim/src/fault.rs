//! Deterministic fault-injection plans.
//!
//! A [`FaultPlan`] is a *schedule-time* description of everything that will
//! go wrong during a run: cores that fail-stop at a given cycle, cores that
//! fail-slow (a service-time multiplier over a window), fabric links that
//! degrade or black out, and a per-hop message-drop probability. Plans are
//! data, not behaviour — the system simulator queries the plan while it
//! runs and applies the faults itself, so a plan adds no hidden RNG draws
//! and a healthy plan leaves a run bit-identical to one with no plan at
//! all.
//!
//! Determinism contract: a plan is a pure function of its construction
//! inputs. The only sanctioned constructors are [`FaultPlan::none`] and the
//! seeded [`FaultPlanBuilder`] (whose randomized scenario helpers draw from
//! a private stream derived from the builder seed), so a plan built at
//! sweep point `i` from `derive_seed(master, i)` is identical no matter
//! how many worker threads evaluate the sweep. [`FaultPlan::from_events`]
//! exists as an escape hatch for tests and is flagged by the `um-tidy`
//! `raw-fault-plan` rule outside this crate.
//!
//! # Examples
//!
//! ```
//! use um_sim::fault::{FaultPlan, FaultWindow};
//! use um_sim::Cycles;
//!
//! let plan = FaultPlan::builder(42)
//!     .core_fail_slow(0, 3, 1, FaultWindow::new(Cycles::ZERO, Cycles::new(1_000_000), 4.0))
//!     .message_drops(0.01)
//!     .build();
//! assert_eq!(plan.len(), 2);
//! assert!(plan.fail_slow(0, 3, Cycles::new(500)).is_some());
//! assert!(plan.fail_slow(0, 2, Cycles::new(500)).is_none());
//! ```

use crate::rng;
use crate::time::Cycles;
use rand::rngs::SmallRng;
use rand::Rng;

/// A cycle interval `[from, until)` during which a fault is active, plus
/// the severity of the fault while it lasts.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultWindow {
    /// First cycle at which the fault is active.
    pub from: Cycles,
    /// First cycle at which the fault is no longer active (exclusive).
    pub until: Cycles,
    /// Service-/serialization-time multiplier while active. Must be at
    /// least 1; [`f64::INFINITY`] means a full outage (work stalls until
    /// the window closes).
    pub slowdown: f64,
}

impl FaultWindow {
    /// Creates a window.
    ///
    /// # Panics
    ///
    /// Panics if `until < from`, or if `slowdown` is NaN or below 1.
    pub fn new(from: Cycles, until: Cycles, slowdown: f64) -> Self {
        assert!(until >= from, "fault window ends before it starts");
        assert!(slowdown >= 1.0, "slowdown must be >= 1 (got {slowdown})");
        Self {
            from,
            until,
            slowdown,
        }
    }

    /// Whether the window covers cycle `at`.
    pub fn contains(&self, at: Cycles) -> bool {
        self.from <= at && at < self.until
    }

    /// Whether this window is a full outage rather than a degradation.
    pub fn is_outage(&self) -> bool {
        self.slowdown.is_infinite()
    }
}

/// One scheduled fault.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultEvent {
    /// A core in `(server, village)` permanently stops at cycle `at`.
    CoreFailStop {
        /// Server index within the fleet.
        server: usize,
        /// Village index within the server.
        village: usize,
        /// Cycle at which the core dies.
        at: Cycles,
    },
    /// `cores` cores in `(server, village)` run `window.slowdown`× slower
    /// while the window is active (a straggler, not a corpse).
    CoreFailSlow {
        /// Server index within the fleet.
        server: usize,
        /// Village index within the server.
        village: usize,
        /// How many of the village's cores are degraded.
        cores: u32,
        /// When, and how badly.
        window: FaultWindow,
    },
    /// An on-package interconnect link on `server` serializes
    /// `window.slowdown`× slower (or not at all, for an outage window).
    LinkFault {
        /// Server index within the fleet.
        server: usize,
        /// Link index; applied modulo the machine's link count.
        link: usize,
        /// When, and how badly.
        window: FaultWindow,
    },
    /// Every RPC message leg is independently lost with `probability`.
    MessageDrops {
        /// Per-leg drop probability in `[0, 1)`.
        probability: f64,
    },
}

/// A deterministic schedule of faults for one run.
///
/// Construct with [`FaultPlan::none`] or [`FaultPlan::builder`]; the
/// fields are private precisely so that every plan flows through a seeded
/// constructor.
#[derive(Clone, Debug, PartialEq, Default)]
pub struct FaultPlan {
    seed: u64,
    events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The healthy plan: no faults at all.
    pub fn none() -> Self {
        Self::default()
    }

    /// Starts building a plan whose randomized helpers draw from a stream
    /// derived from `seed`.
    pub fn builder(seed: u64) -> FaultPlanBuilder {
        FaultPlanBuilder {
            seed,
            rng: rng::stream(seed, "fault-plan"),
            events: Vec::new(),
        }
    }

    /// Builds a plan directly from an event list, bypassing the seeded
    /// builder. Test-and-tooling escape hatch; flagged by the um-tidy
    /// `raw-fault-plan` rule in simulator crates.
    pub fn from_events(seed: u64, events: Vec<FaultEvent>) -> Self {
        Self { seed, events }
    }

    /// The seed the plan was built from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Whether the plan schedules no faults.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of scheduled fault events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// The scheduled events, in insertion order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Combined per-leg message-drop probability: independent loss across
    /// all [`FaultEvent::MessageDrops`] entries.
    pub fn drop_probability(&self) -> f64 {
        let survive: f64 = self
            .events
            .iter()
            .filter_map(|e| match e {
                FaultEvent::MessageDrops { probability } => Some(1.0 - probability),
                _ => None,
            })
            .product();
        1.0 - survive
    }

    /// Fail-slow state of `(server, village)` at cycle `at`: the number of
    /// degraded cores (summed over active windows) and the worst active
    /// slowdown, or `None` when the village is healthy at `at`.
    pub fn fail_slow(&self, server: usize, village: usize, at: Cycles) -> Option<(u32, f64)> {
        let mut cores = 0u32;
        let mut slowdown = 1.0f64;
        for e in &self.events {
            if let FaultEvent::CoreFailSlow {
                server: s,
                village: v,
                cores: c,
                window,
            } = e
            {
                if *s == server && *v == village && window.contains(at) {
                    cores += c;
                    slowdown = slowdown.max(window.slowdown);
                }
            }
        }
        (cores > 0).then_some((cores, slowdown))
    }

    /// Whether `(server, village)` has any fail-slow window active at `at`
    /// (used by straggler-aware steering).
    pub fn is_degraded(&self, server: usize, village: usize, at: Cycles) -> bool {
        self.fail_slow(server, village, at).is_some()
    }

    /// Whether any village of `server` has a fail-slow window active at
    /// `at` — the cluster load balancer's node-level straggler signal
    /// (node index = the plan's server index).
    pub fn is_degraded_server(&self, server: usize, at: Cycles) -> bool {
        self.events.iter().any(|e| {
            matches!(e, FaultEvent::CoreFailSlow {
                server: s, window, ..
            } if *s == server && window.contains(at))
        })
    }

    /// Projects the plan onto one fleet member: events aimed at `server`
    /// are remapped to server 0 (the index a single-package node sees),
    /// global [`FaultEvent::MessageDrops`] entries are kept, and
    /// everything else is dropped. The cluster layer hands each node
    /// `for_server(node)` so a rack-level plan splits deterministically
    /// into per-package plans; the derived seed keeps distinct nodes'
    /// plans distinct as plan values.
    pub fn for_server(&self, server: usize) -> FaultPlan {
        let events = self
            .events
            .iter()
            .filter_map(|e| match *e {
                FaultEvent::CoreFailStop {
                    server: s,
                    village,
                    at,
                } if s == server => Some(FaultEvent::CoreFailStop {
                    server: 0,
                    village,
                    at,
                }),
                FaultEvent::CoreFailSlow {
                    server: s,
                    village,
                    cores,
                    window,
                } if s == server => Some(FaultEvent::CoreFailSlow {
                    server: 0,
                    village,
                    cores,
                    window,
                }),
                FaultEvent::LinkFault {
                    server: s,
                    link,
                    window,
                } if s == server => Some(FaultEvent::LinkFault {
                    server: 0,
                    link,
                    window,
                }),
                FaultEvent::MessageDrops { probability } => {
                    Some(FaultEvent::MessageDrops { probability })
                }
                _ => None,
            })
            .collect();
        FaultPlan {
            seed: rng::derive_seed(self.seed, server as u64),
            events,
        }
    }

    /// Fail-stop events on `server`, as `(village, at)` pairs in insertion
    /// order.
    pub fn fail_stops(&self, server: usize) -> impl Iterator<Item = (usize, Cycles)> + '_ {
        self.events.iter().filter_map(move |e| match e {
            FaultEvent::CoreFailStop {
                server: s,
                village,
                at,
            } if *s == server => Some((*village, *at)),
            _ => None,
        })
    }

    /// Link faults on `server`, as `(link, window)` pairs in insertion
    /// order. Link indices are raw; apply them modulo the machine's link
    /// count.
    pub fn link_faults(&self, server: usize) -> impl Iterator<Item = (usize, FaultWindow)> + '_ {
        self.events.iter().filter_map(move |e| match e {
            FaultEvent::LinkFault {
                server: s,
                link,
                window,
            } if *s == server => Some((*link, *window)),
            _ => None,
        })
    }
}

/// Builds a [`FaultPlan`]; see [`FaultPlan::builder`].
///
/// Deterministic methods append exactly the event described; `random_*`
/// scenario helpers draw parameters from the builder's private seeded
/// stream, so the same seed and call sequence always yield the same plan.
#[derive(Debug)]
pub struct FaultPlanBuilder {
    seed: u64,
    rng: SmallRng,
    events: Vec<FaultEvent>,
}

impl FaultPlanBuilder {
    /// Schedules a fail-stop of one core in `(server, village)` at `at`.
    pub fn core_fail_stop(mut self, server: usize, village: usize, at: Cycles) -> Self {
        self.events.push(FaultEvent::CoreFailStop {
            server,
            village,
            at,
        });
        self
    }

    /// Schedules `cores` fail-slow cores in `(server, village)` over
    /// `window`.
    pub fn core_fail_slow(
        mut self,
        server: usize,
        village: usize,
        cores: u32,
        window: FaultWindow,
    ) -> Self {
        self.events.push(FaultEvent::CoreFailSlow {
            server,
            village,
            cores,
            window,
        });
        self
    }

    /// Schedules a link degradation/outage on `server`.
    pub fn link_fault(mut self, server: usize, link: usize, window: FaultWindow) -> Self {
        self.events.push(FaultEvent::LinkFault {
            server,
            link,
            window,
        });
        self
    }

    /// Sets an independent per-leg message-drop probability.
    ///
    /// # Panics
    ///
    /// Panics unless `probability` is in `[0, 1)`.
    pub fn message_drops(mut self, probability: f64) -> Self {
        assert!(
            (0.0..1.0).contains(&probability),
            "drop probability must be in [0, 1), got {probability}"
        );
        self.events.push(FaultEvent::MessageDrops { probability });
        self
    }

    /// The canonical straggler scenario: `cores` fail-slow cores in every
    /// village of `servers` servers × `villages` villages, over `window`.
    pub fn fail_slow_every_village(
        mut self,
        servers: usize,
        villages: usize,
        cores: u32,
        window: FaultWindow,
    ) -> Self {
        for server in 0..servers {
            for village in 0..villages {
                self.events.push(FaultEvent::CoreFailSlow {
                    server,
                    village,
                    cores,
                    window,
                });
            }
        }
        self
    }

    /// Schedules `count` fail-stops at seeded-random `(server, village)`
    /// positions and seeded-random times in `[0, horizon)`.
    pub fn random_fail_stops(
        mut self,
        count: usize,
        servers: usize,
        villages: usize,
        horizon: Cycles,
    ) -> Self {
        for _ in 0..count {
            let server = self.rng.gen_range(0..servers.max(1));
            let village = self.rng.gen_range(0..villages.max(1));
            let at = Cycles::new(self.rng.gen_range(0..horizon.raw().max(1)));
            self.events.push(FaultEvent::CoreFailStop {
                server,
                village,
                at,
            });
        }
        self
    }

    /// Schedules `count` link faults at seeded-random links and times;
    /// each window starts uniformly in `[0, horizon)`, lasts an
    /// exponential duration of mean `mean_duration`, and degrades by
    /// `slowdown` (pass [`f64::INFINITY`] for outages).
    pub fn random_link_faults(
        mut self,
        count: usize,
        servers: usize,
        links: usize,
        horizon: Cycles,
        mean_duration: Cycles,
        slowdown: f64,
    ) -> Self {
        for _ in 0..count {
            let server = self.rng.gen_range(0..servers.max(1));
            let link = self.rng.gen_range(0..links.max(1));
            let from = Cycles::new(self.rng.gen_range(0..horizon.raw().max(1)));
            let u: f64 = self.rng.gen_range(f64::EPSILON..1.0);
            let duration = mean_duration.scale(-u.ln());
            self.events.push(FaultEvent::LinkFault {
                server,
                link,
                window: FaultWindow::new(from, from + duration, slowdown),
            });
        }
        self
    }

    /// Finalizes the plan.
    pub fn build(self) -> FaultPlan {
        FaultPlan {
            seed: self.seed,
            events: self.events,
        }
    }

    /// Applies one [`FaultRecipe`] (the serializable description of a
    /// builder call) to this builder.
    pub fn apply(self, recipe: FaultRecipe) -> Self {
        match recipe {
            FaultRecipe::MessageDrops { probability } => self.message_drops(probability),
            FaultRecipe::CoreFailStop {
                server,
                village,
                at_cycles,
            } => self.core_fail_stop(server, village, Cycles::new(at_cycles)),
            FaultRecipe::CoreFailSlow {
                server,
                village,
                cores,
                from_cycles,
                until_cycles,
                slowdown,
            } => self.core_fail_slow(
                server,
                village,
                cores,
                FaultWindow::new(
                    Cycles::new(from_cycles),
                    Cycles::new(until_cycles),
                    slowdown,
                ),
            ),
            FaultRecipe::LinkFault {
                server,
                link,
                from_cycles,
                until_cycles,
                slowdown,
            } => self.link_fault(
                server,
                link,
                FaultWindow::new(
                    Cycles::new(from_cycles),
                    Cycles::new(until_cycles),
                    slowdown,
                ),
            ),
            FaultRecipe::FailSlowEveryVillage {
                servers,
                villages,
                cores,
                from_cycles,
                until_cycles,
                slowdown,
            } => self.fail_slow_every_village(
                servers,
                villages,
                cores,
                FaultWindow::new(
                    Cycles::new(from_cycles),
                    Cycles::new(until_cycles),
                    slowdown,
                ),
            ),
            FaultRecipe::RandomFailStops {
                count,
                servers,
                villages,
                horizon_cycles,
            } => self.random_fail_stops(count, servers, villages, Cycles::new(horizon_cycles)),
            FaultRecipe::RandomLinkFaults {
                count,
                servers,
                links,
                horizon_cycles,
                mean_duration_cycles,
                slowdown,
            } => self.random_link_faults(
                count,
                servers,
                links,
                Cycles::new(horizon_cycles),
                Cycles::new(mean_duration_cycles),
                slowdown,
            ),
        }
    }
}

/// A serializable description of one [`FaultPlanBuilder`] call.
///
/// Plans themselves stay behind the seeded-builder discipline (private
/// fields, no raw-event constructor outside tests); a recipe list plus a
/// seed is the *serialization format* for a plan. Replaying the recipes
/// through [`FaultPlan::from_recipes`] reconstructs the plan exactly —
/// including the randomized helpers, whose draws come from the builder's
/// private seed-derived stream — so scenario files can round-trip fault
/// plans without ever touching raw events.
///
/// All times are raw cycle counts (the builder's own unit), so a recipe
/// is a pure value with no frequency dependence.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultRecipe {
    /// [`FaultPlanBuilder::message_drops`].
    MessageDrops {
        /// Per-leg drop probability in `[0, 1)`.
        probability: f64,
    },
    /// [`FaultPlanBuilder::core_fail_stop`].
    CoreFailStop {
        /// Server index within the fleet.
        server: usize,
        /// Village index within the server.
        village: usize,
        /// Cycle at which the core dies.
        at_cycles: u64,
    },
    /// [`FaultPlanBuilder::core_fail_slow`].
    CoreFailSlow {
        /// Server index within the fleet.
        server: usize,
        /// Village index within the server.
        village: usize,
        /// Degraded cores in the village.
        cores: u32,
        /// Window start, cycles.
        from_cycles: u64,
        /// Window end (exclusive), cycles.
        until_cycles: u64,
        /// Service-time multiplier while active.
        slowdown: f64,
    },
    /// [`FaultPlanBuilder::link_fault`].
    LinkFault {
        /// Server index within the fleet.
        server: usize,
        /// Link index; applied modulo the machine's link count.
        link: usize,
        /// Window start, cycles.
        from_cycles: u64,
        /// Window end (exclusive), cycles.
        until_cycles: u64,
        /// Serialization-time multiplier while active.
        slowdown: f64,
    },
    /// [`FaultPlanBuilder::fail_slow_every_village`].
    FailSlowEveryVillage {
        /// Servers covered.
        servers: usize,
        /// Villages per server covered.
        villages: usize,
        /// Degraded cores per village.
        cores: u32,
        /// Window start, cycles.
        from_cycles: u64,
        /// Window end (exclusive), cycles.
        until_cycles: u64,
        /// Service-time multiplier while active.
        slowdown: f64,
    },
    /// [`FaultPlanBuilder::random_fail_stops`].
    RandomFailStops {
        /// Fail-stops scheduled.
        count: usize,
        /// Server index space.
        servers: usize,
        /// Village index space.
        villages: usize,
        /// Fail times drawn uniformly in `[0, horizon)`, cycles.
        horizon_cycles: u64,
    },
    /// [`FaultPlanBuilder::random_link_faults`].
    RandomLinkFaults {
        /// Link faults scheduled.
        count: usize,
        /// Server index space.
        servers: usize,
        /// Link index space.
        links: usize,
        /// Start times drawn uniformly in `[0, horizon)`, cycles.
        horizon_cycles: u64,
        /// Mean of the exponential window duration, cycles.
        mean_duration_cycles: u64,
        /// Degradation factor ([`f64::INFINITY`] for outages).
        slowdown: f64,
    },
}

impl FaultPlan {
    /// Reconstructs a plan by replaying `recipes` through the seeded
    /// builder — the deserialization half of the recipe format. An empty
    /// recipe list yields an empty plan carrying `seed`.
    ///
    /// # Panics
    ///
    /// Panics where the replayed builder calls would: out-of-range drop
    /// probabilities, inverted windows, sub-1 slowdowns.
    pub fn from_recipes(seed: u64, recipes: &[FaultRecipe]) -> FaultPlan {
        recipes
            .iter()
            .fold(FaultPlan::builder(seed), |b, &r| b.apply(r))
            .build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn window(from: u64, until: u64, slowdown: f64) -> FaultWindow {
        FaultWindow::new(Cycles::new(from), Cycles::new(until), slowdown)
    }

    #[test]
    fn none_is_empty_and_default() {
        let plan = FaultPlan::none();
        assert!(plan.is_empty());
        assert_eq!(plan.len(), 0);
        assert_eq!(plan, FaultPlan::default());
        assert_eq!(plan.drop_probability(), 0.0);
        assert!(plan.fail_slow(0, 0, Cycles::ZERO).is_none());
        assert_eq!(plan.fail_stops(0).count(), 0);
        assert_eq!(plan.link_faults(0).count(), 0);
    }

    #[test]
    fn window_containment_is_half_open() {
        let w = window(10, 20, 2.0);
        assert!(!w.contains(Cycles::new(9)));
        assert!(w.contains(Cycles::new(10)));
        assert!(w.contains(Cycles::new(19)));
        assert!(!w.contains(Cycles::new(20)));
        assert!(!w.is_outage());
        assert!(window(0, 1, f64::INFINITY).is_outage());
    }

    #[test]
    #[should_panic(expected = "slowdown")]
    fn window_rejects_speedups() {
        let _ = window(0, 10, 0.5);
    }

    #[test]
    fn builder_records_events_in_order() {
        let plan = FaultPlan::builder(7)
            .core_fail_stop(0, 1, Cycles::new(100))
            .core_fail_slow(0, 2, 1, window(0, 1_000, 4.0))
            .link_fault(0, 3, window(50, 60, f64::INFINITY))
            .message_drops(0.02)
            .build();
        assert_eq!(plan.len(), 4);
        assert_eq!(plan.seed(), 7);
        assert_eq!(
            plan.events()[0],
            FaultEvent::CoreFailStop {
                server: 0,
                village: 1,
                at: Cycles::new(100)
            }
        );
    }

    #[test]
    fn fail_slow_sums_cores_and_takes_worst_slowdown() {
        let plan = FaultPlan::builder(1)
            .core_fail_slow(0, 0, 1, window(0, 100, 2.0))
            .core_fail_slow(0, 0, 2, window(50, 200, 8.0))
            .build();
        assert_eq!(plan.fail_slow(0, 0, Cycles::new(10)), Some((1, 2.0)));
        assert_eq!(plan.fail_slow(0, 0, Cycles::new(60)), Some((3, 8.0)));
        assert_eq!(plan.fail_slow(0, 0, Cycles::new(150)), Some((2, 8.0)));
        assert!(plan.fail_slow(0, 0, Cycles::new(300)).is_none());
        assert!(plan.fail_slow(1, 0, Cycles::new(60)).is_none());
        assert!(plan.is_degraded(0, 0, Cycles::new(60)));
        assert!(!plan.is_degraded(0, 1, Cycles::new(60)));
    }

    #[test]
    fn drop_probability_composes_independently() {
        let plan = FaultPlan::builder(1)
            .message_drops(0.5)
            .message_drops(0.5)
            .build();
        assert!((plan.drop_probability() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn per_server_queries_filter() {
        let plan = FaultPlan::builder(1)
            .core_fail_stop(0, 1, Cycles::new(5))
            .core_fail_stop(2, 3, Cycles::new(9))
            .link_fault(2, 0, window(0, 10, 2.0))
            .build();
        assert_eq!(
            plan.fail_stops(0).collect::<Vec<_>>(),
            vec![(1, Cycles::new(5))]
        );
        assert_eq!(
            plan.fail_stops(2).collect::<Vec<_>>(),
            vec![(3, Cycles::new(9))]
        );
        assert_eq!(plan.link_faults(2).count(), 1);
        assert_eq!(plan.link_faults(0).count(), 0);
    }

    #[test]
    fn server_projection_remaps_and_keeps_global_events() {
        let plan = FaultPlan::builder(9)
            .core_fail_stop(1, 2, Cycles::new(5))
            .core_fail_slow(0, 1, 1, window(0, 100, 4.0))
            .link_fault(1, 7, window(10, 20, 2.0))
            .message_drops(0.01)
            .build();
        let node1 = plan.for_server(1);
        assert_eq!(node1.len(), 3, "fail-stop + link + global drops");
        assert_eq!(
            node1.fail_stops(0).collect::<Vec<_>>(),
            vec![(2, Cycles::new(5))]
        );
        assert_eq!(node1.link_faults(0).count(), 1);
        assert_eq!(node1.drop_probability(), plan.drop_probability());
        let node0 = plan.for_server(0);
        assert!(node0.is_degraded(0, 1, Cycles::new(50)));
        assert_ne!(node0.seed(), node1.seed(), "derived seeds stay distinct");
        assert!(plan.is_degraded_server(0, Cycles::new(50)));
        assert!(!plan.is_degraded_server(1, Cycles::new(50)));
        assert!(!plan.is_degraded_server(0, Cycles::new(200)));
    }

    #[test]
    fn random_helpers_are_seed_deterministic_and_injective() {
        let build = |seed| {
            FaultPlan::builder(seed)
                .random_fail_stops(4, 2, 8, Cycles::new(1_000_000))
                .random_link_faults(4, 2, 16, Cycles::new(1_000_000), Cycles::new(10_000), 4.0)
                .build()
        };
        assert_eq!(build(11), build(11));
        assert_ne!(build(11).events(), build(12).events());
    }

    #[test]
    fn fail_slow_every_village_covers_the_grid() {
        let plan = FaultPlan::builder(1)
            .fail_slow_every_village(2, 3, 1, window(0, 100, 4.0))
            .build();
        assert_eq!(plan.len(), 6);
        for server in 0..2 {
            for village in 0..3 {
                assert!(plan.is_degraded(server, village, Cycles::new(1)));
            }
        }
    }

    #[test]
    fn recipes_replay_every_builder_call_exactly() {
        let direct = FaultPlan::builder(7)
            .message_drops(0.02)
            .core_fail_stop(0, 3, Cycles::new(500))
            .core_fail_slow(1, 2, 2, window(10, 90, 4.0))
            .link_fault(0, 5, window(20, 40, f64::INFINITY))
            .fail_slow_every_village(2, 3, 1, window(0, 100, 2.0))
            .random_fail_stops(3, 2, 8, Cycles::new(1_000_000))
            .random_link_faults(2, 2, 16, Cycles::new(1_000_000), Cycles::new(10_000), 4.0)
            .build();
        let recipes = [
            FaultRecipe::MessageDrops { probability: 0.02 },
            FaultRecipe::CoreFailStop {
                server: 0,
                village: 3,
                at_cycles: 500,
            },
            FaultRecipe::CoreFailSlow {
                server: 1,
                village: 2,
                cores: 2,
                from_cycles: 10,
                until_cycles: 90,
                slowdown: 4.0,
            },
            FaultRecipe::LinkFault {
                server: 0,
                link: 5,
                from_cycles: 20,
                until_cycles: 40,
                slowdown: f64::INFINITY,
            },
            FaultRecipe::FailSlowEveryVillage {
                servers: 2,
                villages: 3,
                cores: 1,
                from_cycles: 0,
                until_cycles: 100,
                slowdown: 2.0,
            },
            FaultRecipe::RandomFailStops {
                count: 3,
                servers: 2,
                villages: 8,
                horizon_cycles: 1_000_000,
            },
            FaultRecipe::RandomLinkFaults {
                count: 2,
                servers: 2,
                links: 16,
                horizon_cycles: 1_000_000,
                mean_duration_cycles: 10_000,
                slowdown: 4.0,
            },
        ];
        assert_eq!(FaultPlan::from_recipes(7, &recipes), direct);
        // The randomized helpers draw from the builder's private stream,
        // so a different seed reconstructs a different plan.
        assert_ne!(FaultPlan::from_recipes(8, &recipes), direct);
    }

    #[test]
    fn empty_recipe_list_is_an_empty_plan_with_the_seed() {
        let plan = FaultPlan::from_recipes(9, &[]);
        assert!(plan.is_empty());
        assert_eq!(plan.seed(), 9);
    }
}
