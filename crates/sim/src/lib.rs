//! Discrete-event simulation engine for the uManycore reproduction.
//!
//! The paper evaluates uManycore with the SST structural simulator driven by
//! Pin traces. This crate is the substitute substrate: a deterministic,
//! cycle-resolution discrete-event core that the system simulator in the
//! `umanycore` crate builds on.
//!
//! Contents:
//!
//! - [`Cycles`]: a typed cycle count with saturating arithmetic and
//!   wall-clock conversions at a given core frequency.
//! - [`EventQueue`]: a monotonic future-event list with deterministic FIFO
//!   tie-breaking, generic over the event payload type. Implemented as an
//!   arena-pooled hierarchical calendar queue (timing wheel + sorted
//!   overflow level) with next-event time skipping, so the steady-state
//!   schedule/pop loop is O(1) and allocation-free.
//! - [`rng`]: reproducible per-component random streams split from one master
//!   seed, so every experiment is bit-reproducible.
//! - [`trace`]: per-request latency provenance — a span taxonomy and
//!   cycle-exact breakdown accumulator whose components sum to the
//!   request's end-to-end latency (the conservation invariant).
//!
//! # Examples
//!
//! Simulating two events in time order:
//!
//! ```
//! use um_sim::{Cycles, EventQueue};
//!
//! let mut q: EventQueue<&str> = EventQueue::new();
//! q.schedule(Cycles::new(100), "later");
//! q.schedule(Cycles::new(10), "sooner");
//! assert_eq!(q.pop(), Some((Cycles::new(10), "sooner")));
//! assert_eq!(q.pop(), Some((Cycles::new(100), "later")));
//! assert_eq!(q.pop(), None);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fault;
mod queue;
pub mod rng;
#[cfg(feature = "sim-sanitizer")]
pub mod sanitizer;
mod time;
pub mod trace;

#[doc(hidden)]
pub use queue::baseline;
pub use queue::EventQueue;
pub use time::{Cycles, Frequency};
pub use trace::{Component, LatencyBreakdown, NullSink, Span, TraceSink};
