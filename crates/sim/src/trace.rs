//! Per-request latency provenance: where did every cycle go?
//!
//! The paper's core claims are *decompositions* of tail latency — queueing,
//! context switching, RPC processing, coherence and interconnect transit
//! (Figs 3/6/9) — so the simulator needs first-class attribution, not an
//! after-the-fact analytic estimate. This module provides the vocabulary:
//!
//! - [`Component`]: the span taxonomy — every cycle of a request's life
//!   belongs to exactly one component.
//! - [`LatencyBreakdown`]: a per-request accumulator of cycles by
//!   component, with the conservation-friendly invariant that charges are
//!   exact cycle counts (no floats, no rounding drift).
//! - [`Span`]/[`TraceSink`]: an open/close interval API for event loops
//!   that close spans at event boundaries, with [`NullSink`] as the
//!   zero-cost disabled path.
//!
//! The headline invariant, enforced by the system simulator's debug
//! assertions and the `latency_conservation` property suite: **a request's
//! breakdown components sum to its end-to-end latency, to the cycle**.
//!
//! # Examples
//!
//! ```
//! use um_sim::trace::{Component, LatencyBreakdown, Span};
//! use um_sim::Cycles;
//!
//! let mut bd = LatencyBreakdown::new();
//! let span = Span::open(Component::QueueWait, Cycles::new(100));
//! bd.charge(span.component(), span.close(Cycles::new(150)));
//! bd.charge(Component::Compute, Cycles::new(200));
//! assert_eq!(bd.get(Component::QueueWait), Cycles::new(50));
//! assert_eq!(bd.total(), Cycles::new(250));
//! ```

use crate::time::Cycles;
use std::fmt;

/// One source of request latency. Every cycle between a request's spawn
/// and the delivery of its response is charged to exactly one component.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Component {
    /// Off-package network: client/inter-server RTT shares, NIC ingress
    /// processing, external-fabric serialization and NIC queueing.
    ExternalNet,
    /// On-package interconnect transit: hop latency, link serialization
    /// and link-contention queueing for request/response messages.
    IcnTransit,
    /// Waiting for a core: ready-queue residence plus software queue-lock
    /// serialization delays.
    QueueWait,
    /// Scheduling operations on the request path: enqueue/dequeue/complete
    /// instruction costs and work-stealing overhead.
    SchedOp,
    /// Context-switch state movement on the request path (the restore
    /// half; the save half delays the *core*, not the request).
    CtxSwitch,
    /// RPC-layer processing occupying the core: transport, (de)serialization,
    /// dispatch — software stack or hardware NIC hand-off.
    RpcProcessing,
    /// The handler's own compute.
    Compute,
    /// Coherence overhead: directory traffic and migration-induced
    /// refetch of warm state.
    CoherenceStall,
    /// DRAM/memory-system stall: the segment's working-set traffic
    /// queueing on ICN links.
    MemStall,
    /// External storage tier service time.
    StorageService,
    /// Software interference hiccups (kernel preemption, interrupts,
    /// daemons — the tail-at-scale mechanism).
    Interference,
    /// Resilience machinery on the request path: time an RPC operation
    /// spent waiting on attempts that did not win (retry timeouts and
    /// backoff, hedge delay before the winning attempt was issued, and
    /// the full wait of an operation that exhausted its attempts).
    Resilience,
    /// Cluster-fabric time outside any single package: load-balancer
    /// admission-queue wait plus the LB→node request leg and the node→LB
    /// response leg of the inter-node network (NIC queueing, serialization,
    /// propagation and jitter on the rack fabric).
    ClusterHop,
}

impl Component {
    /// Number of components.
    pub const COUNT: usize = 13;

    /// All components, in display order.
    pub const ALL: [Component; Self::COUNT] = [
        Component::ExternalNet,
        Component::IcnTransit,
        Component::QueueWait,
        Component::SchedOp,
        Component::CtxSwitch,
        Component::RpcProcessing,
        Component::Compute,
        Component::CoherenceStall,
        Component::MemStall,
        Component::StorageService,
        Component::Interference,
        Component::Resilience,
        Component::ClusterHop,
    ];

    /// Stable index of this component in [`Component::ALL`].
    pub const fn index(self) -> usize {
        match self {
            Component::ExternalNet => 0,
            Component::IcnTransit => 1,
            Component::QueueWait => 2,
            Component::SchedOp => 3,
            Component::CtxSwitch => 4,
            Component::RpcProcessing => 5,
            Component::Compute => 6,
            Component::CoherenceStall => 7,
            Component::MemStall => 8,
            Component::StorageService => 9,
            Component::Interference => 10,
            Component::Resilience => 11,
            Component::ClusterHop => 12,
        }
    }

    /// Short display name for reports and tables.
    pub const fn name(self) -> &'static str {
        match self {
            Component::ExternalNet => "external-net",
            Component::IcnTransit => "icn-transit",
            Component::QueueWait => "queue-wait",
            Component::SchedOp => "sched-op",
            Component::CtxSwitch => "ctx-switch",
            Component::RpcProcessing => "rpc-processing",
            Component::Compute => "compute",
            Component::CoherenceStall => "coherence-stall",
            Component::MemStall => "mem-stall",
            Component::StorageService => "storage-service",
            Component::Interference => "interference",
            Component::Resilience => "resilience",
            Component::ClusterHop => "cluster-hop",
        }
    }
}

impl fmt::Display for Component {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Cycles a request has spent in each [`Component`].
///
/// Charges saturate like [`Cycles`] addition; `merge` folds a child
/// request's breakdown into its parent's (the caller's blocked-on-call
/// interval is exactly the callee's lifetime, so downstream time lands in
/// the callee's components — never double-counted as caller queue wait).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyBreakdown {
    cycles: [Cycles; Component::COUNT],
}

impl LatencyBreakdown {
    /// An all-zero breakdown.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `amount` to `component`.
    pub fn charge(&mut self, component: Component, amount: Cycles) {
        self.cycles[component.index()] += amount;
    }

    /// Cycles charged to `component` so far.
    pub fn get(&self, component: Component) -> Cycles {
        self.cycles[component.index()]
    }

    /// Sum over all components — equal to the request's end-to-end
    /// lifetime when the event loop charged every interval.
    pub fn total(&self) -> Cycles {
        self.cycles.iter().copied().sum()
    }

    /// Folds `other` (a finished child request) into this breakdown.
    pub fn merge(&mut self, other: &LatencyBreakdown) {
        for (mine, theirs) in self.cycles.iter_mut().zip(other.cycles.iter()) {
            *mine += *theirs;
        }
    }

    /// Iterates `(component, cycles)` pairs in [`Component::ALL`] order.
    pub fn iter(&self) -> impl Iterator<Item = (Component, Cycles)> + '_ {
        Component::ALL.iter().map(|&c| (c, self.cycles[c.index()]))
    }
}

impl fmt::Display for LatencyBreakdown {
    /// Non-zero components only, e.g. `queue-wait=50cyc compute=200cyc`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for (c, v) in self.iter() {
            if v == Cycles::ZERO {
                continue;
            }
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{c}={v}")?;
            first = false;
        }
        if first {
            f.write_str("(empty)")?;
        }
        Ok(())
    }
}

/// An open attribution interval: a component and the time it started.
///
/// The event loop opens a span when a request enters a state and closes it
/// at the boundary event, obtaining the interval's duration to charge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Span {
    component: Component,
    opened_at: Cycles,
}

impl Span {
    /// Opens a span for `component` at time `at`.
    pub fn open(component: Component, at: Cycles) -> Self {
        Self {
            component,
            opened_at: at,
        }
    }

    /// The component this span attributes to.
    pub fn component(self) -> Component {
        self.component
    }

    /// When the span was opened.
    pub fn opened_at(self) -> Cycles {
        self.opened_at
    }

    /// Closes the span at `at`, returning its duration. Closing before the
    /// open time yields zero (a dispatch that raced an insertion).
    pub fn close(self, at: Cycles) -> Cycles {
        at.saturating_sub(self.opened_at)
    }

    /// Closes the span at `at` and records the duration into `sink`.
    pub fn close_into(self, at: Cycles, sink: &mut dyn TraceSink) {
        sink.record(self.component, self.close(at));
    }
}

/// Receives closed span durations. [`LatencyBreakdown`] is the real sink;
/// [`NullSink`] is the disabled path.
pub trait TraceSink {
    /// Records `cycles` of `component` time.
    fn record(&mut self, component: Component, cycles: Cycles);
}

impl TraceSink for LatencyBreakdown {
    fn record(&mut self, component: Component, cycles: Cycles) {
        self.charge(component, cycles);
    }
}

/// A sink that drops everything — tracing disabled.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NullSink;

impl TraceSink for NullSink {
    fn record(&mut self, _component: Component, _cycles: Cycles) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_match_all_order() {
        for (i, c) in Component::ALL.iter().enumerate() {
            assert_eq!(c.index(), i, "{c}");
        }
        assert_eq!(Component::ALL.len(), Component::COUNT);
    }

    #[test]
    fn names_are_unique_and_nonempty() {
        let mut names: Vec<&str> = Component::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Component::COUNT);
        assert!(names.iter().all(|n| !n.is_empty()));
    }

    #[test]
    fn charges_accumulate_and_total() {
        let mut bd = LatencyBreakdown::new();
        bd.charge(Component::Compute, Cycles::new(100));
        bd.charge(Component::Compute, Cycles::new(50));
        bd.charge(Component::QueueWait, Cycles::new(7));
        assert_eq!(bd.get(Component::Compute), Cycles::new(150));
        assert_eq!(bd.get(Component::MemStall), Cycles::ZERO);
        assert_eq!(bd.total(), Cycles::new(157));
    }

    #[test]
    fn merge_is_componentwise_addition() {
        let mut parent = LatencyBreakdown::new();
        parent.charge(Component::Compute, Cycles::new(10));
        let mut child = LatencyBreakdown::new();
        child.charge(Component::Compute, Cycles::new(5));
        child.charge(Component::IcnTransit, Cycles::new(3));
        parent.merge(&child);
        assert_eq!(parent.get(Component::Compute), Cycles::new(15));
        assert_eq!(parent.get(Component::IcnTransit), Cycles::new(3));
        assert_eq!(parent.total(), Cycles::new(18));
    }

    #[test]
    fn span_close_measures_interval() {
        let s = Span::open(Component::QueueWait, Cycles::new(40));
        assert_eq!(s.component(), Component::QueueWait);
        assert_eq!(s.opened_at(), Cycles::new(40));
        assert_eq!(s.close(Cycles::new(100)), Cycles::new(60));
    }

    #[test]
    fn span_close_before_open_is_zero() {
        let s = Span::open(Component::QueueWait, Cycles::new(40));
        assert_eq!(s.close(Cycles::new(30)), Cycles::ZERO);
    }

    #[test]
    fn span_close_into_sink() {
        let mut bd = LatencyBreakdown::new();
        Span::open(Component::CtxSwitch, Cycles::new(10)).close_into(Cycles::new(25), &mut bd);
        assert_eq!(bd.get(Component::CtxSwitch), Cycles::new(15));
        let mut null = NullSink;
        Span::open(Component::CtxSwitch, Cycles::new(10)).close_into(Cycles::new(25), &mut null);
        assert_eq!(null, NullSink);
    }

    #[test]
    fn display_skips_zero_components() {
        let mut bd = LatencyBreakdown::new();
        assert_eq!(bd.to_string(), "(empty)");
        bd.charge(Component::Compute, Cycles::new(9));
        bd.charge(Component::QueueWait, Cycles::new(1));
        let s = bd.to_string();
        assert!(s.contains("compute=9cyc"), "{s}");
        assert!(s.contains("queue-wait=1cyc"), "{s}");
        assert!(!s.contains("mem-stall"), "{s}");
    }

    #[test]
    fn conservation_of_iter() {
        let mut bd = LatencyBreakdown::new();
        for (i, c) in Component::ALL.iter().enumerate() {
            bd.charge(*c, Cycles::new(i as u64 + 1));
        }
        let sum: Cycles = bd.iter().map(|(_, v)| v).sum();
        assert_eq!(sum, bd.total());
    }
}
